#!/usr/bin/env bash
# Tier-1 verification gate, meant to be run before every merge:
#
#   1. Release-ish build + full ctest suite (the tier-1 contract from
#      ROADMAP.md: every test passing, determinism bit-for-bit).
#   2. The same suite under ASan+UBSan in a separate Debug build tree
#      (build-asan/). The zero-copy payload paths share one allocation
#      across broadcast fan-out, retransmission buffers, and reorder
#      buffers — exactly the kind of lifetime bug a sanitizer catches and
#      a passing test hides.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer pass (pass 1 only).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== pass 1: tier-1 build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

if [[ "$FAST" == "1" ]]; then
  echo "=== --fast: skipping sanitizer pass ==="
  exit 0
fi

echo "=== pass 2: ASan+UBSan build + tests ==="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  >/dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir build-asan --output-on-failure

echo "=== all checks passed ==="
