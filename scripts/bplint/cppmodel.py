"""Structural facts bplint extracts from one C++ file.

Everything here is token-stream pattern matching over lexer.lex()
output. The extraction is intentionally conservative: rules only fire
on patterns the model recognized positively, so an unrecognized
construct degrades to silence, never to a false diagnostic.

Facts per file (see FileFacts):
  * enums (name, base, enumerators) and whether they are message-type
    enums (name ends in "MessageType" or the base mentions MessageType)
  * structs/classes with their data fields and method bodies (inline
    and, project-wide via Project, out-of-line `T::Method` definitions)
  * switch statements (subject tokens, case labels, default presence),
    parsed recursively so nested switches don't leak labels outward
  * iterations: range-for targets and `it = x.begin()` style loops,
    with their body token slices
  * unordered_map/unordered_set variable names (direct declarations
    and via `using Alias = std::unordered_...` aliases)
  * Tracer::Mark call sites and the kTracePhases catalog
  * CongestionGauge call sites and the kCongestionGaugeKeys catalog
  * `bplint:allow(...)` suppressions and `bplint:` file markers
  * identifier usage contexts used by BP004 (case labels, ==/!=
    comparisons)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from lexer import Tok, lex

SUPPRESS_RE = re.compile(
    r"bplint:allow\(\s*(BP\d{3}(?:\s*,\s*BP\d{3})*)\s*\)\s*(.*)")
MARKER_RE = re.compile(r"bplint:([a-z][a-z0-9-]*)")


@dataclass
class Suppression:
    line: int
    rules: Tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class Enum:
    name: str
    base: str
    line: int
    enumerators: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def is_message_type(self) -> bool:
        return self.name.endswith("MessageType") or "MessageType" in self.base


@dataclass
class Field:
    name: str
    type_str: str
    line: int


@dataclass
class Struct:
    name: str
    line: int
    fields: List[Field] = field(default_factory=list)
    # method name -> list of body token slices (inline definitions).
    methods: Dict[str, List[List[Tok]]] = field(default_factory=dict)


@dataclass
class Switch:
    line: int
    subject: List[Tok]
    # (enumerator, line, qualifier-or-None); qualifier is the `Foo` in a
    # `case Foo::kBar:` label, used to resolve enumerator-name collisions.
    cases: List[Tuple[str, int, Optional[str]]] = field(default_factory=list)
    has_default: bool = False


@dataclass
class Iteration:
    line: int
    target: str  # final identifier of the iterated expression
    body: List[Tok] = field(default_factory=list)


@dataclass
class MarkCall:
    line: int
    phase: str


@dataclass
class GaugeCall:
    line: int
    key: str


@dataclass
class FileFacts:
    path: str
    tokens: List[Tok] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    markers: Set[str] = field(default_factory=set)
    enums: List[Enum] = field(default_factory=list)
    structs: List[Struct] = field(default_factory=list)
    # (class, method) -> list of body token slices (out-of-line defs).
    out_of_line: Dict[Tuple[str, str], List[List[Tok]]] = field(
        default_factory=dict)
    switches: List[Switch] = field(default_factory=list)
    iterations: List[Iteration] = field(default_factory=list)
    unordered_vars: Set[str] = field(default_factory=set)
    mark_calls: List[MarkCall] = field(default_factory=list)
    trace_catalog: List[str] = field(default_factory=list)
    trace_catalog_line: int = 0
    gauge_calls: List[GaugeCall] = field(default_factory=list)
    gauge_catalog: List[str] = field(default_factory=list)
    gauge_catalog_line: int = 0
    string_literals: Set[str] = field(default_factory=set)
    case_idents: Set[str] = field(default_factory=set)
    cmp_idents: Set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# token scanning helpers
# ---------------------------------------------------------------------------

_OPEN = {"(": ")", "{": "}", "[": "]"}


def match_balanced(toks: Sequence[Tok], i: int) -> int:
    """toks[i] is an opener; returns index one past its matching closer."""
    opener = toks[i].text
    closer = _OPEN[opener]
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def match_template(toks: Sequence[Tok], i: int) -> int:
    """toks[i] is '<'; returns index one past the matching '>'.

    Treats '>>' as two closers. Gives up (returns i+1) on suspicious
    tokens so a stray less-than comparison can't eat the file.
    """
    depth = 0
    n = len(toks)
    j = i
    while j < n:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}"):
            return i + 1  # not a template argument list after all
        j += 1
    return n


# ---------------------------------------------------------------------------
# extraction passes
# ---------------------------------------------------------------------------

def _parse_enum(toks: List[Tok], i: int, facts: FileFacts) -> int:
    """toks[i].text == 'enum'. Returns index past the enum body."""
    n = len(toks)
    j = i + 1
    if j < n and toks[j].text in ("class", "struct"):
        j += 1
    if j >= n or toks[j].kind != "id":
        return i + 1  # anonymous enum: skip keyword only
    name = toks[j].text
    line = toks[j].line
    j += 1
    base = ""
    if j < n and toks[j].text == ":":
        k = j + 1
        base_toks = []
        while k < n and toks[k].text not in ("{", ";"):
            base_toks.append(toks[k].text)
            k += 1
        base = "".join(base_toks)
        j = k
    if j >= n or toks[j].text != "{":
        return j  # forward declaration
    end = match_balanced(toks, j)
    enum = Enum(name=name, base=base, line=line)
    k = j + 1
    expect_name = True
    while k < end - 1:
        t = toks[k]
        if expect_name and t.kind == "id":
            enum.enumerators.append((t.text, t.line))
            expect_name = False
        elif t.text == ",":
            expect_name = True
        elif t.text in ("(", "{", "["):
            k = match_balanced(toks, k)
            continue
        k += 1
    facts.enums.append(enum)
    return end


def _field_from_stmt(stmt: List[Tok]) -> Optional[Field]:
    """A struct-body statement with no '(': extract the declared field."""
    if not stmt:
        return None
    head = stmt[0].text
    if head in ("using", "typedef", "static", "friend", "public", "private",
                "protected", "template", "operator"):
        return None
    # Name = last identifier before '=', '{', '[' or end.
    last_id = None
    last_idx = -1
    for idx, t in enumerate(stmt):
        if t.text in ("=", "{", "["):
            break
        if t.kind == "id":
            last_id = t
            last_idx = idx
    if last_id is None or last_idx == 0:
        return None  # a lone type name is not a member declaration
    type_str = " ".join(t.text for t in stmt[:last_idx])
    return Field(name=last_id.text, type_str=type_str, line=last_id.line)


def _parse_struct(toks: List[Tok], i: int, facts: FileFacts) -> int:
    """toks[i].text in ('struct','class'). Returns index past the body."""
    n = len(toks)
    j = i + 1
    # Skip attributes / alignas.
    while j < n and toks[j].text == "[":
        j = match_balanced(toks, j)
    if j >= n or toks[j].kind != "id":
        return i + 1
    name = toks[j].text
    line = toks[j].line
    j += 1
    if j < n and toks[j].text == ":":  # base clause
        while j < n and toks[j].text not in ("{", ";"):
            j += 1
    if j >= n or toks[j].text != "{":
        return j  # forward declaration or variable of elaborated type
    end = match_balanced(toks, j)
    struct = Struct(name=name, line=line)
    k = j + 1
    while k < end - 1:
        t = toks[k]
        if t.kind == "id" and t.text in ("public", "private", "protected") \
                and k + 1 < end and toks[k + 1].text == ":":
            k += 2
            continue
        if t.kind == "id" and t.text == "enum":
            k = _parse_enum(toks, k, facts)
            # Consume a trailing ';' if present.
            if k < end and toks[k].text == ";":
                k += 1
            continue
        if t.kind == "id" and t.text in ("struct", "class"):
            k = _parse_struct(toks, k, facts)
            if k < end and toks[k].text == ";":
                k += 1
            continue
        if t.kind == "id" and t.text == "template":
            # Skip the parameter list, then let the next loop round
            # handle whatever is declared.
            k += 1
            if k < end and toks[k].text == "<":
                k = match_template(toks, k)
            continue
        # Scan one member declaration.
        stmt: List[Tok] = []
        saw_paren = False
        fn_name: Optional[str] = None
        m = k
        while m < end - 1:
            tm = toks[m]
            if tm.text == ";":
                m += 1
                break
            if tm.text == "(" and not saw_paren:
                saw_paren = True
                if stmt and stmt[-1].kind == "id":
                    fn_name = stmt[-1].text
                m = match_balanced(toks, m)
                # cv-qualifiers / noexcept / override between ')' and body.
                while m < end - 1 and toks[m].kind == "id" and \
                        toks[m].text in ("const", "noexcept", "override",
                                         "final"):
                    m += 1
                if m < end - 1 and toks[m].text == "=":
                    # `= default;` / `= delete;` / `= 0;`
                    while m < end - 1 and toks[m].text != ";":
                        m += 1
                    m += 1
                    break
                if m < end - 1 and toks[m].text == "{":
                    body_end = match_balanced(toks, m)
                    if fn_name:
                        struct.methods.setdefault(fn_name, []).append(
                            list(toks[m + 1:body_end - 1]))
                    m = body_end
                    break
                continue
            if tm.text == "{":
                m = match_balanced(toks, m)
                continue
            if tm.text == "[":
                m = match_balanced(toks, m)
                continue
            stmt.append(tm)
            m += 1
        if not saw_paren:
            fld = _field_from_stmt(stmt)
            if fld is not None:
                struct.fields.append(fld)
        k = max(m, k + 1)
    if struct.fields or struct.methods:
        facts.structs.append(struct)
    return end


def _parse_out_of_line(toks: List[Tok], facts: FileFacts) -> None:
    """Collects `Cls::Method(...) ... { body }` definitions."""
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].text == "(" and i >= 3 and toks[i - 1].kind == "id" \
                and toks[i - 2].text == "::" and toks[i - 3].kind == "id":
            cls = toks[i - 3].text
            method = toks[i - 1].text
            j = match_balanced(toks, i)
            while j < n and toks[j].kind == "id" and \
                    toks[j].text in ("const", "noexcept", "override", "final"):
                j += 1
            if j < n and toks[j].text == "{":
                end = match_balanced(toks, j)
                facts.out_of_line.setdefault((cls, method), []).append(
                    list(toks[j + 1:end - 1]))
                i = end
                continue
        i += 1


def _parse_switch_body(toks: List[Tok], start: int, end: int,
                       sw: Switch, facts: FileFacts) -> None:
    """Scans [start, end) for case labels; recurses into nested switches."""
    k = start
    while k < end:
        t = toks[k]
        if t.kind == "id" and t.text == "switch":
            k = _parse_switch(toks, k, facts)
            continue
        if t.kind == "id" and t.text == "case":
            label: List[Tok] = []
            m = k + 1
            while m < end and toks[m].text != ":":
                label.append(toks[m])
                m += 1
            label_id = None
            label_idx = -1
            for li, lt in enumerate(label):
                if lt.kind == "id":
                    label_id = lt  # last identifier wins (handles Foo::kBar)
                    label_idx = li
            if label_id is not None:
                qualifier = None
                if label_idx >= 2 and label[label_idx - 1].text == "::" and \
                        label[label_idx - 2].kind == "id":
                    qualifier = label[label_idx - 2].text
                sw.cases.append((label_id.text, label_id.line, qualifier))
                facts.case_idents.add(label_id.text)
            k = m + 1
            continue
        if t.kind == "id" and t.text == "default":
            sw.has_default = True
        k += 1


def _parse_switch(toks: List[Tok], i: int, facts: FileFacts) -> int:
    """toks[i].text == 'switch'. Returns index past the switch statement."""
    n = len(toks)
    j = i + 1
    if j >= n or toks[j].text != "(":
        return i + 1
    subj_end = match_balanced(toks, j)
    subject = list(toks[j + 1:subj_end - 1])
    k = subj_end
    if k >= n or toks[k].text != "{":
        return subj_end
    body_end = match_balanced(toks, k)
    sw = Switch(line=toks[i].line, subject=subject)
    _parse_switch_body(toks, k + 1, body_end - 1, sw, facts)
    facts.switches.append(sw)
    return body_end


def _final_ident(expr: Sequence[Tok]) -> Optional[str]:
    last = None
    for t in expr:
        if t.kind == "id":
            last = t.text
    return last


def _loop_body(toks: List[Tok], i: int) -> Tuple[List[Tok], int]:
    """toks[i] is the first token after a for(...) header."""
    n = len(toks)
    if i < n and toks[i].text == "{":
        end = match_balanced(toks, i)
        return list(toks[i + 1:end - 1]), end
    # Single statement body.
    j = i
    while j < n and toks[j].text != ";":
        if toks[j].text in _OPEN:
            j = match_balanced(toks, j)
            continue
        j += 1
    return list(toks[i:j]), j + 1


def _parse_iterations(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].kind == "id" and toks[i].text == "for" and i + 1 < n \
                and toks[i + 1].text == "(":
            hdr_end = match_balanced(toks, i + 1)
            header = toks[i + 2:hdr_end - 1]
            # Range-for: a top-level single ':' inside the header.
            colon = -1
            depth = 0
            for idx, t in enumerate(header):
                if t.text in _OPEN:
                    depth += 1
                elif t.text in (")", "}", "]"):
                    depth -= 1
                elif t.text == ":" and depth == 0:
                    colon = idx
                    break
            target: Optional[str] = None
            if colon >= 0:
                target = _final_ident(header[colon + 1:])
            else:
                # Classic loop over iterators: look for `X.begin()` /
                # `X->begin()` in the init clause.
                for idx in range(len(header) - 2):
                    if header[idx + 1].text in (".", "->") and \
                            header[idx + 2].text == "begin" and \
                            header[idx].kind == "id":
                        target = header[idx].text
                        break
            body, nxt = _loop_body(toks, hdr_end)
            if target is not None:
                facts.iterations.append(
                    Iteration(line=toks[i].line, target=target, body=body))
            i = hdr_end  # re-scan the body for nested loops
            continue
        i += 1


def _parse_unordered(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    aliases: Set[str] = set()
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in ("unordered_map", "unordered_set",
                                         "unordered_multimap",
                                         "unordered_multiset"):
            # Alias? `using Name = std::unordered_...<...>`
            back = i - 1
            while back >= 0 and toks[back].text in ("::", "std"):
                back -= 1
            if back >= 1 and toks[back].text == "=" and \
                    toks[back - 1].kind == "id" and back >= 2 and \
                    toks[back - 2].text == "using":
                aliases.add(toks[back - 1].text)
            j = i + 1
            if j < n and toks[j].text == "<":
                j = match_template(toks, j)
            # Skip ref/pointer/const between the type and the name.
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "id":
                facts.unordered_vars.add(toks[j].text)
            i = j
            continue
        i += 1
    # Second pass: variables declared with an alias type.
    if aliases:
        for i in range(n - 1):
            if toks[i].kind == "id" and toks[i].text in aliases and \
                    toks[i + 1].kind == "id":
                facts.unordered_vars.add(toks[i + 1].text)


def _parse_marks_and_catalog(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in ("Mark", "CongestionGauge") and \
                i + 1 < n and toks[i + 1].text == "(":
            end = match_balanced(toks, i + 1)
            args = toks[i + 2:end - 1]
            # Split at top-level commas; the phase/key is argument #2
            # (Mark(trace, phase, ...) / CongestionGauge(out, key, value)).
            depth = 0
            arg_idx = 0
            name: Optional[Tok] = None
            for a in args:
                if a.text in _OPEN:
                    depth += 1
                elif a.text in (")", "}", "]"):
                    depth -= 1
                elif a.text == "," and depth == 0:
                    arg_idx += 1
                    continue
                if arg_idx == 1 and a.kind == "str" and name is None:
                    name = a
            if name is not None:
                if t.text == "Mark":
                    facts.mark_calls.append(MarkCall(line=name.line,
                                                     phase=name.text))
                else:
                    facts.gauge_calls.append(GaugeCall(line=name.line,
                                                       key=name.text))
            i = end
            continue
        if t.kind == "id" and \
                t.text in ("kTracePhases", "kCongestionGaugeKeys"):
            # Only a *declaration* (`... kTracePhases[] = { ... }`) defines
            # the catalog: require an `=` before the brace so a use site
            # (e.g. a range-for over the catalog) doesn't swallow the
            # following block's string literals as catalog entries.
            j = i + 1
            saw_eq = False
            while j < n and toks[j].text not in ("{", ";"):
                if toks[j].text == "=":
                    saw_eq = True
                j += 1
            if j < n and toks[j].text == "{" and saw_eq:
                end = match_balanced(toks, j)
                entries = [a.text for a in toks[j + 1:end - 1]
                           if a.kind == "str"]
                if t.text == "kTracePhases":
                    facts.trace_catalog = entries
                    facts.trace_catalog_line = t.line
                else:
                    facts.gauge_catalog = entries
                    facts.gauge_catalog_line = t.line
                i = end
                continue
        i += 1


def _parse_usage_contexts(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == "str":
            facts.string_literals.add(t.text)
        if t.kind == "id":
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            if prev in ("==", "!=") or nxt in ("==", "!="):
                facts.cmp_idents.add(t.text)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def analyze_file(path: str, text: str) -> FileFacts:
    toks, comments = lex(text)
    facts = FileFacts(path=path, tokens=toks)

    for line, comment in comments:
        m = SUPPRESS_RE.search(comment)
        if m:
            rules = tuple(r.strip() for r in m.group(1).split(","))
            facts.suppressions.append(
                Suppression(line=line, rules=rules, reason=m.group(2).strip()))
            continue
        for marker in MARKER_RE.findall(comment):
            if marker != "allow":
                facts.markers.add(marker)

    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text == "enum":
            i = _parse_enum(toks, i, facts)
            continue
        if t.kind == "id" and t.text in ("struct", "class"):
            nxt = _parse_struct(toks, i, facts)
            if nxt <= i:
                nxt = i + 1
            i = nxt
            continue
        i += 1

    _parse_out_of_line(toks, facts)

    i = 0
    while i < n:
        if toks[i].kind == "id" and toks[i].text == "switch":
            i = _parse_switch(toks, i, facts)
            continue
        i += 1

    _parse_iterations(toks, facts)
    _parse_unordered(toks, facts)
    _parse_marks_and_catalog(toks, facts)
    _parse_usage_contexts(toks, facts)
    return facts
