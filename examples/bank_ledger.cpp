// A byzantized global bank — the paper's motivating application class
// ("finances and mission critical operations, such as e-commerce and
// banking applications", §VI-D).
//
// Each datacenter hosts a branch with accounts. Local transfers are
// log-committed; cross-datacenter wires ride Blockplane's communication
// interface. Verification routines make overdrafts and fabricated wires
// impossible even with a byzantine Blockplane node in every branch.
//
//   $ ./bank_ledger
#include <cstdio>

#include "core/deployment.h"
#include "protocols/bank.h"

using namespace blockplane;

namespace {

void Await(sim::Simulator& simulator, const std::function<bool()>& pred) {
  bool ok = simulator.RunUntilCondition(pred, simulator.Now() +
                                                  sim::Seconds(120));
  if (!ok) {
    std::printf("  ... condition not reached in time!\n");
  }
}

}  // namespace

int main() {
  sim::Simulator simulator(7);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), {});
  protocols::BankLedger bank(&deployment);

  // One byzantine node per branch — under f_i = 1 they change nothing.
  for (int site = 0; site < 4; ++site) {
    deployment.node(site, 3)->SetByzantineMode(pbft::ByzantineMode::kBogusVotes);
  }

  std::printf("Blockplane bank ledger across 4 datacenters "
              "(one byzantine node per branch)\n\n");

  bank.Deposit(net::kCalifornia, "alice", 1000);
  bank.Deposit(net::kIreland, "seamus", 50);
  Await(simulator, [&] {
    return bank.Balance(net::kCalifornia, "alice") == 1000 &&
           bank.Balance(net::kIreland, "seamus") == 50;
  });
  std::printf("deposits:   alice@California=%ld seamus@Ireland=%ld\n",
              bank.Balance(net::kCalifornia, "alice"),
              bank.Balance(net::kIreland, "seamus"));

  // A local transfer.
  bank.Transfer(net::kCalifornia, "alice", "bob", 250);
  Await(simulator,
        [&] { return bank.Balance(net::kCalifornia, "bob") == 250; });
  std::printf("transfer:   alice -> bob 250 (alice=%ld, bob=%ld)\n",
              bank.Balance(net::kCalifornia, "alice"),
              bank.Balance(net::kCalifornia, "bob"));

  // A cross-datacenter wire: debit in California, credit in Ireland,
  // carried by a transmission record with f_i+1 signatures.
  bank.Wire(net::kCalifornia, "alice", net::kIreland, "seamus", 300);
  Await(simulator,
        [&] { return bank.Balance(net::kIreland, "seamus") == 350; });
  std::printf("wire:       alice -> seamus@Ireland 300 "
              "(alice=%ld, seamus=%ld)\n",
              bank.Balance(net::kCalifornia, "alice"),
              bank.Balance(net::kIreland, "seamus"));

  // An overdraft: the verification routines on 2f_i+1 replicas refuse to
  // vote for it, so it simply never commits.
  bank.Transfer(net::kCalifornia, "bob", "alice", 99999);
  simulator.RunFor(sim::Seconds(3));
  std::printf("overdraft:  bob -> alice 99999 rejected (bob=%ld)\n",
              bank.Balance(net::kCalifornia, "bob"));

  // Replica agreement: every node of every branch holds the same books.
  bool agree = true;
  for (int i = 0; i < 4; ++i) {
    agree = agree && bank.NodeBalance(net::kCalifornia, i, "alice") == 450 &&
            bank.NodeBalance(net::kCalifornia, i, "bob") == 250 &&
            bank.NodeBalance(net::kIreland, i, "seamus") == 350;
  }
  std::printf("\n%s (%0.f simulated ms)\n",
              agree ? "OK: all replicas agree on every balance"
                    : "UNEXPECTED divergence",
              sim::ToMillis(simulator.Now()));
  return agree ? 0 : 1;
}
