"""Project-wide call graph over cppmodel FunctionDefs.

Nodes are (class, name) pairs — '' for free functions — so an overload
set is a single node whose facts are the union of every overload's body
(conservative: a taint on any overload taints the set). Edges come from
CallSite resolution:

  * `Cls::Fn(...)`            -> (Cls, Fn) when the project defines it
  * bare `Fn(...)`            -> same-class method first, then the free
                                 function — mirroring C++ name lookup
  * `recv.Fn(...)/recv->Fn()` -> the class of `recv` when `recv` is a
                                 data member with a project-defined type
                                 (method resolution through member
                                 calls); otherwise the unique project
                                 class defining `Fn`, if there is
                                 exactly one (ambiguous overload sets
                                 across classes stay unresolved — the
                                 graph degrades to silence, never to a
                                 guessed edge)

Taint queries run over the graph in both directions:

  * taint_toward(seeds): every node that can REACH a seed through any
    call chain, with a deterministic witness chain for diagnostics
    (ties broken by smallest node key, so output is byte-stable).
  * forward_closure(roots): every node reachable FROM the roots — used
    by BP007 to grow the prologue-path file set.

Cycles are handled naturally by the BFS visited sets; recursion neither
loops nor double-taints.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from cppmodel import CallSite, FileFacts, FunctionDef

Key = Tuple[str, str]  # (class or '', function name)


def key_str(key: Key) -> str:
    cls, name = key
    return f"{cls}::{name}" if cls else name


class CallGraph:
    def __init__(self, files: Sequence[FileFacts]):
        self.defs: Dict[Key, List[FunctionDef]] = {}
        self.owners: Dict[str, List[str]] = {}  # method name -> classes
        self.field_type: Dict[Tuple[str, str], str] = {}
        known_classes: Set[str] = set()

        for f in files:
            for fn in f.fn_defs:
                key = (fn.cls or "", fn.name)
                self.defs.setdefault(key, []).append(fn)
                if fn.cls:
                    known_classes.add(fn.cls)
                    owners = self.owners.setdefault(fn.name, [])
                    if fn.cls not in owners:
                        owners.append(fn.cls)
        for f in files:
            for struct in f.structs:
                for fld in struct.fields:
                    for part in fld.type_str.split():
                        if part in known_classes:
                            self.field_type[(struct.name, fld.name)] = part
                            break

        # Edges, deterministically ordered: callee keys per caller key.
        self.edges: Dict[Key, List[Key]] = {}
        self.redges: Dict[Key, List[Key]] = {}
        for key in sorted(self.defs):
            seen: Set[Key] = set()
            out: List[Key] = []
            for fn in self.defs[key]:
                for call in fn.calls:
                    for callee in self.resolve(fn, call):
                        if callee not in seen and callee != key:
                            seen.add(callee)
                            out.append(callee)
            out.sort()
            self.edges[key] = out
            for callee in out:
                self.redges.setdefault(callee, []).append(key)
        for callers in self.redges.values():
            callers.sort()

    # -- resolution --------------------------------------------------------

    def resolve(self, fn: FunctionDef, call: CallSite) -> List[Key]:
        name = call.name
        if call.qual is not None:
            if (call.qual, name) in self.defs:
                return [(call.qual, name)]
            if ("", name) in self.defs:
                return [("", name)]  # namespace-qualified free function
            return []
        if call.recv is None or call.recv == "this":
            if fn.cls and (fn.cls, name) in self.defs:
                return [(fn.cls, name)]
            if ("", name) in self.defs:
                return [("", name)]
            return []
        # Member call through a receiver: a declared data member of a
        # project class wins; otherwise accept a project-unique method.
        if fn.cls:
            ftype = self.field_type.get((fn.cls, call.recv))
            if ftype and (ftype, name) in self.defs:
                return [(ftype, name)]
        owners = self.owners.get(name, [])
        if len(owners) == 1 and (owners[0], name) in self.defs:
            return [(owners[0], name)]
        return []

    def resolve_name(self, name: str) -> List[Key]:
        """All nodes a bare name could denote (free fn + every class)."""
        out: List[Key] = []
        if ("", name) in self.defs:
            out.append(("", name))
        for cls in self.owners.get(name, []):
            out.append((cls, name))
        return sorted(out)

    # -- closures ----------------------------------------------------------

    def forward_closure(self, roots: Iterable[Key]) -> Set[Key]:
        seen: Set[Key] = set()
        queue = deque(sorted(set(r for r in roots if r in self.defs)))
        seen.update(queue)
        while queue:
            key = queue.popleft()
            for callee in self.edges.get(key, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen

    def taint_toward(self, seeds: Dict[Key, str]) \
            -> Dict[Key, Tuple[str, Tuple[Key, ...]]]:
        """For every node that can reach a seed: (seed info, witness
        chain from the node to the seed, both endpoints included).

        BFS level by level with sorted frontiers: the witness for a node
        is always the shortest chain, ties broken by the smallest next
        hop, so diagnostics are byte-identical run to run."""
        info: Dict[Key, str] = {}
        next_hop: Dict[Key, Optional[Key]] = {}
        frontier = sorted(k for k in seeds if k in self.defs)
        for k in frontier:
            info[k] = seeds[k]
            next_hop[k] = None
        while frontier:
            nxt: List[Key] = []
            for key in frontier:
                for caller in self.redges.get(key, ()):
                    if caller not in info:
                        info[caller] = info[key]
                        next_hop[caller] = key
                        nxt.append(caller)
            frontier = sorted(set(nxt))
        out: Dict[Key, Tuple[str, Tuple[Key, ...]]] = {}
        for key in info:
            chain: List[Key] = [key]
            cur = key
            while next_hop[cur] is not None:
                cur = next_hop[cur]
                chain.append(cur)
            out[key] = (info[key], tuple(chain))
        return out


def render_chain(chain: Sequence[Key]) -> str:
    return " -> ".join(key_str(k) for k in chain)
