// Transitive fixture group: bp002. No entropy token appears anywhere
// in this file — the violation exists only because JitterSeed (defined
// in jitter.cc) bottoms out in time(nullptr) two calls away. Linted
// alone, this file is clean.

long JitterSeed();

long NextBackoff(long base_ns, int attempt) {
  long ceil_ns = base_ns << attempt;
  return ceil_ns + JitterSeed() % base_ns;  // BP002 via the group only
}
