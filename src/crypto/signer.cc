#include "crypto/signer.h"

#include <algorithm>
#include <set>

#include "common/codec.h"
#include "common/metrics.h"
#include "common/runner.h"

namespace blockplane::crypto {

namespace {

/// Jobs per prologue for the batch APIs: large enough to amortize the
/// runner's per-task queue round-trip against ~2 SHA-256 compressions per
/// HMAC, small enough to spread a PBFT certificate or a daemon flight
/// across workers.
constexpr size_t kBatchChunk = 8;

}  // namespace

size_t KeyStore::VerifiedSigHash::operator()(const VerifiedSig& v) const {
  // FNV-1a over the discriminating prefix. The MAC is 32 bytes of
  // (pseudo)random data, so hashing its first 16 bytes plus the signer id
  // spreads perfectly; equality still compares the full triple, so hash
  // collisions are correctness-neutral.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    h = (h ^ x) * 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(static_cast<uint32_t>(v.signer.site)) << 32 |
      static_cast<uint32_t>(v.signer.index));
  for (int i = 0; i < 16; i += 8) {
    uint64_t word = 0;
    for (int j = 0; j < 8; ++j) {
      word |= static_cast<uint64_t>(v.mac[i + j]) << (8 * j);
    }
    mix(word);
  }
  return static_cast<size_t>(h);
}

bool KeyStore::CacheLookup(const VerifiedSig& entry) const {
  return verified_cur_.count(entry) > 0 || verified_prev_.count(entry) > 0;
}

void KeyStore::CacheInsert(VerifiedSig entry) const {
  if (verify_cache_capacity_ == 0) return;
  if (verified_cur_.size() >= std::max<size_t>(1, verify_cache_capacity_ / 2)) {
    hotpath_stats().verify_cache_evictions +=
        static_cast<int64_t>(verified_prev_.size());
    verified_prev_ = std::move(verified_cur_);
    verified_cur_.clear();
  }
  verified_cur_.insert(std::move(entry));
}

std::unique_ptr<Signer> KeyStore::RegisterNode(net::NodeId node) {
  auto it = keys_.find(node);
  if (it == keys_.end()) {
    // Deterministic per-node key material derived from a store-local seed.
    Encoder enc;
    enc.PutU64(next_key_seed_++);
    enc.PutU32(static_cast<uint32_t>(node.site));
    enc.PutU32(static_cast<uint32_t>(node.index));
    Digest key = Sha256Digest(enc.buffer());
    Bytes raw(key.begin(), key.end());
    PrecomputedHmacKey hmac(raw);
    keys_.emplace(node, KeyEntry{std::move(raw), std::move(hmac)});
  }
  return std::unique_ptr<Signer>(new Signer(this, node));
}

Digest KeyStore::SignAs(net::NodeId node, const Bytes& msg) const {
  auto it = keys_.find(node);
  BP_CHECK_MSG(it != keys_.end(), "signing for unregistered node");
  return it->second.hmac.Sign(msg);
}

bool KeyStore::Verify(const Bytes& msg, const Signature& sig) const {
  auto it = keys_.find(sig.signer);
  if (it == keys_.end()) return false;
  if (verify_cache_capacity_ > 0) {
    VerifiedSig probe{sig.signer, sig.mac, msg};
    if (CacheLookup(probe)) {
      hotpath_stats().sig_cache_hits++;
      return true;
    }
    bool ok = it->second.hmac.Verify(msg, sig.mac);
    hotpath_stats().sig_cache_misses++;
    if (ok) CacheInsert(std::move(probe));
    return ok;
  }
  return it->second.hmac.Verify(msg, sig.mac);
}

const PrecomputedHmacKey& KeyStore::HmacFor(net::NodeId node) const {
  auto it = keys_.find(node);
  BP_CHECK_MSG(it != keys_.end(), "key lookup for unregistered node");
  return it->second.hmac;
}

bool KeyStore::VerifyDetached(const Bytes& msg, const Signature& sig) const {
  auto it = keys_.find(sig.signer);
  if (it == keys_.end()) return false;
  return it->second.hmac.VerifyDetached(msg, sig.mac);
}

void KeyStore::VerifyBatch(std::vector<VerifyJob>* jobs,
                           common::Runner* runner) const {
  if (runner == nullptr) runner = common::DefaultRunner();
  if (runner->serial()) {
    // Seed-identical serial path: cache lookups, hits/misses counters, and
    // cache seeding behave exactly as per-message Verify() calls.
    for (VerifyJob& job : *jobs) job.ok = Verify(job.msg, job.sig);
    return;
  }
  std::vector<common::Runner::BatchTask> tasks;
  tasks.reserve((jobs->size() + kBatchChunk - 1) / kBatchChunk);
  for (size_t start = 0; start < jobs->size(); start += kBatchChunk) {
    const size_t end = std::min(jobs->size(), start + kBatchChunk);
    // Pure fork stage: recompute every MAC in this chunk. Chunks write
    // disjoint job slots, so concurrent tasks never alias.
    tasks.push_back([this, jobs, start, end] {
      for (size_t i = start; i < end; ++i) {
        VerifyJob& job = (*jobs)[i];
        job.ok = VerifyDetached(job.msg, job.sig);
      }
    });
  }
  runner->RunBatch(std::move(tasks));
  // Join stage, on the calling thread in job order: the accounting and
  // cache seeding the serial path would have produced for cache misses.
  hotpath_stats().hmac_precomputed_ops += static_cast<int64_t>(jobs->size());
  if (verify_cache_capacity_ == 0) return;
  for (const VerifyJob& job : *jobs) {
    hotpath_stats().sig_cache_misses++;
    if (job.ok) {
      CacheInsert(VerifiedSig{job.sig.signer, job.sig.mac, job.msg});
    }
  }
}

void Signer::SignBatch(std::vector<SignJob>* jobs,
                       common::Runner* runner) const {
  if (runner == nullptr) runner = common::DefaultRunner();
  if (runner->serial()) {
    for (SignJob& job : *jobs) job.sig = Sign(job.msg);
    return;
  }
  const PrecomputedHmacKey& key = store_->HmacFor(node_);
  std::vector<common::Runner::BatchTask> tasks;
  tasks.reserve((jobs->size() + kBatchChunk - 1) / kBatchChunk);
  for (size_t start = 0; start < jobs->size(); start += kBatchChunk) {
    const size_t end = std::min(jobs->size(), start + kBatchChunk);
    tasks.push_back([this, &key, jobs, start, end] {
      for (size_t i = start; i < end; ++i) {
        SignJob& job = (*jobs)[i];
        job.sig = Signature{node_, key.SignDetached(job.msg)};
      }
    });
  }
  runner->RunBatch(std::move(tasks));
  hotpath_stats().hmac_precomputed_ops += static_cast<int64_t>(jobs->size());
}

bool KeyStore::VerifyProof(const Bytes& msg,
                           const std::vector<Signature>& proof,
                           net::SiteId site, int threshold) const {
  std::set<int32_t> seen_indices;
  int valid = 0;
  for (const Signature& sig : proof) {
    if (sig.signer.site != site) continue;
    // A repeated signer index within the target site rejects the whole
    // proof, valid MAC or not: honest collection paths dedup by signer, so
    // a duplicate is a forgery attempt at double-counting one signature.
    // (Other sites' indices may legitimately collide — geo proofs carry
    // every mirror site's acks in one vector — hence the site filter first.)
    if (!seen_indices.insert(sig.signer.index).second) return false;
    qc_stats().proof_sig_verifies++;
    if (Verify(msg, sig)) ++valid;
  }
  return valid >= threshold;
}

void EncodeSignature(Encoder* enc, const Signature& sig) {
  enc->PutU32(static_cast<uint32_t>(sig.signer.site));
  enc->PutU32(static_cast<uint32_t>(sig.signer.index));
  enc->PutRaw(sig.mac.data(), sig.mac.size());
}

Status DecodeSignature(Decoder* dec, Signature* out) {
  uint32_t site = 0;
  uint32_t index = 0;
  BP_RETURN_NOT_OK(dec->GetU32(&site));
  BP_RETURN_NOT_OK(dec->GetU32(&index));
  out->signer.site = static_cast<int32_t>(site);
  out->signer.index = static_cast<int32_t>(index);
  for (auto& byte : out->mac) {
    BP_RETURN_NOT_OK(dec->GetU8(&byte));
  }
  return Status::OK();
}

void EncodeProof(Encoder* enc, const std::vector<Signature>& proof) {
  enc->PutVarint(proof.size());
  for (const Signature& sig : proof) EncodeSignature(enc, sig);
}

Status DecodeProof(Decoder* dec, std::vector<Signature>* out) {
  uint64_t n = 0;
  BP_RETURN_NOT_OK(dec->GetVarint(&n));
  if (n > 4096) return Status::Corruption("oversized proof");
  // Every encoded signature is multiple bytes, so a count beyond the
  // remaining payload is corrupt — and must be rejected before reserve()
  // turns an attacker-chosen varint into an allocation (BP011).
  if (n > dec->remaining()) return Status::Corruption("truncated proof");
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Signature sig;
    BP_RETURN_NOT_OK(DecodeSignature(dec, &sig));
    out->push_back(sig);
  }
  return Status::OK();
}

}  // namespace blockplane::crypto
