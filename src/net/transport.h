// ReliableTransport: a TCP-like perfect-link layer on top of the lossy
// Network.
//
// The paper assumes "Blockplane utilizes existing approaches to detect data
// corruption and reordering such as the TCP protocol". This module is that
// approach: per-peer sequence numbers, CRC-32 frame checksums, positive
// acks, timeout-based retransmission with exponential backoff, duplicate
// suppression, and in-order delivery. With it, drops / corruption /
// duplication injected by the Network are masked from the protocol above.
#ifndef BLOCKPLANE_NET_TRANSPORT_H_
#define BLOCKPLANE_NET_TRANSPORT_H_

#include <functional>
#include <map>
#include <unordered_map>

#include "common/codec.h"
#include "net/network.h"

namespace blockplane::net {

struct TransportOptions {
  /// Base retransmission timeout; actual RTO adds the peer RTT.
  sim::SimTime base_rto = sim::Milliseconds(10);
  /// Backoff multiplier applied per retry.
  double backoff = 2.0;
  sim::SimTime max_rto = sim::Seconds(2);
  /// After this many retries the frame is abandoned (peer presumed dead).
  int max_retries = 20;
};

class ReliableTransport : public Host {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Registers `self` with the network. `handler` receives application
  /// messages exactly once each, in per-peer FIFO order.
  ReliableTransport(Network* network, NodeId self, Handler handler,
                    TransportOptions options = {});
  ~ReliableTransport() override;
  BP_DISALLOW_COPY_AND_ASSIGN(ReliableTransport);

  /// Queues an application message for reliable in-order delivery.
  void Send(NodeId dst, MessageType type, Bytes payload);

  void HandleMessage(const Message& raw) override;

  NodeId self() const { return self_; }
  int64_t retransmissions() const { return retransmissions_; }
  int64_t discarded_corrupt() const { return discarded_corrupt_; }

 private:
  struct Pending {
    /// Encoded data frame, shared with every (re)transmission in flight:
    /// retransmitting is a refcount bump, not a buffer copy.
    PayloadPtr frame;
    sim::EventId timer = sim::kInvalidEventId;
    int retries = 0;
  };
  struct PeerRecv {
    uint64_t next_expected = 1;
    // Out-of-order frames buffered until the gap fills. The payload is
    // shared with the decode buffer, not copied.
    std::map<uint64_t, std::pair<MessageType, PayloadPtr>> pending;
  };
  struct PeerSend {
    uint64_t next_seq = 1;
    std::unordered_map<uint64_t, Pending> in_flight;
  };

  void TransmitFrame(NodeId dst, uint64_t seq);
  void ArmTimer(NodeId dst, uint64_t seq);
  void HandleDataFrame(const Message& raw);
  void HandleAckFrame(const Message& raw);
  sim::SimTime RtoFor(NodeId dst, int retries) const;

  Network* network_;
  NodeId self_;
  Handler handler_;
  TransportOptions options_;

  std::unordered_map<NodeId, PeerSend, NodeIdHash> send_state_;
  std::unordered_map<NodeId, PeerRecv, NodeIdHash> recv_state_;
  int64_t retransmissions_ = 0;
  int64_t discarded_corrupt_ = 0;
};

}  // namespace blockplane::net

#endif  // BLOCKPLANE_NET_TRANSPORT_H_
