// bplint:wire-coverage — every field below must appear in Encode,
// Decode, and the canonical (signed) body (BP003).
// PBFT wire messages and their binary encodings.
//
// Every control message is signed over a canonical body that includes a
// message-type tag (so a prepare cannot be replayed as a commit). The
// pre-prepare's signature covers the header + payload digest, not the
// payload itself — payload integrity comes from the digest, exactly as in
// Castro & Liskov's protocol.
#ifndef BLOCKPLANE_PBFT_MESSAGE_H_
#define BLOCKPLANE_PBFT_MESSAGE_H_

#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "crypto/signer.h"
#include "net/message.h"

namespace blockplane::pbft {

/// Network message-type tags for the PBFT module.
enum PbftMessageType : net::MessageType {
  kRequest = 101,
  kPrePrepare = 102,
  kPrepare = 103,
  kCommit = 104,
  kReply = 105,
  kCheckpoint = 106,
  kViewChange = 107,
  kNewView = 108,
  kFetchCommitted = 109,
  kCommittedEntry = 110,
  kFetchSnapshot = 111,
  kSnapshot = 112,
};

using crypto::Digest;
using crypto::Signature;

/// Packs a client NodeId into a routing token carried inside requests.
uint64_t ClientToken(net::NodeId id);
net::NodeId ClientFromToken(uint64_t token);

/// Payload digest: SHA-256 when crypto_hash, otherwise a fast FNV-1a-based
/// 128-bit fingerprint (bench mode; see PbftConfig::hash_payloads).
Digest ComputeDigest(const Bytes& value, bool crypto_hash);

struct RequestMsg {
  uint64_t client_token = 0;
  uint64_t req_id = 0;
  Bytes value;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, RequestMsg* out);
};

struct PrePrepareMsg {
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest{};
  uint64_t client_token = 0;
  uint64_t req_id = 0;
  // bplint:allow(BP003) integrity bound via the digest field, as in PBFT
  Bytes value;
  Signature sig;  // over the canonical header

  /// Canonical signed header (type tag, view, seq, digest, client, req_id).
  Bytes CanonicalHeader() const;
  Bytes Encode() const;
  static Status Decode(const Bytes& buf, PrePrepareMsg* out);
};

/// Prepare and commit share a shape; the type tag in the canonical body
/// keeps their signatures distinct.
struct VoteMsg {
  // kPrepare or kCommit.
  // bplint:allow(BP003) type rides the net::Message envelope; Decode takes it
  PbftMessageType type = kPrepare;
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest{};
  Signature sig;

  Bytes CanonicalBody() const;
  Bytes Encode() const;
  static Status Decode(PbftMessageType type, const Bytes& buf, VoteMsg* out);
};

struct ReplyMsg {
  uint64_t view = 0;
  uint64_t req_id = 0;
  uint64_t seq = 0;  // sequence number assigned to the request
  int32_t replica = -1;
  /// The replica's rolling state digest after executing `seq`. Honest
  /// replicas agree on it; a client therefore accepts a result only once
  /// f+1 replies match on (seq, result_digest) — f+1 replies that agree on
  /// seq alone could still hide up to f divergent (lying) states.
  Digest result_digest{};

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, ReplyMsg* out);
};

struct CheckpointMsg {
  uint64_t seq = 0;
  Digest state_digest{};
  Signature sig;

  Bytes CanonicalBody() const;
  Bytes Encode() const;
  static Status Decode(const Bytes& buf, CheckpointMsg* out);
};

/// A prepared certificate carried in view changes: the instance plus its
/// prepare-phase evidence — the leader's pre-prepare signature and 2f
/// prepare signatures, i.e. 2f+1 distinct endorsers, so any replica can
/// verify a value really prepared in `view`.
struct PreparedProof {
  uint64_t view = 0;  // view in which it prepared
  uint64_t seq = 0;
  Digest digest{};
  uint64_t client_token = 0;
  uint64_t req_id = 0;
  Bytes value;
  Signature preprepare_sig;             // over PrePrepareMsg canonical header
  std::vector<Signature> prepare_sigs;  // over VoteMsg canonical body

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, PreparedProof* out);
};

/// State transfer (§VI-B of the paper: a recovering replica "reads the
/// state of the Local Log from other nodes to catch up"). A lagging replica
/// broadcasts kFetchCommitted{from_seq}; peers answer with committed
/// entries plus their 2f+1 commit-signature certificates.
struct FetchCommittedMsg {
  uint64_t from_seq = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, FetchCommittedMsg* out);
};

struct CommittedEntryMsg {
  uint64_t seq = 0;
  uint64_t view = 0;  // view whose commit votes form the certificate
  Digest digest{};
  uint64_t client_token = 0;
  uint64_t req_id = 0;
  Bytes value;
  std::vector<Signature> commit_sigs;  // over VoteMsg(kCommit) canonical body

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, CommittedEntryMsg* out);
};

/// Snapshot transfer for nodes that fell behind the stable-checkpoint
/// garbage-collection window. The certificate — 2f+1 checkpoint signatures
/// over (seq, state digest) — proves the digest; the application layer then
/// fetches the log contents from any single peer and verifies them against
/// the certified digest chain.
struct SnapshotMsg {
  uint64_t seq = 0;
  Digest state_digest{};
  std::vector<Signature> cert;  // over CheckpointMsg canonical body

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, SnapshotMsg* out);
};

struct ViewChangeMsg {
  uint64_t new_view = 0;
  uint64_t last_stable = 0;
  // bplint:allow(BP003) each PreparedProof carries its own 2f+1 signatures
  std::vector<PreparedProof> prepared;
  Signature sig;  // over (tag, new_view, last_stable)

  Bytes CanonicalBody() const;
  Bytes Encode() const;
  static Status Decode(const Bytes& buf, ViewChangeMsg* out);
};

/// The new leader's NEW-VIEW carries the full set of 2f+1 signed
/// view-change messages. Every replica recomputes the carried-over
/// proposals from that set deterministically, so a byzantine new leader
/// cannot smuggle in or suppress a prepared value.
struct NewViewMsg {
  uint64_t view = 0;
  std::vector<Bytes> view_changes;  // encoded, individually signed
  Signature sig;                    // over (tag, view, digest(view_changes))

  Bytes CanonicalBody() const;
  Bytes Encode() const;
  static Status Decode(const Bytes& buf, NewViewMsg* out);
};

}  // namespace blockplane::pbft

#endif  // BLOCKPLANE_PBFT_MESSAGE_H_
