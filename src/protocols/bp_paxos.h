// Blockplane-paxos (§VI-E, Algorithm 3): the paxos protocol augmented with
// Blockplane's log-commit and communication interfaces, turning the benign
// protocol byzantine fault-tolerant.
//
// Every state change is log-committed before any message it causes is sent
// (Definition 1), and all cross-participant messages travel through
// Blockplane's send/receive. A verification routine keeps a byzantine node
// from log-committing "value committed" without the unit having actually
// received a majority of accept votes.
#ifndef BLOCKPLANE_PROTOCOLS_BP_PAXOS_H_
#define BLOCKPLANE_PROTOCOLS_BP_PAXOS_H_

#include <functional>
#include <map>
#include <memory>

#include "core/deployment.h"

namespace blockplane::protocols {

class BpPaxos {
 public:
  static constexpr uint64_t kVerifyDecision = 21;

  /// Installs the protocol at every participant of `deployment`.
  explicit BpPaxos(core::Deployment* deployment);
  BP_DISALLOW_COPY_AND_ASSIGN(BpPaxos);

  /// Algorithm 3's LeaderElection routine at `site`.
  void LeaderElection(net::SiteId site, std::function<void(bool won)> done);

  /// Algorithm 3's Replication routine at `site` (must be leader).
  void Replicate(net::SiteId site, Bytes value,
                 std::function<void(bool ok)> done);

  bool IsLeader(net::SiteId site) const { return sites_.at(site)->l; }
  /// Values this site knows to be decided, by slot.
  const std::map<uint64_t, Bytes>& decided(net::SiteId site) const {
    return sites_.at(site)->decided;
  }

 private:
  struct SiteState {
    net::SiteId site;
    // Algorithm 3's protocol variables.
    uint64_t r = 0;       // proposal number, initially unique per site
    bool l = false;       // am I a leader
    Bytes max_val;        // maximum accepted value (from promises)
    uint64_t max_val_ballot = 0;

    // Acceptor state.
    uint64_t promised = 0;
    std::map<uint64_t, std::pair<uint64_t, Bytes>> accepted;  // slot->(b,v)

    // In-flight routines.
    int promise_votes = 0;
    int promise_replies = 0;
    std::function<void(bool)> election_done;
    uint64_t replicating_slot = 0;
    int accept_votes = 0;
    int accept_replies = 0;
    std::function<void(bool)> replicate_done;

    uint64_t next_slot = 1;
    std::map<uint64_t, Bytes> decided;
  };

  /// Per-node verification state: accept votes received per slot.
  struct NodeState {
    std::map<uint64_t, int> accept_oks;
  };

  void InstallAt(net::SiteId site);
  void OnMessage(SiteState* state, net::SiteId src, const Bytes& payload);
  void BroadcastToOthers(net::SiteId site, const Bytes& payload,
                         uint64_t routine_id);
  int Majority() const { return deployment_->num_sites() / 2 + 1; }

  core::Deployment* deployment_;
  std::map<net::SiteId, std::unique_ptr<SiteState>> sites_;
};

}  // namespace blockplane::protocols

#endif  // BLOCKPLANE_PROTOCOLS_BP_PAXOS_H_
