// Figure 5: commitment latency with geo-correlated fault tolerance, per
// datacenter, for f_g = 1, 2, 3 (f_i = 1 throughout).
//
// Paper reference points: C(1)≈23 ms, +176% from C(1) to C(2); V(1)→V(2)
// only +13%; at f_g=2 all sites land between 64-80 ms except Ireland
// (~135 ms); at f_g=3 everything exceeds 135 ms except Virginia (~80 ms).
#include <cstdio>
#include <string>
#include <string_view>

#include "bench_util.h"
#include "common/trace.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

double RunOne(net::SiteId site, int fg) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = fg;
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 16;
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              net_options);

  // The paper's workload: 1000-byte batches of arbitrary commands.
  Bytes batch = bench::MakeBatch(1);
  Histogram latency_ms;
  constexpr int kWarmup = 5;
  constexpr int kBatches = 50;
  for (int i = 0; i < kWarmup + kBatches; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(site)->LogCommit(Bytes(batch), 0,
                                            [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

// With --trace=FILE: re-runs one representative commit (California, f_g=1)
// with the causal tracer enabled, prints the latency breakdown, and writes
// the Chrome trace_event JSON to FILE (open in chrome://tracing/Perfetto).
void RunTraced(const std::string& path) {
  tracer().Clear();
  tracer().Enable();
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = 1;
  options.sign_messages = false;
  options.hash_payloads = false;
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              net_options);
  bool done = false;
  deployment.participant(net::kCalifornia)
      ->LogCommit(bench::MakeBatch(1), 0, [&](uint64_t) { done = true; });
  simulator.RunUntilCondition([&] { return done; },
                              simulator.Now() + sim::Seconds(30));

  const TraceId trace = 1;  // first (and only) traced operation
  std::printf("\ntraced commit (California, f_g=1) breakdown:\n");
  for (const auto& c : tracer().BreakdownFor(trace)) {
    std::printf("  %-16s -> %-16s %8.3f ms\n", c.from.c_str(), c.to.c_str(),
                static_cast<double>(c.dur) / 1e6);
  }
  std::printf("  %-36s %8.3f ms\n", "end-to-end",
              static_cast<double>(tracer().EndToEndFor(trace)) / 1e6);
  if (tracer().WriteChromeTrace(path)) {
    std::printf("chrome trace written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write chrome trace to %s\n", path.c_str());
  }
  tracer().Disable();
  tracer().Clear();
}

}  // namespace
}  // namespace blockplane

int main(int argc, char** argv) {
  using namespace blockplane;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = std::string(arg.substr(8));
    }
  }
  bench::PrintHeader(
      "Figure 5: commitment latency with geo-correlated fault tolerance",
      "C(1)~23ms; C(1)->C(2) +176%; V(1)->V(2) +13%; fg=2: 64-80ms except "
      "I~135; fg=3: >135ms except V~80");
  net::Topology topo = net::Topology::Aws4();
  std::printf("%12s %8s %14s\n", "scenario", "f_g", "latency (ms)");
  for (int site = 0; site < topo.num_sites(); ++site) {
    for (int fg = 1; fg <= 3; ++fg) {
      double ms = RunOne(site, fg);
      std::printf("%11.1s(%d) %8d %14.1f\n", topo.site_name(site).c_str(),
                  fg, fg, ms);
    }
  }
  if (!trace_path.empty()) RunTraced(trace_path);
  return 0;
}
