// Real-clock benchmark for the Runner seam (DESIGN.md §12): drives the
// daemon inbound pipeline in miniature — decode a batch of transmission
// records, verify their f_i+1 attestation MACs, sign acknowledgements —
// through InlineRunner and ThreadPoolRunner at 1/2/4/8 workers, and
// writes per-configuration throughput plus scaling efficiency to
// BENCH_parallel.json.
//
// The verify-once cache is disabled so every configuration performs the
// same MAC work; before timing, one pass per configuration is checked
// element-for-element against the inline results (decode outcomes,
// verify verdicts, signatures).
//
// The >=3x @ 4 workers acceptance gate only makes sense with real cores
// to scale onto: it is enforced when std::thread::hardware_concurrency()
// >= 4 and otherwise recorded as skipped (the JSON always carries the
// core count, so a reader can tell a 1-core container run from a failed
// scaling run). Deliberately not google-benchmark: the output contract
// is a small stable JSON document consumed by CI.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/runner.h"
#include "core/record.h"
#include "core/wire.h"
#include "crypto/signer.h"

namespace blockplane {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// f_i = 1 at the attesting site: records carry f_i+1 = 2 signatures.
constexpr int kAttestors = 2;

struct Corpus {
  std::vector<Bytes> encoded;                    // wire form, decode input
  std::vector<Bytes> attest_canonicals;          // one per record
  std::vector<crypto::Signature> attest_sigs;    // kAttestors per record
  std::vector<Bytes> ack_canonicals;             // sign input, one per record
};

Corpus BuildCorpus(crypto::KeyStore* keys, size_t records) {
  Corpus corpus;
  std::vector<std::unique_ptr<crypto::Signer>> signers;
  for (int i = 0; i < kAttestors; ++i) {
    signers.push_back(keys->RegisterNode({0, i}));
  }
  for (size_t r = 0; r < records; ++r) {
    core::TransmissionRecord record;
    record.src_site = 0;
    record.dest_site = 1;
    record.src_log_pos = r + 1;
    record.prev_src_log_pos = r;
    record.routine_id = 0;
    record.payload = Bytes(512, static_cast<uint8_t>(r * 37 + 11));
    record.geo_pos = r + 1;
    Bytes canonical = core::AttestCanonical(
        core::AttestPurpose::kTransmission, record.src_site,
        record.src_log_pos, record.ContentDigest());
    for (auto& signer : signers) {
      record.sigs.push_back(signer->Sign(canonical));
      corpus.attest_sigs.push_back(record.sigs.back());
    }
    corpus.attest_canonicals.push_back(canonical);
    corpus.ack_canonicals.push_back(core::AttestCanonical(
        core::AttestPurpose::kTransmission, record.dest_site,
        record.src_log_pos, record.ContentDigest()));
    corpus.encoded.push_back(record.Encode());
  }
  return corpus;
}

/// Everything one pipeline pass computes; compared across configurations.
struct PassResult {
  std::vector<bool> decode_ok;
  std::vector<uint64_t> decoded_positions;
  std::vector<bool> verify_ok;
  std::vector<crypto::Signature> ack_sigs;
};

/// One closed-loop pass: decode every record, verify every attestation,
/// sign every acknowledgement — all through `runner`'s batch seam.
PassResult RunPass(const Corpus& corpus, const crypto::KeyStore& keys,
                   const crypto::Signer& acker, common::Runner* runner) {
  PassResult out;

  std::vector<core::TransmissionDecodeJob> decode_jobs(corpus.encoded.size());
  for (size_t i = 0; i < corpus.encoded.size(); ++i) {
    decode_jobs[i].buf = corpus.encoded[i];
  }
  core::DecodeTransmissionBatch(&decode_jobs, runner);
  for (const auto& job : decode_jobs) {
    out.decode_ok.push_back(job.ok);
    out.decoded_positions.push_back(job.record.src_log_pos);
  }

  std::vector<crypto::VerifyJob> verify_jobs(corpus.attest_sigs.size());
  for (size_t i = 0; i < corpus.attest_sigs.size(); ++i) {
    verify_jobs[i].msg = corpus.attest_canonicals[i / kAttestors];
    verify_jobs[i].sig = corpus.attest_sigs[i];
  }
  keys.VerifyBatch(&verify_jobs, runner);
  for (const auto& job : verify_jobs) out.verify_ok.push_back(job.ok);

  std::vector<crypto::SignJob> sign_jobs(corpus.ack_canonicals.size());
  for (size_t i = 0; i < corpus.ack_canonicals.size(); ++i) {
    sign_jobs[i].msg = corpus.ack_canonicals[i];
  }
  acker.SignBatch(&sign_jobs, runner);
  for (const auto& job : sign_jobs) out.ack_sigs.push_back(job.sig);

  return out;
}

bool SameResult(const PassResult& a, const PassResult& b) {
  return a.decode_ok == b.decode_ok &&
         a.decoded_positions == b.decoded_positions &&
         a.verify_ok == b.verify_ok && a.ack_sigs == b.ack_sigs;
}

struct ConfigResult {
  std::string name;
  int workers = 0;
  double ops_per_sec = 0;
  double speedup_vs_inline = 1.0;
  double efficiency_per_worker = 1.0;
  bool equivalent = false;
};

/// Times repeated passes until `min_seconds` of wall clock has elapsed
/// (at least one pass), returning records processed per second.
double MeasureOpsPerSec(const Corpus& corpus, const crypto::KeyStore& keys,
                        const crypto::Signer& acker, common::Runner* runner,
                        double min_seconds) {
  size_t passes = 0;
  auto start = Clock::now();
  double elapsed = 0;
  do {
    PassResult result = RunPass(corpus, keys, acker, runner);
    if (result.ack_sigs.empty()) std::fprintf(stderr, "?");  // defeat DCE
    ++passes;
    elapsed = SecondsBetween(start, Clock::now());
  } while (elapsed < min_seconds);
  return static_cast<double>(passes * corpus.encoded.size()) / elapsed;
}

}  // namespace
}  // namespace blockplane

int main(int argc, char** argv) {
  using namespace blockplane;

  bool smoke = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  const size_t kRecords = smoke ? 64 : 512;
  const double kMinSeconds = smoke ? 0.05 : 1.0;
  const unsigned cores = std::thread::hardware_concurrency();

  crypto::KeyStore keys;
  // Every configuration must do the same MAC work: no verify-once cache.
  keys.set_verify_cache_capacity(0);
  Corpus corpus = BuildCorpus(&keys, kRecords);
  auto acker = keys.RegisterNode({1, 0});

  common::InlineRunner inline_runner;
  PassResult reference = RunPass(corpus, keys, *acker, &inline_runner);
  // The corpus is self-consistent: every decode and verify must succeed.
  for (bool ok : reference.decode_ok) {
    if (!ok) {
      std::fprintf(stderr, "corpus decode failed — bench invalid\n");
      return 1;
    }
  }
  for (bool ok : reference.verify_ok) {
    if (!ok) {
      std::fprintf(stderr, "corpus verify failed — bench invalid\n");
      return 1;
    }
  }

  std::vector<ConfigResult> results;
  {
    ConfigResult r;
    r.name = "inline";
    r.workers = 0;
    r.equivalent = true;
    r.ops_per_sec =
        MeasureOpsPerSec(corpus, keys, *acker, &inline_runner, kMinSeconds);
    results.push_back(r);
  }
  const double inline_ops = results[0].ops_per_sec;

  for (int workers : {1, 2, 4, 8}) {
    common::ThreadPoolRunner pool(
        {workers, /*queue_capacity=*/256, /*spin=*/false});
    ConfigResult r;
    r.name = "threadpool_w" + std::to_string(workers);
    r.workers = workers;
    r.equivalent = SameResult(RunPass(corpus, keys, *acker, &pool), reference);
    r.ops_per_sec = MeasureOpsPerSec(corpus, keys, *acker, &pool, kMinSeconds);
    r.speedup_vs_inline = r.ops_per_sec / inline_ops;
    r.efficiency_per_worker = r.speedup_vs_inline / workers;
    results.push_back(r);
  }

  std::printf("parallel runtime (%zu records/pass, %d sigs/record, "
              "%u hardware threads):\n",
              kRecords, kAttestors, cores);
  for (const ConfigResult& r : results) {
    std::printf("  %-14s : %12.0f records/s  (%.2fx, %.2f/worker)%s\n",
                r.name.c_str(), r.ops_per_sec, r.speedup_vs_inline,
                r.efficiency_per_worker, r.equivalent ? "" : "  MISMATCH");
  }

  double speedup_at_4 = 0;
  bool all_equivalent = true;
  for (const ConfigResult& r : results) {
    if (r.workers == 4) speedup_at_4 = r.speedup_vs_inline;
    all_equivalent = all_equivalent && r.equivalent;
  }
  // The scaling gate needs real cores; a 1-core container can only record.
  const bool gate_enforced = cores >= 4;
  const bool gate_met = speedup_at_4 >= 3.0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open --out path \"%s\"\n", out_path.c_str());
    return 2;
  }
  out << "{\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"records_per_pass\": " << kRecords << ",\n"
      << "  \"sigs_per_record\": " << kAttestors << ",\n"
      << "  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"workers\": " << r.workers << ",\n"
        << "      \"records_per_sec\": " << r.ops_per_sec << ",\n"
        << "      \"speedup_vs_inline\": " << r.speedup_vs_inline << ",\n"
        << "      \"efficiency_per_worker\": " << r.efficiency_per_worker
        << ",\n"
        << "      \"equivalent_to_inline\": "
        << (r.equivalent ? "true" : "false") << "\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"gate\": {\n"
      << "    \"required_speedup_at_4_workers\": 3.0,\n"
      << "    \"measured_speedup_at_4_workers\": " << speedup_at_4 << ",\n"
      << "    \"enforced\": " << (gate_enforced ? "true" : "false") << ",\n"
      << "    \"met\": " << (gate_met ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_equivalent) {
    std::fprintf(stderr, "threaded results diverge from inline — FAIL\n");
    return 1;
  }
  if (gate_enforced && !gate_met) {
    std::fprintf(stderr,
                 "scaling gate NOT met: %.2fx at 4 workers (need 3.0x, "
                 "%u cores)\n",
                 speedup_at_4, cores);
    return 1;
  }
  if (!gate_enforced) {
    std::printf("scaling gate skipped: %u hardware threads (< 4); "
                "recorded %.2fx at 4 workers\n",
                cores, speedup_at_4);
  }
  return 0;
}
