// Tests for the geo-sharded byzantized key-value store.
#include "protocols/kv_store.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace blockplane::protocols {
namespace {

using net::Topology;
using sim::Seconds;

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest()
      : simulator_(61),
        deployment_(&simulator_, Topology::Aws4(), {}),
        kv_(&deployment_) {}

  void PutAndWait(net::SiteId site, const std::string& key,
                  const std::string& value) {
    bool done = false;
    kv_.Put(site, key, value, [&](Status) { done = true; });
    ASSERT_TRUE(
        simulator_.RunUntilCondition([&] { return done; }, Seconds(60)));
  }

  sim::Simulator simulator_;
  core::Deployment deployment_;
  KvStore kv_;
};

TEST_F(KvStoreTest, LocalShardPutGet) {
  std::string key = "k";
  // Find a key the issuing site owns, so the write is a plain log-commit.
  net::SiteId site = kv_.OwnerOf(key);
  PutAndWait(site, key, "v1");
  std::string value;
  ASSERT_TRUE(kv_.Get(key, &value));
  EXPECT_EQ(value, "v1");
  PutAndWait(site, key, "v2");
  ASSERT_TRUE(kv_.Get(key, &value));
  EXPECT_EQ(value, "v2");
}

TEST_F(KvStoreTest, RemoteShardPutForwardsToOwner) {
  std::string key = "remote-key";
  net::SiteId owner = kv_.OwnerOf(key);
  net::SiteId issuer = (owner + 1) % 4;  // definitely not the owner
  bool done = false;
  kv_.Put(issuer, key, "routed", [&](Status) { done = true; });
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] {
        std::string value;
        return kv_.Get(key, &value) && value == "routed";
      },
      Seconds(120)));
  EXPECT_TRUE(done);
  // Every node of the owner's unit applied the write identically.
  simulator_.RunFor(Seconds(2));
  for (int i = 0; i < 4; ++i) {
    std::string value;
    ASSERT_TRUE(kv_.NodeGet(owner, i, key, &value)) << "node " << i;
    EXPECT_EQ(value, "routed");
  }
}

TEST_F(KvStoreTest, DeleteRemovesKey) {
  std::string key = "doomed";
  net::SiteId owner = kv_.OwnerOf(key);
  PutAndWait(owner, key, "x");
  bool done = false;
  kv_.Delete(owner, key, [&](Status) { done = true; });
  ASSERT_TRUE(
      simulator_.RunUntilCondition([&] { return done; }, Seconds(60)));
  std::string value;
  EXPECT_FALSE(kv_.Get(key, &value));
  simulator_.RunFor(Seconds(1));
  EXPECT_FALSE(kv_.NodeGet(owner, 0, key, &value));
}

TEST_F(KvStoreTest, ByzantineNodeCannotWriteForeignShard) {
  // A byzantine node at a non-owner site forges a local commit for a key
  // its participant does not own: shard-ownership verification rejects it.
  std::string key = "stolen-key";
  net::SiteId owner = kv_.OwnerOf(key);
  net::SiteId thief = (owner + 1) % 4;

  core::LogRecord forged;
  forged.type = core::RecordType::kLogCommit;
  forged.routine_id = KvStore::kVerifyWrite;
  Encoder enc;
  enc.PutU8(1);  // kPut
  enc.PutString(key);
  enc.PutString("stolen value");
  forged.payload = enc.Take();
  deployment_.node(thief, 3)->SubmitLocalCommit(forged);

  simulator_.RunFor(Seconds(5));
  std::string value;
  EXPECT_FALSE(kv_.Get(key, &value));
  EXPECT_EQ(deployment_.node(thief, 0)->log_size(), 0u);
}

TEST_F(KvStoreTest, MixedWorkloadAcrossAllSites) {
  constexpr int kKeys = 12;
  int completed = 0;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "key-" + std::to_string(i);
    // Issue each write from a rotating site; routing sorts out ownership.
    kv_.Put(i % 4, key, "value-" + std::to_string(i),
            [&](Status) { ++completed; });
  }
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] {
        if (completed < kKeys) return false;
        for (int i = 0; i < kKeys; ++i) {
          std::string value;
          if (!kv_.Get("key-" + std::to_string(i), &value) ||
              value != "value-" + std::to_string(i)) {
            return false;
          }
        }
        return true;
      },
      Seconds(300)));
}

TEST_F(KvStoreTest, ShardAssignmentIsDeterministicAndSpread) {
  std::map<net::SiteId, int> histogram;
  for (int i = 0; i < 200; ++i) {
    std::string key = "spread-" + std::to_string(i);
    net::SiteId owner = kv_.OwnerOf(key);
    EXPECT_EQ(owner, kv_.OwnerOf(key));  // deterministic
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    histogram[owner]++;
  }
  // All four shards get a reasonable share of 200 hashed keys.
  for (int site = 0; site < 4; ++site) {
    EXPECT_GT(histogram[site], 20) << "site " << site;
  }
}

}  // namespace
}  // namespace blockplane::protocols
