// Fixture: BP008 — a discarded Status/StatusOr is a silent failure.
// The return-type index is project-wide (definitions AND prototypes),
// so a statement-position call to any Status-returning function is
// caught even when the definition lives in another translation unit.

struct Status {
  static Status OK();
  bool ok() const;
};

Status LoadState(int epoch);  // prototype only: defined elsewhere

struct Journal {
  Status Append(int record);
};

void Recover(Journal* journal) {
  LoadState(7);        // forbidden: Status dropped on the floor
  journal->Append(1);  // forbidden: method result dropped too
}
