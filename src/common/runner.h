// The ordered parallel-runtime seam (DESIGN.md §12).
//
// Every hot message path is split into a *prologue* — pure computation over
// immutable inputs (payload decode, HMAC generation/verification, digest
// checks) — and an *epilogue* — everything that touches protocol state.
// A Runner executes prologues wherever it likes (inline, or fanned out to
// worker threads), but retires epilogues strictly in submission order, on
// the thread that submits and polls. That single invariant is what lets
// the deterministic simulator and the threaded runtime share one code path:
//
//   * InlineRunner runs prologue + epilogue synchronously inside
//     RunPrologue. Submission order == execution order == today's serial
//     behavior, bit for bit. The simulator and every ctest suite use it.
//   * ThreadPoolRunner fans prologues out to N workers over a bounded
//     queue (blocking the submitter when full — backpressure), then
//     retires the contiguous prefix of completed epilogues in submission
//     order whenever the submitting thread calls Poll(), Drain(), or
//     blocks on backpressure. Protocol state is therefore only ever
//     touched from one thread; workers see nothing but the immutable
//     inputs a prologue captured.
//
// Prologue discipline (enforced statically by bplint rule BP007): a
// prologue must not touch mutable statics, un-mutexed globals, or protocol
// state. It may return a null epilogue to drop the message (decode failure,
// bad signature) — the slot still retires, preserving order.
#ifndef BLOCKPLANE_COMMON_RUNNER_H_
#define BLOCKPLANE_COMMON_RUNNER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace blockplane::common {

class Runner {
 public:
  /// State-touching completion of one task; runs on the submitting thread,
  /// strictly in submission order. May be null (the prologue dropped the
  /// message).
  using Epilogue = std::function<void()>;
  /// Pure computation over inputs captured at submission; may run on a
  /// worker thread. Returns the epilogue to retire for this slot.
  using Prologue = std::function<Epilogue()>;
  /// One fork-join batch task (see RunBatch); pure, may run on any thread,
  /// must only write outputs disjoint from every other task in its batch.
  using BatchTask = std::function<void()>;

  virtual ~Runner() = default;

  /// Submits one task. Blocks (running ready epilogues meanwhile) when the
  /// runner's queue is full. Reentrant: an epilogue may submit.
  virtual void RunPrologue(Prologue prologue) = 0;

  /// Fork-join escape hatch for the batch helpers (crypto SignBatch /
  /// VerifyBatch, wire codec batches): runs every task — on workers when
  /// the runner has them — and returns once all have finished. Batch tasks
  /// bypass the ordered window entirely: no epilogues run during the join,
  /// so RunBatch is safe inside an epilogue (where Drain() would deadlock
  /// on the in-flight retirement). Not reentrant from a batch task.
  virtual void RunBatch(std::vector<BatchTask> tasks) = 0;

  /// Retires every already-completed epilogue at the front of the
  /// submission order; never blocks. Returns the number retired.
  virtual size_t Poll() = 0;

  /// Retires every submitted task, blocking until all are done.
  virtual void Drain() = 0;

  /// Worker threads owned by this runner; 0 means fully serial.
  virtual int workers() const = 0;
  /// True when prologues run inline on the submitting thread. Serial-only
  /// fast paths (memo caches, verify-once caches) are safe exactly when
  /// this holds.
  bool serial() const { return workers() == 0; }
};

/// Runs every task synchronously inside RunPrologue: current (seed)
/// behavior, deterministic, used by the simulator and all ctest suites.
class InlineRunner final : public Runner {
 public:
  InlineRunner() = default;
  BP_DISALLOW_COPY_AND_ASSIGN(InlineRunner);

  void RunPrologue(Prologue prologue) override;
  void RunBatch(std::vector<BatchTask> tasks) override;
  size_t Poll() override { return 0; }
  void Drain() override {}
  int workers() const override { return 0; }
};

/// The process-wide InlineRunner used wherever no runner is injected.
Runner* DefaultRunner();

/// N worker threads over a bounded submission ring with strictly ordered
/// epilogue retirement. Single-submitter: RunPrologue/Poll/Drain must all
/// be called from one thread (the protocol thread); that same thread is
/// the only one that ever runs epilogues.
class ThreadPoolRunner final : public Runner {
 public:
  struct Options {
    /// Worker threads (clamped to >= 1).
    int workers = 4;
    /// Maximum submitted-but-unretired tasks before RunPrologue blocks.
    size_t queue_capacity = 256;
    /// When true, idle workers busy-poll for tasks (yielding between
    /// probes) instead of sleeping on a condition variable — lower pickup
    /// latency at the cost of burning idle cycles (dsnet's SpinOrderedRunner
    /// vs its CTPL flavor).
    bool spin = false;
  };

  explicit ThreadPoolRunner(Options options);
  /// Drains outstanding work, then stops and joins the workers.
  ~ThreadPoolRunner() override;
  BP_DISALLOW_COPY_AND_ASSIGN(ThreadPoolRunner);

  void RunPrologue(Prologue prologue) override;
  void RunBatch(std::vector<BatchTask> tasks) override;
  size_t Poll() override;
  void Drain() override;
  int workers() const override { return options_.workers; }

 private:
  /// One submitted task. Lives in the window deque from submission until
  /// retirement; `done` flips when a worker has stored the epilogue.
  struct Slot {
    Prologue prologue;
    Epilogue epilogue;
    bool done = false;
  };

  void WorkerLoop();
  /// Pops the front slot if it is done and runs its epilogue with the lock
  /// released. Returns false when the front is missing or still running.
  bool RetireFront(std::unique_lock<std::mutex>& lock);

  const Options options_;

  std::mutex mu_;
  std::condition_variable task_ready_;  // workers wait here (condvar mode)
  std::condition_variable front_done_;  // submitter waits here
  std::condition_variable batch_done_;  // RunBatch caller waits here
  /// In-flight fork-join batch (RunBatch). `batch_next_` is the next
  /// unclaimed index, `batch_finished_` the number of completed tasks;
  /// the vector empties again once the caller's join completes.
  std::vector<BatchTask> batch_;
  size_t batch_next_ = 0;
  size_t batch_finished_ = 0;
  /// Submitted-but-unretired tasks in submission order. `base_ + i` is the
  /// submission sequence of window_[i]; `claim_next_` is the sequence of
  /// the next unclaimed prologue.
  std::deque<Slot> window_;
  uint64_t base_ = 0;
  uint64_t claim_next_ = 0;
  /// Depth of epilogues currently executing on the submit thread. Nonzero
  /// blocks further retirement (ordering) and backpressure (deadlock).
  int retiring_ = 0;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace blockplane::common

#endif  // BLOCKPLANE_COMMON_RUNNER_H_
