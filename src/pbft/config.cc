#include "pbft/config.h"

namespace blockplane::pbft {

PbftConfig UnitConfig(net::SiteId site, int f) {
  PbftConfig config;
  config.f = f;
  for (int i = 0; i < 3 * f + 1; ++i) {
    config.nodes.push_back(net::NodeId{site, i});
  }
  return config;
}

}  // namespace blockplane::pbft
