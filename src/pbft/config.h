// Configuration of one PBFT replication group.
//
// Blockplane instantiates a group per participant (all nodes in one site,
// the "unit" of §III-B); the flat-PBFT baseline instantiates a single group
// with one node per site.
#ifndef BLOCKPLANE_PBFT_CONFIG_H_
#define BLOCKPLANE_PBFT_CONFIG_H_

#include <functional>
#include <vector>

#include "common/macros.h"
#include "net/node_id.h"
#include "sim/sim_time.h"

namespace blockplane::common {
class Runner;
}  // namespace blockplane::common

namespace blockplane::pbft {

struct PbftConfig {
  /// The 3f+1 replicas; nodes[i] has replica index i.
  std::vector<net::NodeId> nodes;
  /// Number of tolerated independent byzantine failures (f_i in the paper).
  int f = 1;

  /// A replica that knows of a pending request but sees no progress for
  /// this long initiates a view change. Wide-area groups need larger values.
  sim::SimTime view_timeout = sim::Milliseconds(60);
  /// Client retry period before broadcasting its request to all replicas.
  sim::SimTime client_retry = sim::Milliseconds(120);
  /// Cap for the view-change escalation timer's exponential backoff. Each
  /// failed view-change attempt doubles the escalation delay starting from
  /// 2 * view_timeout, up to this cap, with uniform jitter on top so that
  /// replicas whose timers fired together under a partition do not
  /// re-synchronize into a retry storm (DESIGN.md §10).
  sim::SimTime view_backoff_cap = sim::Seconds(2);
  /// Uniform jitter added to each escalation delay, in permille of the
  /// backed-off delay (200 = up to +20%). Integer so that replicas compute
  /// bit-identical schedules regardless of libm/optimization level (BP005).
  uint32_t view_backoff_jitter_permille = 200;
  /// A stable checkpoint is taken (and the log truncated) every this many
  /// executed sequence numbers.
  uint64_t checkpoint_interval = 128;

  /// Maximum number of concurrently outstanding (proposed-but-unexecuted)
  /// instances at the leader — the sliding proposal window. 1 reproduces the
  /// paper's group-commit rule ("a leader only attempts to commit a single
  /// batch and does not start the next one until the current one is
  /// committed"); larger values pipeline consensus instances while execution
  /// and replies stay strictly in sequence order (DESIGN.md §9).
  uint64_t window = 1;

  /// Adaptive proposal-window hooks (DESIGN.md §13), installed by the
  /// layer above (core::BlockplaneNode) when adaptive congestion control
  /// is on. PBFT stays independent of core: it only consumes these
  /// callbacks. All default-null, which means the static `window` knob
  /// governs — bit-identical to the seed behavior.
  ///
  /// Effective proposal window consulted at admission time; the replica
  /// clamps the returned value to >= 1. Null = use `window`.
  std::function<uint64_t()> window_provider;
  /// Propose-to-execute latency of each instance this leader proposed in
  /// the current view (the controller's clean "RTT" sample).
  std::function<void(sim::SimTime)> on_commit_latency;
  /// Fired when this replica initiates a view change (churn signal).
  std::function<void()> on_view_change;

  /// When false, payload digests use a fast non-cryptographic hash. The
  /// paper's prototype skipped digest creation/checking entirely; benches
  /// use this mode (see DESIGN.md §1).
  bool hash_payloads = true;
  /// When false, message signing/verification is skipped (bench mode).
  bool sign_messages = true;

  /// Parallel-runtime seam (DESIGN.md §12): the Runner this replica routes
  /// message prologues through. nullptr selects the process-wide
  /// InlineRunner — seed behavior, deterministic, what the simulator and
  /// every ctest suite use. Threaded harnesses inject a ThreadPoolRunner
  /// whose submitting thread is the delivery thread.
  common::Runner* runner = nullptr;

  int n() const { return static_cast<int>(nodes.size()); }
  /// 2f+1: prepares needed beyond the pre-prepare, commits needed, and the
  /// view-change quorum.
  int quorum() const { return 2 * f + 1; }

  net::NodeId LeaderOf(uint64_t view) const {
    return nodes[view % nodes.size()];
  }

  /// Replica index of `id`, or -1 if not a member.
  int ReplicaIndex(net::NodeId id) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == id) return static_cast<int>(i);
    }
    return -1;
  }

  void Validate() const {
    BP_CHECK_MSG(n() >= 3 * f + 1, "PBFT needs n >= 3f+1 nodes");
    BP_CHECK(f >= 1);
  }
};

/// Builds the canonical unit config for a site: nodes (site, 0..3f).
PbftConfig UnitConfig(net::SiteId site, int f);

}  // namespace blockplane::pbft

#endif  // BLOCKPLANE_PBFT_CONFIG_H_
