// Property sweeps for geo-correlated fault tolerance (§V): across f_g
// levels, commit sites, and seeds, commits complete, latency is bounded
// below by the RTT to the f_g-th closest mirror, and mirror streams stay
// consistent across sites.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::Topology;
using sim::Seconds;

class GeoSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GeoSweepTest, CommitLatencyBoundedByMirrorRtt) {
  auto [fg, site, seed] = GetParam();
  sim::Simulator simulator(static_cast<uint64_t>(seed));
  BlockplaneOptions options;
  options.fg = fg;
  Deployment deployment(&simulator, Topology::Aws4(), options);

  constexpr int kCommits = 3;
  int completed = 0;
  sim::SimTime start = simulator.Now();
  std::function<void()> commit_next = [&]() {
    deployment.participant(site)->LogCommit(
        ToBytes("geo-" + std::to_string(completed)), 0, [&](uint64_t) {
          ++completed;
          if (completed < kCommits) commit_next();
        });
  };
  commit_next();
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return completed == kCommits; }, Seconds(300)))
      << "fg=" << fg << " site=" << site;

  // Each commit needs proofs from fg mirrors, so the average is bounded
  // below by the RTT to the fg-th closest site.
  double mean_ms =
      sim::ToMillis(simulator.Now() - start) / static_cast<double>(kCommits);
  double bound_ms =
      sim::ToMillis(Topology::Aws4().RttToKthClosest(site, fg));
  EXPECT_GE(mean_ms, bound_ms * 0.99);
  // ...and stays within the farthest-site RTT plus generous local slack.
  double ceiling_ms =
      sim::ToMillis(Topology::Aws4().RttToKthClosest(site, 3)) + 30.0;
  EXPECT_LE(mean_ms, ceiling_ms);

  // Mirror streams: at least fg mirror sites hold a prefix of the stream,
  // and any two mirrors agree on every position both hold.
  simulator.RunFor(Seconds(3));
  std::map<uint64_t, Bytes> reference;
  int holding = 0;
  for (net::SiteId host : deployment.mirror_sites_of(site)) {
    BlockplaneNode* node = deployment.mirror_node(host, site, 0);
    if (node->log_size() == 0) continue;
    ++holding;
    for (auto& [pos, record] : node->log()) {
      auto [it, inserted] = reference.emplace(record.geo_pos, record.payload);
      if (!inserted) {
        EXPECT_EQ(it->second, record.payload)
            << "mirror divergence at geo pos " << record.geo_pos;
      }
    }
  }
  EXPECT_GE(holding, fg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeoSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3),      // f_g
                       ::testing::Values(0, 1, 2, 3),   // commit site
                       ::testing::Values(1, 2)),        // seed
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& pinfo) {
      return "fg" + std::to_string(std::get<0>(pinfo.param)) + "_site" +
             std::to_string(std::get<1>(pinfo.param)) + "_seed" +
             std::to_string(std::get<2>(pinfo.param));
    });

}  // namespace
}  // namespace blockplane::core
