// The unit of communication between simulated nodes.
#ifndef BLOCKPLANE_NET_MESSAGE_H_
#define BLOCKPLANE_NET_MESSAGE_H_

#include <cstdint>

#include "common/bytes.h"
#include "net/node_id.h"

namespace blockplane::net {

/// Protocol-defined message type tag. Each protocol stack running on a node
/// owns the full space; the reliable transport reserves the top bit for its
/// control frames.
using MessageType = uint32_t;

struct Message {
  NodeId src;
  NodeId dst;
  MessageType type = 0;
  Bytes payload;

  /// Modeled on-wire size (payload + headers). Filled by the network layer
  /// when zero.
  uint64_t wire_bytes = 0;
};

}  // namespace blockplane::net

#endif  // BLOCKPLANE_NET_MESSAGE_H_
