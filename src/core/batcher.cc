#include "core/batcher.h"

#include <algorithm>

#include "common/metrics.h"

namespace blockplane::core {

Batcher::Batcher(Participant* participant, sim::Simulator* simulator,
                 Options options, uint64_t routine_id)
    : participant_(participant),
      sim_(simulator),
      options_(options),
      routine_id_(routine_id) {
  size_t configured = options_.max_in_flight != 0
                          ? options_.max_in_flight
                          : participant_->options().batcher_in_flight;
  max_in_flight_ = std::max<size_t>(1, configured);
}

Batcher::~Batcher() { sim_->Cancel(delay_timer_); }

Bytes Batcher::EncodeBatch(const std::vector<Bytes>& ops) {
  Encoder enc;
  enc.PutVarint(ops.size());
  for (const Bytes& op : ops) enc.PutBytes(op);
  return enc.Take();
}

Status Batcher::DecodeBatch(const Bytes& payload, std::vector<Bytes>* ops) {
  Decoder dec(payload);
  uint64_t count = 0;
  BP_RETURN_NOT_OK(dec.GetVarint(&count));
  // Every operation costs at least one payload byte (its length varint), so
  // a count exceeding the remaining bytes cannot be satisfied. Reject it
  // before reserve() turns an attacker-chosen varint into an attacker-chosen
  // allocation.
  if (count > dec.remaining()) {
    return Status::Corruption("batch count exceeds payload");
  }
  if (count > 1000000) return Status::Corruption("oversized batch");
  ops->clear();
  ops->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Bytes op;
    BP_RETURN_NOT_OK(dec.GetBytes(&op));
    ops->push_back(std::move(op));
  }
  if (!dec.AtEnd()) return Status::Corruption("trailing batch bytes");
  return Status::OK();
}

void Batcher::Add(Bytes op, OpCallback done) {
  pending_bytes_ += op.size();
  pending_.push_back(PendingOp{std::move(op), std::move(done)});
  if (pending_.size() == 1 && options_.max_delay > 0) {
    delay_timer_ = sim_->Schedule(options_.max_delay, [this]() {
      delay_timer_ = sim::kInvalidEventId;
      MaybeFlush();
    });
  }
  if (pending_bytes_ >= options_.max_batch_bytes ||
      pending_.size() >= options_.max_ops) {
    MaybeFlush();
  }
}

void Batcher::Flush() { MaybeFlush(); }

void Batcher::MaybeFlush() {
  // Group commit: at most max_in_flight_ batches at a time (1 reproduces
  // the paper's rule); the rest waits its turn.
  while (batches_in_flight_ < max_in_flight_ && !pending_.empty()) {
    CommitBatch();
  }
}

void Batcher::CommitBatch() {
  ++batches_in_flight_;
  auto& stats = pipeline_stats();
  stats.batcher_inflight_peak =
      std::max<uint64_t>(stats.batcher_inflight_peak, batches_in_flight_);
  sim_->Cancel(delay_timer_);
  delay_timer_ = sim::kInvalidEventId;

  // Submission order is preserved, which preserves any dependency order.
  size_t take = std::min(pending_.size(), options_.max_ops);
  std::vector<Bytes> ops;
  std::vector<OpCallback> callbacks;
  ops.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    ops.push_back(std::move(pending_.front().op));
    callbacks.push_back(std::move(pending_.front().done));
    pending_bytes_ -= ops.back().size();
    pending_.pop_front();
  }

  participant_->LogCommit(
      EncodeBatch(ops), routine_id_,
      [this, callbacks = std::move(callbacks)](uint64_t pos) {
        ++batches_committed_;
        ops_committed_ += callbacks.size();
        for (size_t i = 0; i < callbacks.size(); ++i) {
          if (callbacks[i]) callbacks[i](pos, static_cast<uint32_t>(i));
        }
        --batches_in_flight_;
        MaybeFlush();
      });
}

}  // namespace blockplane::core
