// The geo-distributed ("flat") PBFT baseline of Fig. 7: one PBFT replica
// per datacenter, agreement over wide-area links, f_i = (n-1)/3.
#ifndef BLOCKPLANE_PROTOCOLS_FLAT_PBFT_H_
#define BLOCKPLANE_PROTOCOLS_FLAT_PBFT_H_

#include <memory>
#include <vector>

#include "crypto/signer.h"
#include "pbft/client.h"
#include "pbft/replica.h"

namespace blockplane::protocols {

class FlatPbft {
 public:
  /// One replica per site of `network`'s topology; the leader is the
  /// replica at `leader_site` (chosen by rotating the view).
  FlatPbft(net::Network* network, crypto::KeyStore* keys,
           net::SiteId leader_site, bool sign_messages = true);
  BP_DISALLOW_COPY_AND_ASSIGN(FlatPbft);

  /// Commits a value and invokes `done(seq)` once f+1 replicas reply to
  /// the (leader-site co-located) client.
  void Commit(Bytes value, pbft::PbftClient::DoneCallback done);

  pbft::PbftReplica* replica(net::SiteId site) {
    return replicas_[site].get();
  }

 private:
  std::vector<std::unique_ptr<pbft::PbftReplica>> replicas_;
  std::unique_ptr<pbft::PbftClient> client_;
};

}  // namespace blockplane::protocols

#endif  // BLOCKPLANE_PROTOCOLS_FLAT_PBFT_H_
