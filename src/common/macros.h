// Common assertion and class-decoration macros used across Blockplane.
//
// The library uses Status-based error handling (no exceptions); BP_CHECK is
// reserved for programming errors / broken invariants and aborts the process
// with a message. BP_DCHECK compiles out of release builds.
#ifndef BLOCKPLANE_COMMON_MACROS_H_
#define BLOCKPLANE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define BP_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::std::fprintf(stderr, "BP_CHECK failed at %s:%d: %s\n", __FILE__,   \
                     __LINE__, #cond);                                     \
      ::std::abort();                                                      \
    }                                                                      \
  } while (0)

#define BP_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::std::fprintf(stderr, "BP_CHECK failed at %s:%d: %s (%s)\n",        \
                     __FILE__, __LINE__, #cond, msg);                      \
      ::std::abort();                                                      \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define BP_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define BP_DCHECK(cond) BP_CHECK(cond)
#endif

// Returns early with the error Status if the expression is not OK.
#define BP_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::blockplane::Status _bp_status = (expr);     \
    if (!_bp_status.ok()) return _bp_status;      \
  } while (0)

#define BP_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;         \
  TypeName& operator=(const TypeName&) = delete

#endif  // BLOCKPLANE_COMMON_MACROS_H_
