#include "paxos/node.h"

#include <algorithm>

#include "common/logging.h"

namespace blockplane::paxos {

PaxosNode::PaxosNode(net::Network* network, PaxosConfig config,
                     net::NodeId self, CommitCallback commit)
    : network_(network),
      sim_(network->simulator()),
      config_(std::move(config)),
      self_(self),
      commit_(std::move(commit)),
      rng_(network->simulator()->rng().Fork()) {
  index_ = config_.IndexOf(self_);
  BP_CHECK_MSG(index_ >= 0, "paxos node not in its own config");
}

void PaxosNode::RegisterWithNetwork() { network_->Register(self_, this); }

void PaxosNode::Broadcast(net::MessageType type, const Bytes& payload) {
  for (const net::NodeId& node : config_.nodes) {
    if (node == self_) continue;
    SendTo(node, type, payload);
  }
}

void PaxosNode::SendTo(net::NodeId dst, net::MessageType type,
                       Bytes payload) {
  net::Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.type = type;
  msg.set_body(std::move(payload));
  network_->Send(std::move(msg));
}

void PaxosNode::HandleMessage(const net::Message& msg) {
  switch (msg.type) {
    case kPrepare:
      OnPrepare(msg);
      break;
    case kPromise:
      OnPromise(msg);
      break;
    case kAccept:
      OnAccept(msg);
      break;
    case kAccepted:
      OnAccepted(msg);
      break;
    case kNack:
      OnNack(msg);
      break;
    case kLearn:
      OnLearn(msg);
      break;
    case kHeartbeat:
      OnHeartbeat(msg);
      break;
    case kForward:
      OnForward(msg);
      break;
    default:
      break;
  }
}

// --- client entry -------------------------------------------------------------

void PaxosNode::Submit(Bytes value) {
  if (is_leader_) {
    pending_.push_back(std::move(value));
    ProposeNext();
    return;
  }
  ForwardMsg forward;
  forward.value = std::move(value);
  SendTo(config_.nodes[leader_hint_], kForward, forward.Encode());
}

void PaxosNode::OnForward(const net::Message& msg) {
  ForwardMsg forward;
  if (!ForwardMsg::Decode(msg.body(), &forward).ok()) return;
  if (is_leader_) {
    pending_.push_back(std::move(forward.value));
    ProposeNext();
  } else {
    // Pass it along to whoever we currently believe leads — verbatim, by
    // reference (no re-encode, no copy).
    net::Message fwd;
    fwd.src = self_;
    fwd.dst = config_.nodes[leader_hint_];
    fwd.type = kForward;
    fwd.payload = msg.payload;  // refcount bump
    network_->Send(std::move(fwd));
  }
}

// --- Leader Election routine (Algorithm 3 of the paper) ------------------------

void PaxosNode::StartLeaderElection() {
  electing_ = true;
  is_leader_ = false;
  ballot_ = MakeBallot(BallotRound(std::max(ballot_, promised_)) + 1, index_);
  promises_.clear();

  PrepareMsg prepare;
  prepare.ballot = ballot_;
  prepare.from_slot = last_committed_ + 1;
  Broadcast(kPrepare, prepare.Encode());

  // Count our own promise.
  if (ballot_ > promised_) promised_ = ballot_;
  PromiseMsg own;
  own.ballot = ballot_;
  own.last_committed = last_committed_;
  for (auto it = accepted_.lower_bound(last_committed_ + 1);
       it != accepted_.end(); ++it) {
    own.accepted.push_back(it->second);
  }
  promises_[index_] = std::move(own);
}

void PaxosNode::OnPrepare(const net::Message& msg) {
  PrepareMsg prepare;
  if (!PrepareMsg::Decode(msg.body(), &prepare).ok()) return;
  if (prepare.ballot <= promised_) {
    NackMsg nack;
    nack.promised = promised_;
    SendTo(msg.src, kNack, nack.Encode());
    return;
  }
  promised_ = prepare.ballot;
  if (is_leader_ || electing_) {
    // Someone outranks us; step down.
    is_leader_ = false;
    electing_ = false;
  }
  int proposer = BallotProposer(prepare.ballot);
  if (proposer >= 0 && proposer < config_.n()) leader_hint_ = proposer;

  PromiseMsg promise;
  promise.ballot = prepare.ballot;
  promise.last_committed = last_committed_;
  for (auto it = accepted_.lower_bound(prepare.from_slot);
       it != accepted_.end(); ++it) {
    promise.accepted.push_back(it->second);
  }
  SendTo(msg.src, kPromise, promise.Encode());
  ResetElectionTimer();
}

void PaxosNode::OnPromise(const net::Message& msg) {
  PromiseMsg promise;
  if (!PromiseMsg::Decode(msg.body(), &promise).ok()) return;
  if (!electing_ || promise.ballot != ballot_) return;
  int sender = config_.IndexOf(msg.src);
  if (sender < 0) return;
  promises_[sender] = std::move(promise);
  if (static_cast<int>(promises_.size()) < config_.majority()) return;

  // A majority of positive votes: we are the leader (l = true).
  electing_ = false;
  is_leader_ = true;
  leader_hint_ = index_;
  BP_LOG(kInfo) << self_.ToString() << " paxos leader, ballot " << ballot_;

  // Adopt the highest-ballot accepted value per open slot (max-val rule).
  std::map<uint64_t, AcceptedEntry> adopted;
  uint64_t max_slot = last_committed_;
  for (auto& [idx, p] : promises_) {
    for (AcceptedEntry& entry : p.accepted) {
      if (entry.slot <= last_committed_) continue;
      auto [it, inserted] = adopted.emplace(entry.slot, entry);
      if (!inserted && entry.ballot > it->second.ballot) it->second = entry;
      max_slot = std::max(max_slot, entry.slot);
    }
  }
  // Re-propose adopted values (and no-ops for gaps) before new values.
  for (uint64_t slot = last_committed_ + 1; slot <= max_slot; ++slot) {
    auto it = adopted.find(slot);
    SendAccept(slot, it == adopted.end() ? Bytes{} : it->second.value,
               /*refill=*/true);
  }
  next_slot_ = max_slot + 1;
  if (heartbeat_timer_ == sim::kInvalidEventId && failure_detector_) {
    SendHeartbeats();
  }
  ProposeNext();
}

void PaxosNode::OnNack(const net::Message& msg) {
  NackMsg nack;
  if (!NackMsg::Decode(msg.body(), &nack).ok()) return;
  if (nack.promised <= ballot_) return;
  // A higher ballot exists: we lost; update the round and step down.
  is_leader_ = false;
  electing_ = false;
  ballot_ = MakeBallot(BallotRound(nack.promised), index_);
  int proposer = BallotProposer(nack.promised);
  if (proposer >= 0 && proposer < config_.n()) leader_hint_ = proposer;
  ResetElectionTimer();
}

// --- Replication routine --------------------------------------------------------

void PaxosNode::ProposeNext() {
  if (!is_leader_ || replication_outstanding_ || pending_.empty()) return;
  Bytes value = std::move(pending_.front());
  pending_.pop_front();
  SendAccept(next_slot_++, std::move(value), /*refill=*/false);
}

void PaxosNode::SendAccept(uint64_t slot, Bytes value, bool refill) {
  replication_outstanding_ = true;
  Proposal& proposal = proposals_[slot];
  proposal.ballot = ballot_;
  proposal.value = value;
  proposal.noop_refill = refill;
  proposal.acks = {index_};

  // Accept our own proposal locally.
  accepted_[slot] = AcceptedEntry{slot, ballot_, proposal.value};

  AcceptMsg accept;
  accept.ballot = ballot_;
  accept.slot = slot;
  accept.value = std::move(value);
  Broadcast(kAccept, accept.Encode());
  ArmAcceptRetry(slot, ballot_);
}

void PaxosNode::ArmAcceptRetry(uint64_t slot, Ballot ballot) {
  // Accept messages can be lost (drops, partitions); the leader keeps
  // retransmitting an undecided proposal while it still leads.
  sim_->Schedule(config_.election_timeout, [this, slot, ballot]() {
    auto it = proposals_.find(slot);
    if (it == proposals_.end() || it->second.ballot != ballot) return;
    if (!is_leader_ || ballot_ != ballot) return;
    AcceptMsg accept;
    accept.ballot = ballot;
    accept.slot = slot;
    accept.value = it->second.value;
    Broadcast(kAccept, accept.Encode());
    ArmAcceptRetry(slot, ballot);
  });
}

void PaxosNode::OnAccept(const net::Message& msg) {
  AcceptMsg accept;
  if (!AcceptMsg::Decode(msg.body(), &accept).ok()) return;
  if (accept.ballot < promised_) {
    NackMsg nack;
    nack.promised = promised_;
    SendTo(msg.src, kNack, nack.Encode());
    return;
  }
  promised_ = accept.ballot;
  int proposer = BallotProposer(accept.ballot);
  if (proposer >= 0 && proposer < config_.n()) leader_hint_ = proposer;
  accepted_[accept.slot] =
      AcceptedEntry{accept.slot, accept.ballot, accept.value};

  AcceptedMsg ack;
  ack.ballot = accept.ballot;
  ack.slot = accept.slot;
  SendTo(msg.src, kAccepted, ack.Encode());
  ResetElectionTimer();
}

void PaxosNode::OnAccepted(const net::Message& msg) {
  AcceptedMsg ack;
  if (!AcceptedMsg::Decode(msg.body(), &ack).ok()) return;
  auto it = proposals_.find(ack.slot);
  if (it == proposals_.end() || it->second.ballot != ack.ballot) return;
  int sender = config_.IndexOf(msg.src);
  if (sender < 0) return;
  Proposal& proposal = it->second;
  proposal.acks.insert(sender);
  if (static_cast<int>(proposal.acks.size()) < config_.majority()) return;

  // Majority accepted: decided. Tell everyone.
  Bytes value = proposal.value;
  proposals_.erase(it);
  LearnMsg learn;
  learn.slot = ack.slot;
  learn.value = value;
  Broadcast(kLearn, learn.Encode());
  Decide(ack.slot, std::move(value));
  if (proposals_.empty()) {
    replication_outstanding_ = false;
    ProposeNext();
  }
}

void PaxosNode::OnLearn(const net::Message& msg) {
  LearnMsg learn;
  if (!LearnMsg::Decode(msg.body(), &learn).ok()) return;
  Decide(learn.slot, std::move(learn.value));
}

void PaxosNode::Decide(uint64_t slot, Bytes value) {
  if (slot <= last_committed_ || decided_.count(slot) > 0) return;
  decided_[slot] = std::move(value);
  DeliverReady();
}

void PaxosNode::DeliverReady() {
  while (true) {
    auto it = decided_.find(last_committed_ + 1);
    if (it == decided_.end()) break;
    ++last_committed_;
    if (!it->second.empty() && commit_) {
      commit_(it->first, it->second);
    }
  }
}

// --- failure detector ------------------------------------------------------------

void PaxosNode::EnableFailureDetector() {
  failure_detector_ = true;
  if (is_leader_) {
    SendHeartbeats();
  } else {
    ResetElectionTimer();
  }
}

void PaxosNode::SendHeartbeats() {
  if (!is_leader_) {
    heartbeat_timer_ = sim::kInvalidEventId;
    return;
  }
  HeartbeatMsg hb;
  hb.ballot = ballot_;
  hb.last_committed = last_committed_;
  Broadcast(kHeartbeat, hb.Encode());
  heartbeat_timer_ = sim_->Schedule(config_.heartbeat_interval,
                                    [this]() { SendHeartbeats(); });
}

void PaxosNode::OnHeartbeat(const net::Message& msg) {
  HeartbeatMsg hb;
  if (!HeartbeatMsg::Decode(msg.body(), &hb).ok()) return;
  if (hb.ballot < promised_) return;
  promised_ = std::max(promised_, hb.ballot);
  int proposer = BallotProposer(hb.ballot);
  if (proposer >= 0 && proposer < config_.n()) leader_hint_ = proposer;
  if (is_leader_ && hb.ballot > ballot_) is_leader_ = false;
  ResetElectionTimer();
}

void PaxosNode::ResetElectionTimer() {
  if (!failure_detector_ || is_leader_) return;
  sim_->Cancel(election_timer_);
  // Randomized timeout to break symmetry between would-be leaders.
  // Integer draw in [0, election_timeout] keeps the consensus path free of
  // floating point (BP005), so schedules replay bit-identically.
  sim::SimTime timeout =
      config_.election_timeout +
      static_cast<sim::SimTime>(rng_.NextBelow(
          static_cast<uint64_t>(config_.election_timeout) + 1));
  election_timer_ = sim_->Schedule(timeout, [this]() {
    election_timer_ = sim::kInvalidEventId;
    if (is_leader_) return;
    BP_LOG(kInfo) << self_.ToString() << " paxos election timeout";
    StartLeaderElection();
    ResetElectionTimer();
  });
}

}  // namespace blockplane::paxos
