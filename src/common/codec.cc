#include "common/codec.h"

namespace blockplane {

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Status Decoder::GetU8(uint8_t* out) {
  if (remaining() < 1) return Status::Corruption("decoder underflow");
  *out = data_[pos_++];
  return Status::OK();
}

Status Decoder::GetI64(int64_t* out) {
  uint64_t v = 0;
  BP_RETURN_NOT_OK(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status Decoder::GetBool(bool* out) {
  uint8_t v;
  BP_RETURN_NOT_OK(GetU8(&v));
  if (v > 1) return Status::Corruption("invalid bool encoding");
  *out = (v == 1);
  return Status::OK();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) return Status::Corruption("varint underflow");
    if (shift >= 64) return Status::Corruption("varint overflow");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status Decoder::GetBytes(Bytes* out) {
  uint64_t len;
  BP_RETURN_NOT_OK(GetVarint(&len));
  if (remaining() < len) return Status::Corruption("bytes underflow");
  out->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetString(std::string* out) {
  uint64_t len;
  BP_RETURN_NOT_OK(GetVarint(&len));
  if (remaining() < len) return Status::Corruption("string underflow");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

}  // namespace blockplane
