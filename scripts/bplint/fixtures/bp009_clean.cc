// Fixture: BP009 clean — the unlock-before-invoke handoff idiom.
// RetireFront takes the caller's unique_lock by reference, so it is
// analyzed entry-locked with its own unlock()/lock() toggles honored:
// the Send happens in the released window and proves itself clean, and
// the caller passing its lock down is a handoff, not a violation.

struct Transport {
  void Send(int bytes);
};

struct Session {
  std::mutex mu_;
  Transport* net_;
  int queued_ = 0;

  bool RetireFront(std::unique_lock<std::mutex>& lock) {
    if (queued_ == 0) return false;
    --queued_;
    lock.unlock();
    net_->Send(1);  // lock released: fine
    lock.lock();
    return true;
  }

  void Pump() {
    std::unique_lock<std::mutex> lock(mu_);
    while (RetireFront(lock)) {  // handoff: callee owns the protocol
    }
    lock.unlock();
    net_->Send(0);  // released before the tail flush: fine
  }
};
