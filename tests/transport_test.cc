// Tests for the TCP-like reliable transport: exactly-once, in-order
// delivery over a network that drops, corrupts, duplicates, and delays.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace blockplane::net {
namespace {

using sim::Seconds;

struct Endpoint {
  Endpoint(Network* network, NodeId id, TransportOptions options = {}) {
    transport = std::make_unique<ReliableTransport>(
        network, id, [this](const Message& m) { received.push_back(m); },
        options);
  }
  std::unique_ptr<ReliableTransport> transport;
  std::vector<Message> received;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : simulator_(42) {
    NetworkOptions options;
    options.per_message_cpu = 0;
    network_ = std::make_unique<Network>(&simulator_, Topology::Aws4(),
                                         options);
    a_ = std::make_unique<Endpoint>(network_.get(), NodeId{0, 0});
    b_ = std::make_unique<Endpoint>(network_.get(), NodeId{1, 0});
  }

  sim::Simulator simulator_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<Endpoint> a_;
  std::unique_ptr<Endpoint> b_;
};

TEST_F(TransportTest, DeliversOverCleanNetwork) {
  a_->transport->Send({1, 0}, 5, ToBytes("hello"));
  simulator_.Run();
  ASSERT_EQ(b_->received.size(), 1u);
  EXPECT_EQ(b_->received[0].type, 5u);
  EXPECT_EQ(ToString(b_->received[0].body()), "hello");
  EXPECT_EQ(b_->received[0].src, (NodeId{0, 0}));
  EXPECT_EQ(a_->transport->retransmissions(), 0);
}

TEST_F(TransportTest, MasksDrops) {
  network_->set_drop_prob(0.4);
  for (int i = 0; i < 50; ++i) {
    a_->transport->Send({1, 0}, 1, ToBytes("m" + std::to_string(i)));
  }
  simulator_.Run();
  ASSERT_EQ(b_->received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ToString(b_->received[i].body()), "m" + std::to_string(i));
  }
  EXPECT_GT(a_->transport->retransmissions(), 0);
}

TEST_F(TransportTest, MasksCorruption) {
  network_->set_corrupt_prob(0.3);
  for (int i = 0; i < 30; ++i) {
    a_->transport->Send({1, 0}, 1, ToBytes("payload-" + std::to_string(i)));
  }
  simulator_.Run();
  ASSERT_EQ(b_->received.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(ToString(b_->received[i].body()),
              "payload-" + std::to_string(i));
  }
  EXPECT_GT(b_->transport->discarded_corrupt() +
                a_->transport->discarded_corrupt(),
            0);
}

TEST_F(TransportTest, SuppressesDuplicates) {
  network_->set_duplicate_prob(0.5);
  for (int i = 0; i < 40; ++i) {
    a_->transport->Send({1, 0}, 1, ToBytes(std::to_string(i)));
  }
  simulator_.Run();
  EXPECT_EQ(b_->received.size(), 40u);
}

TEST_F(TransportTest, BidirectionalTraffic) {
  network_->set_drop_prob(0.25);
  for (int i = 0; i < 20; ++i) {
    a_->transport->Send({1, 0}, 1, ToBytes("a" + std::to_string(i)));
    b_->transport->Send({0, 0}, 2, ToBytes("b" + std::to_string(i)));
  }
  simulator_.Run();
  EXPECT_EQ(a_->received.size(), 20u);
  EXPECT_EQ(b_->received.size(), 20u);
}

TEST_F(TransportTest, GivesUpOnCrashedPeerWithoutLeakingEvents) {
  network_->Crash({1, 0});
  a_->transport->Send({1, 0}, 1, ToBytes("into the void"));
  // The sender retries with backoff and eventually abandons the frame; the
  // simulation must terminate (no infinite retransmission loop).
  simulator_.Run();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_GT(a_->transport->retransmissions(), 0);
}

// Regression: an abandoned frame used to be erased silently, leaving the
// sender's upper layers waiting forever on a delivery that would never
// come. Now max_retries exhaustion fires the on_drop callback and counts
// the frame in frames_abandoned (and in the transport metrics group).
TEST_F(TransportTest, AbandonedFrameNotifiesSender) {
  transport_stats().Reset();
  std::vector<std::pair<NodeId, MessageType>> drops;
  a_->transport->set_on_drop(
      [&](NodeId dst, MessageType type, uint64_t /*seq*/) {
        drops.emplace_back(dst, type);
      });
  network_->Crash({1, 0});
  a_->transport->Send({1, 0}, 7, ToBytes("doomed"));
  a_->transport->Send({1, 0}, 8, ToBytes("also doomed"));
  simulator_.Run();

  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(a_->transport->frames_abandoned(), 2);
  ASSERT_EQ(drops.size(), 2u);
  // The callback reports which application message died, not just that
  // "something" was dropped.
  EXPECT_EQ(drops[0].first, (NodeId{1, 0}));
  EXPECT_EQ(drops[0].second, 7u);
  EXPECT_EQ(drops[1].second, 8u);
  // Mirrored into the process-wide metrics group for bench/CI dumps.
  EXPECT_EQ(transport_stats().frames_abandoned, 2);
  EXPECT_GT(transport_stats().retransmissions, 0);
}

// The on_drop callback fires after the frame has left the in-flight set,
// so re-sending from inside the callback is safe (e.g. failover to a
// different peer).
TEST_F(TransportTest, OnDropMaySendAgain) {
  auto c = std::make_unique<Endpoint>(network_.get(), NodeId{2, 0});
  a_->transport->set_on_drop(
      [&](NodeId /*dst*/, MessageType type, uint64_t /*seq*/) {
        a_->transport->Send({2, 0}, type, ToBytes("failover"));
      });
  network_->Crash({1, 0});
  a_->transport->Send({1, 0}, 9, ToBytes("doomed"));
  simulator_.Run();
  ASSERT_EQ(c->received.size(), 1u);
  EXPECT_EQ(c->received[0].type, 9u);
  EXPECT_EQ(ToString(c->received[0].body()), "failover");
}

TEST_F(TransportTest, StressManyMessagesLossyBothWays) {
  network_->set_drop_prob(0.2);
  network_->set_corrupt_prob(0.1);
  network_->set_duplicate_prob(0.1);
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    a_->transport->Send({1, 0}, 1, ToBytes(std::to_string(i)));
  }
  simulator_.Run();
  ASSERT_EQ(b_->received.size(), static_cast<size_t>(kCount));
  // In-order delivery: payloads are exactly 0..kCount-1.
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(ToString(b_->received[i].body()), std::to_string(i));
  }
}

// --- RTO regression tests (DESIGN.md §13) ---------------------------------
//
// The 132 ms Oregon–Ireland link is the long pole of the Table-I topology
// and the link the original clamp bug broke on: max_rto must bound the
// *effective* timeout — after the peer-RTT addend and the backoff
// multiplier — not just the pre-backoff base.

TEST_F(TransportTest, MaxRtoClampsEffectiveTimeoutNotBase) {
  TransportOptions options;
  options.max_rto = sim::Milliseconds(100);
  auto oregon = std::make_unique<Endpoint>(network_.get(), NodeId{kOregon, 0},
                                           options);
  // Pre-sample peer term is the 132 ms topology RTT, so base_rto + rtt =
  // 142 ms already exceeds max_rto with ZERO retries: the clamp must bite
  // before any backoff is applied.
  EXPECT_EQ(oregon->transport->RtoFor({kIreland, 0}, 0),
            sim::Milliseconds(100));
}

TEST_F(TransportTest, BackoffNeverOverflowsPastMaxRto) {
  auto oregon =
      std::make_unique<Endpoint>(network_.get(), NodeId{kOregon, 0});
  NodeId ireland{kIreland, 0};
  // backoff^retries overflows int64 well before retries = 64; the old
  // scale-then-clamp order handed min() an already-wrapped negative value.
  sim::SimTime prev = 0;
  for (int retries = 0; retries <= 64; ++retries) {
    sim::SimTime rto = oregon->transport->RtoFor(ireland, retries);
    EXPECT_GT(rto, 0) << "retries=" << retries;
    EXPECT_LE(rto, TransportOptions{}.max_rto) << "retries=" << retries;
    EXPECT_GE(rto, prev) << "RTO must be monotone in retries";
    prev = rto;
  }
  EXPECT_EQ(oregon->transport->RtoFor(ireland, 64), TransportOptions{}.max_rto);
}

TEST_F(TransportTest, MeasuredRttReplacesTopologyPrior) {
  auto oregon =
      std::make_unique<Endpoint>(network_.get(), NodeId{kOregon, 0});
  auto ireland =
      std::make_unique<Endpoint>(network_.get(), NodeId{kIreland, 0});
  NodeId dst{kIreland, 0};
  EXPECT_FALSE(oregon->transport->has_rtt_estimate(dst));
  // Pre-sample: the timer falls back to the topology constant.
  EXPECT_EQ(oregon->transport->RtoFor(dst, 0),
            TransportOptions{}.base_rto + sim::Milliseconds(132));

  for (int i = 0; i < 10; ++i) {
    oregon->transport->Send(dst, 1, ToBytes("ping" + std::to_string(i)));
  }
  simulator_.Run();
  ASSERT_EQ(ireland->received.size(), 10u);
  ASSERT_TRUE(oregon->transport->has_rtt_estimate(dst));
  // Clean network, zero per-message cpu: the smoothed estimate converges
  // on the 132 ms wire RTT.
  EXPECT_GE(oregon->transport->srtt(dst), sim::Milliseconds(132));
  EXPECT_LE(oregon->transport->srtt(dst), sim::Milliseconds(140));
  // And the timer now derives from the measurement (srtt + variance
  // term), still bounded by max_rto.
  sim::SimTime rto = oregon->transport->RtoFor(dst, 0);
  EXPECT_GT(rto, oregon->transport->srtt(dst));
  EXPECT_LE(rto, TransportOptions{}.max_rto);
}

TEST_F(TransportTest, LossyLongLinkStillDeliversInOrder) {
  // Regression for the timer sweep: retransmissions on the 132 ms link
  // with smoothed-RTT timers must still mask drops, in order, and the
  // virtual-time cost must stay bounded (no livelock from a too-short or
  // overflowed timer).
  auto oregon =
      std::make_unique<Endpoint>(network_.get(), NodeId{kOregon, 0});
  auto ireland =
      std::make_unique<Endpoint>(network_.get(), NodeId{kIreland, 0});
  network_->set_drop_prob(0.3);
  constexpr int kCount = 40;
  for (int i = 0; i < kCount; ++i) {
    oregon->transport->Send({kIreland, 0}, 1, ToBytes(std::to_string(i)));
  }
  simulator_.Run();
  ASSERT_EQ(ireland->received.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(ToString(ireland->received[i].body()), std::to_string(i));
  }
  EXPECT_GT(oregon->transport->retransmissions(), 0);
  EXPECT_LT(simulator_.Now(), Seconds(60));
}

}  // namespace
}  // namespace blockplane::net
