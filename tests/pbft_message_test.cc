// Round-trip and canonical-form tests for every PBFT wire message, plus the
// paxos messages. Canonical bodies must differ across message types (no
// cross-type signature replay) and encodings must round-trip exactly.
#include "pbft/message.h"

#include <gtest/gtest.h>

#include "paxos/message.h"

namespace blockplane::pbft {
namespace {

crypto::Digest TestDigest(uint8_t fill) {
  crypto::Digest d;
  d.fill(fill);
  return d;
}

Signature TestSig(net::NodeId signer, uint8_t fill) {
  Signature sig;
  sig.signer = signer;
  sig.mac = TestDigest(fill);
  return sig;
}

TEST(PbftMessageTest, ClientTokenRoundTrip) {
  net::NodeId id{3, 1001};
  EXPECT_EQ(ClientFromToken(ClientToken(id)), id);
  net::NodeId zero{0, 0};
  EXPECT_EQ(ClientFromToken(ClientToken(zero)), zero);
}

TEST(PbftMessageTest, RequestRoundTrip) {
  RequestMsg msg;
  msg.client_token = ClientToken({1, 1000});
  msg.req_id = 42;
  msg.value = ToBytes("payload");
  RequestMsg out;
  ASSERT_TRUE(RequestMsg::Decode(msg.Encode(), &out).ok());
  EXPECT_EQ(out.client_token, msg.client_token);
  EXPECT_EQ(out.req_id, msg.req_id);
  EXPECT_EQ(out.value, msg.value);
}

TEST(PbftMessageTest, PrePrepareRoundTrip) {
  PrePrepareMsg msg;
  msg.view = 3;
  msg.seq = 17;
  msg.digest = TestDigest(0xaa);
  msg.client_token = 99;
  msg.req_id = 5;
  msg.value = ToBytes("batch contents");
  msg.sig = TestSig({0, 1}, 0xbb);
  PrePrepareMsg out;
  ASSERT_TRUE(PrePrepareMsg::Decode(msg.Encode(), &out).ok());
  EXPECT_EQ(out.view, 3u);
  EXPECT_EQ(out.seq, 17u);
  EXPECT_EQ(out.digest, msg.digest);
  EXPECT_EQ(out.value, msg.value);
  EXPECT_EQ(out.sig, msg.sig);
  // The canonical header is payload-independent (the digest stands in).
  PrePrepareMsg other = msg;
  other.value = ToBytes("different");
  EXPECT_EQ(other.CanonicalHeader(), msg.CanonicalHeader());
}

TEST(PbftMessageTest, VoteRoundTripAndTypeSeparation) {
  VoteMsg prepare;
  prepare.type = kPrepare;
  prepare.view = 1;
  prepare.seq = 2;
  prepare.digest = TestDigest(0x11);
  prepare.sig = TestSig({0, 2}, 0x22);

  VoteMsg out;
  ASSERT_TRUE(VoteMsg::Decode(kPrepare, prepare.Encode(), &out).ok());
  EXPECT_EQ(out.digest, prepare.digest);
  EXPECT_EQ(out.sig, prepare.sig);

  // A prepare's canonical body must never equal a commit's: otherwise a
  // byzantine node could replay prepare signatures as commit votes.
  VoteMsg commit = prepare;
  commit.type = kCommit;
  EXPECT_NE(prepare.CanonicalBody(), commit.CanonicalBody());
}

TEST(PbftMessageTest, CanonicalBodiesDifferAcrossTypes) {
  // Same numeric fields everywhere; the type tag must still separate them.
  CheckpointMsg checkpoint;
  checkpoint.seq = 2;
  checkpoint.state_digest = TestDigest(0x11);
  VoteMsg prepare;
  prepare.type = kPrepare;
  prepare.view = 2;  // overlaps checkpoint.seq position
  prepare.seq = 2;
  prepare.digest = TestDigest(0x11);
  EXPECT_NE(checkpoint.CanonicalBody(), prepare.CanonicalBody());
}

TEST(PbftMessageTest, ViewChangeWithProofsRoundTrip) {
  ViewChangeMsg msg;
  msg.new_view = 7;
  msg.last_stable = 64;
  PreparedProof proof;
  proof.view = 6;
  proof.seq = 65;
  proof.digest = TestDigest(0x33);
  proof.client_token = 12;
  proof.req_id = 8;
  proof.value = ToBytes("prepared value");
  proof.preprepare_sig = TestSig({0, 0}, 0x44);
  proof.prepare_sigs = {TestSig({0, 1}, 0x55), TestSig({0, 2}, 0x66)};
  msg.prepared.push_back(proof);
  msg.sig = TestSig({0, 3}, 0x77);

  ViewChangeMsg out;
  ASSERT_TRUE(ViewChangeMsg::Decode(msg.Encode(), &out).ok());
  EXPECT_EQ(out.new_view, 7u);
  EXPECT_EQ(out.last_stable, 64u);
  ASSERT_EQ(out.prepared.size(), 1u);
  EXPECT_EQ(out.prepared[0].value, proof.value);
  EXPECT_EQ(out.prepared[0].preprepare_sig, proof.preprepare_sig);
  ASSERT_EQ(out.prepared[0].prepare_sigs.size(), 2u);
  EXPECT_EQ(out.prepared[0].prepare_sigs[1], proof.prepare_sigs[1]);
}

TEST(PbftMessageTest, NewViewRoundTripAndTamperDetection) {
  ViewChangeMsg vc;
  vc.new_view = 9;
  vc.sig = TestSig({0, 1}, 0x12);

  NewViewMsg msg;
  msg.view = 9;
  msg.view_changes = {vc.Encode(), vc.Encode(), vc.Encode()};
  Bytes canonical_before = msg.CanonicalBody();

  NewViewMsg out;
  ASSERT_TRUE(NewViewMsg::Decode(msg.Encode(), &out).ok());
  EXPECT_EQ(out.view, 9u);
  ASSERT_EQ(out.view_changes.size(), 3u);

  // Replacing an embedded view-change changes the canonical body, so the
  // leader's signature would no longer verify.
  msg.view_changes[1][0] ^= 0xff;
  EXPECT_NE(msg.CanonicalBody(), canonical_before);
}

TEST(PbftMessageTest, SnapshotRoundTrip) {
  SnapshotMsg msg;
  msg.seq = 128;
  msg.state_digest = TestDigest(0x88);
  msg.cert = {TestSig({0, 0}, 1), TestSig({0, 1}, 2), TestSig({0, 2}, 3)};
  SnapshotMsg out;
  ASSERT_TRUE(SnapshotMsg::Decode(msg.Encode(), &out).ok());
  EXPECT_EQ(out.seq, 128u);
  EXPECT_EQ(out.state_digest, msg.state_digest);
  ASSERT_EQ(out.cert.size(), 3u);
}

TEST(PbftMessageTest, CommittedEntryRoundTrip) {
  CommittedEntryMsg msg;
  msg.seq = 10;
  msg.view = 2;
  msg.digest = TestDigest(0x99);
  msg.client_token = 55;
  msg.req_id = 6;
  msg.value = ToBytes("committed");
  msg.commit_sigs = {TestSig({0, 0}, 4), TestSig({0, 1}, 5),
                     TestSig({0, 2}, 6)};
  CommittedEntryMsg out;
  ASSERT_TRUE(CommittedEntryMsg::Decode(msg.Encode(), &out).ok());
  EXPECT_EQ(out.value, msg.value);
  EXPECT_EQ(out.commit_sigs.size(), 3u);
}

TEST(PbftMessageTest, FastDigestDistinguishesContentAndLength) {
  // Bench-mode digests are not cryptographic but must still separate
  // different payloads and lengths.
  Bytes a = ToBytes("aaaa");
  Bytes b = ToBytes("aaab");
  Bytes c = ToBytes("aaaaa");
  EXPECT_NE(ComputeDigest(a, false), ComputeDigest(b, false));
  EXPECT_NE(ComputeDigest(a, false), ComputeDigest(c, false));
  EXPECT_EQ(ComputeDigest(a, false), ComputeDigest(a, false));
  // Crypto mode matches SHA-256.
  EXPECT_EQ(ComputeDigest(a, true), crypto::Sha256Digest(a));
}

TEST(PaxosMessageTest, BallotPacking) {
  using namespace blockplane::paxos;
  Ballot b = MakeBallot(12, 3);
  EXPECT_EQ(BallotRound(b), 12u);
  EXPECT_EQ(BallotProposer(b), 3);
  // Higher round beats any proposer index of lower rounds.
  EXPECT_GT(MakeBallot(13, 0), MakeBallot(12, 65535 - 1));
}

TEST(PaxosMessageTest, PromiseRoundTrip) {
  using namespace blockplane::paxos;
  PromiseMsg msg;
  msg.ballot = MakeBallot(4, 1);
  msg.last_committed = 9;
  msg.accepted = {{10, MakeBallot(3, 0), ToBytes("old value")},
                  {11, MakeBallot(4, 1), ToBytes("newer")}};
  PromiseMsg out;
  ASSERT_TRUE(PromiseMsg::Decode(msg.Encode(), &out).ok());
  EXPECT_EQ(out.ballot, msg.ballot);
  ASSERT_EQ(out.accepted.size(), 2u);
  EXPECT_EQ(out.accepted[0].slot, 10u);
  EXPECT_EQ(ToString(out.accepted[1].value), "newer");
}

TEST(PaxosMessageTest, AcceptLearnHeartbeatRoundTrips) {
  using namespace blockplane::paxos;
  AcceptMsg accept;
  accept.ballot = MakeBallot(2, 2);
  accept.slot = 7;
  accept.value = ToBytes("v");
  AcceptMsg accept_out;
  ASSERT_TRUE(AcceptMsg::Decode(accept.Encode(), &accept_out).ok());
  EXPECT_EQ(accept_out.slot, 7u);

  LearnMsg learn;
  learn.slot = 8;
  learn.value = ToBytes("w");
  LearnMsg learn_out;
  ASSERT_TRUE(LearnMsg::Decode(learn.Encode(), &learn_out).ok());
  EXPECT_EQ(ToString(learn_out.value), "w");

  HeartbeatMsg hb;
  hb.ballot = MakeBallot(5, 0);
  hb.last_committed = 3;
  HeartbeatMsg hb_out;
  ASSERT_TRUE(HeartbeatMsg::Decode(hb.Encode(), &hb_out).ok());
  EXPECT_EQ(hb_out.last_committed, 3u);
}

}  // namespace
}  // namespace blockplane::pbft
