// Dumps every registered perf-counter group as JSON after exercising the
// full pipeline once (a geo-replicated commit plus a cross-site Send over
// the AWS 4-site topology). scripts/check.sh runs this to prove the
// MetricsRegistry snapshot path works end to end and to archive the
// counter values next to the benchmark JSON.
//
// Usage: bench_metrics_dump [--out=FILE]   (default: METRICS_dump.json)
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

int RunDump(const std::string& out_path) {
  // Start from zero so the dump reflects exactly this workload.
  metrics_registry().ResetAll();

  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = 1;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options);

  int done = 0;
  deployment.participant(net::kCalifornia)
      ->LogCommit(Bytes(1000, 0x42), 0, [&](uint64_t) { ++done; });
  deployment.participant(net::kCalifornia)
      ->Send(net::kVirginia, Bytes(256, 0x17), 0, [&](uint64_t) { ++done; });
  simulator.RunUntilCondition([&] { return done == 2; },
                              simulator.Now() + sim::Seconds(60));
  if (done != 2) {
    std::fprintf(stderr, "pipeline did not complete (done=%d)\n", done);
    return 1;
  }
  // Let the delivery/ack tail drain so the counters are quiescent.
  simulator.RunFor(sim::Seconds(5));

  std::string json = metrics_registry().ToJson();
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json << "\n";
  out.close();
  std::printf("%s\n", json.c_str());
  std::printf("metrics snapshot written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace blockplane

int main(int argc, char** argv) {
  std::string out_path = "METRICS_dump.json";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--out=", 0) == 0) out_path = std::string(arg.substr(6));
  }
  return blockplane::RunDump(out_path);
}
