// Focused tests on the Participant handle: receive-queue semantics,
// handler installation order, concurrent commits, and read ordering.
#include "core/participant.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::kCalifornia;
using net::kOregon;
using net::Topology;
using sim::Seconds;

class ParticipantTest : public ::testing::Test {
 protected:
  ParticipantTest()
      : simulator_(81), deployment_(&simulator_, Topology::Aws4(), {}) {}

  sim::Simulator simulator_;
  Deployment deployment_;
};

TEST_F(ParticipantTest, LateHandlerDrainsQueuedMessages) {
  // Messages received before a handler is installed wait in the polling
  // queue; SetReceiveHandler must drain them, in order.
  Participant* sender = deployment_.participant(kCalifornia);
  for (int i = 0; i < 3; ++i) {
    sender->Send(kOregon, ToBytes("early-" + std::to_string(i)), 0, nullptr);
  }
  Participant* receiver = deployment_.participant(kOregon);
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] {
        // All three are queued (peek via a copy-free check: TryReceive
        // would consume, so wait on the unit's log instead).
        return deployment_.node(kOregon, 0)->log_size() >= 3;
      },
      Seconds(120)));
  simulator_.RunFor(Seconds(1));

  std::vector<std::string> got;
  receiver->SetReceiveHandler([&](net::SiteId src, const Bytes& payload) {
    EXPECT_EQ(src, kCalifornia);
    got.push_back(ToString(payload));
  });
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], "early-" + std::to_string(i));
}

TEST_F(ParticipantTest, TryReceiveConsumesInOrder) {
  Participant* sender = deployment_.participant(kCalifornia);
  sender->Send(kOregon, ToBytes("one"), 0, nullptr);
  sender->Send(kOregon, ToBytes("two"), 0, nullptr);
  Participant* receiver = deployment_.participant(kOregon);
  Bytes first;
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &first); },
      Seconds(120)));
  EXPECT_EQ(ToString(first), "one");
  Bytes second;
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &second); },
      Seconds(120)));
  EXPECT_EQ(ToString(second), "two");
  Bytes none;
  EXPECT_FALSE(receiver->TryReceive(kCalifornia, &none));
}

TEST_F(ParticipantTest, ConcurrentCommitsAllCompleteWithDistinctPositions) {
  std::set<uint64_t> positions;
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    deployment_.participant(kCalifornia)
        ->LogCommit(ToBytes("c" + std::to_string(i)), 0, [&](uint64_t pos) {
          positions.insert(pos);
          ++completed;
        });
  }
  ASSERT_TRUE(simulator_.RunUntilCondition([&] { return completed == 8; },
                                           Seconds(60)));
  EXPECT_EQ(positions.size(), 8u);  // all distinct log positions
  EXPECT_EQ(*positions.rbegin(), 8u);
  EXPECT_EQ(deployment_.participant(kCalifornia)->commits_completed(), 8u);
}

TEST_F(ParticipantTest, LinearizableReadSeesPriorCommit) {
  // A linearizable read issued after a commit completes must observe it.
  uint64_t pos = 0;
  bool committed = false;
  deployment_.participant(kCalifornia)
      ->LogCommit(ToBytes("observable"), 0, [&](uint64_t p) {
        pos = p;
        committed = true;
      });
  ASSERT_TRUE(simulator_.RunUntilCondition([&] { return committed; },
                                           Seconds(60)));
  bool read_done = false;
  deployment_.participant(kCalifornia)
      ->Read(pos, ReadStrategy::kLinearizable,
             [&](Status status, LogRecord record) {
               ASSERT_TRUE(status.ok());
               EXPECT_EQ(ToString(record.payload), "observable");
               read_done = true;
             });
  ASSERT_TRUE(simulator_.RunUntilCondition([&] { return read_done; },
                                           Seconds(60)));
}

TEST_F(ParticipantTest, InterleavedReadsResolveIndependently) {
  uint64_t pos = 0;
  bool committed = false;
  deployment_.participant(kCalifornia)
      ->LogCommit(ToBytes("shared"), 0, [&](uint64_t p) {
        pos = p;
        committed = true;
      });
  ASSERT_TRUE(simulator_.RunUntilCondition([&] { return committed; },
                                           Seconds(60)));
  simulator_.RunFor(Seconds(1));
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    deployment_.participant(kCalifornia)
        ->Read(pos, i % 2 == 0 ? ReadStrategy::kReadOne
                               : ReadStrategy::kReadQuorum,
               [&](Status status, LogRecord record) {
                 EXPECT_TRUE(status.ok());
                 EXPECT_EQ(ToString(record.payload), "shared");
                 ++done;
               });
  }
  ASSERT_TRUE(
      simulator_.RunUntilCondition([&] { return done == 4; }, Seconds(60)));
}

}  // namespace
}  // namespace blockplane::core
