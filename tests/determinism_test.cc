// Reproducibility: the whole point of the simulator substrate is that an
// experiment is a pure function of its seed. Two runs of the same scenario
// must produce identical event counts, identical virtual end times, and
// identical logs; a different seed perturbs jitter but not outcomes.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/runner.h"
#include "common/trace.h"
#include "core/deployment.h"
#include "protocols/counter.h"
#include "sim/simulator.h"

namespace blockplane {
namespace {

using net::Topology;
using sim::Seconds;

struct ScenarioResult {
  uint64_t events;
  sim::SimTime end_time;
  int64_t counter;
  std::vector<Bytes> oregon_log;
};

ScenarioResult RunScenario(uint64_t seed) {
  sim::Simulator simulator(seed);
  core::Deployment deployment(&simulator, Topology::Aws4(), {});
  protocols::CounterProtocol counter(&deployment);
  for (int i = 0; i < 4; ++i) {
    counter.UserRequest(net::kCalifornia, net::kOregon, "trusted-repro");
  }
  simulator.RunUntilCondition(
      [&] { return counter.counter(net::kOregon) == 4; }, Seconds(120));
  simulator.RunFor(Seconds(2));

  ScenarioResult result;
  result.events = simulator.processed_events();
  result.end_time = simulator.Now();
  result.counter = counter.counter(net::kOregon);
  for (auto& [pos, record] : deployment.node(net::kOregon, 0)->log()) {
    result.oregon_log.push_back(record.payload);
  }
  return result;
}

TEST(DeterminismTest, SameSeedSameUniverse) {
  ScenarioResult a = RunScenario(12345);
  ScenarioResult b = RunScenario(12345);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.counter, b.counter);
  EXPECT_EQ(a.oregon_log, b.oregon_log);
}

TEST(DeterminismTest, DifferentSeedSameOutcome) {
  ScenarioResult a = RunScenario(1);
  ScenarioResult b = RunScenario(2);
  // Jitter differs, protocol outcome does not.
  EXPECT_EQ(a.counter, b.counter);
  EXPECT_EQ(a.oregon_log.size(), b.oregon_log.size());
}

// All JSON exports of one run: metrics snapshot, Chrome trace, and the
// trace summary. Everything a run writes to disk for analysis.
struct JsonExports {
  std::string metrics;
  std::string chrome_trace;
  std::string trace_json;
};

JsonExports RunScenarioWithExports(uint64_t seed,
                                   common::Runner* runner = nullptr) {
  // The tracer and metrics registry are process-wide; reset both so the
  // export is a pure function of the scenario below.
  tracer().Clear();
  tracer().Enable();
  metrics_registry().ResetAll();

  JsonExports out;
  {
    sim::Simulator simulator(seed);
    core::BlockplaneOptions options;
    options.runner = runner;
    core::Deployment deployment(&simulator, Topology::Aws4(), options);
    protocols::CounterProtocol counter(&deployment);
    for (int i = 0; i < 4; ++i) {
      counter.UserRequest(net::kCalifornia, net::kOregon, "trusted-json");
    }
    simulator.RunUntilCondition(
        [&] { return counter.counter(net::kOregon) == 4; }, Seconds(120));
    simulator.RunFor(Seconds(2));
    out.metrics = metrics_registry().ToJson();
    out.chrome_trace = tracer().ToChromeTrace();
    out.trace_json = tracer().ToJson();
  }
  tracer().Clear();
  tracer().Disable();
  metrics_registry().ResetAll();
  return out;
}

// Two runs over the same seed must serialize byte for byte: map-ordered
// exporters, no wall-clock timestamps, no iteration-order leaks (the
// property bplint rule BP001 guards statically).
TEST(DeterminismTest, SameSeedByteIdenticalJsonExports) {
  JsonExports a = RunScenarioWithExports(777);
  JsonExports b = RunScenarioWithExports(777);

  // Non-trivial exports: the run actually produced counters and spans.
  EXPECT_NE(a.metrics.find("\"hotpath\""), std::string::npos);
  EXPECT_NE(a.metrics.find("\"transport\""), std::string::npos);
  EXPECT_NE(a.chrome_trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_GT(a.trace_json.size(), 2u);

  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

// The Runner seam (DESIGN.md §12) must not perturb determinism: an
// explicitly injected InlineRunner is the seed execution model, so its
// exports are byte-identical to the default (no runner injected), and the
// runner counter group shows up in the metrics snapshot.
TEST(DeterminismTest, InlineRunnerKeepsJsonExportsByteIdentical) {
  JsonExports defaulted = RunScenarioWithExports(777);
  common::InlineRunner inline_runner;
  JsonExports injected = RunScenarioWithExports(777, &inline_runner);

  EXPECT_NE(injected.metrics.find("\"runner\""), std::string::npos);
  EXPECT_NE(injected.metrics.find("\"prologues_submitted\""),
            std::string::npos);
  EXPECT_NE(injected.metrics.find("\"batch_tasks\""), std::string::npos);

  EXPECT_EQ(injected.metrics, defaulted.metrics);
  EXPECT_EQ(injected.chrome_trace, defaulted.chrome_trace);
  EXPECT_EQ(injected.trace_json, defaulted.trace_json);
}

}  // namespace
}  // namespace blockplane
