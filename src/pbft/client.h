// A PBFT client: submits requests to the leader and accepts a result once
// f+1 replicas send matching replies (up to f repliers may be lying).
// Retransmits by broadcasting to all replicas, which triggers a view change
// if the leader is censoring the request.
//
// "Matching" means matching on (seq, result_digest): a reply carries the
// replica's post-execution state digest, so f+1 replicas that agree on the
// sequence number but diverge on state can never complete a request (they
// did in an earlier version of this client — see byzantine_test.cc's
// DivergentRepliesDoNotComplete regression test).
//
// Blockplane's Participant handle uses a PbftClient per unit to drive
// local-commit (§IV-B); clients are their own (co-located) network nodes.
#ifndef BLOCKPLANE_PBFT_CLIENT_H_
#define BLOCKPLANE_PBFT_CLIENT_H_

#include <functional>
#include <map>
#include <set>
#include <utility>

#include "common/trace.h"
#include "net/network.h"
#include "pbft/config.h"
#include "pbft/message.h"

namespace blockplane::pbft {

class PbftClient : public net::Host {
 public:
  /// Called with the sequence number the group assigned to the request.
  using DoneCallback = std::function<void(uint64_t seq)>;

  PbftClient(net::Network* network, PbftConfig config, net::NodeId self);
  ~PbftClient() override;
  BP_DISALLOW_COPY_AND_ASSIGN(PbftClient);

  /// Submits a value for total-order commit. Multiple requests may be
  /// outstanding; each completes via its own callback. `trace_id` (if
  /// non-zero) tags every message of the request's PBFT round for causal
  /// tracing.
  void Submit(Bytes value, DoneCallback done, TraceId trace_id = kNoTrace);

  void HandleMessage(const net::Message& msg) override;

  /// Immediately re-broadcasts every pending request (same req_ids — never
  /// a re-Submit, which would mint new ids and risk double commits) and
  /// re-arms the retry timers. Used by the participant's geo gap-fill path:
  /// the broadcast reaches the backups, whose censored-request watchdogs
  /// then force a view change against a geo-reordering leader
  /// (DESIGN.md §10).
  void NudgePending();

  net::NodeId self() const { return self_; }
  uint64_t completed() const { return completed_; }
  size_t pending() const { return pending_.size(); }

 private:
  struct PendingRequest {
    Bytes value;
    DoneCallback done;
    /// (seq, result digest) -> replica indices that replied with exactly
    /// that outcome. Keying on the digest too is what makes f+1 "matching"
    /// replies actually match (seq alone cannot tell divergent states
    /// apart).
    std::map<std::pair<uint64_t, crypto::Digest>, std::set<int32_t>> votes;
    sim::EventId retry_timer = sim::kInvalidEventId;
    bool broadcast = false;
    TraceId trace = kNoTrace;
    sim::SimTime submitted_at = 0;
  };

  void SendRequest(uint64_t req_id, bool broadcast);
  void ArmRetry(uint64_t req_id);

  net::Network* network_;
  sim::Simulator* sim_;
  PbftConfig config_;
  net::NodeId self_;
  uint64_t token_;
  uint64_t next_req_id_ = 1;
  uint64_t completed_ = 0;
  /// Best guess of the current leader (updated from reply views).
  uint64_t view_hint_ = 0;
  std::map<uint64_t, PendingRequest> pending_;
};

}  // namespace blockplane::pbft

#endif  // BLOCKPLANE_PBFT_CLIENT_H_
