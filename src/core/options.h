// Deployment-wide Blockplane options.
#ifndef BLOCKPLANE_CORE_OPTIONS_H_
#define BLOCKPLANE_CORE_OPTIONS_H_

#include "sim/sim_time.h"

namespace blockplane::common {
class Runner;
}  // namespace blockplane::common

namespace blockplane::core {

/// Adaptive per-destination window control (DESIGN.md §13). Off by
/// default: no controllers are constructed and every window/retry knob in
/// BlockplaneOptions behaves exactly as its static value, keeping the
/// paper figures and golden traces bit-identical.
struct CongestionOptions {
  /// Master switch: AIMD WindowControllers replace the static
  /// pbft/participant/daemon window knobs (which become initial values)
  /// and retransmission timers derive from smoothed per-destination RTT.
  bool adaptive = false;
  /// Window clamp bounds for every controller.
  uint64_t min_window = 1;
  uint64_t max_window = 64;
  /// Starting window; 0 inherits the static knob the controller replaces
  /// (daemon_window / participant_window / pbft_window), which is what
  /// keeps a lossless adaptive run on the static schedule.
  uint64_t initial_window = 0;
  /// Floor for RTT-derived retransmission timeouts: a too-optimistic
  /// estimate must not cause a spurious-retransmission storm.
  sim::SimTime min_rto = sim::Milliseconds(5);
};

/// Quorum-certificate aggregation (DESIGN.md §14). Off by default: records
/// carry plain f_i+1 signature vectors and every hop runs VerifyProof, so
/// fig4–fig8, golden traces, and same-seed JSON exports stay bit-identical.
struct QuorumCertOptions {
  /// Master switch: completed proofs are compressed into one compact
  /// crypto::QuorumCert per (decision, site), carried on the wire in place
  /// of the signature vector, and verified once per receiver through the
  /// KeyStore's digest-keyed cert cache.
  bool enabled = false;
};

struct BlockplaneOptions {
  /// Tolerated independent byzantine failures per unit (f_i). Each
  /// participant runs 3*fi + 1 Blockplane nodes.
  int fi = 1;
  /// Tolerated benign geo-correlated (datacenter) failures (f_g). When
  /// positive, each participant mirrors its Local Log on its 2*fg closest
  /// participants and commits require proofs from fg of them.
  int fg = 0;

  /// PBFT view-change timeout inside a unit (intra-datacenter).
  sim::SimTime local_view_timeout = sim::Milliseconds(60);
  /// Client retry for local commits.
  sim::SimTime local_client_retry = sim::Milliseconds(120);
  /// Checkpoint interval for unit logs.
  uint64_t checkpoint_interval = 128;

  /// Retransmission period for unacked transmission records.
  sim::SimTime transmission_retry = sim::Milliseconds(500);
  /// Transmissions a communication daemon keeps in flight per destination.
  /// 1 disables pipelining (each record waits for the previous record's
  /// f_i+1 acks — one extra RTT per message under load).
  size_t daemon_window = 32;
  /// How often reserve nodes poll remote units for reception progress.
  sim::SimTime reserve_poll_interval = sim::Milliseconds(800);
  /// Send/receive watermark gap (in records) that makes a reserve suspect
  /// the active communication daemon; the gap must persist across two
  /// consecutive polls before the reserve takes over.
  uint64_t reserve_gap_threshold = 1;

  /// Time a geo-replicated commit waits for mirror proofs before retrying
  /// the replicate round.
  sim::SimTime geo_retry = sim::Milliseconds(400);

  /// Sliding-window pipelining knobs (DESIGN.md §9). The defaults (all 1)
  /// reproduce the paper's stop-and-wait behaviour exactly; larger values
  /// pipeline the corresponding layer while keeping application-visible
  /// semantics (in-order execution, in-order completion callbacks).
  ///
  /// Concurrently outstanding PBFT proposals per unit/mirror leader.
  uint64_t pbft_window = 1;
  /// Concurrently in-flight geo ops per participant (local commits, geo
  /// rounds, and mirror acks proceed concurrently keyed by geo position;
  /// completion callbacks still fire in submission order).
  uint64_t participant_window = 1;
  /// Concurrently in-flight group-commit batches per Batcher. 1 preserves
  /// the paper's §VI-C group-commit rule.
  size_t batcher_in_flight = 1;

  /// Adaptive per-destination congestion control over the three windows
  /// above (DESIGN.md §13). congestion.adaptive defaults to false.
  CongestionOptions congestion;

  /// Quorum-certificate aggregation (DESIGN.md §14). qc.enabled defaults
  /// to false.
  QuorumCertOptions qc;

  /// Bench-mode switches mirroring the paper's prototype, which "does not
  /// implement creating and checking signatures and digests".
  bool hash_payloads = true;
  bool sign_messages = true;

  /// Parallel-runtime seam (DESIGN.md §12): the Runner every node of the
  /// deployment routes message prologues through (also handed to each
  /// node's PBFT replica). nullptr selects the process-wide InlineRunner —
  /// seed behavior, deterministic; the threaded harnesses inject a
  /// ThreadPoolRunner whose submitting thread is the delivery thread.
  common::Runner* runner = nullptr;

  /// When positive, each node keeps only this many recent non-communication
  /// Local Log entries in memory (communication records stay until their
  /// transmissions are acknowledged). Benches with multi-megabyte batches
  /// use this to bound memory; 0 keeps everything (tests).
  uint64_t prune_applied_log = 0;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_OPTIONS_H_
