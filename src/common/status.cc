#include "common/status.h"

namespace blockplane {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += rep_->message;
  return result;
}

}  // namespace blockplane
