// Fixture: BP001 clean — unordered containers are fine as long as the
// iteration order never escapes; exporters sort keys first.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

struct Encoder {
  void PutU64(unsigned long long v);
  void PutU32(unsigned v);
};

class PeerTable {
 public:
  // Sort the keys before emission: deterministic bytes.
  void EncodePeers(Encoder* enc) const {
    std::vector<std::pair<unsigned, unsigned long long>> sorted_peers(
        peers_.begin(), peers_.end());
    std::sort(sorted_peers.begin(), sorted_peers.end());
    for (const auto& [id, seq] : sorted_peers) {
      enc->PutU32(id);
      enc->PutU64(seq);
    }
  }

  // Order-independent aggregation over an unordered container is fine.
  unsigned long long TotalSeq() const {
    unsigned long long total = 0;
    for (const auto& [id, seq] : peers_) {
      total += seq;
    }
    return total;
  }

  // An ordered container iterates deterministically by construction.
  void EncodeAcked(Encoder* enc) const {
    for (const auto& [id, seq] : acked_) {
      enc->PutU32(id);
      enc->PutU64(seq);
    }
  }

  // A justified, documented exception uses the suppression syntax.
  void EncodeSingleton(Encoder* enc) const {
    // bplint:allow(BP001) the map holds at most one element by invariant
    for (const auto& [id, seq] : peers_) {
      enc->PutU32(id);
    }
  }

 private:
  std::unordered_map<unsigned, unsigned long long> peers_;
  std::map<unsigned, unsigned long long> acked_;
};
