// Unit tests for the network model: topology (Table I), latency/bandwidth
// cost model, fault injection, and counters.
#include "net/network.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::net {
namespace {

using sim::Milliseconds;
using sim::MillisecondsD;
using sim::Microseconds;
using sim::SimTime;

TEST(TopologyTest, Aws4MatchesTableI) {
  Topology topo = Topology::Aws4();
  ASSERT_EQ(topo.num_sites(), 4);
  EXPECT_EQ(topo.site_name(kCalifornia), "California");
  EXPECT_EQ(topo.Rtt(kCalifornia, kOregon), Milliseconds(19));
  EXPECT_EQ(topo.Rtt(kCalifornia, kVirginia), Milliseconds(61));
  EXPECT_EQ(topo.Rtt(kCalifornia, kIreland), Milliseconds(130));
  EXPECT_EQ(topo.Rtt(kOregon, kVirginia), Milliseconds(79));
  EXPECT_EQ(topo.Rtt(kOregon, kIreland), Milliseconds(132));
  EXPECT_EQ(topo.Rtt(kVirginia, kIreland), Milliseconds(70));
  // Symmetry and zero diagonal.
  for (int a = 0; a < 4; ++a) {
    EXPECT_EQ(topo.Rtt(a, a), 0);
    for (int b = 0; b < 4; ++b) EXPECT_EQ(topo.Rtt(a, b), topo.Rtt(b, a));
  }
}

TEST(TopologyTest, ProximityOrder) {
  Topology topo = Topology::Aws4();
  // California's closest site is Oregon, then Virginia, then Ireland.
  EXPECT_EQ(topo.SitesByProximity(kCalifornia),
            (std::vector<int>{kOregon, kVirginia, kIreland}));
  EXPECT_EQ(topo.RttToKthClosest(kCalifornia, 1), Milliseconds(19));
  EXPECT_EQ(topo.RttToKthClosest(kCalifornia, 2), Milliseconds(61));
  // Virginia's RTTs: C 61, I 70, O 79.
  EXPECT_EQ(topo.SitesByProximity(kVirginia),
            (std::vector<int>{kCalifornia, kIreland, kOregon}));
}

TEST(TopologyTest, ParseRoundTripsTableI) {
  auto parsed = Topology::Parse(
      "C,O,V,I; C-O:19 C-V:61 C-I:130 O-V:79 O-I:132 V-I:70");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Topology aws = Topology::Aws4();
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(parsed->Rtt(a, b), aws.Rtt(a, b)) << a << "," << b;
    }
  }
  EXPECT_EQ(parsed->site_name(0), "C");
}

TEST(TopologyTest, ParseRejectsMalformedSpecs) {
  EXPECT_TRUE(Topology::Parse("no separator").status().IsInvalidArgument());
  EXPECT_TRUE(Topology::Parse("A; ").status().IsInvalidArgument());
  // Missing pair.
  EXPECT_TRUE(Topology::Parse("A,B,C; A-B:10 A-C:20")
                  .status()
                  .IsInvalidArgument());
  // Unknown site.
  EXPECT_TRUE(Topology::Parse("A,B; A-X:10").status().IsInvalidArgument());
  // Duplicate pair.
  EXPECT_TRUE(Topology::Parse("A,B; A-B:10 B-A:20")
                  .status()
                  .IsInvalidArgument());
  // Bad number.
  EXPECT_TRUE(Topology::Parse("A,B; A-B:fast").status().IsInvalidArgument());
  // Self pair.
  EXPECT_TRUE(Topology::Parse("A,B; A-A:1 A-B:2")
                  .status()
                  .IsInvalidArgument());
}

TEST(TopologyTest, ParsedTopologyDrivesTheNetwork) {
  auto parsed = Topology::Parse("east,west; east-west:42");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Rtt(0, 1), Milliseconds(42));
  EXPECT_EQ(parsed->SitesByProximity(0), std::vector<int>{1});
}

// The programmatic factory validates the matrix instead of CHECK-failing:
// a malformed topology from config/flags surfaces as InvalidArgument the
// caller can report, not a process abort.
TEST(TopologyTest, CreateValidatesTheRttMatrix) {
  EXPECT_TRUE(Topology::Create({}, {}).status().IsInvalidArgument())
      << "zero sites";
  EXPECT_TRUE(Topology::Create({"A", "B"}, {{0, 1}})
                  .status()
                  .IsInvalidArgument())
      << "row count must match the site count";
  EXPECT_TRUE(Topology::Create({"A", "B"}, {{0, 1}, {1}})
                  .status()
                  .IsInvalidArgument())
      << "ragged row";
  EXPECT_TRUE(Topology::Create({"A", "B"}, {{0, -5}, {-5, 0}})
                  .status()
                  .IsInvalidArgument())
      << "negative RTT";
  EXPECT_TRUE(Topology::Create({"A", "B"}, {{0, 10}, {20, 0}})
                  .status()
                  .IsInvalidArgument())
      << "asymmetric RTT";
  EXPECT_TRUE(Topology::Create({"A", "B"}, {{3, 10}, {10, 0}})
                  .status()
                  .IsInvalidArgument())
      << "nonzero self-RTT";

  auto ok = Topology::Create({"A", "B"}, {{0, 10}, {10, 0}});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().num_sites(), 2);
  EXPECT_EQ(ok.value().Rtt(0, 1), Milliseconds(10));
  EXPECT_EQ(ok.value().site_name(0), "A");
}

TEST(TopologyTest, UniformAndSingleSite) {
  Topology uniform = Topology::Uniform(5, 10.0);
  EXPECT_EQ(uniform.num_sites(), 5);
  EXPECT_EQ(uniform.Rtt(0, 4), Milliseconds(10));
  Topology single = Topology::SingleSite();
  EXPECT_EQ(single.num_sites(), 1);
}

class RecordingHost : public Host {
 public:
  void HandleMessage(const Message& msg) override {
    messages.push_back(msg);
    receive_times.push_back(simulator->Now());
  }
  std::vector<Message> messages;
  std::vector<SimTime> receive_times;
  sim::Simulator* simulator = nullptr;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : simulator_(1) {
    options_.jitter_frac = 0.0;  // deterministic latency for assertions
    options_.per_message_cpu = 0;
    options_.header_bytes = 0;
    network_ = std::make_unique<Network>(&simulator_, Topology::Aws4(),
                                         options_);
    for (auto& host : hosts_) host.simulator = &simulator_;
  }

  void RegisterHost(NodeId id, int slot) {
    network_->Register(id, &hosts_[slot]);
  }

  sim::Simulator simulator_;
  NetworkOptions options_;
  std::unique_ptr<Network> network_;
  RecordingHost hosts_[4];
};

TEST_F(NetworkTest, WanLatencyIsOneWayRtt) {
  RegisterHost({kOregon, 0}, 0);
  Message msg;
  msg.src = {kCalifornia, 0};
  msg.dst = {kOregon, 0};
  msg.type = 7;
  msg.set_body(ToBytes("x"));
  network_->Send(msg);
  simulator_.Run();
  ASSERT_EQ(hosts_[0].messages.size(), 1u);
  // One byte at 640 MB/s is ~1.5 ns; one-way C-O is 9.5 ms.
  EXPECT_NEAR(sim::ToMillis(hosts_[0].receive_times[0]), 9.5, 0.001);
  EXPECT_EQ(hosts_[0].messages[0].type, 7u);
}

TEST_F(NetworkTest, IntraSiteLatency) {
  RegisterHost({kCalifornia, 1}, 0);
  Message msg;
  msg.src = {kCalifornia, 0};
  msg.dst = {kCalifornia, 1};
  network_->Send(msg);
  simulator_.Run();
  ASSERT_EQ(hosts_[0].messages.size(), 1u);
  EXPECT_EQ(hosts_[0].receive_times[0], options_.intra_site_one_way);
}

TEST_F(NetworkTest, NicSerializationIsFifoPerSender) {
  // Two 640 KB messages sent back-to-back from one node share its NIC:
  // the second is delayed by the first's 1 ms serialization time.
  RegisterHost({kCalifornia, 1}, 0);
  RegisterHost({kCalifornia, 2}, 1);
  Message a;
  a.src = {kCalifornia, 0};
  a.dst = {kCalifornia, 1};
  a.set_body(Bytes(640000, 0));
  Message b = a;
  b.dst = {kCalifornia, 2};
  network_->Send(a);
  network_->Send(b);
  simulator_.Run();
  ASSERT_EQ(hosts_[0].messages.size(), 1u);
  ASSERT_EQ(hosts_[1].messages.size(), 1u);
  double t1 = sim::ToMillis(hosts_[0].receive_times[0]);
  double t2 = sim::ToMillis(hosts_[1].receive_times[0]);
  EXPECT_NEAR(t1, 0.25 + 1.0, 0.01);        // serialize + propagate
  EXPECT_NEAR(t2, 0.25 + 2.0, 0.01);        // queued behind the first
}

TEST_F(NetworkTest, PerMessageCpuSerializesAtReceiver) {
  options_.per_message_cpu = Microseconds(100);
  network_ = std::make_unique<Network>(&simulator_, Topology::Aws4(),
                                       options_);
  RegisterHost({kCalifornia, 1}, 0);
  // Two tiny messages from different senders arrive together; the receiver
  // processes them serially.
  for (int sender : {0, 2}) {
    Message m;
    m.src = {kCalifornia, sender};
    m.dst = {kCalifornia, 1};
    network_->Send(m);
  }
  simulator_.Run();
  ASSERT_EQ(hosts_[0].messages.size(), 2u);
  SimTime gap = hosts_[0].receive_times[1] - hosts_[0].receive_times[0];
  EXPECT_EQ(gap, Microseconds(100));
}

TEST_F(NetworkTest, CrashedNodeIsSilent) {
  RegisterHost({kOregon, 0}, 0);
  network_->Crash({kOregon, 0});
  Message msg;
  msg.src = {kCalifornia, 0};
  msg.dst = {kOregon, 0};
  network_->Send(msg);
  simulator_.Run();
  EXPECT_TRUE(hosts_[0].messages.empty());
  EXPECT_EQ(network_->counters().Get("dropped_messages"), 1);

  network_->Recover({kOregon, 0});
  network_->Send(msg);
  simulator_.Run();
  EXPECT_EQ(hosts_[0].messages.size(), 1u);
}

TEST_F(NetworkTest, CrashDuringFlightDropsDelivery) {
  RegisterHost({kOregon, 0}, 0);
  Message msg;
  msg.src = {kCalifornia, 0};
  msg.dst = {kOregon, 0};
  network_->Send(msg);
  // Crash the destination while the message is in flight (one-way 9.5 ms).
  simulator_.Schedule(Milliseconds(1),
                      [&] { network_->Crash({kOregon, 0}); });
  simulator_.Run();
  EXPECT_TRUE(hosts_[0].messages.empty());
}

TEST_F(NetworkTest, SiteCrashSilencesAllNodes) {
  RegisterHost({kOregon, 0}, 0);
  RegisterHost({kOregon, 1}, 1);
  network_->CrashSite(kOregon);
  EXPECT_TRUE(network_->IsSiteCrashed(kOregon));
  EXPECT_TRUE(network_->IsCrashed({kOregon, 3}));
  for (int i = 0; i < 2; ++i) {
    Message m;
    m.src = {kCalifornia, 0};
    m.dst = {kOregon, i};
    network_->Send(m);
  }
  simulator_.Run();
  EXPECT_TRUE(hosts_[0].messages.empty());
  EXPECT_TRUE(hosts_[1].messages.empty());
  network_->RecoverSite(kOregon);
  EXPECT_FALSE(network_->IsCrashed({kOregon, 0}));
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  RegisterHost({kCalifornia, 0}, 0);
  RegisterHost({kOregon, 0}, 1);
  network_->PartitionSites(kCalifornia, kOregon);
  Message m;
  m.src = {kCalifornia, 0};
  m.dst = {kOregon, 0};
  network_->Send(m);
  Message r;
  r.src = {kOregon, 0};
  r.dst = {kCalifornia, 0};
  network_->Send(r);
  simulator_.Run();
  EXPECT_TRUE(hosts_[0].messages.empty());
  EXPECT_TRUE(hosts_[1].messages.empty());
  network_->HealPartition(kOregon, kCalifornia);
  network_->Send(m);
  simulator_.Run();
  EXPECT_EQ(hosts_[1].messages.size(), 1u);
}

TEST_F(NetworkTest, CountersDistinguishLanAndWan) {
  RegisterHost({kCalifornia, 1}, 0);
  RegisterHost({kOregon, 0}, 1);
  Message lan;
  lan.src = {kCalifornia, 0};
  lan.dst = {kCalifornia, 1};
  lan.set_body(Bytes(100, 0));
  Message wan;
  wan.src = {kCalifornia, 0};
  wan.dst = {kOregon, 0};
  wan.set_body(Bytes(200, 0));
  network_->Send(lan);
  network_->Send(wan);
  simulator_.Run();
  EXPECT_EQ(network_->counters().Get("lan_messages"), 1);
  EXPECT_EQ(network_->counters().Get("wan_messages"), 1);
  EXPECT_EQ(network_->counters().Get("lan_bytes"), 100);
  EXPECT_EQ(network_->counters().Get("wan_bytes"), 200);
}

TEST_F(NetworkTest, DropProbabilityOneDropsEverything) {
  RegisterHost({kOregon, 0}, 0);
  network_->set_drop_prob(1.0);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.src = {kCalifornia, 0};
    m.dst = {kOregon, 0};
    network_->Send(m);
  }
  simulator_.Run();
  EXPECT_TRUE(hosts_[0].messages.empty());
  EXPECT_EQ(network_->counters().Get("dropped_messages"), 10);
}

TEST_F(NetworkTest, CorruptionFlipsPayloadByte) {
  RegisterHost({kOregon, 0}, 0);
  network_->set_corrupt_prob(1.0);
  Message m;
  m.src = {kCalifornia, 0};
  m.dst = {kOregon, 0};
  m.set_body(ToBytes("hello"));
  network_->Send(m);
  simulator_.Run();
  ASSERT_EQ(hosts_[0].messages.size(), 1u);
  EXPECT_NE(hosts_[0].messages[0].body(), ToBytes("hello"));
}

TEST_F(NetworkTest, UnregisteredDestinationCountsAsDrop) {
  Message m;
  m.src = {kCalifornia, 0};
  m.dst = {kIreland, 2};
  network_->Send(m);
  simulator_.Run();
  EXPECT_EQ(network_->counters().Get("dropped_messages"), 1);
}

}  // namespace
}  // namespace blockplane::net
