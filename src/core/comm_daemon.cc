#include "core/comm_daemon.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/runner.h"
#include "common/trace.h"
#include "core/congestion.h"
#include "core/node.h"
#include "core/wire.h"

namespace blockplane::core {

CommDaemon::CommDaemon(BlockplaneNode* host, net::SiteId dest, bool reserve)
    : host_(host), dest_(dest), active_(!reserve) {
  if (host_->options_.congestion.adaptive) {
    // Per-destination flight window (DESIGN.md §13). The RTT prior is the
    // topology round trip plus an intra-site allowance for the remote
    // commit the ack waits on; measured samples take over immediately.
    const CongestionOptions& c = host_->options_.congestion;
    uint64_t initial =
        c.initial_window != 0
            ? c.initial_window
            : std::max<uint64_t>(1, host_->options_.daemon_window);
    sim::SimTime prior =
        host_->network()->topology().Rtt(host_->self().site, dest_) +
        4 * host_->network()->options().intra_site_one_way;
    window_ctl_ = std::make_unique<WindowController>(
        c, initial, prior,
        "daemon_s" + std::to_string(host_->self().site) + "n" +
            std::to_string(host_->self().index) + "_to_s" +
            std::to_string(dest_));
  }
  if (reserve) PollReceiver();
}

CommDaemon::~CommDaemon() {
  sim::Simulator* simulator = host_->network()->simulator();
  for (auto& [pos, flight] : flights_) {
    simulator->Cancel(flight.retransmit_timer);
  }
  simulator->Cancel(poll_timer_);
}

void CommDaemon::NotifyLogAppend() { PumpPipeline(); }

void CommDaemon::OnMessage(const net::Message& msg) {
  switch (msg.type) {
    case kTransmissionAck:
      OnTransmissionAck(msg);
      break;
    case kRecvStatusReply:
      OnRecvStatusReply(msg);
      break;
    default:
      // kAttestResponse arrives pre-decoded via OnAttestResponseDecoded:
      // the host node's prologue does the decode off the delivery thread.
      break;
  }
}

void CommDaemon::PumpPipeline() {
  if (!active_) return;
  // Algorithm 2's scan, resumed from the send cursor, windowed.
  auto comm_it = host_->comm_positions_.find(dest_);
  if (comm_it == host_->comm_positions_.end()) return;
  const std::vector<uint64_t>& positions = comm_it->second;

  // Flight admission: the adaptive controller's current window when one
  // is installed, the static knob otherwise.
  size_t window = window_ctl_ ? static_cast<size_t>(window_ctl_->window())
                              : host_->options_.daemon_window;

  // Phase 1: build the new flights and collect their attestation bodies
  // (digest + canonical encode — the CPU-heavy part of the scan).
  std::vector<uint64_t> new_positions;
  std::vector<crypto::SignJob> jobs;
  auto pos_it = std::upper_bound(positions.begin(), positions.end(),
                                 std::max(next_send_pos_, acked_pos_));
  bool geo_proof_wait = false;
  for (; pos_it != positions.end() && flights_.size() < window; ++pos_it) {
    uint64_t pos = *pos_it;
    const LogRecord& record = host_->log_.at(pos);

    // With geo-correlated tolerance, transmissions must carry the mirror
    // proofs; wait until the participant bundles them (§V). Under
    // qc.enabled the bundle carries compact certs instead (possibly with
    // an empty signature vector) — both ride the flight as-is.
    std::vector<crypto::Signature> geo_proof;
    std::vector<crypto::QuorumCert> geo_certs;
    if (host_->options_.fg > 0) {
      auto proof_it = host_->geo_proofs_.find(pos);
      if (proof_it == host_->geo_proofs_.end()) {
        geo_proof_wait = true;  // blocked on proofs, not on the window
        break;                  // keep order
      }
      geo_proof = proof_it->second;
      auto cert_it = host_->geo_proof_certs_.find(pos);
      if (cert_it != host_->geo_proof_certs_.end()) {
        geo_certs = cert_it->second;
      }
    }

    Flight& flight = flights_[pos];
    flight.record.src_site = host_->origin_site();
    flight.record.dest_site = dest_;
    flight.record.src_log_pos = pos;
    flight.record.prev_src_log_pos =
        pos_it == positions.begin() ? 0 : *(pos_it - 1);
    flight.record.routine_id = record.routine_id;
    flight.record.payload = record.payload;
    flight.record.geo_pos = record.geo_pos;
    flight.record.geo_proof = std::move(geo_proof);
    flight.record.geo_certs = std::move(geo_certs);
    next_send_pos_ = pos;

    crypto::Digest digest = flight.record.ContentDigest();
    new_positions.push_back(pos);
    jobs.push_back(crypto::SignJob{
        AttestCanonical(AttestPurpose::kTransmission, flight.record.src_site,
                        pos, digest)});
  }
  // Stall accounting: an *episode* opens when admission is blocked purely
  // by the flight window while sendable work remains, and closes on any
  // admission (partial drains count). Counting per pump invocation would
  // inflate the metric with poll ticks.
  if (!new_positions.empty()) window_stalled_ = false;
  if (!geo_proof_wait && pos_it != positions.end() &&
      flights_.size() >= window && !window_stalled_) {
    window_stalled_ = true;
    ++pipeline_stats().daemon_window_stalls;
  }
  if (jobs.empty()) return;

  // Phase 2: self-attest the whole batch. Fans out to workers when the
  // host's Runner is threaded; under the InlineRunner this degenerates to
  // the seed's per-record Sign loop. Signing sends nothing, so batching
  // here cannot reorder the send sequence phase 3 produces.
  host_->signer_->SignBatch(&jobs, host_->runner());

  // Phase 3: collect f_i+1 signatures for the validity of P from local
  // nodes (our own plus f_i others) and ship, in scan order.
  for (size_t i = 0; i < new_positions.size(); ++i) {
    Flight& flight = flights_.at(new_positions[i]);
    flight.record.sigs.push_back(jobs[i].sig);
    if (static_cast<int>(flight.record.sigs.size()) >=
        host_->options_.fi + 1) {
      flight.sigs_complete = true;
      FinalizeProof(&flight);
      if (window_ctl_) {
        TransmitReady();  // in-order shipping (see TransmitReady)
      } else {
        Transmit(flight, /*widen=*/false);
      }
    } else {
      RequestAttestations(new_positions[i]);
    }
    ArmRetransmit(new_positions[i]);
  }
}

void CommDaemon::RequestAttestations(uint64_t pos) {
  AttestRequestMsg request;
  request.purpose = AttestPurpose::kTransmission;
  request.pos = pos;
  request.dest_site = dest_;
  Bytes encoded = request.Encode();
  for (const net::NodeId& peer : host_->replica()->config().nodes) {
    if (peer == host_->self()) continue;
    host_->SendTo(peer, kAttestRequest, Bytes(encoded));
  }
}

void CommDaemon::OnAttestResponseDecoded(net::NodeId src,
                                         const AttestResponseMsg& response) {
  if (response.sig.signer != src) return;  // also checked by the prologue
  auto it = flights_.find(response.pos);
  if (it == flights_.end() || it->second.sigs_complete) return;
  Flight& flight = it->second;
  if (!host_->options_.sign_messages) {
    ApplyAttestation(response.pos, response.sig);
    return;
  }
  // Capture-at-submit: the canonical bytes come from the flight as it
  // exists right now (we are on the retire thread, where flight state is
  // safe to read); the worker verifies the MAC over that immutable copy
  // and the ordered epilogue re-validates the flight before applying.
  auto canonical = std::make_shared<Bytes>(AttestCanonical(
      AttestPurpose::kTransmission, flight.record.src_site,
      flight.record.src_log_pos, flight.record.ContentDigest()));
  uint64_t pos = response.pos;
  crypto::Signature sig = response.sig;
  common::Runner* runner = host_->runner();
  runner->RunPrologue(
      [this, runner, canonical, pos, sig]() -> common::Runner::Epilogue {
        bool ok = runner->serial()
                      ? host_->keys()->Verify(*canonical, sig)
                      : host_->keys()->VerifyDetached(*canonical, sig);
        if (!ok) return nullptr;
        return [this, pos, sig] { ApplyAttestation(pos, sig); };
      });
}

void CommDaemon::FinalizeProof(Flight* flight) {
  if (!host_->options_.qc.enabled || !host_->options_.sign_messages) return;
  // Compress the completed f_i+1 signature set into one compact cert
  // (DESIGN.md §14). The constituent MACs were either produced by this
  // node's own signer or verified on arrival (ApplyAttestation's verify
  // prologue), so the aggregation is over trusted material. The vector is
  // dropped: every Transmit of this flight — including widened
  // retransmissions — now ships 48 proof bytes instead of 40*(f_i+1).
  TransmissionRecord& record = flight->record;
  record.sig_certs = {
      crypto::BuildQuorumCert(record.src_site, record.sigs)};
  record.sigs.clear();
  qc_stats().certs_built++;
}

void CommDaemon::ApplyAttestation(uint64_t pos, const crypto::Signature& sig) {
  auto it = flights_.find(pos);
  if (it == flights_.end() || it->second.sigs_complete) return;
  Flight& flight = it->second;
  for (const crypto::Signature& existing : flight.record.sigs) {
    if (existing.signer == sig.signer) return;  // duplicate
  }
  flight.record.sigs.push_back(sig);
  if (static_cast<int>(flight.record.sigs.size()) < host_->options_.fi + 1) {
    return;
  }
  flight.sigs_complete = true;
  FinalizeProof(&flight);
  if (window_ctl_) {
    // In-order shipping: this flight may have been blocking later
    // sigs-complete flights, and it may itself be blocked behind an
    // earlier one still collecting signatures.
    TransmitReady();
    // The pending timer was armed with the attest-retry period while
    // signatures were outstanding; re-arm so the first wire retransmit
    // uses the measured, per-destination timeout.
    host_->network()->simulator()->Cancel(flight.retransmit_timer);
    flight.retransmit_timer = sim::kInvalidEventId;
    ArmRetransmit(pos);
    return;
  }
  Transmit(flight, /*widen=*/false);
}

void CommDaemon::TransmitReady() {
  // First transmissions go on the wire strictly in log order (adaptive
  // mode): the receiver rejects any record that does not extend its chain
  // watermark, so shipping a later record while an earlier one is still
  // collecting signatures produces guaranteed rejections and an RTO-sized
  // recovery stall once the stragglers finally arrive. (The static path
  // keeps the seed's ship-on-completion behavior bit-identically.)
  for (auto& [pos, flight] : flights_) {
    if (!flight.sigs_complete) break;
    if (flight.first_transmit == 0) Transmit(flight, /*widen=*/false);
  }
}

void CommDaemon::Transmit(Flight& flight, bool widen) {
  if (muted_) return;  // byzantine: pretends to send
  flight.last_transmit = host_->network()->simulator()->Now();
  if (flight.first_transmit == 0) {
    flight.first_transmit = flight.last_transmit;
  }
  Tracer& tr = tracer();
  if (tr.enabled()) {
    TraceId trace = tr.LookupCommRecord(host_->origin_site(),
                                        flight.record.src_log_pos);
    if (trace != kNoTrace) {
      sim::SimTime now = host_->network()->simulator()->Now();
      // First-wins: retransmissions do not move the milestone.
      tr.Mark(trace, "transmitted", now);
      tr.Instant(trace, "transmit", "geo", now, host_->self().site,
                 host_->self().index, flight.record.src_log_pos);
    }
  }
  // Send P and the f_i+1 signatures to Blockplane nodes in the destination.
  // Initially f_i+1 receivers suffice; retransmissions widen to the whole
  // unit in case some of the first picks are faulty.
  int receivers = widen ? 3 * host_->options_.fi + 1 : host_->options_.fi + 1;
  Bytes encoded = flight.record.Encode();
  // Proof-byte accounting for the QC ablation (serial thread — the encode
  // batch helpers never run this): the exact wire bytes the proof material
  // (signature vectors or certs) contributes, once per receiver.
  {
    Encoder proof_enc;
    crypto::EncodeProof(&proof_enc, flight.record.sigs);
    crypto::EncodeProof(&proof_enc, flight.record.geo_proof);
    if (!flight.record.sig_certs.empty() ||
        !flight.record.geo_certs.empty()) {
      crypto::EncodeCertList(&proof_enc, flight.record.sig_certs);
      crypto::EncodeCertList(&proof_enc, flight.record.geo_certs);
    }
    qc_stats().wan_proof_bytes +=
        static_cast<int64_t>(receivers * proof_enc.buffer().size());
  }
  for (int i = 0; i < receivers; ++i) {
    host_->SendTo(net::NodeId{dest_, i}, kTransmission, Bytes(encoded));
  }
}

void CommDaemon::ArmRetransmit(uint64_t pos) {
  sim::Simulator* simulator = host_->network()->simulator();
  auto it = flights_.find(pos);
  if (it == flights_.end()) return;
  // Signature collection is intra-site; only the wire retransmit (sigs
  // complete, record in flight to dest_) uses the measured RTO.
  sim::SimTime period = host_->options_.transmission_retry;
  if (window_ctl_) {
    if (it->second.sigs_complete) {
      period = window_ctl_->RetryTimeout(host_->options_.congestion.min_rto,
                                         host_->options_.transmission_retry);
    } else {
      // Attestation round trips are a couple of intra-site hops; retrying
      // a lost attest response on the WAN-scale static period would park
      // the flight (and everything chained behind it) for half a second.
      period = std::max(host_->options_.congestion.min_rto,
                        8 * host_->network()->options().intra_site_one_way);
    }
  }
  it->second.retransmit_timer =
      simulator->Schedule(period, [this, pos, period]() {
        auto flight_it = flights_.find(pos);
        if (flight_it == flights_.end()) return;
        flight_it->second.retransmit_timer = sim::kInvalidEventId;
        OnRetransmitTimer(pos, period);
      });
}

void CommDaemon::OnRetransmitTimer(uint64_t pos, sim::SimTime period) {
  auto it = flights_.find(pos);
  if (it == flights_.end()) return;
  Flight& flight = it->second;
  if (!flight.sigs_complete) {
    RequestAttestations(pos);
    ArmRetransmit(pos);
    return;
  }
  if (window_ctl_ && flight.first_transmit == 0) {
    // Never been on the wire: blocked behind an earlier flight still
    // collecting signatures (in-order shipping). TransmitReady ships it
    // the moment the chain ahead completes; keep the timer as a backstop.
    TransmitReady();
    ArmRetransmit(pos);
    return;
  }
  if (window_ctl_ && flight.first_transmit != 0) {
    sim::Simulator* simulator = host_->network()->simulator();
    sim::SimTime now = simulator->Now();
    // Progress-deferred timeout: the receiver commits in order, so flowing
    // acks prove the path (and the stream ahead of this flight) is alive.
    // A timeout only counts once nothing progressed for a full RTO since
    // the last transmission — otherwise the destination-side commit queue
    // under a deep window would make every flight's timer fire spuriously,
    // and Karn's rule would then starve the estimator of samples for good.
    sim::SimTime deadline =
        std::max(flight.last_transmit, last_progress_) + period;
    if (now < deadline) {
      flight.retransmit_timer =
          simulator->Schedule(deadline - now, [this, pos, period]() {
            auto again = flights_.find(pos);
            if (again == flights_.end()) return;
            again->second.retransmit_timer = sim::kInvalidEventId;
            OnRetransmitTimer(pos, period);
          });
      return;
    }
    // The receiver validates the chain pointer strictly (no out-of-order
    // buffering), so a dropped head means every trailing flight that
    // arrived meanwhile was rejected too: all of them must retransmit.
    // Only the head's timeout is a *loss signal*, though — the trailing
    // timeouts are a symptom of the same head-of-line event.
    flight.retransmitted = true;  // Karn: no RTT sample from this flight
    if (flights_.begin()->first == pos) {
      uint64_t before = window_ctl_->window();
      window_ctl_->OnLoss(now);
      if (window_ctl_->window() < before) {
        // A decrease is the congestion-control event worth seeing on a
        // timeline: anchor it to the head flight's trace.
        Tracer& tr = tracer();
        if (tr.enabled()) {
          TraceId trace = tr.LookupCommRecord(host_->origin_site(),
                                              flight.record.src_log_pos);
          if (trace != kNoTrace) {
            tr.Instant(trace, "congestion_decrease", "geo", now,
                       host_->self().site, host_->self().index,
                       window_ctl_->window());
          }
        }
      }
    }
    Transmit(flight, /*widen=*/true);
    ArmRetransmit(pos);
    return;
  }
  Transmit(flight, /*widen=*/true);
  ArmRetransmit(pos);
}

void CommDaemon::OnTransmissionAck(const net::Message& msg) {
  TransmissionAckMsg ack;
  if (!TransmissionAckMsg::Decode(msg.body(), &ack).ok()) return;
  if (msg.src.site != dest_) return;
  // Any ack from the destination is progress for the in-order stream; the
  // adaptive retransmit timers defer to it (see last_progress_).
  last_progress_ = host_->network()->simulator()->Now();
  if (window_ctl_) {
    // Cumulative ack interpretation (adaptive mode only — the static path
    // must stay bit-identical): the receiver commits the chain strictly
    // in order, so a node acknowledging position p has committed every
    // earlier position too. Crediting the ack to all flights <= p
    // unsticks a head flight whose own ack frame was dropped — the
    // stream is fine, only the ack was lost, yet exact-match acking
    // would pin the watermark and progress-defer its timer forever.
    bool completed = false;
    for (auto it = flights_.begin();
         it != flights_.end() && it->first <= ack.src_log_pos;) {
      Flight& flight = it->second;
      flight.ack_senders.insert(msg.src);
      if (static_cast<int>(flight.ack_senders.size()) <
          host_->options_.fi + 1) {
        ++it;
        continue;
      }
      // f_i+1 destination nodes confirmed the commit: one is honest.
      // Only the exactly-acked flight yields an RTT sample — a flight
      // completed by cumulative credit lost its own ack, so its round
      // trip measurement includes the dead time (Karn's rule in spirit).
      if (it->first == ack.src_log_pos && flight.first_transmit != 0 &&
          !flight.retransmitted) {
        window_ctl_->OnAck(last_progress_ - flight.first_transmit);
      } else {
        window_ctl_->OnAckNoSample();
      }
      host_->network()->simulator()->Cancel(flight.retransmit_timer);
      acked_out_of_order_.insert(it->first);
      it = flights_.erase(it);
      completed = true;
    }
    if (!completed) return;
    AdvanceAckedWatermark();
    PumpPipeline();
    return;
  }
  auto it = flights_.find(ack.src_log_pos);
  if (it == flights_.end()) return;
  Flight& flight = it->second;
  flight.ack_senders.insert(msg.src);
  if (static_cast<int>(flight.ack_senders.size()) < host_->options_.fi + 1) {
    return;
  }
  // f_i+1 destination nodes confirmed the commit: at least one is honest.
  host_->network()->simulator()->Cancel(flight.retransmit_timer);
  flights_.erase(it);
  acked_out_of_order_.insert(ack.src_log_pos);
  AdvanceAckedWatermark();
  PumpPipeline();
}

void CommDaemon::AdvanceAckedWatermark() {
  // The watermark moves through the (sorted) communication positions of
  // this destination as long as each next one is acknowledged.
  auto comm_it = host_->comm_positions_.find(dest_);
  if (comm_it == host_->comm_positions_.end()) return;
  const std::vector<uint64_t>& positions = comm_it->second;
  for (auto pos_it = std::upper_bound(positions.begin(), positions.end(),
                                      acked_pos_);
       pos_it != positions.end(); ++pos_it) {
    auto acked = acked_out_of_order_.find(*pos_it);
    if (acked == acked_out_of_order_.end()) break;
    acked_pos_ = *pos_it;
    acked_out_of_order_.erase(acked);
  }
}

// --- reserve ------------------------------------------------------------------

void CommDaemon::PollReceiver() {
  sim::Simulator* simulator = host_->network()->simulator();
  poll_timer_ = simulator->Schedule(
      host_->options_.reserve_poll_interval, [this]() {
        poll_timer_ = sim::kInvalidEventId;
        if (active_) return;  // promoted; no more polling
        status_replies_.clear();
        RecvStatusQueryMsg query;
        query.src_site = host_->origin_site();
        Bytes encoded = query.Encode();
        // Ask 2f_i+1 destination nodes so that some group of f_i+1 agrees.
        for (int i = 0; i < 2 * host_->options_.fi + 1; ++i) {
          host_->SendTo(net::NodeId{dest_, i}, kRecvStatusQuery,
                        Bytes(encoded));
        }
        PollReceiver();
      });
}

void CommDaemon::OnRecvStatusReply(const net::Message& msg) {
  if (active_) return;
  RecvStatusReplyMsg reply;
  if (!RecvStatusReplyMsg::Decode(msg.body(), &reply).ok()) return;
  if (msg.src.site != dest_ || reply.src_site != host_->origin_site()) return;
  status_replies_[msg.src] = reply.last_pos;
  int needed = host_->options_.fi + 1;
  if (static_cast<int>(status_replies_.size()) <
      2 * host_->options_.fi + 1) {
    return;
  }
  // The reserve chooses the f_i+1 group that maximizes the lowest reported
  // position: with sorted replies, that is the (f_i+1)-th largest value.
  std::vector<uint64_t> values;
  for (auto& [node, pos] : status_replies_) values.push_back(pos);
  std::sort(values.begin(), values.end(), std::greater<>());
  uint64_t attested = values[needed - 1];
  status_replies_.clear();

  uint64_t expected = 0;
  auto comm_it = host_->comm_positions_.find(dest_);
  if (comm_it != host_->comm_positions_.end() && !comm_it->second.empty()) {
    expected = comm_it->second.back();
  }
  // A substantial gap that persists across polls means the active daemon
  // is failing to deliver (maliciously or otherwise): take over.
  if (expected >= attested + host_->options_.reserve_gap_threshold &&
      attested <= last_attested_) {
    if (++stalled_polls_ >= 2) {
      BP_LOG(kInfo) << host_->self().ToString()
                    << " reserve daemon activating for dest " << dest_;
      active_ = true;
      acked_pos_ = attested;
      next_send_pos_ = attested;
      PumpPipeline();
      return;
    }
  } else {
    stalled_polls_ = 0;
  }
  last_attested_ = attested;
}

}  // namespace blockplane::core
