// A byzantized, geo-sharded key-value store on Blockplane.
//
// Keys are partitioned across participants by hash: each participant's unit
// is the byzantine-masked system of record for its shard. Writes to the
// local shard are log-commits; writes to a remote shard travel through
// Blockplane's send/receive as verified cross-participant messages. Reads
// use the §VI-A strategies (read-1 by default; quorum or linearizable on
// request).
//
// Verification routines enforce op well-formedness and shard ownership: a
// byzantine Blockplane node cannot commit a write for a key its participant
// does not own, nor forge a remote write (f_i+1 source signatures required).
#ifndef BLOCKPLANE_PROTOCOLS_KV_STORE_H_
#define BLOCKPLANE_PROTOCOLS_KV_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "core/deployment.h"

namespace blockplane::protocols {

class KvStore {
 public:
  static constexpr uint64_t kVerifyWrite = 41;

  using PutCallback = std::function<void(Status)>;
  using GetCallback = std::function<void(Status, std::string value)>;

  explicit KvStore(core::Deployment* deployment);
  BP_DISALLOW_COPY_AND_ASSIGN(KvStore);

  /// The participant owning `key`'s shard.
  net::SiteId OwnerOf(const std::string& key) const;

  /// Writes `key = value`, issued at participant `site`. If the key's
  /// shard lives elsewhere the write is forwarded through Blockplane.
  /// `done` fires when the write is durable at the owner (for remote
  /// writes: when the forwarding communication record is committed — the
  /// owner applies it on delivery).
  void Put(net::SiteId site, const std::string& key,
           const std::string& value, PutCallback done = nullptr);

  /// Deletes a key (same routing as Put).
  void Delete(net::SiteId site, const std::string& key,
              PutCallback done = nullptr);

  /// Reads `key` from its owner's user-space state (instantaneous within
  /// the simulation; see ReadEntry for log-backed reads).
  bool Get(const std::string& key, std::string* value) const;

  /// Number of committed write records at a participant's shard.
  uint64_t writes_at(net::SiteId site) const { return writes_.at(site); }

  /// The value of `key` according to node `index` of the owner's unit
  /// (for divergence checks).
  bool NodeGet(net::SiteId site, int index, const std::string& key,
               std::string* value) const;

 private:
  struct Shard {
    std::map<std::string, std::string> data;

    bool Apply(const core::LogRecord& record);
  };

  void InstallAt(net::SiteId site);
  static bool CheckOp(const core::LogRecord& record, net::SiteId owner,
                      int num_sites);

  core::Deployment* deployment_;
  std::map<net::SiteId, Shard> user_state_;
  std::map<net::SiteId, uint64_t> writes_;
  std::unordered_map<net::NodeId, std::shared_ptr<Shard>, net::NodeIdHash>
      node_state_;
};

}  // namespace blockplane::protocols

#endif  // BLOCKPLANE_PROTOCOLS_KV_STORE_H_
