// Transitive fixture group: bp002. This file defines the entropy leaf
// and a one-hop wrapper; backoff.cc in the same group reaches the leaf
// only through the wrapper (two calls deep), and is clean when linted
// by itself because the wrapper is unresolved outside the group.

long RawTick() {
  return time(nullptr);  // direct BP002: wall-clock entropy
}

long JitterSeed() {
  return RawTick() * 2654435761L;  // transitive BP002, one hop
}
