// Fixture: BP002 clean — all randomness and time flow from the seeded
// simulator, so every run replays bit for bit.

namespace sim {
class Rng {
 public:
  explicit Rng(unsigned long long seed);
  unsigned long long NextU64();
  unsigned long long NextBelow(unsigned long long n);
};
class Simulator {
 public:
  long long Now() const;
};
}  // namespace sim

unsigned long long SimNow(const sim::Simulator& simulator) {
  return static_cast<unsigned long long>(simulator.Now());
}

unsigned long long SeededJitter(sim::Rng* rng, unsigned long long span) {
  return rng->NextBelow(span + 1);
}

// An object may legitimately expose a method named time() or rand();
// only the global/std functions are entropy sources.
struct Stopwatch {
  long long time() const { return elapsed_ns; }
  long long elapsed_ns = 0;
};

long long ReadStopwatch(const Stopwatch& sw) { return sw.time(); }

// A justified, documented exception uses the suppression syntax.
long long DebugWallClock() {
  // bplint:allow(BP002) debug-only helper, compiled out of replay builds
  return time(nullptr);
}
