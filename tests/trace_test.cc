// Tests for the causal-tracing / latency-breakdown observability layer:
// tracer primitives, phase marks and their exact-sum breakdown, the Chrome
// trace_event exporter, golden-trace determinism across runs of the same
// seed, the pinned message complexity of one PBFT commit, and the unified
// metrics registry.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/deployment.h"
#include "pbft/client.h"
#include "pbft/replica.h"
#include "sim/simulator.h"

namespace blockplane {
namespace {

using core::BlockplaneOptions;
using core::Deployment;
using core::Participant;
using net::kCalifornia;
using net::kVirginia;
using net::NodeId;
using net::Topology;
using sim::Seconds;

/// Every test starts from a clean, enabled tracer and leaves it disabled:
/// the tracer is process-global and other suites expect it off.
class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    tracer().Clear();
    tracer().Enable();
  }
  ~TraceTest() override {
    tracer().Disable();
    tracer().Clear();
  }
};

TEST_F(TraceTest, DisabledTracerIsInert) {
  tracer().Disable();
  EXPECT_EQ(tracer().NewTrace(), kNoTrace);
  tracer().Mark(1, "submit", 100);  // must be a no-op
  tracer().Span(1, "x", "t", 0, 10, 0, 0);
  tracer().Instant(1, "y", "t", 5, 0, 0);
  EXPECT_TRUE(tracer().events().empty());
  EXPECT_TRUE(tracer().MarksFor(1).empty());
}

TEST_F(TraceTest, TraceIdsAreMonotoneFromOne) {
  EXPECT_EQ(tracer().NewTrace(), 1u);
  EXPECT_EQ(tracer().NewTrace(), 2u);
  tracer().Clear();  // resets the counter (golden-trace reproducibility)
  tracer().Enable();
  EXPECT_EQ(tracer().NewTrace(), 1u);
}

TEST_F(TraceTest, MarksAreFirstWinsAndBreakdownSumsExactly) {
  TraceId t = tracer().NewTrace();
  tracer().Mark(t, "submit", 1000);
  tracer().Mark(t, "local_committed", 3500);
  tracer().Mark(t, "local_committed", 9999);  // late duplicate: ignored
  tracer().Mark(t, "attested", 4200);
  tracer().Mark(t, "done", 7000);

  const std::vector<TraceMark>& marks = tracer().MarksFor(t);
  ASSERT_EQ(marks.size(), 4u);
  EXPECT_STREQ(marks[1].phase, "local_committed");
  EXPECT_EQ(marks[1].ts, 3500);

  std::vector<BreakdownComponent> breakdown = tracer().BreakdownFor(t);
  ASSERT_EQ(breakdown.size(), 3u);
  int64_t sum = 0;
  for (const BreakdownComponent& c : breakdown) sum += c.dur;
  // The defining property of the mark-based decomposition: components sum
  // EXACTLY to the end-to-end time — no residual bucket, no rounding.
  EXPECT_EQ(sum, tracer().EndToEndFor(t));
  EXPECT_EQ(tracer().EndToEndFor(t), 7000 - 1000);
  EXPECT_EQ(breakdown[0].from, "submit");
  EXPECT_EQ(breakdown[0].to, "local_committed");
  EXPECT_EQ(breakdown[0].dur, 2500);
}

TEST_F(TraceTest, CommRecordBindingsRoundTrip) {
  TraceId t = tracer().NewTrace();
  tracer().BindCommRecord(/*src_site=*/2, /*log_pos=*/17, t);
  EXPECT_EQ(tracer().LookupCommRecord(2, 17), t);
  EXPECT_EQ(tracer().LookupCommRecord(2, 18), kNoTrace);
  EXPECT_EQ(tracer().LookupCommRecord(3, 17), kNoTrace);
}

// --- a traced PBFT commit through a bare 4-node unit --------------------------

struct UnitHarness {
  explicit UnitHarness(uint64_t seed)
      : simulator(seed), network(&simulator, Topology::SingleSite()) {
    config = pbft::UnitConfig(/*site=*/0, /*f=*/1);
    for (const NodeId& node : config.nodes) {
      auto replica = std::make_unique<pbft::PbftReplica>(
          &network, &keys, config, node, nullptr);
      replica->RegisterWithNetwork();
      replicas.push_back(std::move(replica));
    }
    client = std::make_unique<pbft::PbftClient>(&network, config,
                                                NodeId{0, 1000});
  }

  sim::Simulator simulator;
  net::Network network;
  crypto::KeyStore keys;
  pbft::PbftConfig config;
  std::vector<std::unique_ptr<pbft::PbftReplica>> replicas;
  std::unique_ptr<pbft::PbftClient> client;
};

TEST_F(TraceTest, TracedCommitEmitsPhaseSpansOnEveryReplica) {
  UnitHarness unit(11);
  TraceId trace = tracer().NewTrace();
  tracer().Mark(trace, "submit", unit.simulator.Now());
  bool done = false;
  unit.client->Submit(ToBytes("traced"), [&](uint64_t) { done = true; },
                      trace);
  ASSERT_TRUE(
      unit.simulator.RunUntilCondition([&] { return done; }, Seconds(30)));
  unit.simulator.Run();  // drain the remaining replies / timers

  int request_spans = 0, prepare_spans = 0, commit_spans = 0, executes = 0;
  for (const TraceEvent& event : tracer().events()) {
    EXPECT_EQ(event.trace, trace);
    std::string name = event.name;
    if (name == "request") ++request_spans;
    if (name == "prepare") ++prepare_spans;
    if (name == "commit") ++commit_spans;
    if (name == "execute") ++executes;
    if (event.kind == TraceEvent::Kind::kSpan) {
      EXPECT_GE(event.dur, 0);
    }
  }
  // One client-side end-to-end span; every replica reports its own
  // prepare/commit phase spans and an execution instant.
  EXPECT_EQ(request_spans, 1);
  EXPECT_EQ(prepare_spans, 4);
  EXPECT_EQ(commit_spans, 4);
  EXPECT_EQ(executes, 4);

  std::string chrome = tracer().ToChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"request\""), std::string::npos);
}

TEST_F(TraceTest, OneCommitMessageComplexityIsPinned) {
  // The analytic message count of one PBFT commit in a 4-node unit
  // (f=1, clean network): 1 request + 3 pre-prepares + 3x3 prepares +
  // 4x3 commits + 4 replies = 29. A protocol change that alters the
  // normal-case message complexity must update this pin consciously.
  UnitHarness unit(12);
  bool done = false;
  unit.client->Submit(ToBytes("count me"), [&](uint64_t) { done = true; });
  ASSERT_TRUE(
      unit.simulator.RunUntilCondition([&] { return done; }, Seconds(30)));
  unit.simulator.Run();
  EXPECT_EQ(unit.network.counters().Get("lan_messages"), 29);
  EXPECT_EQ(unit.network.counters().Get("wan_messages"), 0);
  EXPECT_EQ(unit.network.counters().Get("dropped_messages"), 0);
}

// --- end-to-end breakdown through a full deployment ----------------------------

TEST_F(TraceTest, GeoCommitBreakdownDecomposesEndToEnd) {
  sim::Simulator simulator(21);
  BlockplaneOptions options;
  options.fg = 1;  // geo-correlated tolerance: attest + mirror phases exist
  Deployment deployment(&simulator, Topology::Aws4(), options);

  bool done = false;
  deployment.participant(kCalifornia)
      ->LogCommit(ToBytes("geo"), 0, [&](uint64_t) { done = true; });
  // The first traced operation after Clear() gets trace id 1.
  const TraceId trace = 1;
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return done; }, Seconds(120)));

  const std::vector<TraceMark>& marks = tracer().MarksFor(trace);
  ASSERT_GE(marks.size(), 4u);
  std::vector<std::string> phases;
  for (const TraceMark& mark : marks) phases.emplace_back(mark.phase);
  EXPECT_EQ(phases[0], "submit");
  EXPECT_EQ(phases[1], "local_committed");
  EXPECT_EQ(phases[2], "attested");
  EXPECT_EQ(phases[3], "mirrored");

  // The acceptance property: local-PBFT + attestation + WAN-mirror
  // components sum exactly to the measured end-to-end commit latency.
  std::vector<BreakdownComponent> breakdown = tracer().BreakdownFor(trace);
  int64_t sum = 0;
  for (const BreakdownComponent& c : breakdown) sum += c.dur;
  EXPECT_EQ(sum, tracer().EndToEndFor(trace));
  EXPECT_GT(tracer().EndToEndFor(trace), 0);

  // Every phase should take nonzero time except mirrored->done (same
  // callback) — and the attest + mirror phases dominate a local commit.
  EXPECT_GT(breakdown[0].dur, 0);  // submit -> local_committed (PBFT round)
  EXPECT_GT(breakdown[2].dur, 0);  // attested -> mirrored (WAN round trip)
}

TEST_F(TraceTest, TracedSendReachesDeliveredMilestone) {
  sim::Simulator simulator(22);
  Deployment deployment(&simulator, Topology::Aws4(), {});

  deployment.participant(kCalifornia)
      ->Send(kVirginia, ToBytes("traced message"), 0, nullptr);
  const TraceId trace = 1;
  Participant* receiver = deployment.participant(kVirginia);
  Bytes payload;
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &payload); },
      Seconds(60)));

  std::vector<std::string> phases;
  for (const TraceMark& mark : tracer().MarksFor(trace)) {
    phases.emplace_back(mark.phase);
  }
  // The full cross-site journey: committed at the source, picked up by the
  // communication daemon, committed in the destination unit, delivered to
  // the destination participant with f_i+1 matching notices.
  EXPECT_NE(std::find(phases.begin(), phases.end(), "local_committed"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "transmitted"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "remote_committed"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "delivered"),
            phases.end());

  // Timestamps decompose exactly even across sites (one global sim clock).
  std::vector<BreakdownComponent> breakdown = tracer().BreakdownFor(trace);
  int64_t sum = 0;
  for (const BreakdownComponent& c : breakdown) sum += c.dur;
  EXPECT_EQ(sum, tracer().EndToEndFor(trace));
}

// --- golden trace: bit-identical export per seed -------------------------------

std::string RunGoldenScenario(uint64_t seed) {
  tracer().Clear();
  tracer().Enable();
  sim::Simulator simulator(seed);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    deployment.participant(kCalifornia)
        ->LogCommit(ToBytes("op" + std::to_string(i)), 0,
                    [&](uint64_t) { ++done; });
  }
  deployment.participant(kCalifornia)
      ->Send(kVirginia, ToBytes("payload"), 0, [&](uint64_t) { ++done; });
  EXPECT_TRUE(
      simulator.RunUntilCondition([&] { return done == 4; }, Seconds(120)));
  simulator.RunFor(Seconds(2));  // let the delivery side settle
  std::string chrome = tracer().ToChromeTrace();
  tracer().Disable();
  return chrome;
}

TEST_F(TraceTest, GoldenTraceIsByteIdenticalAcrossRuns) {
  std::string first = RunGoldenScenario(77);
  std::string second = RunGoldenScenario(77);
  EXPECT_GT(first.size(), 100u);
  // Determinism is the whole point: same seed => byte-identical trace.
  EXPECT_EQ(first, second);
  // A different seed schedules differently (timestamps shift).
  std::string other = RunGoldenScenario(78);
  EXPECT_NE(first, other);
}

// --- metrics registry -----------------------------------------------------------

TEST(MetricsRegistryTest, SnapshotUnifiesBuiltinAndNetworkGroups) {
  sim::Simulator simulator(5);
  net::Network network(&simulator, Topology::SingleSite());
  auto snapshot = metrics_registry().Snapshot();
  EXPECT_EQ(snapshot.count("hotpath"), 1u);
  EXPECT_EQ(snapshot.count("transport"), 1u);
  ASSERT_EQ(snapshot.count("network"), 1u);

  transport_stats().frames_sent = 41;
  auto after = metrics_registry().Snapshot();
  EXPECT_EQ(after.at("transport").at("frames_sent"), 41);

  metrics_registry().ResetAll();
  EXPECT_EQ(transport_stats().frames_sent, 0);

  std::string json = metrics_registry().ToJson();
  EXPECT_NE(json.find("\"hotpath\""), std::string::npos);
  EXPECT_NE(json.find("\"transport\""), std::string::npos);
  EXPECT_NE(json.find("\"network\""), std::string::npos);
}

TEST(MetricsRegistryTest, NetworkUnregistersOnDestruction) {
  sim::Simulator simulator(6);
  {
    net::Network network(&simulator, Topology::SingleSite());
    EXPECT_EQ(metrics_registry().Snapshot().count("network"), 1u);
  }
  EXPECT_EQ(metrics_registry().Snapshot().count("network"), 0u);
}

}  // namespace
}  // namespace blockplane
