// PBFT tests: normal case, crash faults, leader failure / view change,
// byzantine behaviours (equivocation, bogus votes, censorship), the
// Blockplane verification-routine hook, checkpoint garbage collection, and
// agreement invariants under parameter sweeps.
#include "pbft/replica.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pbft/client.h"
#include "sim/simulator.h"

namespace blockplane::pbft {
namespace {

using net::NodeId;
using net::Topology;
using sim::Milliseconds;
using sim::Seconds;

/// A single-site PBFT group with one client, all wired to one simulator.
class PbftHarness {
 public:
  explicit PbftHarness(int f, uint64_t seed = 1,
                       Topology topology = Topology::SingleSite())
      : simulator_(seed),
        network_(&simulator_, std::move(topology)) {
    config_ = UnitConfig(/*site=*/0, f);
    if (network_.topology().num_sites() > 1) {
      // Spread replicas across sites for wide-area tests.
      config_.nodes.clear();
      for (int i = 0; i < 3 * f + 1; ++i) {
        config_.nodes.push_back(
            NodeId{i % network_.topology().num_sites(), i / 4});
      }
      config_.view_timeout = Milliseconds(400);
      config_.client_retry = Milliseconds(800);
    }
    for (const NodeId& node : config_.nodes) {
      auto replica = std::make_unique<PbftReplica>(
          &network_, &keys_, config_, node,
          [this, node](uint64_t seq, const Bytes& value) {
            executions_.push_back({node, seq, value});
          });
      replica->RegisterWithNetwork();
      replicas_.push_back(std::move(replica));
    }
    client_ = std::make_unique<PbftClient>(&network_, config_,
                                           NodeId{0, 1000});
  }

  /// Submits a value and runs until the client accepts it (or deadline).
  bool CommitAndWait(const std::string& value,
                     sim::SimTime deadline = Seconds(30)) {
    uint64_t before = client_->completed();
    client_->Submit(ToBytes(value), nullptr);
    return simulator_.RunUntilCondition(
        [&] { return client_->completed() > before; },
        simulator_.Now() + deadline);
  }

  /// The executed log of replica `index` as strings.
  std::vector<std::string> LogOf(int index) const {
    std::vector<std::string> result;
    for (auto& [seq, value] : replicas_[index]->executed_log()) {
      result.push_back(ToString(value));
    }
    return result;
  }

  /// Asserts all non-silent replicas executed identical logs.
  void ExpectAgreement(const std::vector<int>& skip = {}) {
    std::vector<std::string> reference;
    bool have_reference = false;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (std::find(skip.begin(), skip.end(), static_cast<int>(i)) !=
          skip.end()) {
        continue;
      }
      auto log = LogOf(static_cast<int>(i));
      if (!have_reference) {
        reference = log;
        have_reference = true;
      } else {
        EXPECT_EQ(log, reference) << "replica " << i << " diverged";
      }
    }
  }

  struct Execution {
    NodeId node;
    uint64_t seq;
    Bytes value;
  };

  sim::Simulator simulator_;
  net::Network network_;
  crypto::KeyStore keys_;
  PbftConfig config_;
  std::vector<std::unique_ptr<PbftReplica>> replicas_;
  std::unique_ptr<PbftClient> client_;
  std::vector<Execution> executions_;
};

TEST(PbftTest, CommitsSingleValue) {
  PbftHarness harness(/*f=*/1);
  ASSERT_TRUE(harness.CommitAndWait("hello"));
  // All 4 replicas execute it at seq 1.
  EXPECT_EQ(harness.executions_.size(), 4u);
  for (const auto& execution : harness.executions_) {
    EXPECT_EQ(execution.seq, 1u);
    EXPECT_EQ(ToString(execution.value), "hello");
  }
}

TEST(PbftTest, CommitsManyValuesInOrder) {
  PbftHarness harness(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(harness.CommitAndWait("v" + std::to_string(i)));
  }
  harness.simulator_.RunFor(Seconds(1));
  for (int r = 0; r < 4; ++r) {
    auto log = harness.LogOf(r);
    ASSERT_EQ(log.size(), 20u) << "replica " << r;
    for (int i = 0; i < 20; ++i) EXPECT_EQ(log[i], "v" + std::to_string(i));
  }
}

TEST(PbftTest, PipelinedSubmissionsAllCommit) {
  PbftHarness harness(1);
  // Submit 10 at once; leader proposes one batch at a time (group commit).
  for (int i = 0; i < 10; ++i) {
    harness.client_->Submit(ToBytes("c" + std::to_string(i)), nullptr);
  }
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.client_->completed() == 10; }, Seconds(30)));
  harness.simulator_.RunFor(Seconds(1));
  harness.ExpectAgreement();
  EXPECT_EQ(harness.LogOf(0).size(), 10u);
}

TEST(PbftTest, ToleratesCrashedBackup) {
  PbftHarness harness(1);
  harness.network_.Crash(NodeId{0, 2});  // a backup
  ASSERT_TRUE(harness.CommitAndWait("survives"));
  harness.ExpectAgreement({2});
}

TEST(PbftTest, ToleratesFCrashedBackups) {
  PbftHarness harness(/*f=*/2);  // 7 replicas
  harness.network_.Crash(NodeId{0, 3});
  harness.network_.Crash(NodeId{0, 5});
  ASSERT_TRUE(harness.CommitAndWait("two down"));
  harness.ExpectAgreement({3, 5});
}

TEST(PbftTest, StallsBeyondFCrashes) {
  PbftHarness harness(1);
  harness.network_.Crash(NodeId{0, 1});
  harness.network_.Crash(NodeId{0, 2});  // f+1 = 2 crashed backups
  EXPECT_FALSE(harness.CommitAndWait("cannot commit", Seconds(5)));
}

TEST(PbftTest, LeaderCrashTriggersViewChange) {
  PbftHarness harness(1);
  ASSERT_TRUE(harness.CommitAndWait("before"));
  harness.network_.Crash(NodeId{0, 0});  // view-0 leader
  ASSERT_TRUE(harness.CommitAndWait("after", Seconds(60)));
  // The surviving replicas agree and the view advanced past 0.
  harness.ExpectAgreement({0});
  EXPECT_GT(harness.replicas_[1]->view(), 0u);
  EXPECT_EQ(harness.LogOf(1).back(), "after");
}

TEST(PbftTest, RepeatedLeaderCrashes) {
  PbftHarness harness(/*f=*/2);  // 7 replicas: can lose 2
  ASSERT_TRUE(harness.CommitAndWait("a"));
  harness.network_.Crash(NodeId{0, 0});
  ASSERT_TRUE(harness.CommitAndWait("b", Seconds(60)));
  // Crash whoever leads now.
  NodeId leader = harness.replicas_[1]->leader();
  harness.network_.Crash(leader);
  ASSERT_TRUE(harness.CommitAndWait("c", Seconds(120)));
  std::vector<int> skip = {0, harness.config_.ReplicaIndex(leader)};
  harness.ExpectAgreement(skip);
}

TEST(PbftTest, SilentLeaderIsReplaced) {
  PbftHarness harness(1);
  harness.replicas_[0]->SetByzantineMode(ByzantineMode::kSilent);
  ASSERT_TRUE(harness.CommitAndWait("despite mute leader", Seconds(60)));
  harness.ExpectAgreement({0});
}

TEST(PbftTest, EquivocatingLeaderCannotCauseDivergence) {
  PbftHarness harness(1);
  harness.replicas_[0]->SetByzantineMode(ByzantineMode::kEquivocate);
  // The value may commit (after a view change re-proposes it) or the
  // client may keep retrying; either way honest replicas never diverge.
  harness.CommitAndWait("split brain?", Seconds(60));
  harness.simulator_.RunFor(Seconds(2));
  harness.ExpectAgreement({0});
}

TEST(PbftTest, BogusVoterIsHarmless) {
  PbftHarness harness(1);
  harness.replicas_[3]->SetByzantineMode(ByzantineMode::kBogusVotes);
  ASSERT_TRUE(harness.CommitAndWait("bogus votes ignored"));
  harness.ExpectAgreement({3});
}

TEST(PbftTest, VerificationRoutineBlocksInvalidValues) {
  PbftHarness harness(1);
  // The Blockplane hook: replicas refuse values containing "bad".
  for (auto& replica : harness.replicas_) {
    replica->SetVerifier([](const Bytes& value) {
      return ToString(value).find("bad") == std::string::npos;
    });
  }
  EXPECT_FALSE(harness.CommitAndWait("bad transition", Seconds(5)));
  ASSERT_TRUE(harness.CommitAndWait("good transition", Seconds(60)));
  for (int r = 0; r < 4; ++r) {
    for (const std::string& entry : harness.LogOf(r)) {
      EXPECT_EQ(entry.find("bad"), std::string::npos);
    }
  }
}

TEST(PbftTest, SingleRejectingVerifierDoesNotBlockCommit) {
  PbftHarness harness(1);
  harness.replicas_[2]->SetByzantineMode(ByzantineMode::kRejectVerification);
  ASSERT_TRUE(harness.CommitAndWait("2f+1 others vote"));
  harness.ExpectAgreement({2});
}

TEST(PbftTest, CheckpointTruncatesLog) {
  PbftHarness harness(1);
  // Small interval so GC kicks in quickly.
  for (auto& replica : harness.replicas_) {
    const_cast<PbftConfig&>(replica->config()).checkpoint_interval = 4;
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(harness.CommitAndWait("x" + std::to_string(i)));
  }
  harness.simulator_.RunFor(Seconds(1));
  EXPECT_GE(harness.replicas_[0]->last_stable_checkpoint(), 4u);
  // Entries at or below the stable checkpoint were truncated.
  EXPECT_LT(harness.LogOf(0).size(), 10u);
  EXPECT_EQ(harness.replicas_[0]->last_executed(), 10u);
}

TEST(PbftTest, WideAreaDeployment) {
  // Flat PBFT across 4 datacenters (the paper's baseline topology).
  PbftHarness harness(1, /*seed=*/7, Topology::Aws4());
  ASSERT_TRUE(harness.CommitAndWait("global"));
  // The client needs only f+1 replies; give the slower replicas a moment.
  harness.simulator_.RunFor(Seconds(1));
  harness.ExpectAgreement();
  // End-to-end latency must be on the order of wide-area RTTs.
  EXPECT_GT(harness.simulator_.Now(), Milliseconds(30));
}

// --- property sweeps ---------------------------------------------------------

class PbftSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PbftSweepTest, AgreementAndTotalOrderHold) {
  auto [f, seed] = GetParam();
  PbftHarness harness(f, static_cast<uint64_t>(seed));
  const int kCommits = 8;
  for (int i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(harness.CommitAndWait("op" + std::to_string(i)))
        << "f=" << f << " seed=" << seed << " i=" << i;
  }
  harness.simulator_.RunFor(Seconds(1));
  harness.ExpectAgreement();
  auto log = harness.LogOf(0);
  ASSERT_EQ(log.size(), static_cast<size_t>(kCommits));
  for (int i = 0; i < kCommits; ++i) {
    EXPECT_EQ(log[i], "op" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultLevelsAndSeeds, PbftSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pinfo) {
      return "f" + std::to_string(std::get<0>(pinfo.param)) + "_seed" +
             std::to_string(std::get<1>(pinfo.param));
    });

class PbftByzantineSweepTest
    : public ::testing::TestWithParam<std::tuple<ByzantineMode, int>> {};

TEST_P(PbftByzantineSweepTest, OneByzantineReplicaNeverBreaksAgreement) {
  auto [mode, victim] = GetParam();
  PbftHarness harness(1, /*seed=*/11);
  harness.replicas_[victim]->SetByzantineMode(mode);
  for (int i = 0; i < 5; ++i) {
    // Commits may stall temporarily during view changes; allow a generous
    // deadline but do not require success when the byzantine node is the
    // leader mid-election.
    harness.CommitAndWait("op" + std::to_string(i), Seconds(30));
  }
  harness.simulator_.RunFor(Seconds(2));
  harness.ExpectAgreement({victim});
  // Liveness: despite one byzantine replica, progress happened.
  EXPECT_GE(harness.client_->completed(), 4u);
}

std::string ByzantineSweepName(
    const ::testing::TestParamInfo<std::tuple<ByzantineMode, int>>& pinfo) {
  const char* name = "Unknown";
  switch (std::get<0>(pinfo.param)) {
    case ByzantineMode::kNone:
      name = "None";
      break;
    case ByzantineMode::kSilent:
      name = "Silent";
      break;
    case ByzantineMode::kEquivocate:
      name = "Equivocate";
      break;
    case ByzantineMode::kBogusVotes:
      name = "BogusVotes";
      break;
    case ByzantineMode::kRejectVerification:
      name = "RejectVerification";
      break;
    case ByzantineMode::kReorderGeo:
      name = "ReorderGeo";
      break;
  }
  return std::string(name) + "_victim" +
         std::to_string(std::get<1>(pinfo.param));
}

INSTANTIATE_TEST_SUITE_P(
    Behaviours, PbftByzantineSweepTest,
    ::testing::Combine(::testing::Values(ByzantineMode::kSilent,
                                         ByzantineMode::kBogusVotes,
                                         ByzantineMode::kRejectVerification),
                       ::testing::Values(0, 1, 3)),
    ByzantineSweepName);

}  // namespace
}  // namespace blockplane::pbft
