// Table I: average round-trip times between the four datacenters
// (California, Oregon, Virginia, Ireland), measured through the simulated
// network with application-level pings.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane {
namespace {

/// Echoes every ping straight back.
class Responder : public net::Host {
 public:
  explicit Responder(net::Network* network) : network_(network) {}
  void HandleMessage(const net::Message& msg) override {
    if (msg.type != 1) return;
    net::Message pong = msg;
    pong.src = msg.dst;
    pong.dst = msg.src;
    pong.type = 2;
    network_->Send(std::move(pong));
  }

 private:
  net::Network* network_;
};

class Pinger : public net::Host {
 public:
  void HandleMessage(const net::Message& msg) override {
    if (msg.type == 2) received = true;
  }
  bool received = false;
};

double MeasureRtt(net::SiteId a, net::SiteId b, int rounds) {
  sim::Simulator simulator(1);
  net::NetworkOptions options;
  options.per_message_cpu = 0;
  net::Network network(&simulator, net::Topology::Aws4(), options);
  Responder responder(&network);
  Pinger pinger;
  network.Register({b, 0}, &responder);
  network.Register({a, 0}, &pinger);

  Histogram rtt_ms;
  for (int i = 0; i < rounds; ++i) {
    pinger.received = false;
    sim::SimTime start = simulator.Now();
    net::Message ping;
    ping.src = {a, 0};
    ping.dst = {b, 0};
    ping.type = 1;
    network.Send(ping);
    simulator.RunUntilCondition([&] { return pinger.received; },
                                simulator.Now() + sim::Seconds(5));
    rtt_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return rtt_ms.Mean();
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader(
      "Table I: average RTTs (ms) between the four datacenters",
      "C-O 19, C-V 61, C-I 130, O-V 79, O-I 132, V-I 70");

  net::Topology topo = net::Topology::Aws4();
  std::printf("%12s", "");
  for (int b = 0; b < topo.num_sites(); ++b) {
    std::printf("%12.1s", topo.site_name(b).c_str());
  }
  std::printf("\n");
  for (int a = 0; a < topo.num_sites(); ++a) {
    std::printf("%12.1s", topo.site_name(a).c_str());
    for (int b = 0; b < topo.num_sites(); ++b) {
      double rtt = a == b ? 0.0 : MeasureRtt(a, b, 20);
      std::printf("%12.1f", rtt);
    }
    std::printf("\n");
  }
  return 0;
}
