#include "protocols/bank.h"

#include "common/codec.h"

namespace blockplane::protocols {

namespace {

enum OpKind : uint8_t {
  kDeposit = 1,
  kTransfer = 2,
  /// A cross-site wire: as a communication record it debits the source
  /// account; as a received record it credits the destination account.
  kWireCredit = 4,
};

struct BankOp {
  uint8_t kind = 0;
  std::string from;
  std::string to;
  int64_t amount = 0;

  Bytes Encode() const {
    Encoder enc;
    enc.PutU8(kind);
    enc.PutString(from);
    enc.PutString(to);
    enc.PutI64(amount);
    return enc.Take();
  }
  static bool Decode(const Bytes& buf, BankOp* out) {
    Decoder dec(buf);
    return dec.GetU8(&out->kind).ok() && dec.GetString(&out->from).ok() &&
           dec.GetString(&out->to).ok() && dec.GetI64(&out->amount).ok();
  }
};

}  // namespace

bool BankLedger::Accounts::Check(const core::LogRecord& record) const {
  BankOp op;
  if (!BankOp::Decode(record.payload, &op)) return false;
  if (op.amount <= 0) return false;
  switch (op.kind) {
    case kDeposit:
      return true;
    case kTransfer: {
      auto it = balance.find(op.from);
      return it != balance.end() && it->second >= op.amount;
    }
    case kWireCredit:
      if (record.type == core::RecordType::kCommunication) {
        // Source side of the wire: the debit must be covered.
        auto it = balance.find(op.from);
        return it != balance.end() && it->second >= op.amount;
      }
      // Destination side: the funds' legitimacy comes from the f_i+1
      // source signatures Blockplane's receive verification checked.
      return record.type == core::RecordType::kReceived;
    default:
      return false;
  }
}

bool BankLedger::Accounts::Apply(const core::LogRecord& record) {
  BankOp op;
  if (!BankOp::Decode(record.payload, &op)) return false;
  switch (op.kind) {
    case kDeposit:
      balance[op.to] += op.amount;
      return true;
    case kTransfer:
      balance[op.from] -= op.amount;
      balance[op.to] += op.amount;
      return true;
    case kWireCredit:
      if (record.type == core::RecordType::kCommunication) {
        balance[op.from] -= op.amount;  // debit at the source
        outbound += op.amount;
        return true;
      }
      balance[op.to] += op.amount;  // credit at the destination
      return true;
    default:
      return false;
  }
}

BankLedger::BankLedger(core::Deployment* deployment)
    : deployment_(deployment) {
  for (net::SiteId site = 0; site < deployment_->num_sites(); ++site) {
    user_state_[site] = Accounts{};
    InstallAt(site);
  }
}

void BankLedger::InstallAt(net::SiteId site) {
  for (int i = 0; i < 3 * deployment_->options().fi + 1; ++i) {
    core::BlockplaneNode* node = deployment_->node(site, i);
    auto accounts = std::make_shared<Accounts>();
    node_state_[node->self()] = accounts;
    node->SetApplyHook(
        [accounts](uint64_t pos, const core::LogRecord& record) {
          accounts->Apply(record);
        });
    node->RegisterVerifier(kVerifyTransfer,
                           [accounts](const core::LogRecord& record) {
                             return accounts->Check(record);
                           });
    node->RegisterVerifier(kVerifyWire,
                           [accounts](const core::LogRecord& record) {
                             return accounts->Check(record);
                           });
  }

  // Incoming wires: credit on receive.
  core::Participant* participant = deployment_->participant(site);
  participant->SetReceiveHandler(
      [this, site](net::SiteId src, const Bytes& payload) {
        BankOp op;
        if (!BankOp::Decode(payload, &op) || op.kind != kWireCredit) return;
        user_state_[site].balance[op.to] += op.amount;
      });
}

void BankLedger::Deposit(net::SiteId site, const std::string& account,
                         int64_t amount, Callback done) {
  BankOp op;
  op.kind = kDeposit;
  op.to = account;
  op.amount = amount;
  deployment_->participant(site)->LogCommit(
      op.Encode(), kVerifyTransfer,
      [this, site, account, amount, done](uint64_t) {
        user_state_[site].balance[account] += amount;
        if (done) done(Status::OK());
      });
}

void BankLedger::Transfer(net::SiteId site, const std::string& from,
                          const std::string& to, int64_t amount,
                          Callback done) {
  BankOp op;
  op.kind = kTransfer;
  op.from = from;
  op.to = to;
  op.amount = amount;
  deployment_->participant(site)->LogCommit(
      op.Encode(), kVerifyTransfer,
      [this, site, from, to, amount, done](uint64_t) {
        Accounts& accounts = user_state_[site];
        accounts.balance[from] -= amount;
        accounts.balance[to] += amount;
        if (done) done(Status::OK());
      });
}

void BankLedger::Wire(net::SiteId site, const std::string& from,
                      net::SiteId dest, const std::string& to,
                      int64_t amount, Callback done) {
  // The wire is one communication record: its verification debit-checks
  // the source account, and its delivery credits the destination.
  BankOp credit;
  credit.kind = kWireCredit;
  credit.from = from;
  credit.to = to;
  credit.amount = amount;
  deployment_->participant(site)->Send(
      dest, credit.Encode(), kVerifyWire,
      [this, site, from, amount, done](uint64_t) {
        user_state_[site].balance[from] -= amount;
        if (done) done(Status::OK());
      });
}

int64_t BankLedger::Balance(net::SiteId site,
                            const std::string& account) const {
  const auto& balances = user_state_.at(site).balance;
  auto it = balances.find(account);
  return it == balances.end() ? 0 : it->second;
}

int64_t BankLedger::NodeBalance(net::SiteId site, int index,
                                const std::string& account) const {
  auto node = deployment_->node(site, index);
  const auto& accounts = node_state_.at(node->self());
  auto it = accounts->balance.find(account);
  return it == accounts->balance.end() ? 0 : it->second;
}

}  // namespace blockplane::protocols
