#include "core/comm_daemon.h"

#include <algorithm>

#include "common/logging.h"
#include "common/runner.h"
#include "common/trace.h"
#include "core/node.h"
#include "core/wire.h"

namespace blockplane::core {

CommDaemon::CommDaemon(BlockplaneNode* host, net::SiteId dest, bool reserve)
    : host_(host), dest_(dest), active_(!reserve) {
  if (reserve) PollReceiver();
}

CommDaemon::~CommDaemon() {
  sim::Simulator* simulator = host_->network()->simulator();
  for (auto& [pos, flight] : flights_) {
    simulator->Cancel(flight.retransmit_timer);
  }
  simulator->Cancel(poll_timer_);
}

void CommDaemon::NotifyLogAppend() { PumpPipeline(); }

void CommDaemon::OnMessage(const net::Message& msg) {
  switch (msg.type) {
    case kTransmissionAck:
      OnTransmissionAck(msg);
      break;
    case kRecvStatusReply:
      OnRecvStatusReply(msg);
      break;
    default:
      // kAttestResponse arrives pre-decoded via OnAttestResponseDecoded:
      // the host node's prologue does the decode off the delivery thread.
      break;
  }
}

void CommDaemon::PumpPipeline() {
  if (!active_) return;
  // Algorithm 2's scan, resumed from the send cursor, windowed.
  auto comm_it = host_->comm_positions_.find(dest_);
  if (comm_it == host_->comm_positions_.end()) return;
  const std::vector<uint64_t>& positions = comm_it->second;

  // Phase 1: build the new flights and collect their attestation bodies
  // (digest + canonical encode — the CPU-heavy part of the scan).
  std::vector<uint64_t> new_positions;
  std::vector<crypto::SignJob> jobs;
  for (auto pos_it = std::upper_bound(positions.begin(), positions.end(),
                                      std::max(next_send_pos_, acked_pos_));
       pos_it != positions.end() && flights_.size() < host_->options_.daemon_window; ++pos_it) {
    uint64_t pos = *pos_it;
    const LogRecord& record = host_->log_.at(pos);

    // With geo-correlated tolerance, transmissions must carry the mirror
    // proofs; wait until the participant bundles them (§V).
    std::vector<crypto::Signature> geo_proof;
    if (host_->options_.fg > 0) {
      auto proof_it = host_->geo_proofs_.find(pos);
      if (proof_it == host_->geo_proofs_.end()) break;  // keep order
      geo_proof = proof_it->second;
    }

    Flight& flight = flights_[pos];
    flight.record.src_site = host_->origin_site();
    flight.record.dest_site = dest_;
    flight.record.src_log_pos = pos;
    flight.record.prev_src_log_pos =
        pos_it == positions.begin() ? 0 : *(pos_it - 1);
    flight.record.routine_id = record.routine_id;
    flight.record.payload = record.payload;
    flight.record.geo_pos = record.geo_pos;
    flight.record.geo_proof = std::move(geo_proof);
    next_send_pos_ = pos;

    crypto::Digest digest = flight.record.ContentDigest();
    new_positions.push_back(pos);
    jobs.push_back(crypto::SignJob{
        AttestCanonical(AttestPurpose::kTransmission, flight.record.src_site,
                        pos, digest)});
  }
  if (jobs.empty()) return;

  // Phase 2: self-attest the whole batch. Fans out to workers when the
  // host's Runner is threaded; under the InlineRunner this degenerates to
  // the seed's per-record Sign loop. Signing sends nothing, so batching
  // here cannot reorder the send sequence phase 3 produces.
  host_->signer_->SignBatch(&jobs, host_->runner());

  // Phase 3: collect f_i+1 signatures for the validity of P from local
  // nodes (our own plus f_i others) and ship, in scan order.
  for (size_t i = 0; i < new_positions.size(); ++i) {
    Flight& flight = flights_.at(new_positions[i]);
    flight.record.sigs.push_back(jobs[i].sig);
    if (static_cast<int>(flight.record.sigs.size()) >=
        host_->options_.fi + 1) {
      flight.sigs_complete = true;
      Transmit(flight, /*widen=*/false);
    } else {
      RequestAttestations(new_positions[i]);
    }
    ArmRetransmit(new_positions[i]);
  }
}

void CommDaemon::RequestAttestations(uint64_t pos) {
  AttestRequestMsg request;
  request.purpose = AttestPurpose::kTransmission;
  request.pos = pos;
  request.dest_site = dest_;
  Bytes encoded = request.Encode();
  for (const net::NodeId& peer : host_->replica()->config().nodes) {
    if (peer == host_->self()) continue;
    host_->SendTo(peer, kAttestRequest, Bytes(encoded));
  }
}

void CommDaemon::OnAttestResponseDecoded(net::NodeId src,
                                         const AttestResponseMsg& response) {
  if (response.sig.signer != src) return;  // also checked by the prologue
  auto it = flights_.find(response.pos);
  if (it == flights_.end() || it->second.sigs_complete) return;
  Flight& flight = it->second;
  if (!host_->options_.sign_messages) {
    ApplyAttestation(response.pos, response.sig);
    return;
  }
  // Capture-at-submit: the canonical bytes come from the flight as it
  // exists right now (we are on the retire thread, where flight state is
  // safe to read); the worker verifies the MAC over that immutable copy
  // and the ordered epilogue re-validates the flight before applying.
  auto canonical = std::make_shared<Bytes>(AttestCanonical(
      AttestPurpose::kTransmission, flight.record.src_site,
      flight.record.src_log_pos, flight.record.ContentDigest()));
  uint64_t pos = response.pos;
  crypto::Signature sig = response.sig;
  common::Runner* runner = host_->runner();
  runner->RunPrologue(
      [this, runner, canonical, pos, sig]() -> common::Runner::Epilogue {
        bool ok = runner->serial()
                      ? host_->keys()->Verify(*canonical, sig)
                      : host_->keys()->VerifyDetached(*canonical, sig);
        if (!ok) return nullptr;
        return [this, pos, sig] { ApplyAttestation(pos, sig); };
      });
}

void CommDaemon::ApplyAttestation(uint64_t pos, const crypto::Signature& sig) {
  auto it = flights_.find(pos);
  if (it == flights_.end() || it->second.sigs_complete) return;
  Flight& flight = it->second;
  for (const crypto::Signature& existing : flight.record.sigs) {
    if (existing.signer == sig.signer) return;  // duplicate
  }
  flight.record.sigs.push_back(sig);
  if (static_cast<int>(flight.record.sigs.size()) < host_->options_.fi + 1) {
    return;
  }
  flight.sigs_complete = true;
  Transmit(flight, /*widen=*/false);
}

void CommDaemon::Transmit(Flight& flight, bool widen) {
  if (muted_) return;  // byzantine: pretends to send
  Tracer& tr = tracer();
  if (tr.enabled()) {
    TraceId trace = tr.LookupCommRecord(host_->origin_site(),
                                        flight.record.src_log_pos);
    if (trace != kNoTrace) {
      sim::SimTime now = host_->network()->simulator()->Now();
      // First-wins: retransmissions do not move the milestone.
      tr.Mark(trace, "transmitted", now);
      tr.Instant(trace, "transmit", "geo", now, host_->self().site,
                 host_->self().index, flight.record.src_log_pos);
    }
  }
  // Send P and the f_i+1 signatures to Blockplane nodes in the destination.
  // Initially f_i+1 receivers suffice; retransmissions widen to the whole
  // unit in case some of the first picks are faulty.
  int receivers = widen ? 3 * host_->options_.fi + 1 : host_->options_.fi + 1;
  Bytes encoded = flight.record.Encode();
  for (int i = 0; i < receivers; ++i) {
    host_->SendTo(net::NodeId{dest_, i}, kTransmission, Bytes(encoded));
  }
}

void CommDaemon::ArmRetransmit(uint64_t pos) {
  sim::Simulator* simulator = host_->network()->simulator();
  auto it = flights_.find(pos);
  if (it == flights_.end()) return;
  it->second.retransmit_timer = simulator->Schedule(
      host_->options_.transmission_retry, [this, pos]() {
        auto flight_it = flights_.find(pos);
        if (flight_it == flights_.end()) return;
        Flight& flight = flight_it->second;
        flight.retransmit_timer = sim::kInvalidEventId;
        if (flight.sigs_complete) {
          Transmit(flight, /*widen=*/true);
        } else {
          RequestAttestations(pos);
        }
        ArmRetransmit(pos);
      });
}

void CommDaemon::OnTransmissionAck(const net::Message& msg) {
  TransmissionAckMsg ack;
  if (!TransmissionAckMsg::Decode(msg.body(), &ack).ok()) return;
  if (msg.src.site != dest_) return;
  auto it = flights_.find(ack.src_log_pos);
  if (it == flights_.end()) return;
  Flight& flight = it->second;
  flight.ack_senders.insert(msg.src);
  if (static_cast<int>(flight.ack_senders.size()) < host_->options_.fi + 1) {
    return;
  }
  // f_i+1 destination nodes confirmed the commit: at least one is honest.
  host_->network()->simulator()->Cancel(flight.retransmit_timer);
  flights_.erase(it);
  acked_out_of_order_.insert(ack.src_log_pos);
  AdvanceAckedWatermark();
  PumpPipeline();
}

void CommDaemon::AdvanceAckedWatermark() {
  // The watermark moves through the (sorted) communication positions of
  // this destination as long as each next one is acknowledged.
  auto comm_it = host_->comm_positions_.find(dest_);
  if (comm_it == host_->comm_positions_.end()) return;
  const std::vector<uint64_t>& positions = comm_it->second;
  for (auto pos_it = std::upper_bound(positions.begin(), positions.end(),
                                      acked_pos_);
       pos_it != positions.end(); ++pos_it) {
    auto acked = acked_out_of_order_.find(*pos_it);
    if (acked == acked_out_of_order_.end()) break;
    acked_pos_ = *pos_it;
    acked_out_of_order_.erase(acked);
  }
}

// --- reserve ------------------------------------------------------------------

void CommDaemon::PollReceiver() {
  sim::Simulator* simulator = host_->network()->simulator();
  poll_timer_ = simulator->Schedule(
      host_->options_.reserve_poll_interval, [this]() {
        poll_timer_ = sim::kInvalidEventId;
        if (active_) return;  // promoted; no more polling
        status_replies_.clear();
        RecvStatusQueryMsg query;
        query.src_site = host_->origin_site();
        Bytes encoded = query.Encode();
        // Ask 2f_i+1 destination nodes so that some group of f_i+1 agrees.
        for (int i = 0; i < 2 * host_->options_.fi + 1; ++i) {
          host_->SendTo(net::NodeId{dest_, i}, kRecvStatusQuery,
                        Bytes(encoded));
        }
        PollReceiver();
      });
}

void CommDaemon::OnRecvStatusReply(const net::Message& msg) {
  if (active_) return;
  RecvStatusReplyMsg reply;
  if (!RecvStatusReplyMsg::Decode(msg.body(), &reply).ok()) return;
  if (msg.src.site != dest_ || reply.src_site != host_->origin_site()) return;
  status_replies_[msg.src] = reply.last_pos;
  int needed = host_->options_.fi + 1;
  if (static_cast<int>(status_replies_.size()) <
      2 * host_->options_.fi + 1) {
    return;
  }
  // The reserve chooses the f_i+1 group that maximizes the lowest reported
  // position: with sorted replies, that is the (f_i+1)-th largest value.
  std::vector<uint64_t> values;
  for (auto& [node, pos] : status_replies_) values.push_back(pos);
  std::sort(values.begin(), values.end(), std::greater<>());
  uint64_t attested = values[needed - 1];
  status_replies_.clear();

  uint64_t expected = 0;
  auto comm_it = host_->comm_positions_.find(dest_);
  if (comm_it != host_->comm_positions_.end() && !comm_it->second.empty()) {
    expected = comm_it->second.back();
  }
  // A substantial gap that persists across polls means the active daemon
  // is failing to deliver (maliciously or otherwise): take over.
  if (expected >= attested + host_->options_.reserve_gap_threshold &&
      attested <= last_attested_) {
    if (++stalled_polls_ >= 2) {
      BP_LOG(kInfo) << host_->self().ToString()
                    << " reserve daemon activating for dest " << dest_;
      active_ = true;
      acked_pos_ = attested;
      next_send_pos_ = attested;
      PumpPipeline();
      return;
    }
  } else {
    stalled_polls_ = 0;
  }
  last_attested_ = attested;
}

}  // namespace blockplane::core
