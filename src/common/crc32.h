// CRC-32 (IEEE 802.3 polynomial), used by the reliable transport to detect
// in-flight corruption the way TCP checksums would.
#ifndef BLOCKPLANE_COMMON_CRC32_H_
#define BLOCKPLANE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace blockplane {

uint32_t Crc32(const uint8_t* data, size_t len);
inline uint32_t Crc32(const Bytes& b) { return Crc32(b.data(), b.size()); }

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_CRC32_H_
