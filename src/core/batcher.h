// Batching and group commit (§VI-C).
//
// "Blockplane utilizes batching in a similar manner to SMR-based systems,
// where transactions (or requests) are batched together. At any given point
// in time, a leader only attempts to commit a single batch and does not
// start the next one until the current one is committed. The transactions
// in a batch are ordered in a way that preserves any dependencies between
// them."
//
// The Batcher accumulates small operations and commits them as one Local
// Log record. Operations keep their submission order within and across
// batches (a conservative superset of dependency order), and by default at
// most one batch is in flight at a time (the paper's group-commit rule).
// Options::max_in_flight (or BlockplaneOptions::batcher_in_flight) lifts
// that to k concurrent batches (DESIGN.md §9); the Participant still
// completes batches in submission order, so callbacks keep their order.
// Completion callbacks carry the batch's log position and the operation's
// index within the batch.
#ifndef BLOCKPLANE_CORE_BATCHER_H_
#define BLOCKPLANE_CORE_BATCHER_H_

#include <deque>
#include <functional>
#include <vector>

#include "core/participant.h"

namespace blockplane::core {

class Batcher {
 public:
  struct Options {
    /// Flush when the pending payload reaches this size.
    size_t max_batch_bytes = 100'000;
    /// Flush when this many operations are pending.
    size_t max_ops = 256;
    /// Flush this long after the first pending operation arrived, even if
    /// the size thresholds are not met.
    sim::SimTime max_delay = sim::Milliseconds(5);
    /// Concurrently in-flight batches. 1 is the paper's group-commit rule;
    /// 0 inherits BlockplaneOptions::batcher_in_flight from the
    /// participant (DESIGN.md §9).
    size_t max_in_flight = 0;
  };

  /// Called when an operation's batch is durably committed.
  using OpCallback =
      std::function<void(uint64_t log_pos, uint32_t index_in_batch)>;

  Batcher(Participant* participant, sim::Simulator* simulator,
          Options options, uint64_t routine_id = 0);
  /// Default options.
  Batcher(Participant* participant, sim::Simulator* simulator)
      : Batcher(participant, simulator, Options()) {}
  ~Batcher();
  BP_DISALLOW_COPY_AND_ASSIGN(Batcher);

  /// Queues one operation for the next batch.
  void Add(Bytes op, OpCallback done = nullptr);

  /// Forces the pending operations out now (subject to group commit).
  void Flush();

  uint64_t batches_committed() const { return batches_committed_; }
  uint64_t ops_committed() const { return ops_committed_; }

  /// Batch payload wire format, exposed so verification routines and
  /// appliers can iterate the operations of a committed batch record.
  static Bytes EncodeBatch(const std::vector<Bytes>& ops);
  static Status DecodeBatch(const Bytes& payload, std::vector<Bytes>* ops);

 private:
  struct PendingOp {
    Bytes op;
    OpCallback done;
  };

  void MaybeFlush();
  void CommitBatch();

  Participant* participant_;
  sim::Simulator* sim_;
  Options options_;
  uint64_t routine_id_;

  std::deque<PendingOp> pending_;
  size_t pending_bytes_ = 0;
  /// Effective in-flight cap (>= 1), resolved at construction.
  size_t max_in_flight_ = 1;
  size_t batches_in_flight_ = 0;
  sim::EventId delay_timer_ = sim::kInvalidEventId;
  uint64_t batches_committed_ = 0;
  uint64_t ops_committed_ = 0;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_BATCHER_H_
