// Figure 4: local-commitment performance (latency and throughput of the
// log-commit instruction) while varying the batch size, in the Virginia
// datacenter with f_i = 1 (4 Blockplane nodes, 640 MB/s links).
//
// Paper reference points: ~1 ms latency up to 100 KB batches; 4.5 ms at
// 1000 KB; 8.2 ms at 2000 KB; throughput 83 MB/s at 100 KB growing to a
// plateau (+160% to 1000 KB, +10% more to 2000 KB).
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

struct Result {
  size_t batch_kb;
  double latency_ms;
  double throughput_mbps;
};

Result RunOne(size_t batch_kb, int warmup, int batches) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  // Like the paper's prototype, no signatures/digests on this path.
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 8;
  options.prune_applied_log = 8;
  // Intra-datacenter parameters calibrated to the paper's EC2 testbed
  // (m5.xlarge, same-AZ latency ~0.2 ms RTT, 640 MB/s iperf bandwidth).
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  core::Deployment deployment(&simulator, net::Topology::SingleSite("Virginia"),
                              options, net_options);

  Bytes batch = bench::MakeBatch(batch_kb);
  Histogram latency_ms;
  for (int i = 0; i < warmup + batches; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(0)->LogCommit(Bytes(batch), 0,
                                         [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    if (i >= warmup) {
      latency_ms.Add(sim::ToMillis(simulator.Now() - start));
    }
  }
  double mean = latency_ms.Mean();
  // Group commit: one batch at a time, so throughput = batch / latency.
  double mbps = static_cast<double>(batch.size()) / 1e6 / (mean / 1e3);
  return {batch_kb, mean, mbps};
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader(
      "Figure 4: local commitment latency/throughput vs batch size",
      "~1 ms & 83 MB/s @100 KB; 4.5 ms @1000 KB; 8.2 ms & plateau @2000 KB");

  std::printf("%12s %14s %18s\n", "batch (KB)", "latency (ms)",
              "throughput (MB/s)");
  for (size_t kb : {1, 10, 100, 500, 1000, 2000}) {
    // The paper commits 1000 batches after 100 warm-up; the simulator is
    // deterministic, so 200 measured batches give the same means.
    Result result = RunOne(kb, /*warmup=*/20, /*batches=*/200);
    std::printf("%12zu %14.2f %18.1f\n", result.batch_kb, result.latency_ms,
                result.throughput_mbps);
  }
  return 0;
}
