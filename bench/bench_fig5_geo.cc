// Figure 5: commitment latency with geo-correlated fault tolerance, per
// datacenter, for f_g = 1, 2, 3 (f_i = 1 throughout).
//
// Paper reference points: C(1)≈23 ms, +176% from C(1) to C(2); V(1)→V(2)
// only +13%; at f_g=2 all sites land between 64-80 ms except Ireland
// (~135 ms); at f_g=3 everything exceeds 135 ms except Virginia (~80 ms).
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

double RunOne(net::SiteId site, int fg) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = fg;
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 16;
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              net_options);

  // The paper's workload: 1000-byte batches of arbitrary commands.
  Bytes batch = bench::MakeBatch(1);
  Histogram latency_ms;
  constexpr int kWarmup = 5;
  constexpr int kBatches = 50;
  for (int i = 0; i < kWarmup + kBatches; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(site)->LogCommit(Bytes(batch), 0,
                                            [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader(
      "Figure 5: commitment latency with geo-correlated fault tolerance",
      "C(1)~23ms; C(1)->C(2) +176%; V(1)->V(2) +13%; fg=2: 64-80ms except "
      "I~135; fg=3: >135ms except V~80");
  net::Topology topo = net::Topology::Aws4();
  std::printf("%12s %8s %14s\n", "scenario", "f_g", "latency (ms)");
  for (int site = 0; site < topo.num_sites(); ++site) {
    for (int fg = 1; fg <= 3; ++fg) {
      double ms = RunOne(site, fg);
      std::printf("%11.1s(%d) %8d %14.1f\n", topo.site_name(site).c_str(),
                  fg, fg, ms);
    }
  }
  return 0;
}
