// Node addressing: a node is identified by its site (participant /
// datacenter) and its index within that site's Blockplane unit.
#ifndef BLOCKPLANE_NET_NODE_ID_H_
#define BLOCKPLANE_NET_NODE_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace blockplane::net {

/// Index of a participant (datacenter / site).
using SiteId = int32_t;

struct NodeId {
  SiteId site = -1;
  int32_t index = -1;

  bool valid() const { return site >= 0 && index >= 0; }

  friend bool operator==(const NodeId& a, const NodeId& b) {
    return a.site == b.site && a.index == b.index;
  }
  friend bool operator!=(const NodeId& a, const NodeId& b) {
    return !(a == b);
  }
  friend bool operator<(const NodeId& a, const NodeId& b) {
    if (a.site != b.site) return a.site < b.site;
    return a.index < b.index;
  }

  std::string ToString() const {
    return std::to_string(site) + "-" + std::to_string(index);
  }
};

struct NodeIdHash {
  size_t operator()(const NodeId& id) const {
    return std::hash<int64_t>()((static_cast<int64_t>(id.site) << 32) |
                                static_cast<uint32_t>(id.index));
  }
};

}  // namespace blockplane::net

#endif  // BLOCKPLANE_NET_NODE_ID_H_
