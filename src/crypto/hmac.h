// HMAC-SHA256 (RFC 2104).
//
// Two implementations share one algorithm:
//
//   * HmacSha256() — the stateless reference path. Rebuilds the key block
//     and ipad/opad schedule on every call (4 compressions + setup for a
//     short message). Kept as the equivalence oracle for tests and as the
//     "naive" baseline for bench_hotpath.
//   * PrecomputedHmacKey — caches the inner/outer SHA-256 midstates of a
//     long-lived key (keys live for a whole deployment per node pair), so
//     each subsequent Sign/Verify costs 2 compressions for a short message
//     instead of 4 plus schedule setup. Bit-identical output by
//     construction: the midstate *is* the state after absorbing ipad/opad.
#ifndef BLOCKPLANE_CRYPTO_HMAC_H_
#define BLOCKPLANE_CRYPTO_HMAC_H_

#include "crypto/sha256.h"

namespace blockplane::crypto {

/// Computes HMAC-SHA256(key, message). Stateless reference path.
Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len);
inline Digest HmacSha256(const Bytes& key, const Bytes& data) {
  return HmacSha256(key, data.data(), data.size());
}
inline Digest HmacSha256(const Bytes& key, std::string_view s) {
  return HmacSha256(key, reinterpret_cast<const uint8_t*>(s.data()),
                    s.size());
}

/// A long-lived HMAC-SHA256 key with the per-key work hoisted out of the
/// per-message path: the key block, the ipad/opad XOR schedule, and the
/// first compression of both the inner and outer hash are done once at
/// construction and replayed from captured midstates on every Sign/Verify.
///
/// Output is bit-identical to HmacSha256() for every key length (keys
/// longer than the 64-byte block are pre-hashed, exactly as RFC 2104
/// specifies); tests/crypto_test.cc holds the property test.
class PrecomputedHmacKey {
 public:
  explicit PrecomputedHmacKey(const Bytes& key);

  /// HMAC-SHA256(key, data), from the cached midstates.
  Digest Sign(const uint8_t* data, size_t len) const;
  Digest Sign(const Bytes& data) const { return Sign(data.data(), data.size()); }
  Digest Sign(std::string_view s) const {
    return Sign(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Constant-shape verify: recomputes the MAC and compares.
  bool Verify(const Bytes& data, const Digest& mac) const {
    return Sign(data) == mac;
  }

  /// As Sign(), but without the hot-path counter update. This object is
  /// immutable after construction and the counter block is owned by the
  /// runner submit thread, so this is the entry point for Runner prologue
  /// work on worker threads (DESIGN.md §12); callers account the op count
  /// at epilogue retirement instead.
  Digest SignDetached(const uint8_t* data, size_t len) const;
  Digest SignDetached(const Bytes& data) const {
    return SignDetached(data.data(), data.size());
  }
  /// Worker-thread-safe verify: recomputes via SignDetached and compares.
  bool VerifyDetached(const Bytes& data, const Digest& mac) const {
    return SignDetached(data) == mac;
  }

 private:
  Sha256Midstate inner_;  // state after absorbing key ^ ipad
  Sha256Midstate outer_;  // state after absorbing key ^ opad
};

}  // namespace blockplane::crypto

#endif  // BLOCKPLANE_CRYPTO_HMAC_H_
