#!/usr/bin/env python3
"""bplint self-test: golden-diff over fixtures + per-rule kill checks.

Run from anywhere:

    python3 scripts/bplint/selftest.py [--regold]

Checks performed:

  1. Golden diff. Every fixture under scripts/bplint/fixtures/ is analyzed
     (each file as its own single-file project, so cross-file rules see
     only that fixture) and the concatenated diagnostics are compared
     byte-for-byte against fixtures/golden.txt.  Re-generate with
     --regold (or env BPLINT_REGOLD=1) after an intentional change.

  2. Per-rule kill check. For each rule BP001..BP006 the matching
     bp00N_violation.cc fixture must produce at least one diagnostic of
     that rule, and must produce zero diagnostics of that rule when the
     rule is disabled.  This is what makes each rule's fixture test fail
     if the check is disabled or broken.

  3. Clean fixtures. Each bp00N_clean.cc fixture must produce zero
     diagnostics (suppressions honored, no false positives).

  4. BP000 hygiene. The bad-suppression fixture must report BP000 for
     both the reasonless allow and the stale allow, and the reasonless
     allow must NOT silence the BP005 diagnostic it sits above.

  5. Determinism. Two full runs over the fixture set must be
     byte-identical, and a jobs=2 parallel analysis must produce exactly
     the serial diagnostics.

  6. Transitive chains. Each fixtures/transitive/bpNNN/ group is
     analyzed as one multi-file project; the rule must fire in a file
     that is clean when analyzed alone — proving the diagnostic exists
     only through the interprocedural chain, not through anything
     lexical in the flagged file.

  7. CLI + SARIF smoke. --list-rules names every rule, a violation
     fixture drives exit status 1 (0 under --disable), and the SARIF
     export is valid JSON carrying the full rule catalog.

Exit status: 0 on success, 1 on any failure.
"""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

import engine  # noqa: E402
from rules import ALL_RULES  # noqa: E402

FIXTURES = os.path.join(_HERE, "fixtures")
GOLDEN = os.path.join(FIXTURES, "golden.txt")


def analyze_fixture(name, disabled=frozenset()):
    """Analyze one fixture as a standalone single-file project."""
    path = os.path.join(FIXTURES, name)
    diags, _ = engine.run([path], root=FIXTURES, compile_commands_dir=None,
                          disabled=disabled, use_clang=False)
    return diags


def fixture_names():
    return sorted(f for f in os.listdir(FIXTURES) if f.endswith(".cc"))


def transitive_groups():
    tdir = os.path.join(FIXTURES, "transitive")
    if not os.path.isdir(tdir):
        return []
    return sorted(g for g in os.listdir(tdir)
                  if os.path.isdir(os.path.join(tdir, g)))


def group_files(group):
    gdir = os.path.join(FIXTURES, "transitive", group)
    return sorted(os.path.join(gdir, f) for f in os.listdir(gdir)
                  if f.endswith(".cc"))


def analyze_group(group, disabled=frozenset()):
    """Analyze a transitive fixture group as one multi-file project."""
    diags, _ = engine.run(group_files(group), root=FIXTURES,
                          compile_commands_dir=None, disabled=disabled,
                          use_clang=False)
    return diags


def render_all():
    """Produce the golden text: per-fixture header + diagnostics."""
    out = []
    for name in fixture_names():
        out.append("== %s ==" % name)
        for d in analyze_fixture(name):
            out.append(str(d))
    for group in transitive_groups():
        out.append("== transitive/%s ==" % group)
        for d in analyze_group(group):
            out.append(str(d))
    return "\n".join(out) + "\n"


def main():
    regold = "--regold" in sys.argv[1:] or os.environ.get("BPLINT_REGOLD") == "1"
    failures = []

    # --- 1. golden diff -------------------------------------------------
    text = render_all()
    if regold:
        with open(GOLDEN, "w") as f:
            f.write(text)
        print("selftest: regenerated %s (%d lines)"
              % (GOLDEN, text.count("\n")))
    if not os.path.exists(GOLDEN):
        failures.append("golden file missing: %s (run with --regold)" % GOLDEN)
    else:
        with open(GOLDEN) as f:
            want = f.read()
        if text != want:
            failures.append("golden mismatch (run with --regold if intended)")
            import difflib
            for line in difflib.unified_diff(
                    want.splitlines(), text.splitlines(),
                    "golden.txt", "actual", lineterm=""):
                print(line)

    # --- 2. per-rule kill check ----------------------------------------
    for rule in sorted(ALL_RULES):
        n = int(rule[2:])
        name = "bp%03d_violation.cc" % n
        if not os.path.exists(os.path.join(FIXTURES, name)):
            failures.append("missing violation fixture for %s" % rule)
            continue
        hits = [d for d in analyze_fixture(name) if d.rule == rule]
        if not hits:
            failures.append("%s: %s produced no %s diagnostics"
                            % (rule, name, rule))
        off = [d for d in analyze_fixture(name, disabled={rule})
               if d.rule == rule]
        if off:
            failures.append("%s: diagnostics survived --disable=%s"
                            % (rule, rule))

    # --- 3. clean fixtures ---------------------------------------------
    for name in fixture_names():
        if "_clean" not in name:
            continue
        diags = analyze_fixture(name)
        if diags:
            failures.append("%s: expected clean, got %d diagnostic(s): %s"
                            % (name, len(diags), "; ".join(map(str, diags))))

    # --- 4. BP000 hygiene ----------------------------------------------
    bad = analyze_fixture("bp000_badsuppress_violation.cc")
    bp000 = [d for d in bad if d.rule == "BP000"]
    bp005 = [d for d in bad if d.rule == "BP005"]
    if len(bp000) < 2:
        failures.append("BP000: expected >=2 hygiene diagnostics, got %d"
                        % len(bp000))
    if not bp005:
        failures.append("BP000: reasonless allow silenced the BP005 "
                        "diagnostic it targeted")

    # --- 5. determinism -------------------------------------------------
    if render_all() != text:
        failures.append("nondeterministic output across two identical runs")
    serial, _ = engine.run([FIXTURES], root=FIXTURES,
                           compile_commands_dir=None, use_clang=False)
    par, _ = engine.run([FIXTURES], root=FIXTURES,
                        compile_commands_dir=None, use_clang=False, jobs=2)
    if list(map(str, serial)) != list(map(str, par)):
        failures.append("jobs=2 diagnostics differ from the serial run")

    # --- 6. transitive chains -------------------------------------------
    for group in transitive_groups():
        rule = group.upper()
        grouped = {d.path for d in analyze_group(group) if d.rule == rule}
        if not grouped:
            failures.append("transitive/%s: group analysis produced no "
                            "%s diagnostics" % (group, rule))
            continue
        if [d for d in analyze_group(group, disabled={rule})
                if d.rule == rule]:
            failures.append("transitive/%s: diagnostics survived "
                            "--disable=%s" % (group, rule))
        # The chain file: flagged in the group, silent on its own.
        chain_only = False
        for path in group_files(group):
            rel = os.path.relpath(path, FIXTURES).replace(os.sep, "/")
            alone = [d for d in
                     engine.run([path], root=FIXTURES,
                                compile_commands_dir=None,
                                use_clang=False)[0] if d.rule == rule]
            if rel in grouped and not alone:
                chain_only = True
        if not chain_only:
            failures.append("transitive/%s: no file is flagged only "
                            "through the cross-file chain" % group)

    # --- 7. CLI smoke ---------------------------------------------------
    import subprocess
    cli = subprocess.run([sys.executable, _HERE, "--list-rules"],
                         capture_output=True, text=True)
    if cli.returncode != 0:
        failures.append("--list-rules exited %d" % cli.returncode)
    for rule in sorted(ALL_RULES):
        if rule not in cli.stdout:
            failures.append("--list-rules does not mention %s" % rule)
    viol = os.path.join(FIXTURES, "bp005_violation.cc")
    hit = subprocess.run(
        [sys.executable, _HERE, "--root", FIXTURES, viol, "--no-clang"],
        capture_output=True, text=True)
    if hit.returncode != 1 or "BP005" not in hit.stdout:
        failures.append("CLI did not flag bp005_violation.cc (rc=%d)"
                        % hit.returncode)
    off = subprocess.run(
        [sys.executable, _HERE, "--root", FIXTURES, viol, "--no-clang",
         "--disable", "BP005"],
        capture_output=True, text=True)
    if off.returncode != 0:
        failures.append("CLI --disable=BP005 still flagged the fixture "
                        "(rc=%d)" % off.returncode)
    import json
    from sarif import to_sarif  # noqa: E402
    doc = json.loads(to_sarif(analyze_fixture("bp005_violation.cc")))
    sarif_rules = {r["id"] for r in
                   doc["runs"][0]["tool"]["driver"]["rules"]}
    if not set(ALL_RULES) <= sarif_rules:
        failures.append("SARIF rule catalog is missing %s"
                        % ", ".join(sorted(set(ALL_RULES) - sarif_rules)))
    if not any(r["ruleId"] == "BP005" for r in doc["runs"][0]["results"]):
        failures.append("SARIF export lost the BP005 result")

    if failures:
        for f in failures:
            print("FAIL: %s" % f, file=sys.stderr)
        print("selftest: %d failure(s)" % len(failures), file=sys.stderr)
        return 1
    print("selftest: OK (%d fixtures, %d transitive groups, %d rules)"
          % (len(fixture_names()), len(transitive_groups()),
             len(ALL_RULES)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
