// Measurement helpers used by the benchmark harness and tests: latency
// histograms with percentiles, simple counters, and time-series recorders
// for the failure-timeline experiments (Fig. 8).
#ifndef BLOCKPLANE_COMMON_METRICS_H_
#define BLOCKPLANE_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace blockplane {

/// Collects double-valued samples (typically latencies in milliseconds) and
/// reports summary statistics.
class Histogram {
 public:
  void Add(double value);
  void Clear();

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  /// p in [0, 100]; nearest-rank on sorted samples.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void EnsureSorted() const;
};

/// Ordered (x, y) series, e.g. (batch number, latency ms) for Fig. 8.
class TimeSeries {
 public:
  void Add(double x, double y) { points_.push_back({x, y}); }
  struct Point {
    double x;
    double y;
  };
  const std::vector<Point>& points() const { return points_; }
  void Clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

/// Process-wide counters for the byzantizing hot path (encode-once /
/// verify-once / zero-copy; see DESIGN.md §"Hot path & caching").
///
/// These are observability-only: nothing reads them to make protocol
/// decisions, so they cannot perturb determinism. Plain int64 fields keep
/// the increment cost to one add on paths that run once per signature or
/// per broadcast fan-out. Benchmarks and tests snapshot/Reset() them.
struct HotPathStats {
  /// Signature verifications answered from a verify-once cache (the HMAC
  /// recomputation was skipped entirely).
  int64_t sig_cache_hits = 0;
  /// Verifications that had to run the full HMAC (and seeded the cache).
  int64_t sig_cache_misses = 0;
  /// Canonical-body/header encodes skipped because a memoized verdict or a
  /// shared already-encoded buffer made re-encoding unnecessary.
  int64_t encodes_elided = 0;
  /// Payload bytes that would have been deep-copied by broadcast fan-out,
  /// retransmission buffers, or out-of-order receive buffering before the
  /// switch to shared (refcounted) payloads.
  int64_t bytes_copied_saved = 0;
  /// MACs computed through a PrecomputedHmacKey midstate (2 compressions)
  /// instead of the naive schedule (4 compressions + setup).
  int64_t hmac_precomputed_ops = 0;
  /// Entries evicted from bounded verify-once caches.
  int64_t verify_cache_evictions = 0;

  void Reset() { *this = HotPathStats{}; }
};

/// The process-wide hot-path counter block.
HotPathStats& hotpath_stats();

/// Named counters, useful for asserting message complexity in tests
/// (e.g. "wide-area messages sent").
class CounterSet {
 public:
  void Increment(const std::string& name, int64_t delta = 1) {
    counters_[name] += delta;
  }
  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void Clear() { counters_.clear(); }
  const std::map<std::string, int64_t>& all() const { return counters_; }

 private:
  std::map<std::string, int64_t> counters_;
};

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_METRICS_H_
