// Fixture: BP000 — suppression hygiene. A reasonless allow is never
// honored (the diagnostic it targeted still fires), and a suppression
// with nothing to suppress is stale and must be removed.
// bplint:consensus-path

// bplint:allow(BP005)
double Reasonless() { return 0.5; }

long long Fine(long long v) {
  // bplint:allow(BP005) stale: the double below was converted long ago
  return v * 2;
}
