// Fixture: BP005 clean — the same backoff computed with saturating
// integer arithmetic and permille fractions.
// bplint:consensus-path

long long BackoffDelay(long long base, int attempts, long long cap) {
  long long delay = base;
  for (int i = 0; i < attempts && delay < cap; ++i) delay *= 2;
  if (delay > cap) delay = cap;
  const long long jitter_permille = 200;
  return delay + delay * jitter_permille / 1000;
}

// Observability-only math may use FP when justified and documented.
// bplint:allow(BP005) reporting-only ratio, never read by the protocol
double HitRate(long long hits, long long misses) {
  // bplint:allow(BP005) reporting-only ratio, never read by the protocol
  return static_cast<double>(hits) / static_cast<double>(hits + misses);
}
