#include "protocols/counter.h"

#include "common/codec.h"

namespace blockplane::protocols {

namespace {

// Payload tags for the three record kinds the protocol commits.
constexpr uint8_t kTagRequest = 1;
constexpr uint8_t kTagCount = 2;
constexpr uint8_t kTagIncrement = 3;

Bytes EncodeRequest(uint64_t id, const std::string& user,
                    net::SiteId destination) {
  Encoder enc;
  enc.PutU8(kTagRequest);
  enc.PutU64(id);
  enc.PutString(user);
  enc.PutU32(static_cast<uint32_t>(destination));
  return enc.Take();
}

struct Request {
  uint64_t id;
  std::string user;
  net::SiteId destination;
};

bool DecodeRequest(const Bytes& buf, Request* out) {
  Decoder dec(buf);
  uint8_t tag = 0;
  uint32_t destination = 0;
  if (!dec.GetU8(&tag).ok() || tag != kTagRequest) return false;
  if (!dec.GetU64(&out->id).ok()) return false;
  if (!dec.GetString(&out->user).ok()) return false;
  if (!dec.GetU32(&destination).ok()) return false;
  out->destination = static_cast<net::SiteId>(destination);
  return true;
}

Bytes EncodeCount(uint64_t id) {
  Encoder enc;
  enc.PutU8(kTagCount);
  enc.PutU64(id);
  return enc.Take();
}

bool DecodeCount(const Bytes& buf, uint64_t* id) {
  Decoder dec(buf);
  uint8_t tag = 0;
  if (!dec.GetU8(&tag).ok() || tag != kTagCount) return false;
  return dec.GetU64(id).ok();
}

}  // namespace

CounterProtocol::CounterProtocol(core::Deployment* deployment)
    : deployment_(deployment) {
  for (net::SiteId site = 0; site < deployment_->num_sites(); ++site) {
    counters_[site] = 0;
    next_request_id_[site] = 1;
    InstallAt(site);
  }
}

void CounterProtocol::InstallAt(net::SiteId site) {
  // Per-node replica state, fed by the apply hook.
  for (int i = 0; i < 3 * deployment_->options().fi + 1; ++i) {
    core::BlockplaneNode* node = deployment_->node(site, i);
    auto state = std::make_shared<NodeState>();
    node_states_[node->self()] = state;
    node->SetApplyHook([state](uint64_t pos, const core::LogRecord& record) {
      switch (record.type) {
        case core::RecordType::kLogCommit: {
          Request request;
          if (DecodeRequest(record.payload, &request)) {
            state->committed_requests.insert(request.id);
          } else if (!record.payload.empty() &&
                     record.payload[0] == kTagIncrement) {
            ++state->increments;
          }
          break;
        }
        case core::RecordType::kCommunication: {
          uint64_t id = 0;
          if (DecodeCount(record.payload, &id)) {
            state->sent_requests.insert(id);
          }
          break;
        }
        case core::RecordType::kReceived:
          ++state->receives;
          break;
        case core::RecordType::kMirrored:
          // Mirror entries replay another participant's log; the counter
          // protocol reads them through the geo layer, not the apply hook.
          break;
        default:
          break;
      }
    });

    // The UserRequest log-commit routine: the request must come from a
    // trusted user/source.
    node->RegisterVerifier(kVerifyUserRequest,
                           [](const core::LogRecord& record) {
                             Request request;
                             if (!DecodeRequest(record.payload, &request)) {
                               return false;
                             }
                             return request.user.rfind("trusted", 0) == 0;
                           });

    // The send routine: the corresponding user request was actually
    // committed and has not been consumed by an earlier send (a malicious
    // node must not originate messages without a user request).
    node->RegisterVerifier(
        kVerifySend, [state](const core::LogRecord& record) {
          uint64_t id = 0;
          if (!DecodeCount(record.payload, &id)) return false;
          if (record.type == core::RecordType::kReceived) {
            // At the destination the message's legitimacy is established
            // by Blockplane's built-in receive verification (f_i+1 source
            // signatures); the send-side request check only applies at
            // the source.
            return true;
          }
          return state->committed_requests.count(id) > 0 &&
                 state->sent_requests.count(id) == 0;
        });

    // The StartServer log-commit routine: an increment needs a received
    // message backing it (the f_i+1-signature check on the message itself
    // is Blockplane's built-in receive verification).
    node->RegisterVerifier(kVerifyIncrement,
                           [state](const core::LogRecord& record) {
                             return state->increments < state->receives;
                           });
  }

  // Algorithm 1's StartServer loop: receive -> log-commit increment -> c++.
  core::Participant* participant = deployment_->participant(site);
  participant->SetReceiveHandler(
      [this, site, participant](net::SiteId src, const Bytes& payload) {
        Bytes increment{kTagIncrement};
        participant->LogCommit(std::move(increment), kVerifyIncrement,
                               [this, site](uint64_t) { ++counters_[site]; });
      });
}

void CounterProtocol::UserRequest(net::SiteId site, net::SiteId destination,
                                  const std::string& user) {
  uint64_t id = next_request_id_[site]++;
  core::Participant* participant = deployment_->participant(site);
  // log-commit(request info); send(to: destination).
  participant->LogCommit(
      EncodeRequest(id, user, destination), kVerifyUserRequest,
      [participant, destination, id](uint64_t) {
        participant->Send(destination, EncodeCount(id),
                          CounterProtocol::kVerifySend, nullptr);
      });
}

}  // namespace blockplane::protocols
