// Figure 7: the global consensus use case — latency of the paxos
// Replication phase per leader datacenter, for four protocols:
//
//   * paxos                — benign baseline (one node per datacenter)
//   * Blockplane-paxos     — paxos byzantized through Blockplane (§VI-E)
//   * PBFT                 — flat byzantine agreement across datacenters
//   * hierarchical PBFT    — PBFT per site + paxos-style cross-site commit
//
// Paper reference: paxos ≈ RTT to the closest majority (within 10%);
// Blockplane-paxos 0–33% above paxos; PBFT 102–157 ms (16–78% above
// Blockplane-paxos); hierarchical PBFT between paxos and Blockplane-paxos.
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"
#include "paxos/node.h"
#include "protocols/bp_paxos.h"
#include "protocols/flat_pbft.h"
#include "protocols/hier_pbft.h"

namespace blockplane {
namespace {

constexpr int kWarmup = 3;
constexpr int kRounds = 20;

net::NetworkOptions BenchNet() {
  net::NetworkOptions options;
  options.intra_site_one_way = sim::Microseconds(100);
  options.per_message_cpu = sim::Microseconds(25);
  return options;
}

double RunPaxos(net::SiteId leader) {
  sim::Simulator simulator(1);
  net::Network network(&simulator, net::Topology::Aws4(), BenchNet());
  paxos::PaxosConfig config;
  for (int site = 0; site < 4; ++site) config.nodes.push_back({site, 0});
  std::vector<std::unique_ptr<paxos::PaxosNode>> nodes;
  uint64_t committed = 0;
  for (int site = 0; site < 4; ++site) {
    auto node = std::make_unique<paxos::PaxosNode>(
        &network, config, config.nodes[site],
        [&, site](uint64_t, const Bytes&) {
          if (site == leader) ++committed;
        });
    node->RegisterWithNetwork();
    nodes.push_back(std::move(node));
  }
  nodes[leader]->StartLeaderElection();
  simulator.RunUntilCondition([&] { return nodes[leader]->IsLeader(); },
                              sim::Seconds(10));

  Histogram latency_ms;
  for (int i = 0; i < kWarmup + kRounds; ++i) {
    sim::SimTime start = simulator.Now();
    uint64_t target = committed + 1;
    nodes[leader]->Submit(bench::MakeBatch(1));
    simulator.RunUntilCondition([&] { return committed >= target; },
                                simulator.Now() + sim::Seconds(10));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

double RunBpPaxos(net::SiteId leader) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.sign_messages = false;
  options.hash_payloads = false;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              BenchNet());
  protocols::BpPaxos paxos(&deployment);
  bool elected = false;
  paxos.LeaderElection(leader, [&](bool won) { elected = won; });
  simulator.RunUntilCondition([&] { return elected; }, sim::Seconds(60));
  BP_CHECK(elected);

  Histogram latency_ms;
  for (int i = 0; i < kWarmup + kRounds; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    paxos.Replicate(leader, bench::MakeBatch(1),
                    [&](bool ok) { done = ok; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(10));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

double RunFlatPbft(net::SiteId leader) {
  sim::Simulator simulator(1);
  net::Network network(&simulator, net::Topology::Aws4(), BenchNet());
  crypto::KeyStore keys;
  protocols::FlatPbft pbft(&network, &keys, leader,
                           /*sign_messages=*/false);
  Histogram latency_ms;
  for (int i = 0; i < kWarmup + kRounds; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    pbft.Commit(bench::MakeBatch(1), [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(10));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

double RunHierPbft(net::SiteId leader) {
  sim::Simulator simulator(1);
  net::Network network(&simulator, net::Topology::Aws4(), BenchNet());
  crypto::KeyStore keys;
  protocols::HierPbft hier(&network, &keys, /*f=*/1,
                           /*sign_messages=*/false);
  Histogram latency_ms;
  for (int i = 0; i < kWarmup + kRounds; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    hier.Replicate(leader, bench::MakeBatch(1), [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(10));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader(
      "Figure 7: Blockplane-paxos vs paxos, PBFT, hierarchical PBFT",
      "paxos ~ majority RTT; BP-paxos +0-33%; PBFT 102-157ms; hier-PBFT "
      "between paxos and BP-paxos");
  net::Topology topo = net::Topology::Aws4();
  std::printf("%12s %10s %18s %10s %18s\n", "leader DC", "paxos",
              "Blockplane-paxos", "PBFT", "hierarchical PBFT");
  for (int leader = 0; leader < 4; ++leader) {
    double paxos_ms = RunPaxos(leader);
    double bp_ms = RunBpPaxos(leader);
    double pbft_ms = RunFlatPbft(leader);
    double hier_ms = RunHierPbft(leader);
    std::printf("%12s %10.1f %18.1f %10.1f %18.1f\n",
                topo.site_name(leader).c_str(), paxos_ms, bp_ms, pbft_ms,
                hier_ms);
  }
  return 0;
}
