// Deterministic pseudo-random number generation for the simulator.
//
// A seeded xoshiro256** generator: fast, good statistical quality, and —
// unlike std::mt19937 + std::uniform_* — byte-for-byte reproducible across
// standard library implementations, which the experiment harness relies on.
#ifndef BLOCKPLANE_SIM_RANDOM_H_
#define BLOCKPLANE_SIM_RANDOM_H_

#include <cstdint>

namespace blockplane::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n) for n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent child generator (for per-node streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace blockplane::sim

#endif  // BLOCKPLANE_SIM_RANDOM_H_
