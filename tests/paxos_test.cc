// Paxos tests: leader election, replication, ordering, failover safety
// (max-ballot adoption), forwarding, and quorum-loss behaviour.
#include "paxos/node.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::paxos {
namespace {

using net::NodeId;
using net::Topology;
using sim::Milliseconds;
using sim::Seconds;

class PaxosHarness {
 public:
  explicit PaxosHarness(int n, uint64_t seed = 1,
                        Topology topology = Topology::Uniform(1, 0))
      : simulator_(seed),
        network_(&simulator_,
                 topology.num_sites() >= n ? std::move(topology)
                                           : Topology::Uniform(n, 10.0)) {
    for (int i = 0; i < n; ++i) {
      config_.nodes.push_back(NodeId{i % network_.topology().num_sites(), 0});
    }
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<PaxosNode>(
          &network_, config_, config_.nodes[i],
          [this, i](uint64_t slot, const Bytes& value) {
            commits_.push_back({i, slot, ToString(value)});
          });
      node->RegisterWithNetwork();
      nodes_.push_back(std::move(node));
    }
  }

  /// Elects node `index` as the stable leader.
  void ElectLeader(int index) {
    nodes_[index]->StartLeaderElection();
    ASSERT_TRUE(simulator_.RunUntilCondition(
        [&] { return nodes_[index]->IsLeader(); },
        simulator_.Now() + Seconds(10)));
  }

  bool SubmitAndWait(int node, const std::string& value,
                     sim::SimTime deadline = Seconds(10)) {
    size_t target = nodes_[node]->last_committed() + 1;
    nodes_[node]->Submit(ToBytes(value));
    return simulator_.RunUntilCondition(
        [&] { return nodes_[node]->last_committed() >= target; },
        simulator_.Now() + deadline);
  }

  std::vector<std::string> LogOf(int node) const {
    std::vector<std::string> out;
    for (auto& [slot, value] : nodes_[node]->decided_log()) {
      if (!value.empty()) out.push_back(ToString(value));
    }
    return out;
  }

  struct Commit {
    int node;
    uint64_t slot;
    std::string value;
  };

  sim::Simulator simulator_;
  net::Network network_;
  PaxosConfig config_;
  std::vector<std::unique_ptr<PaxosNode>> nodes_;
  std::vector<Commit> commits_;
};

TEST(PaxosTest, ElectsLeaderAndReplicates) {
  PaxosHarness harness(3);
  harness.ElectLeader(0);
  ASSERT_TRUE(harness.SubmitAndWait(0, "first"));
  harness.simulator_.RunFor(Seconds(1));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(harness.LogOf(i), std::vector<std::string>{"first"});
  }
}

TEST(PaxosTest, TotalOrderAcrossManyValues) {
  PaxosHarness harness(5);
  harness.ElectLeader(0);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(harness.SubmitAndWait(0, "v" + std::to_string(i)));
  }
  harness.simulator_.RunFor(Seconds(1));
  auto reference = harness.LogOf(0);
  ASSERT_EQ(reference.size(), 25u);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(harness.LogOf(i), reference);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(reference[i], "v" + std::to_string(i));
}

TEST(PaxosTest, FollowerForwardsToLeader) {
  PaxosHarness harness(3);
  harness.ElectLeader(1);
  // Submit at a follower; it forwards to node 1.
  harness.nodes_[0]->Submit(ToBytes("forwarded"));
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.nodes_[0]->last_committed() >= 1; }, Seconds(10)));
  EXPECT_EQ(harness.LogOf(0), std::vector<std::string>{"forwarded"});
}

TEST(PaxosTest, HigherBallotWinsElection) {
  PaxosHarness harness(3);
  harness.ElectLeader(0);
  harness.ElectLeader(2);  // usurps with a higher ballot
  harness.simulator_.RunFor(Seconds(1));
  EXPECT_FALSE(harness.nodes_[0]->IsLeader());
  EXPECT_TRUE(harness.nodes_[2]->IsLeader());
  ASSERT_TRUE(harness.SubmitAndWait(2, "by new leader"));
}

TEST(PaxosTest, NewLeaderAdoptsAcceptedValue) {
  // Safety: a value accepted by a majority must survive leader changes.
  PaxosHarness harness(3);
  harness.ElectLeader(0);
  ASSERT_TRUE(harness.SubmitAndWait(0, "sticky"));
  // Elect a different leader and commit more.
  harness.ElectLeader(1);
  ASSERT_TRUE(harness.SubmitAndWait(1, "after switch"));
  harness.simulator_.RunFor(Seconds(1));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(harness.LogOf(i),
              (std::vector<std::string>{"sticky", "after switch"}));
  }
}

TEST(PaxosTest, FailureDetectorElectsNewLeaderOnCrash) {
  PaxosHarness harness(3, /*seed=*/5);
  harness.ElectLeader(0);
  for (auto& node : harness.nodes_) node->EnableFailureDetector();
  ASSERT_TRUE(harness.SubmitAndWait(0, "pre-crash"));
  harness.network_.Crash(harness.config_.nodes[0]);
  // Some follower should eventually take over.
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] {
        return harness.nodes_[1]->IsLeader() || harness.nodes_[2]->IsLeader();
      },
      harness.simulator_.Now() + Seconds(30)));
  int new_leader = harness.nodes_[1]->IsLeader() ? 1 : 2;
  ASSERT_TRUE(harness.SubmitAndWait(new_leader, "post-crash", Seconds(30)));
  EXPECT_EQ(harness.LogOf(new_leader).back(), "post-crash");
  EXPECT_EQ(harness.LogOf(new_leader).front(), "pre-crash");
}

TEST(PaxosTest, MinorityPartitionCannotCommit) {
  PaxosHarness harness(3);
  harness.ElectLeader(0);
  // Cut the leader's site off from both followers (nodes are on distinct
  // sites in the uniform topology).
  harness.network_.PartitionSites(0, 1);
  harness.network_.PartitionSites(0, 2);
  EXPECT_FALSE(harness.SubmitAndWait(0, "isolated", Seconds(3)));
  // Heal; the pending value goes through.
  harness.network_.HealPartition(0, 1);
  harness.network_.HealPartition(0, 2);
  // Re-drive replication by submitting again (the accept was dropped).
  ASSERT_TRUE(harness.SubmitAndWait(0, "healed", Seconds(10)));
}

TEST(PaxosTest, WideAreaLatencyMatchesClosestMajority) {
  // Fig. 7 sanity: paxos replication from a Virginia leader takes about one
  // RTT to the second-closest datacenter (70 ms to Ireland).
  PaxosHarness harness(4, 1, Topology::Aws4());
  harness.ElectLeader(net::kVirginia);
  harness.simulator_.RunFor(Seconds(1));
  sim::SimTime start = harness.simulator_.Now();
  ASSERT_TRUE(harness.SubmitAndWait(net::kVirginia, "geo"));
  double ms = sim::ToMillis(harness.simulator_.Now() - start);
  EXPECT_GT(ms, 65.0);
  EXPECT_LT(ms, 90.0);
}

class PaxosSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PaxosSweepTest, AgreementHoldsAcrossSizesAndSeeds) {
  auto [n, seed] = GetParam();
  PaxosHarness harness(n, static_cast<uint64_t>(seed));
  harness.ElectLeader(seed % n);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(harness.SubmitAndWait(seed % n, "op" + std::to_string(i)));
  }
  harness.simulator_.RunFor(Seconds(1));
  auto reference = harness.LogOf(0);
  ASSERT_EQ(reference.size(), 10u);
  for (int i = 1; i < n; ++i) EXPECT_EQ(harness.LogOf(i), reference);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, PaxosSweepTest,
    ::testing::Combine(::testing::Values(3, 5, 7),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_seed" +
             std::to_string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace blockplane::paxos
