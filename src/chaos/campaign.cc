#include "chaos/campaign.h"

#include <algorithm>
#include <map>

#include "common/macros.h"
#include "sim/random.h"

namespace blockplane::chaos {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kCrashNode: return "crash_node";
    case FaultType::kRecoverNode: return "recover_node";
    case FaultType::kCrashSite: return "crash_site";
    case FaultType::kRecoverSite: return "recover_site";
    case FaultType::kPartition: return "partition";
    case FaultType::kHeal: return "heal";
    case FaultType::kPartitionOneWay: return "partition_one_way";
    case FaultType::kHealOneWay: return "heal_one_way";
    case FaultType::kDropBurst: return "drop_burst";
    case FaultType::kCorruptBurst: return "corrupt_burst";
    case FaultType::kDuplicateBurst: return "duplicate_burst";
    case FaultType::kHealAll: return "heal_all";
    case FaultType::kByzEquivocate: return "byz_equivocate";
    case FaultType::kByzSilent: return "byz_silent";
    case FaultType::kByzBogusVotes: return "byz_bogus_votes";
    case FaultType::kByzWithholdAttest: return "byz_withhold_attest";
    case FaultType::kByzForgeReads: return "byz_forge_reads";
    case FaultType::kByzReorderGeo: return "byz_reorder_geo";
  }
  return "unknown";
}

const char* ScheduleTemplateName(ScheduleTemplate t) {
  switch (t) {
    case ScheduleTemplate::kCrashHeavy: return "crash_heavy";
    case ScheduleTemplate::kPartitionHeavy: return "partition_heavy";
    case ScheduleTemplate::kByzantineHeavy: return "byzantine_heavy";
    case ScheduleTemplate::kMixed: return "mixed";
  }
  return "unknown";
}

namespace {

/// Per-unit fault budget: at most f_i nodes of a unit may be faulty
/// (crashed or byzantine) at any instant. Crash intervals are serialized
/// per site against the byzantine assignment count, which is permanent.
struct UnitBudget {
  /// Earliest time a new crash may start at this site.
  sim::SimTime next_free = 0;
  /// Node indices permanently assigned a byzantine role.
  std::vector<int> byzantine;
};

class Compiler {
 public:
  explicit Compiler(CampaignConfig config)
      : cfg_(std::move(config)), rng_(cfg_.seed * 0x9e3779b97f4a7c15ULL + 1) {}

  Campaign Compile() {
    switch (cfg_.schedule) {
      case ScheduleTemplate::kCrashHeavy: CrashHeavy(); break;
      case ScheduleTemplate::kPartitionHeavy: PartitionHeavy(); break;
      case ScheduleTemplate::kByzantineHeavy: ByzantineHeavy(); break;
      case ScheduleTemplate::kMixed: Mixed(); break;
    }
    // End-of-campaign sweep: whatever one-off heals already happened, make
    // certain nothing survives past the horizon.
    Add({cfg_.horizon, FaultType::kHealAll});
    std::stable_sort(actions_.begin(), actions_.end(),
                     [](const FaultAction& a, const FaultAction& b) {
                       return a.at < b.at;
                     });
    return Campaign{cfg_, std::move(actions_)};
  }

 private:
  void Add(FaultAction action) { actions_.push_back(action); }

  sim::SimTime UniformTime(sim::SimTime lo, sim::SimTime hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<sim::SimTime>(
                    rng_.NextBelow(static_cast<uint64_t>(hi - lo)));
  }

  net::SiteId RandomSite() {
    return static_cast<net::SiteId>(rng_.NextBelow(cfg_.num_sites));
  }

  int NodesPerUnit() const { return 3 * cfg_.fi + 1; }

  /// Schedules one node crash/recover pair on `site`, serialized against
  /// the site's budget so concurrent faults never exceed f_i.
  void AddNodeCrash(net::SiteId site, sim::SimTime around,
                    sim::SimTime max_outage) {
    UnitBudget& budget = budgets_[site];
    sim::SimTime at = std::max(around, budget.next_free);
    if (at >= cfg_.horizon) return;
    sim::SimTime outage = sim::Milliseconds(200) +
        UniformTime(0, max_outage - sim::Milliseconds(200));
    sim::SimTime recover_at = std::min<sim::SimTime>(at + outage,
                                                     cfg_.horizon);
    // Never crash a node that holds a permanent byzantine role: together
    // they would exceed the unit's f_i budget.
    int index = -1;
    for (int attempt = 0; attempt < 8 && index < 0; ++attempt) {
      int candidate = static_cast<int>(rng_.NextBelow(NodesPerUnit()));
      bool is_byz = std::find(budget.byzantine.begin(),
                              budget.byzantine.end(),
                              candidate) != budget.byzantine.end();
      if (!is_byz) index = candidate;
    }
    if (index < 0) return;
    Add({at, FaultType::kCrashNode, site, -1, index});
    Add({recover_at, FaultType::kRecoverNode, site, -1, index});
    // Leave slack after recovery so catch-up completes before the next hit.
    budget.next_free = recover_at + sim::Milliseconds(500);
  }

  /// One full-site outage, serialized globally (one site down at a time).
  /// `avoid` excludes a site (e.g. one holding a permanent byzantine
  /// node, whose unit must keep its f_i budget after the heal).
  void AddSiteOutage(sim::SimTime around, sim::SimTime max_outage,
                     net::SiteId avoid = -1) {
    sim::SimTime at = std::max(around, site_outage_free_);
    if (at >= cfg_.horizon) return;
    net::SiteId site = RandomSite();
    if (site == avoid) {
      site = static_cast<net::SiteId>((site + 1) % cfg_.num_sites);
    }
    sim::SimTime outage = sim::Milliseconds(400) +
        UniformTime(0, max_outage - sim::Milliseconds(400));
    sim::SimTime recover_at = std::min<sim::SimTime>(at + outage,
                                                     cfg_.horizon);
    Add({at, FaultType::kCrashSite, site});
    Add({recover_at, FaultType::kRecoverSite, site});
    site_outage_free_ = recover_at + sim::Seconds(1);
    // The outage also consumes the whole unit's crash budget.
    budgets_[site].next_free =
        std::max(budgets_[site].next_free, site_outage_free_);
  }

  void AddPartition(sim::SimTime around, sim::SimTime max_span,
                    bool one_way) {
    if (cfg_.num_sites < 2) return;
    sim::SimTime at = std::max(around, cfg_.start);
    if (at >= cfg_.horizon) return;
    net::SiteId a = RandomSite();
    net::SiteId b = RandomSite();
    if (a == b) b = static_cast<net::SiteId>((a + 1) % cfg_.num_sites);
    sim::SimTime span = sim::Milliseconds(300) +
        UniformTime(0, max_span - sim::Milliseconds(300));
    sim::SimTime heal_at = std::min<sim::SimTime>(at + span, cfg_.horizon);
    if (one_way) {
      Add({at, FaultType::kPartitionOneWay, a, b});
      Add({heal_at, FaultType::kHealOneWay, a, b});
    } else {
      Add({at, FaultType::kPartition, a, b});
      Add({heal_at, FaultType::kHeal, a, b});
    }
  }

  void AddBurst(FaultType type, sim::SimTime around, double max_prob,
                sim::SimTime max_span) {
    sim::SimTime at = std::max(around, cfg_.start);
    if (at >= cfg_.horizon) return;
    FaultAction action;
    action.at = at;
    action.type = type;
    action.probability = 0.02 + rng_.NextDouble() * (max_prob - 0.02);
    action.duration = sim::Milliseconds(200) +
        UniformTime(0, max_span - sim::Milliseconds(200));
    if (at + action.duration > cfg_.horizon) {
      action.duration = cfg_.horizon - at;
    }
    Add(action);
  }

  /// Permanently assigns a byzantine role if the unit still has budget.
  void AddByzantine(FaultType type, net::SiteId site, int index,
                    sim::SimTime at) {
    UnitBudget& budget = budgets_[site];
    if (static_cast<int>(budget.byzantine.size()) >= cfg_.fi) return;
    if (std::find(budget.byzantine.begin(), budget.byzantine.end(), index) !=
        budget.byzantine.end()) {
      return;
    }
    budget.byzantine.push_back(index);
    // A permanently byzantine node consumes the unit's crash budget for
    // the whole campaign (fi = 1 deployments must not also crash a node).
    budget.next_free = sim::kSimTimeMax;
    Add({at, type, site, -1, index});
  }

  // --- templates -------------------------------------------------------------

  void CrashHeavy() {
    // Waves of node crashes across every site plus one full-site outage,
    // with drop/duplicate bursts layered on top.
    sim::SimTime window = cfg_.horizon - cfg_.start;
    int waves = 3 + static_cast<int>(rng_.NextBelow(3));
    for (int w = 0; w < waves; ++w) {
      for (net::SiteId site = 0; site < cfg_.num_sites; ++site) {
        if (rng_.Bernoulli(0.7)) {
          AddNodeCrash(site, cfg_.start + UniformTime(0, window),
                       sim::Seconds(3));
        }
      }
    }
    AddSiteOutage(cfg_.start + UniformTime(0, window / 2), sim::Seconds(4));
    AddBurst(FaultType::kDropBurst, cfg_.start + UniformTime(0, window),
             0.25, sim::Seconds(3));
    AddBurst(FaultType::kDuplicateBurst, cfg_.start + UniformTime(0, window),
             0.3, sim::Seconds(3));
  }

  void PartitionHeavy() {
    sim::SimTime window = cfg_.horizon - cfg_.start;
    int cuts = 4 + static_cast<int>(rng_.NextBelow(4));
    for (int c = 0; c < cuts; ++c) {
      AddPartition(cfg_.start + UniformTime(0, window), sim::Seconds(4),
                   /*one_way=*/rng_.Bernoulli(0.4));
    }
    AddBurst(FaultType::kDropBurst, cfg_.start + UniformTime(0, window),
             0.2, sim::Seconds(2));
    AddBurst(FaultType::kCorruptBurst, cfg_.start + UniformTime(0, window),
             0.15, sim::Seconds(2));
    if (rng_.Bernoulli(0.5)) {
      AddNodeCrash(RandomSite(), cfg_.start + UniformTime(0, window),
                   sim::Seconds(2));
    }
  }

  void ByzantineHeavy() {
    // One byzantine node per unit (the f_i budget), with a scripted mix of
    // behaviors. The geo-reorder leader always appears at site 0 node 0 —
    // the initial unit leader — so the quarantine-and-gap-fill defense is
    // exercised on every byzantine-heavy seed.
    AddByzantine(FaultType::kByzReorderGeo, 0, 0, sim::Milliseconds(10));
    static constexpr FaultType kBehaviors[] = {
        FaultType::kByzEquivocate, FaultType::kByzSilent,
        FaultType::kByzBogusVotes, FaultType::kByzWithholdAttest,
        FaultType::kByzForgeReads,
    };
    for (net::SiteId site = 1; site < cfg_.num_sites; ++site) {
      FaultType behavior = kBehaviors[rng_.NextBelow(5)];
      int index = static_cast<int>(rng_.NextBelow(NodesPerUnit()));
      AddByzantine(behavior, site, index,
                   cfg_.start + UniformTime(0, sim::Seconds(1)));
    }
    AddBurst(FaultType::kDuplicateBurst,
             cfg_.start + UniformTime(0, cfg_.horizon - cfg_.start), 0.2,
             sim::Seconds(3));
  }

  void Mixed() {
    sim::SimTime window = cfg_.horizon - cfg_.start;
    // One byzantine unit somewhere (geo-reorder leader half the time).
    net::SiteId byz_site = RandomSite();
    if (rng_.Bernoulli(0.5)) {
      AddByzantine(FaultType::kByzReorderGeo, byz_site, 0,
                   sim::Milliseconds(10));
    } else {
      static constexpr FaultType kBehaviors[] = {
          FaultType::kByzSilent, FaultType::kByzBogusVotes,
          FaultType::kByzWithholdAttest,
      };
      AddByzantine(kBehaviors[rng_.NextBelow(3)], byz_site,
                   static_cast<int>(rng_.NextBelow(NodesPerUnit())),
                   cfg_.start + UniformTime(0, sim::Seconds(1)));
    }
    // Crashes on the other sites.
    for (net::SiteId site = 0; site < cfg_.num_sites; ++site) {
      if (site == byz_site) continue;
      if (rng_.Bernoulli(0.8)) {
        AddNodeCrash(site, cfg_.start + UniformTime(0, window),
                     sim::Seconds(3));
      }
    }
    // A partition and a burst.
    AddPartition(cfg_.start + UniformTime(0, window), sim::Seconds(3),
                 /*one_way=*/rng_.Bernoulli(0.3));
    AddBurst(FaultType::kDropBurst, cfg_.start + UniformTime(0, window),
             0.15, sim::Seconds(2));
    // Half the campaigns also take a full (non-byzantine) site down: with
    // fg = 1 the mirror groups hosted there fall behind the geo stream
    // and must backfill from their peer mirrors after the heal (§V).
    if (rng_.Bernoulli(0.5)) {
      AddSiteOutage(cfg_.start + UniformTime(0, window / 2),
                    sim::Seconds(3), /*avoid=*/byz_site);
    }
  }

  CampaignConfig cfg_;
  sim::Rng rng_;
  std::vector<FaultAction> actions_;
  std::map<net::SiteId, UnitBudget> budgets_;
  sim::SimTime site_outage_free_ = 0;
};

void AppendJsonKV(std::string* out, const char* key, const std::string& value,
                  bool quote, bool trailing_comma = true) {
  *out += "    \"";
  *out += key;
  *out += "\": ";
  if (quote) *out += '"';
  *out += value;
  if (quote) *out += '"';
  if (trailing_comma) *out += ',';
  *out += '\n';
}

}  // namespace

Campaign CompileCampaign(CampaignConfig config) {
  // Template defaults for the deployment shape: byzantine templates need a
  // geo stream (fg > 0) and a pipelined window so the geo-reorder attack
  // has something to reorder; crash/partition templates keep the plain
  // stop-and-wait shape.
  switch (config.schedule) {
    case ScheduleTemplate::kByzantineHeavy:
      config.fg = 1;
      config.pbft_window = std::max<uint64_t>(config.pbft_window, 4);
      config.participant_window =
          std::max<uint64_t>(config.participant_window, 4);
      if (config.reads_per_site == 0) config.reads_per_site = 1;
      break;
    case ScheduleTemplate::kMixed:
      config.fg = 1;
      config.pbft_window = std::max<uint64_t>(config.pbft_window, 2);
      config.participant_window =
          std::max<uint64_t>(config.participant_window, 2);
      break;
    case ScheduleTemplate::kCrashHeavy:
    case ScheduleTemplate::kPartitionHeavy:
      break;
  }
  BP_CHECK(config.num_sites >= 2);
  BP_CHECK(config.horizon > config.start);
  BP_CHECK(config.deadline > config.horizon);
  return Compiler(std::move(config)).Compile();
}

std::string Campaign::ToJson() const {
  std::string out = "{\n  \"config\": {\n";
  AppendJsonKV(&out, "seed", std::to_string(config.seed), false);
  AppendJsonKV(&out, "schedule", ScheduleTemplateName(config.schedule), true);
  AppendJsonKV(&out, "num_sites", std::to_string(config.num_sites), false);
  AppendJsonKV(&out, "fi", std::to_string(config.fi), false);
  AppendJsonKV(&out, "fg", std::to_string(config.fg), false);
  AppendJsonKV(&out, "pbft_window", std::to_string(config.pbft_window),
               false);
  AppendJsonKV(&out, "participant_window",
               std::to_string(config.participant_window), false);
  AppendJsonKV(&out, "adaptive_windows",
               config.adaptive_windows ? "true" : "false", false);
  AppendJsonKV(&out, "quorum_certs",
               config.quorum_certs ? "true" : "false", false);
  AppendJsonKV(&out, "rtt_ms", std::to_string(config.rtt_ms), false);
  AppendJsonKV(&out, "start_ms",
               std::to_string(sim::ToMillis(config.start)), false);
  AppendJsonKV(&out, "horizon_ms",
               std::to_string(sim::ToMillis(config.horizon)), false);
  AppendJsonKV(&out, "deadline_ms",
               std::to_string(sim::ToMillis(config.deadline)), false);
  AppendJsonKV(&out, "ops_per_site", std::to_string(config.ops_per_site),
               false);
  AppendJsonKV(&out, "sends_per_site", std::to_string(config.sends_per_site),
               false);
  AppendJsonKV(&out, "reads_per_site", std::to_string(config.reads_per_site),
               false, /*trailing_comma=*/false);
  out += "  },\n  \"actions\": [\n";
  for (size_t i = 0; i < actions.size(); ++i) {
    const FaultAction& a = actions[i];
    out += "    {\"at_ms\": " + std::to_string(sim::ToMillis(a.at));
    out += ", \"type\": \"";
    out += FaultTypeName(a.type);
    out += "\"";
    if (a.site_a >= 0) out += ", \"site_a\": " + std::to_string(a.site_a);
    if (a.site_b >= 0) out += ", \"site_b\": " + std::to_string(a.site_b);
    if (a.node_index >= 0) {
      out += ", \"node_index\": " + std::to_string(a.node_index);
    }
    if (a.probability > 0) {
      out += ", \"probability\": " + std::to_string(a.probability);
    }
    if (a.duration > 0) {
      out += ", \"duration_ms\": " + std::to_string(sim::ToMillis(a.duration));
    }
    out += "}";
    if (i + 1 < actions.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace blockplane::chaos
