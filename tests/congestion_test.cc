// AIMD window-controller tests (DESIGN.md §13): slow-start and
// congestion-avoidance growth, clamp bounds, spike-gated multiplicative
// decrease with the one-per-RTO rate limit, view-change churn handling,
// RTT-derived retransmission timeouts, and the metrics-registry gauge
// contract. The chaos-campaign tests at the bottom drive the controllers
// end-to-end through a loss burst and a partition/heal cycle and assert
// the windows shrink under loss and the deployment still satisfies I1–I4.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "chaos/campaign.h"
#include "chaos/engine.h"
#include "common/metrics.h"
#include "core/congestion.h"
#include "sim/sim_time.h"

namespace blockplane::core {
namespace {

CongestionOptions TestOptions() {
  CongestionOptions opts;
  opts.adaptive = true;
  opts.min_window = 1;
  opts.max_window = 64;
  opts.min_rto = sim::Milliseconds(5);
  return opts;
}

// With the 10 ms prior, Rto = srtt + max(4*rttvar, srtt, min_rto)
//                            = 10 + max(20, 10, 5) = 30 ms.
constexpr sim::SimTime kPrior = sim::Milliseconds(10);
constexpr sim::SimTime kRto = sim::Milliseconds(30);

TEST(WindowControllerTest, SlowStartAddsOnePerAck) {
  WindowController ctl(TestOptions(), /*initial_window=*/4, kPrior, "t-ss");
  EXPECT_EQ(ctl.window(), 4u);
  EXPECT_EQ(ctl.ssthresh(), 64u) << "slow start runs until the first decrease";
  ctl.OnAck(kPrior);
  EXPECT_EQ(ctl.window(), 5u);
  ctl.OnAckNoSample();
  EXPECT_EQ(ctl.window(), 6u) << "sample-free acks still grow the window";
  for (int i = 0; i < 200; ++i) ctl.OnAckNoSample();
  EXPECT_EQ(ctl.window(), 64u) << "growth stops at max_window";
}

TEST(WindowControllerTest, InitialWindowIsClamped) {
  WindowController high(TestOptions(), /*initial_window=*/1000, kPrior,
                        "t-hi");
  EXPECT_EQ(high.window(), 64u);

  CongestionOptions floor = TestOptions();
  floor.min_window = 2;
  WindowController low(floor, /*initial_window=*/0, kPrior, "t-lo");
  EXPECT_EQ(low.window(), 2u);
  EXPECT_EQ(low.min_window_seen(), 2u);
}

TEST(WindowControllerTest, IsolatedLossesNeverDecrease) {
  WindowController ctl(TestOptions(), /*initial_window=*/32, kPrior, "t-iso");
  // Random single drops land more than spike_threshold()*RTO apart: each
  // one opens a fresh spike bucket and the threshold is never crossed.
  sim::SimTime now = sim::Milliseconds(100);
  for (int i = 0; i < 10; ++i) {
    ctl.OnLoss(now);
    now += (static_cast<sim::SimTime>(ctl.spike_threshold()) + 1) * kRto;
  }
  EXPECT_EQ(ctl.loss_events(), 10);
  EXPECT_EQ(ctl.decreases(), 0);
  EXPECT_EQ(ctl.window(), 32u);
}

TEST(WindowControllerTest, LossSpikeHalvesOnceAndIsRateLimited) {
  WindowController ctl(TestOptions(), /*initial_window=*/32, kPrior, "t-spk");
  const sim::SimTime t0 = sim::Milliseconds(100);
  ctl.OnLoss(t0);
  ctl.OnLoss(t0 + sim::Milliseconds(10));
  EXPECT_EQ(ctl.decreases(), 0) << "two signals are below the threshold";
  ctl.OnLoss(t0 + sim::Milliseconds(20));
  EXPECT_EQ(ctl.decreases(), 1);
  EXPECT_EQ(ctl.window(), 16u);
  EXPECT_EQ(ctl.ssthresh(), 16u);
  EXPECT_EQ(ctl.min_window_seen(), 16u);

  // A correlated burst right behind the decrease (every in-flight item
  // timing out at once) is one congestion event: the rate limit holds
  // further decreases for a full RTO.
  ctl.OnLoss(t0 + sim::Milliseconds(22));
  ctl.OnLoss(t0 + sim::Milliseconds(24));
  ctl.OnLoss(t0 + sim::Milliseconds(26));
  EXPECT_EQ(ctl.decreases(), 1) << "rate limit: one decrease per RTO";
  EXPECT_EQ(ctl.window(), 16u);

  // Once the RTO has passed, a fresh spike decreases again.
  ctl.OnLoss(t0 + kRto + sim::Milliseconds(25));
  EXPECT_EQ(ctl.decreases(), 2);
  EXPECT_EQ(ctl.window(), 8u);
  EXPECT_EQ(ctl.min_window_seen(), 8u);
}

TEST(WindowControllerTest, CongestionAvoidanceAfterDecrease) {
  WindowController ctl(TestOptions(), /*initial_window=*/32, kPrior, "t-ca");
  const sim::SimTime t0 = sim::Milliseconds(100);
  for (int i = 0; i < 3; ++i) ctl.OnLoss(t0 + i * sim::Milliseconds(5));
  ASSERT_EQ(ctl.window(), 16u);
  ASSERT_EQ(ctl.ssthresh(), 16u);
  // At or above ssthresh growth is +1 per full window of acks, not +1
  // per ack.
  for (int i = 0; i < 15; ++i) ctl.OnAckNoSample();
  EXPECT_EQ(ctl.window(), 16u);
  ctl.OnAckNoSample();
  EXPECT_EQ(ctl.window(), 17u);
}

TEST(WindowControllerTest, ViewChangeDecreasesUnconditionally) {
  WindowController ctl(TestOptions(), /*initial_window=*/32, kPrior, "t-vc");
  const sim::SimTime t0 = sim::Milliseconds(100);
  // No loss spike needed: churn alone shrinks the window.
  ctl.OnViewChange(t0);
  EXPECT_EQ(ctl.decreases(), 1);
  EXPECT_EQ(ctl.window(), 16u);
  // ...but the per-RTO rate limit still applies.
  ctl.OnViewChange(t0 + sim::Milliseconds(1));
  EXPECT_EQ(ctl.decreases(), 1);
  ctl.OnViewChange(t0 + kRto);
  EXPECT_EQ(ctl.decreases(), 2);
  EXPECT_EQ(ctl.window(), 8u);
}

TEST(WindowControllerTest, WindowNeverLeavesClampBounds) {
  CongestionOptions opts = TestOptions();
  opts.min_window = 2;
  WindowController ctl(opts, /*initial_window=*/4, kPrior, "t-clamp");
  sim::SimTime now = sim::Milliseconds(100);
  // Hammer the controller with decrease-eligible spikes: the window must
  // bottom out at min_window, never below.
  for (int i = 0; i < 30; ++i) {
    ctl.OnLoss(now);
    now += sim::Milliseconds(2);
  }
  EXPECT_GE(ctl.window(), 2u);
  EXPECT_EQ(ctl.min_window_seen(), 2u);
}

TEST(WindowControllerTest, RetryTimeoutClampsToFloorAndCap) {
  WindowController ctl(TestOptions(), /*initial_window=*/8, kPrior, "t-rto");
  // Prior 10 ms → raw Rto 30 ms (see kRto above).
  EXPECT_EQ(ctl.RetryTimeout(sim::Milliseconds(5), sim::Milliseconds(500)),
            kRto);
  EXPECT_EQ(ctl.RetryTimeout(sim::Milliseconds(50), sim::Milliseconds(500)),
            sim::Milliseconds(50))
      << "floor wins over an optimistic estimate";
  EXPECT_EQ(ctl.RetryTimeout(sim::Milliseconds(1), sim::Milliseconds(20)),
            sim::Milliseconds(20))
      << "cap keeps adaptive retries no later than the static knob";
}

TEST(WindowControllerTest, FirstSampleReplacesPrior) {
  WindowController ctl(TestOptions(), /*initial_window=*/8, kPrior, "t-srtt");
  EXPECT_EQ(ctl.srtt(), kPrior);
  ctl.OnAck(sim::Milliseconds(80));
  EXPECT_EQ(ctl.srtt(), sim::Milliseconds(80))
      << "the first measurement wins over the construction-time prior";
  // Subsequent samples move srtt with the 1/8 gain.
  ctl.OnAck(sim::Milliseconds(160));
  EXPECT_EQ(ctl.srtt(), sim::Milliseconds(90));
}

TEST(WindowControllerTest, SnapshotEmitsEveryCatalogKey) {
  WindowController ctl(TestOptions(), /*initial_window=*/8, kPrior, "t-snap");
  ctl.OnAck(kPrior);
  ctl.OnLoss(sim::Milliseconds(50));
  std::map<std::string, int64_t> gauges = ctl.SnapshotGauges();
  for (const char* key : kCongestionGaugeKeys) {
    EXPECT_TRUE(gauges.count(key)) << "missing catalog key: " << key;
  }
  EXPECT_EQ(gauges.size(),
            sizeof(kCongestionGaugeKeys) / sizeof(kCongestionGaugeKeys[0]))
      << "every emitted key must be in the catalog (bplint BP006)";
  EXPECT_EQ(gauges["window"], 9);
  EXPECT_EQ(gauges["loss_events"], 1);
  EXPECT_EQ(gauges["rtt_samples"], 1);
}

TEST(WindowControllerTest, RegistersGaugeGroupForLifetime) {
  const std::string group = "congestion.t-registry";
  auto has_group = [&group]() {
    // Duplicate group names get "#<handle>"-suffixed, so match by prefix.
    for (const auto& [name, gauges] : metrics_registry().Snapshot()) {
      if (name.rfind(group, 0) == 0) return true;
    }
    return false;
  };
  ASSERT_FALSE(has_group());
  {
    WindowController ctl(TestOptions(), /*initial_window=*/8, kPrior,
                         "t-registry");
    EXPECT_TRUE(has_group());
  }
  EXPECT_FALSE(has_group()) << "destruction must unregister the group";
}

}  // namespace
}  // namespace blockplane::core

namespace blockplane::chaos {
namespace {

// A hand-built campaign that exercises the adaptive controllers under the
// two signals they exist for: a sustained drop burst (loss spikes) and a
// partition/heal cycle (head-of-line stalls, then recovery). All faults
// end before the horizon and the schedule ends with the heal-all sweep,
// matching the compiler's recoverability constraints.
Campaign AdaptiveLossCampaign(bool adaptive) {
  Campaign campaign;
  campaign.config.seed = 4242;
  campaign.config.num_sites = 3;
  campaign.config.fi = 1;
  campaign.config.fg = 0;
  campaign.config.pbft_window = 8;
  campaign.config.participant_window = 4;
  campaign.config.adaptive_windows = adaptive;
  campaign.config.rtt_ms = 40.0;
  campaign.config.start = sim::Milliseconds(500);
  campaign.config.horizon = sim::Seconds(20);
  campaign.config.deadline = sim::Seconds(60);
  campaign.config.ops_per_site = 6;
  campaign.config.sends_per_site = 4;
  campaign.config.reads_per_site = 0;

  // The engine fires workload bursts at horizon/4 intervals (5 s, 10 s,
  // 15 s here); faults must overlap them or nothing is in flight to lose.
  FaultAction burst;
  burst.at = sim::Milliseconds(4500);
  burst.type = FaultType::kDropBurst;
  burst.probability = 0.6;
  burst.duration = sim::Seconds(4);
  campaign.actions.push_back(burst);

  // Site 1's second-burst send targets site 0 at ~10 s: a 0<->1 partition
  // across that burst stalls the daemon flight's head until the heal, so
  // the retransmit timer fires once per RTO and the spike threshold is
  // guaranteed to trip.
  FaultAction cut;
  cut.at = sim::Milliseconds(9500);
  cut.type = FaultType::kPartition;
  cut.site_a = 0;
  cut.site_b = 1;
  campaign.actions.push_back(cut);

  FaultAction heal = cut;
  heal.at = sim::Milliseconds(12500);
  heal.type = FaultType::kHeal;
  campaign.actions.push_back(heal);

  FaultAction sweep;
  sweep.at = campaign.config.horizon;
  sweep.type = FaultType::kHealAll;
  campaign.actions.push_back(sweep);
  return campaign;
}

TEST(CongestionChaosTest, WindowsShrinkUnderLossAndRecover) {
  ChaosReport report = RunCampaign(AdaptiveLossCampaign(/*adaptive=*/true));
  // I1–I4 must survive the adaptive controllers.
  EXPECT_TRUE(report.ok) << report.ToString();
  EXPECT_TRUE(report.live) << report.ToString();
  // The burst and the partition must have registered as loss signals and
  // shrunk at least one window below where it ended the run.
  EXPECT_GT(report.congestion_loss_events, 0) << report.ToString();
  EXPECT_GT(report.congestion_decreases, 0) << report.ToString();
  EXPECT_GE(report.window_min_seen, 1) << report.ToString();
  EXPECT_LT(report.window_min_seen, report.window_final_max)
      << "windows must recover after the faults heal: " << report.ToString();
}

TEST(CongestionChaosTest, StaticCampaignReportsNoCongestionActivity) {
  ChaosReport report = RunCampaign(AdaptiveLossCampaign(/*adaptive=*/false));
  EXPECT_TRUE(report.ok) << report.ToString();
  EXPECT_TRUE(report.live) << report.ToString();
  // Defaults-off: no controllers exist, so every congestion aggregate in
  // the report stays zero.
  EXPECT_EQ(report.congestion_loss_events, 0);
  EXPECT_EQ(report.congestion_decreases, 0);
  EXPECT_EQ(report.window_min_seen, 0);
  EXPECT_EQ(report.window_final_min, 0);
  EXPECT_EQ(report.window_final_max, 0);
}

TEST(CongestionChaosTest, AdaptiveCampaignIsDeterministic) {
  Campaign campaign = AdaptiveLossCampaign(/*adaptive=*/true);
  ChaosReport a = RunCampaign(campaign);
  ChaosReport b = RunCampaign(campaign);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.congestion_loss_events, b.congestion_loss_events);
  EXPECT_EQ(a.congestion_decreases, b.congestion_decreases);
  EXPECT_EQ(a.window_min_seen, b.window_min_seen);
}

}  // namespace
}  // namespace blockplane::chaos
