// Umbrella header: everything a Blockplane user needs.
//
//   #include "core/blockplane.h"
//
//   sim::Simulator simulator;
//   core::Deployment deployment(&simulator, net::Topology::Aws4(), {});
//   deployment.participant(net::kCalifornia)->LogCommit(...);
//
// See README.md for the programming model and examples/ for full programs.
#ifndef BLOCKPLANE_CORE_BLOCKPLANE_H_
#define BLOCKPLANE_CORE_BLOCKPLANE_H_

#include "core/batcher.h"      // batching & group commit (§VI-C)
#include "core/deployment.h"   // builds units, mirrors, daemons, participants
#include "core/options.h"      // f_i, f_g, timeouts, bench switches
#include "core/participant.h"  // log-commit / read / send / receive (§III)
#include "core/record.h"       // Local Log records & transmission records
#include "net/topology.h"      // the wide-area RTT model (Table I)
#include "sim/simulator.h"     // the deterministic clock everything runs on

#endif  // BLOCKPLANE_CORE_BLOCKPLANE_H_
