#include "crypto/hmac.h"

#include <cstring>

#include "common/metrics.h"

namespace blockplane::crypto {

namespace {

constexpr size_t kBlock = 64;

/// Expands `key` into the 64-byte HMAC key block (hash-then-pad for
/// oversized keys, zero-pad otherwise).
void BuildKeyBlock(const Bytes& key, uint8_t key_block[kBlock]) {
  std::memset(key_block, 0, kBlock);
  if (key.size() > kBlock) {
    Digest kd = Sha256Digest(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else if (!key.empty()) {
    // The empty-key guard matters: memcpy from a null source is undefined
    // even for zero bytes, and an empty Bytes has data() == nullptr.
    std::memcpy(key_block, key.data(), key.size());
  }
}

}  // namespace

Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len) {
  uint8_t key_block[kBlock];
  BuildKeyBlock(key, key_block);

  uint8_t ipad[kBlock];
  uint8_t opad[kBlock];
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlock);
  inner.Update(data, len);
  Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlock);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

PrecomputedHmacKey::PrecomputedHmacKey(const Bytes& key) {
  uint8_t key_block[kBlock];
  BuildKeyBlock(key, key_block);

  uint8_t pad[kBlock];
  Sha256 ctx;
  for (size_t i = 0; i < kBlock; ++i) pad[i] = key_block[i] ^ 0x36;
  ctx.Update(pad, kBlock);
  inner_ = ctx.CaptureMidstate();

  ctx.Reset();
  for (size_t i = 0; i < kBlock; ++i) pad[i] = key_block[i] ^ 0x5c;
  ctx.Update(pad, kBlock);
  outer_ = ctx.CaptureMidstate();
}

Digest PrecomputedHmacKey::Sign(const uint8_t* data, size_t len) const {
  hotpath_stats().hmac_precomputed_ops++;
  return SignDetached(data, len);
}

Digest PrecomputedHmacKey::SignDetached(const uint8_t* data,
                                        size_t len) const {
  Sha256 ctx;
  ctx.RestoreMidstate(inner_);
  ctx.Update(data, len);
  Digest inner_digest = ctx.Finish();

  ctx.RestoreMidstate(outer_);
  ctx.Update(inner_digest.data(), inner_digest.size());
  return ctx.Finish();
}

}  // namespace blockplane::crypto
