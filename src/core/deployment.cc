#include "core/deployment.h"

#include "pbft/config.h"

namespace blockplane::core {

Deployment::Deployment(sim::Simulator* simulator, net::Topology topology,
                       BlockplaneOptions options,
                       net::NetworkOptions net_options)
    : sim_(simulator),
      network_(simulator, std::move(topology), net_options),
      options_(options) {
  const int num_sites = network_.topology().num_sites();
  const int unit_size = 3 * options_.fi + 1;

  // Mirror sets: each site's 2fg closest sites (by RTT), per §V.
  for (net::SiteId site = 0; site < num_sites; ++site) {
    std::vector<net::SiteId> mirrors;
    if (options_.fg > 0) {
      std::vector<int> by_proximity =
          network_.topology().SitesByProximity(site);
      // Ideally 2fg mirrors; with fewer sites (as in the paper's fg=2,3
      // runs on 4 datacenters) every other site mirrors.
      int mirror_count = std::min<int>(2 * options_.fg,
                                       static_cast<int>(by_proximity.size()));
      BP_CHECK_MSG(mirror_count >= options_.fg,
                   "fg exceeds the number of other sites");
      for (int i = 0; i < mirror_count; ++i) {
        mirrors.push_back(by_proximity[i]);
      }
    }
    mirror_sites_[site] = std::move(mirrors);
  }

  // Units: 3fi+1 Blockplane nodes per participant.
  for (net::SiteId site = 0; site < num_sites; ++site) {
    pbft::PbftConfig group = pbft::UnitConfig(site, options_.fi);
    auto& nodes = units_[site];
    for (int i = 0; i < unit_size; ++i) {
      nodes.push_back(std::make_unique<BlockplaneNode>(
          &network_, &keys_, options_, group, group.nodes[i], site));
    }
    // Communication daemons: the active daemon per destination runs on
    // node 0; nodes 1..fi+1 hold the daemon reserve (§IV-C).
    for (net::SiteId dest = 0; dest < num_sites; ++dest) {
      if (dest == site) continue;
      nodes[0]->StartCommDaemon(dest, /*reserve=*/false);
      for (int r = 1; r <= options_.fi + 1 && r < unit_size; ++r) {
        nodes[r]->StartCommDaemon(dest, /*reserve=*/true);
      }
    }
  }

  // Mirror groups (§V): origin's log replicated at each of its mirrors.
  if (options_.fg > 0) {
    for (net::SiteId origin = 0; origin < num_sites; ++origin) {
      for (net::SiteId host : mirror_sites_[origin]) {
        pbft::PbftConfig group;
        group.f = options_.fi;
        for (int i = 0; i < unit_size; ++i) {
          group.nodes.push_back(MirrorNodeId(host, origin, i));
        }
        // The other hosts mirroring the same origin: gap-backfill fetch
        // targets (§V) when this group falls behind the geo stream.
        std::vector<net::SiteId> peer_hosts;
        for (net::SiteId peer : mirror_sites_[origin]) {
          if (peer != host) peer_hosts.push_back(peer);
        }
        auto& nodes = mirrors_[{host, origin}];
        for (int i = 0; i < unit_size; ++i) {
          nodes.push_back(std::make_unique<BlockplaneNode>(
              &network_, &keys_, options_, group, group.nodes[i], origin));
          nodes.back()->SetMirrorPeerHosts(peer_hosts);
        }
      }
    }
  }

  // Participants (user-space handles).
  for (net::SiteId site = 0; site < num_sites; ++site) {
    participants_[site] = std::make_unique<Participant>(
        &network_, &keys_, options_, pbft::UnitConfig(site, options_.fi),
        site, mirror_sites_[site]);
  }
}

void Deployment::RegisterVerifier(
    net::SiteId site, uint64_t routine_id,
    const std::function<VerifyRoutine(BlockplaneNode*)>& factory) {
  for (auto& node : units_.at(site)) {
    node->RegisterVerifier(routine_id, factory(node.get()));
  }
}

}  // namespace blockplane::core
