"""The bplint rule catalog (BP001-BP006 + BP000 meta checks).

Each rule is a function over the Project (all analyzed files' facts)
that yields Diagnostic objects. Diagnostics are deduplicated and sorted
by the engine, so rules are free to emit in any order.

Rule catalog (see DESIGN.md section 11 for the rationale):

  BP001  unordered-container iteration whose order escapes into wire
         encoding, digests, JSON/metrics export, or event scheduling.
  BP002  forbidden entropy/time sources outside src/sim and bench/
         (all randomness must flow from the seeded simulator RNG).
  BP003  wire-struct field coverage: every field of a struct in a
         `bplint:wire-coverage` header must appear in its Encode,
         Decode, and digest path (authentication material — Signature
         and QuorumCert fields — is digest-exempt: it attests the
         canonical bytes, so it cannot also be covered by them).
  BP004  message-type dispatch exhaustiveness: switches over
         *MessageType enums must be exhaustive or carry a default, and
         every enumerator must be dispatched somewhere in the project.
  BP005  no floating point in consensus/state-machine/digest paths
         (src/core, src/pbft, src/paxos, src/crypto, or files marked
         `bplint:consensus-path`).
  BP006  metrics/trace hygiene: every *Stats counter is registered
         with MetricsRegistry, every Tracer::Mark phase is in the
         kTracePhases catalog (and vice versa), and every
         CongestionGauge key is in the kCongestionGaugeKeys catalog
         (and vice versa).
  BP007  mutable static / un-mutexed namespace-scope state in files on
         a Runner prologue path (RunPrologue / SignBatch / VerifyBatch /
         VerifyDetached, or `bplint:runner-prologue-path`): prologues
         run on worker threads, so such state is a data race.
  BP000  linter hygiene: malformed or unused `bplint:allow` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from cppmodel import Enum, FileFacts, Struct, Tok

RULE_DESCRIPTIONS = [
    ("BP001", "unordered-container iteration order escapes into an "
              "order-sensitive sink (wire encoding, digest, JSON/metrics "
              "export, event scheduling)"),
    ("BP002", "forbidden entropy/time source outside src/sim and bench/ "
              "(use the seeded simulator RNG / simulated clock)"),
    ("BP003", "wire-struct field missing from its Encode, Decode, or "
              "digest path (bplint:wire-coverage headers)"),
    ("BP004", "message-type enum dispatch is non-exhaustive or an "
              "enumerator is never dispatched"),
    ("BP005", "floating point in a consensus/state-machine/digest path"),
    ("BP006", "metrics counter not registered with MetricsRegistry, "
              "trace phase mark outside the kTracePhases catalog, or "
              "congestion gauge key outside kCongestionGaugeKeys"),
    ("BP007", "mutable static or un-mutexed namespace-scope state in a "
              "file on a Runner prologue path (worker threads may race "
              "on it)"),
]

ALL_RULES = [r for r, _ in RULE_DESCRIPTIONS]


@dataclass(frozen=True, order=True)
class Diagnostic:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def __str__(self) -> str:
        return self.render()


class Project:
    """All analyzed files plus the cross-file indexes rules need."""

    def __init__(self, files: Sequence[FileFacts]):
        self.files = list(files)
        self.unordered_vars: Set[str] = set()
        self.string_literals: Set[str] = set()
        self.case_idents: Set[str] = set()
        self.cmp_idents: Set[str] = set()
        self.message_enums: List[Tuple[FileFacts, Enum]] = []
        self.enumerator_owner: Dict[str, Enum] = {}
        # (class, method) -> bodies, merged across files.
        self.methods: Dict[Tuple[str, str], List[List[Tok]]] = {}
        for f in self.files:
            self.unordered_vars |= f.unordered_vars
            self.string_literals |= f.string_literals
            self.case_idents |= f.case_idents
            self.cmp_idents |= f.cmp_idents
            for enum in f.enums:
                if enum.is_message_type:
                    self.message_enums.append((f, enum))
                    for name, _ in enum.enumerators:
                        self.enumerator_owner[name] = enum
            for key, bodies in f.out_of_line.items():
                self.methods.setdefault(key, []).extend(bodies)
            for struct in f.structs:
                for mname, bodies in struct.methods.items():
                    self.methods.setdefault((struct.name, mname),
                                            []).extend(bodies)

    def bodies_of(self, cls: str, names: Iterable[str]) -> List[List[Tok]]:
        out: List[List[Tok]] = []
        for name in names:
            out.extend(self.methods.get((cls, name), []))
        return out


# ---------------------------------------------------------------------------
# BP001
# ---------------------------------------------------------------------------

# Identifier prefixes/names whose reachability from an unordered loop
# means iteration order escaped into something order-sensitive.
_SINK_PREFIXES = ("Put", "Append", "Encode", "Sha256", "Digest")
_SINK_IDENTS = {
    "EncodeTo", "Update", "ToJson", "ToChromeTrace", "Json", "Schedule",
    "ScheduleAt", "Send", "SendTo", "SendShared", "Broadcast", "Increment",
    "write", "append", "ContentDigest",
}


def _first_sink(body: Sequence[Tok]) -> Tuple[str, int]:
    for t in body:
        if t.kind == "id":
            if t.text in _SINK_IDENTS or \
                    any(t.text.startswith(p) for p in _SINK_PREFIXES):
                return t.text, t.line
        elif t.kind == "punct" and t.text == "<<":
            return "<<", t.line
    return "", 0


def rule_bp001(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        for it in f.iterations:
            if it.target not in project.unordered_vars:
                continue
            sink, _ = _first_sink(it.body)
            if not sink:
                continue
            yield Diagnostic(
                f.path, it.line, "BP001",
                f"iteration over unordered container '{it.target}' reaches "
                f"order-sensitive sink '{sink}'; iterate a sorted copy or "
                f"use an ordered container")


# ---------------------------------------------------------------------------
# BP002
# ---------------------------------------------------------------------------

_ENTROPY_IDENTS = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand", "ranlux24",
    "default_random_engine", "system_clock", "steady_clock",
    "high_resolution_clock", "clock_gettime", "gettimeofday", "srand",
    "timespec_get", "getrandom", "arc4random",
}
# Flagged only in call position (bare or std::-qualified).
_ENTROPY_CALLS = {"rand", "time", "clock"}


def _bp002_exempt(path: str) -> bool:
    return path.startswith(("src/sim/", "bench/")) or "/sim/" in path


def rule_bp002(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        if _bp002_exempt(f.path):
            continue
        toks = f.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in _ENTROPY_IDENTS:
                yield Diagnostic(
                    f.path, t.line, "BP002",
                    f"forbidden entropy/time source '{t.text}'; all "
                    f"randomness and time must come from the seeded "
                    f"simulator (sim::Rng, Simulator::Now)")
                continue
            if t.text in _ENTROPY_CALLS and i + 1 < n and \
                    toks[i + 1].text == "(":
                prev = toks[i - 1].text if i > 0 else ""
                prev_kind = toks[i - 1].kind if i > 0 else ""
                if prev in (".", "->"):
                    continue  # a method named rand()/time() on some object
                if prev == "::" and (i < 2 or toks[i - 2].text != "std"):
                    continue  # qualified into some non-std namespace
                if prev_kind == "id" and prev not in (
                        "return", "co_return", "throw", "case", "else",
                        "do", "std"):
                    continue  # declaration `Type time(...)`, not a call
                yield Diagnostic(
                    f.path, t.line, "BP002",
                    f"forbidden entropy/time source '{t.text}()'; all "
                    f"randomness and time must come from the seeded "
                    f"simulator (sim::Rng, Simulator::Now)")


# ---------------------------------------------------------------------------
# BP003
# ---------------------------------------------------------------------------

_ENCODE_FNS = ("Encode", "EncodeTo")
_DECODE_FNS = ("Decode", "DecodeFrom")
_DIGEST_FNS = ("CanonicalBody", "CanonicalHeader", "ContentDigest", "Digest")


def _closure_idents(project: Project, cls: str,
                    bodies: List[List[Tok]]) -> Set[str]:
    """Identifiers in `bodies`, expanded through same-struct helper calls."""
    idents: Set[str] = set()
    seen_methods: Set[str] = set()
    queue = list(bodies)
    while queue:
        body = queue.pop()
        for t in body:
            if t.kind != "id":
                continue
            idents.add(t.text)
            if t.text not in seen_methods and \
                    (cls, t.text) in project.methods:
                seen_methods.add(t.text)
                queue.extend(project.methods[(cls, t.text)])
    return idents


def rule_bp003(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        if "wire-coverage" not in f.markers:
            continue
        for struct in f.structs:
            encode_bodies = project.bodies_of(struct.name, _ENCODE_FNS)
            if not encode_bodies:
                continue  # encoded inline by a parent message, if at all
            decode_bodies = project.bodies_of(struct.name, _DECODE_FNS)
            digest_bodies = project.bodies_of(struct.name, _DIGEST_FNS)
            encode_ids = _closure_idents(project, struct.name, encode_bodies)
            decode_ids = _closure_idents(project, struct.name, decode_bodies)
            digest_ids = _closure_idents(project, struct.name, digest_bodies)
            for fld in struct.fields:
                if fld.name not in encode_ids:
                    yield Diagnostic(
                        f.path, fld.line, "BP003",
                        f"field '{fld.name}' of {struct.name} is missing "
                        f"from its Encode path")
                if decode_bodies and fld.name not in decode_ids:
                    yield Diagnostic(
                        f.path, fld.line, "BP003",
                        f"field '{fld.name}' of {struct.name} is missing "
                        f"from its Decode path")
                # Authentication material is digest-exempt: signatures and
                # quorum certs attest the canonical bytes, so neither can be
                # covered by the digest they vouch for.
                if digest_bodies and "Signature" not in fld.type_str and \
                        "QuorumCert" not in fld.type_str and \
                        fld.name not in digest_ids:
                    yield Diagnostic(
                        f.path, fld.line, "BP003",
                        f"field '{fld.name}' of {struct.name} is missing "
                        f"from its digest/canonical path")


# ---------------------------------------------------------------------------
# BP004
# ---------------------------------------------------------------------------

def rule_bp004(project: Project) -> Iterable[Diagnostic]:
    # (a) per-switch exhaustiveness. MessageType is a plain uint32 on the
    # wire, so the compiler's -Wswitch-enum cannot check these switches;
    # bplint maps case labels back to their owning enum instead.
    for f in project.files:
        for sw in f.switches:
            owners: Dict[str, int] = {}
            for label, _, qualifier in sw.cases:
                enum = project.enumerator_owner.get(label)
                if enum is None:
                    continue
                if qualifier is not None and qualifier != enum.name:
                    continue  # `Other::kX` colliding with a message enum
                owners[enum.name] = owners.get(enum.name, 0) + 1
            if not owners:
                continue
            owner_name = sorted(owners.items(),
                                key=lambda kv: (-kv[1], kv[0]))[0][0]
            enum = next(e for _, e in project.message_enums
                        if e.name == owner_name)
            if sw.has_default:
                continue
            labels = {label for label, _, _ in sw.cases}
            missing = [name for name, _ in enum.enumerators
                       if name not in labels]
            if missing:
                yield Diagnostic(
                    f.path, sw.line, "BP004",
                    f"switch over {enum.name} is not exhaustive and has no "
                    f"default: missing {', '.join(missing)}")

    # (b) project-level: every message-type enumerator must be dispatched
    # (a case label or an ==/!= comparison) somewhere, or a freshly added
    # kGeoGapNotice-style type would be silently dropped by every handler.
    dispatched = project.case_idents | project.cmp_idents
    for f, enum in project.message_enums:
        for name, line in enum.enumerators:
            if name not in dispatched:
                yield Diagnostic(
                    f.path, line, "BP004",
                    f"message type {name} of {enum.name} is never "
                    f"dispatched by any handler switch or comparison")


# ---------------------------------------------------------------------------
# BP005
# ---------------------------------------------------------------------------

_FP_SCOPES = ("src/core/", "src/pbft/", "src/paxos/", "src/crypto/")
_FP_TOKENS = {"double", "float"}


def rule_bp005(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        in_scope = any(s in f.path for s in _FP_SCOPES) or \
            f.path.startswith(tuple(s.rstrip("/") for s in _FP_SCOPES)) or \
            "consensus-path" in f.markers
        if not in_scope:
            continue
        for t in f.tokens:
            if t.kind == "id" and t.text in _FP_TOKENS:
                yield Diagnostic(
                    f.path, t.line, "BP005",
                    f"floating-point type '{t.text}' in a consensus/"
                    f"state-machine/digest path; use integer arithmetic "
                    f"(permille fractions, integer nanoseconds)")


# ---------------------------------------------------------------------------
# BP006
# ---------------------------------------------------------------------------

def rule_bp006(project: Project) -> Iterable[Diagnostic]:
    # (a) every counter field of a *Stats struct (a struct with a Reset()
    # method) must be registered under its own name with MetricsRegistry —
    # i.e. the field name must appear as a string literal somewhere.
    for f in project.files:
        for struct in f.structs:
            if not struct.name.endswith("Stats"):
                continue
            if "Reset" not in struct.methods and \
                    (struct.name, "Reset") not in project.methods:
                continue
            for fld in struct.fields:
                if fld.name not in project.string_literals:
                    yield Diagnostic(
                        f.path, fld.line, "BP006",
                        f"counter '{fld.name}' of {struct.name} is not "
                        f"registered with MetricsRegistry (no "
                        f"\"{fld.name}\" snapshot key anywhere)")

    # (b) trace-phase hygiene against the kTracePhases catalog.
    catalog: List[str] = []
    catalog_file: FileFacts = None  # type: ignore[assignment]
    catalog_line = 0
    for f in project.files:
        if f.trace_catalog:
            catalog.extend(p for p in f.trace_catalog if p not in catalog)
            if catalog_file is None:
                catalog_file = f
                catalog_line = f.trace_catalog_line
    if catalog:
        used: Set[str] = set()
        for f in project.files:
            for call in f.mark_calls:
                used.add(call.phase)
                if call.phase not in catalog:
                    yield Diagnostic(
                        f.path, call.line, "BP006",
                        f"trace phase \"{call.phase}\" is not in the "
                        f"kTracePhases catalog; add it (in pipeline order) "
                        f"or fix the call site")
        for phase in catalog:
            if phase not in used:
                yield Diagnostic(
                    catalog_file.path, catalog_line, "BP006",
                    f"kTracePhases entry \"{phase}\" has no Mark() call "
                    f"site: a span opened earlier can never close on it "
                    f"(stale catalog or missing instrumentation)")

    # (c) congestion-gauge hygiene against the kCongestionGaugeKeys
    # catalog: a key outside the catalog is invisible to the adaptive-
    # window dashboards/benches keyed on it, and a catalog entry nothing
    # emits means a documented gauge silently reads as absent.
    gauge_catalog: List[str] = []
    gauge_file: FileFacts = None  # type: ignore[assignment]
    gauge_line = 0
    for f in project.files:
        if f.gauge_catalog:
            gauge_catalog.extend(k for k in f.gauge_catalog
                                 if k not in gauge_catalog)
            if gauge_file is None:
                gauge_file = f
                gauge_line = f.gauge_catalog_line
    if gauge_catalog:
        emitted: Set[str] = set()
        for f in project.files:
            for call in f.gauge_calls:
                emitted.add(call.key)
                if call.key not in gauge_catalog:
                    yield Diagnostic(
                        f.path, call.line, "BP006",
                        f"congestion gauge key \"{call.key}\" is not in "
                        f"the kCongestionGaugeKeys catalog; add it or fix "
                        f"the emission site")
        for key in gauge_catalog:
            if key not in emitted:
                yield Diagnostic(
                    gauge_file.path, gauge_line, "BP006",
                    f"kCongestionGaugeKeys entry \"{key}\" has no "
                    f"CongestionGauge emission: the documented gauge "
                    f"silently reads as absent (stale catalog or missing "
                    f"instrumentation)")


# ---------------------------------------------------------------------------
# BP007
# ---------------------------------------------------------------------------

# A file is "on a prologue path" when it mentions the Runner seam's entry
# points (its prologues run on ThreadPoolRunner workers) or carries the
# explicit marker. Everything else keeps the single-threaded-simulator
# freedom to use mutable statics.
_BP007_TRIGGERS = {"RunPrologue", "RunBatch", "SignBatch", "VerifyBatch",
                   "VerifyDetached", "SignDetached"}
# Qualifiers that make a static/global safe for concurrent prologues.
_BP007_IMMUTABLE = {"const", "constexpr", "constinit", "thread_local"}
# Types that synchronize themselves (or are synchronization primitives).
_BP007_SYNC = {"atomic", "atomic_flag", "atomic_bool", "atomic_int",
               "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
               "once_flag", "condition_variable", "condition_variable_any"}
_BP007_STMT_SKIP_HEADS = {
    "using", "typedef", "namespace", "template", "extern", "friend",
    "static", "static_assert", "struct", "class", "enum", "union",
    "return", "if", "for", "while", "switch", "case", "default", "do",
    "else", "break", "continue", "goto", "public", "private", "protected",
    "operator", "BP_DISALLOW_COPY_AND_ASSIGN",
}


def _bp007_in_scope(f: FileFacts) -> bool:
    if "runner-prologue-path" in f.markers:
        return True
    return any(t.kind == "id" and t.text in _BP007_TRIGGERS
               for t in f.tokens)


def _bp007_statics(f: FileFacts) -> Iterable[Diagnostic]:
    """Mutable `static` declarations (function-local or namespace-scope)."""
    toks = f.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "static":
            continue
        stmt: List[Tok] = []
        j = i + 1
        while j < n and toks[j].text not in (";", "{", "}") and \
                len(stmt) < 64:
            stmt.append(toks[j])
            j += 1
        if j >= n or toks[j].text != ";":
            continue  # `static Ret Fn() {...}` definition or truncated
        texts = {s.text for s in stmt}
        if texts & _BP007_IMMUTABLE or texts & _BP007_SYNC:
            continue
        if "(" in texts:
            continue  # function declaration or ctor-call initializer
        name = None
        for s in stmt:
            if s.text == "=":
                break
            if s.kind == "id":
                name = s.text
        if name is None:
            continue
        yield Diagnostic(
            f.path, t.line, "BP007",
            f"mutable static '{name}' in a file on a Runner prologue "
            f"path; worker threads may race on it — make it "
            f"const/constexpr/thread_local, synchronize it, or keep it "
            f"off prologue paths")


def _bp007_brace_kind(toks: Sequence[Tok], i: int) -> str:
    """Classifies the '{' at toks[i]: 'ns', 'type', or 'block'."""
    j = i - 1
    header: List[str] = []
    while j >= 0 and toks[j].text not in (";", "{", "}") and \
            len(header) < 32:
        header.append(toks[j].text)
        j -= 1
    if "namespace" in header:
        return "ns"
    if {"struct", "class", "union", "enum"} & set(header) and \
            "=" not in header:
        return "type"
    return "block"


def _bp007_globals(f: FileFacts) -> Iterable[Diagnostic]:
    """Initialized, un-synchronized variable definitions at namespace
    scope. Conservative: only statements with a top-level `=` whose first
    token is a type-ish identifier are considered, so expression
    statements and declarations the classifier cannot place degrade to
    silence."""
    toks = f.tokens
    n = len(toks)
    stack: List[str] = []
    stmt_start = 0
    i = 0
    while i < n:
        text = toks[i].text
        if text == "{":
            stack.append(_bp007_brace_kind(toks, i))
            stmt_start = i + 1
        elif text == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif text == ";":
            if all(k == "ns" for k in stack):
                d = _bp007_global_stmt(f, toks[stmt_start:i])
                if d is not None:
                    yield d
            stmt_start = i + 1
        i += 1


def _bp007_global_stmt(f: FileFacts,
                       stmt: Sequence[Tok]) -> Optional[Diagnostic]:
    if not stmt or stmt[0].kind != "id":
        return None
    if stmt[0].text in _BP007_STMT_SKIP_HEADS:
        return None
    texts = {t.text for t in stmt}
    if texts & _BP007_IMMUTABLE or texts & _BP007_SYNC:
        return None
    name = None
    eq_idx = -1
    for idx, t in enumerate(stmt):
        if t.text == "=":
            eq_idx = idx
            break
        if t.text == "(":
            return None  # function decl / default argument
        if t.kind == "id":
            name = t.text
    if eq_idx < 0 or name is None:
        return None
    return Diagnostic(
        f.path, stmt[0].line, "BP007",
        f"un-mutexed namespace-scope variable '{name}' in a file on a "
        f"Runner prologue path; worker threads may race on it — make it "
        f"const/constexpr, synchronize it, or keep it off prologue paths")


def rule_bp007(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        if not _bp007_in_scope(f):
            continue
        yield from _bp007_statics(f)
        yield from _bp007_globals(f)


RULE_FNS = {
    "BP001": rule_bp001,
    "BP002": rule_bp002,
    "BP003": rule_bp003,
    "BP004": rule_bp004,
    "BP005": rule_bp005,
    "BP006": rule_bp006,
    "BP007": rule_bp007,
}
