"""SARIF 2.1.0 export for bplint diagnostics.

One run, one tool (bplint), one result per diagnostic. The output is
deterministic — rules and results are emitted in sorted order and the
JSON is serialized with sorted keys — so the SARIF artifact is as
byte-stable as the plain-text output, and GitHub code scanning sees
stable fingerprints across runs.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from rules import RULE_DESCRIPTIONS, Diagnostic

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(diags: Sequence[Diagnostic]) -> str:
    rules: List[dict] = [
        {
            "id": rule,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        }
        for rule, desc in RULE_DESCRIPTIONS
    ]
    results: List[dict] = [
        {
            "ruleId": d.rule,
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(d.line, 1)},
                    }
                }
            ],
        }
        for d in sorted(diags)
    ]
    doc = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "bplint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
