// Virtual time for the discrete-event simulator. All simulation timestamps
// and durations are nanoseconds held in an int64 — wide enough for ~292
// simulated years.
#ifndef BLOCKPLANE_SIM_SIM_TIME_H_
#define BLOCKPLANE_SIM_SIM_TIME_H_

#include <cstdint>

namespace blockplane::sim {

/// Nanoseconds since simulation start (or a duration in nanoseconds).
using SimTime = int64_t;

constexpr SimTime Nanoseconds(int64_t n) { return n; }
constexpr SimTime Microseconds(int64_t n) { return n * 1000; }
constexpr SimTime Milliseconds(int64_t n) { return n * 1000 * 1000; }
constexpr SimTime Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

/// Fractional-millisecond construction (e.g. MillisecondsD(0.25)).
constexpr SimTime MillisecondsD(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}

constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }

constexpr SimTime kSimTimeMax = INT64_MAX;

}  // namespace blockplane::sim

#endif  // BLOCKPLANE_SIM_SIM_TIME_H_
