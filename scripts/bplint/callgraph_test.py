#!/usr/bin/env python3
"""Unit tests for the bplint call graph (callgraph.py).

Each test builds a tiny project from inline C++ sources through the real
cppmodel front end — the graph is only ever constructed from FileFacts,
so testing through analyze_file keeps the lexer/parser contract honest.

Run from anywhere:

    python3 scripts/bplint/callgraph_test.py
"""

import os
import sys
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

from callgraph import CallGraph, key_str, render_chain  # noqa: E402
from cppmodel import analyze_file  # noqa: E402


def graph(*sources):
    """CallGraph over synthetic files f0.cc, f1.cc, ..."""
    files = [analyze_file("f%d.cc" % i, src)
             for i, src in enumerate(sources)]
    return CallGraph(files)


class ResolutionTest(unittest.TestCase):
    def test_free_function_edge(self):
        g = graph("""
            void Leaf() {}
            void Caller() { Leaf(); }
        """)
        self.assertEqual(g.edges[("", "Caller")], [("", "Leaf")])

    def test_same_class_beats_free_function(self):
        g = graph("""
            void Tick() {}
            struct Clock {
              void Tick() {}
              void Advance() { Tick(); }
            };
        """)
        self.assertEqual(g.edges[("Clock", "Advance")], [("Clock", "Tick")])

    def test_explicit_qualifier(self):
        g = graph("""
            struct Codec { static void Reset() {} };
            void Reset() {}
            void Reinit() { Codec::Reset(); }
        """)
        self.assertEqual(g.edges[("", "Reinit")], [("Codec", "Reset")])

    def test_member_call_through_declared_field(self):
        g = graph("""
            struct Transport { void Send(int n) {} };
            struct Wire { void Send(int n) {} };
            struct Session {
              Transport* net_;
              void Flush() { net_->Send(1); }
            };
        """)
        # Send exists on two classes, but the field type of net_ settles it.
        self.assertEqual(g.edges[("Session", "Flush")],
                         [("Transport", "Send")])

    def test_unique_method_without_field(self):
        g = graph("""
            struct Transport { void Send(int n) {} };
            void Flush(void* net) { net->Send(1); }
        """)
        # No declared field, but only one project class defines Send.
        self.assertEqual(g.edges[("", "Flush")], [("Transport", "Send")])

    def test_ambiguous_method_stays_unresolved(self):
        g = graph("""
            struct Transport { void Send(int n) {} };
            struct Wire { void Send(int n) {} };
            void Flush(void* x) { x->Send(1); }
        """)
        # Two candidate classes, no field type: silence, never a guess.
        self.assertEqual(g.edges[("", "Flush")], [])

    def test_overload_set_is_one_node(self):
        g = graph("""
            void Emit(int n) { Raw(n); }
            void Emit(int n, int m) {}
            void Raw(int n) {}
        """)
        self.assertEqual(len(g.defs[("", "Emit")]), 2)
        # The set's edges are the union of every overload's calls.
        self.assertEqual(g.edges[("", "Emit")], [("", "Raw")])

    def test_cross_file_resolution(self):
        g = graph("long Helper();\nlong Use() { return Helper(); }",
                  "long Helper() { return 7; }")
        self.assertEqual(g.edges[("", "Use")], [("", "Helper")])


class ClosureTest(unittest.TestCase):
    CYCLE = """
        void A() { B(); }
        void B() { A(); C(); }
        void C() {}
    """

    def test_forward_closure_two_deep(self):
        g = graph("""
            void Leaf() {}
            void Mid() { Leaf(); }
            void Root() { Mid(); }
        """)
        self.assertEqual(g.forward_closure([("", "Root")]),
                         {("", "Root"), ("", "Mid"), ("", "Leaf")})

    def test_forward_closure_terminates_on_cycle(self):
        g = graph(self.CYCLE)
        self.assertEqual(g.forward_closure([("", "A")]),
                         {("", "A"), ("", "B"), ("", "C")})

    def test_taint_through_cycle(self):
        g = graph(self.CYCLE)
        taint = g.taint_toward({("", "C"): "seed"})
        # Both cycle members reach C exactly once; recursion neither
        # loops nor double-taints.
        self.assertEqual(set(taint), {("", "A"), ("", "B"), ("", "C")})
        src, chain = taint[("", "A")]
        self.assertEqual(src, "seed")
        self.assertEqual(chain, (("", "A"), ("", "B"), ("", "C")))

    def test_taint_two_deep_witness_chain(self):
        g = graph("""
            long Entropy() { return 0; }
            long Wrap() { return Entropy(); }
            long Top() { return Wrap(); }
        """)
        taint = g.taint_toward({("", "Entropy"): "time()"})
        src, chain = taint[("", "Top")]
        self.assertEqual(render_chain(chain), "Top -> Wrap -> Entropy")

    def test_witness_prefers_shortest_chain(self):
        g = graph("""
            void Seed() {}
            void Long1() { Seed(); }
            void Long2() { Long1(); }
            void Top() { Long2(); Seed(); }
        """)
        _, chain = g.taint_toward({("", "Seed"): "s"})[("", "Top")]
        self.assertEqual(chain, (("", "Top"), ("", "Seed")))

    def test_unresolved_call_degrades_to_silence(self):
        g = graph("void Top() { Mystery(); }")
        self.assertEqual(g.edges[("", "Top")], [])
        self.assertEqual(g.taint_toward({("", "Mystery"): "x"}), {})


class NameTest(unittest.TestCase):
    def test_resolve_name_spans_classes(self):
        g = graph("""
            void Reset() {}
            struct Codec { void Reset() {} };
            struct Timer { void Reset() {} };
        """)
        self.assertEqual(g.resolve_name("Reset"),
                         [("", "Reset"), ("Codec", "Reset"),
                          ("Timer", "Reset")])

    def test_key_str(self):
        self.assertEqual(key_str(("", "Free")), "Free")
        self.assertEqual(key_str(("Cls", "Method")), "Cls::Method")


if __name__ == "__main__":
    unittest.main()
