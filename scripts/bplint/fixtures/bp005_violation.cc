// Fixture: BP005 — floating point in a consensus/state-machine path.
// FP rounding is not guaranteed bit-identical across libm versions and
// optimization levels, so digests and quorum arithmetic must be
// integral.
// bplint:consensus-path

long long BackoffDelay(long long base, int attempts) {
  double factor = 1.0;  // forbidden: FP in the consensus path
  for (int i = 0; i < attempts; ++i) factor *= 2.0;
  float jitter = 0.2f;  // forbidden
  return static_cast<long long>(static_cast<double>(base) * factor *
                                (1.0 + jitter));
}
