#include "protocols/hier_pbft.h"

#include "common/codec.h"
#include "common/metrics.h"
#include "pbft/config.h"

namespace blockplane::protocols {

namespace {

enum HierMsg : net::MessageType {
  kPush = 401,  // leader site -> remote coordinators
  kAck = 402,   // remote coordinator -> leader site
};

constexpr int32_t kCoordinatorIndex = 500;

Bytes EncodeRound(uint64_t round, const Bytes& value) {
  Encoder enc;
  enc.PutU64(round);
  enc.PutBytes(value);
  return enc.Take();
}

bool DecodeRound(const Bytes& buf, uint64_t* round, Bytes* value) {
  Decoder dec(buf);
  return dec.GetU64(round).ok() && dec.GetBytes(value).ok();
}

}  // namespace

HierPbft::HierPbft(net::Network* network, crypto::KeyStore* keys, int f,
                   bool sign_messages)
    : network_(network),
      majority_(network->topology().num_sites() / 2 + 1) {
  const int num_sites = network->topology().num_sites();
  for (net::SiteId site = 0; site < num_sites; ++site) {
    pbft::PbftConfig config = pbft::UnitConfig(site, f);
    config.sign_messages = sign_messages;
    auto& unit = units_[site];
    for (const net::NodeId& node : config.nodes) {
      auto replica = std::make_unique<pbft::PbftReplica>(network, keys,
                                                         config, node,
                                                         nullptr);
      replica->RegisterWithNetwork();
      unit.push_back(std::move(replica));
    }
    auto coordinator = std::make_unique<Coordinator>();
    coordinator->owner = this;
    coordinator->site = site;
    coordinator->self = net::NodeId{site, kCoordinatorIndex};
    coordinator->client = std::make_unique<pbft::PbftClient>(
        network, config, net::NodeId{site, kCoordinatorIndex + 1});
    network->Register(coordinator->self, coordinator.get());
    coordinators_[site] = std::move(coordinator);
  }
}

void HierPbft::Replicate(net::SiteId leader_site, Bytes value,
                         std::function<void(uint64_t)> done) {
  Coordinator* leader = coordinators_.at(leader_site).get();
  uint64_t round = ++leader->round;
  leader->acks = {leader_site};  // our own site counts once committed
  leader->done = std::move(done);

  // 1. Local PBFT commit at the leader site, then 2. push to every site.
  Bytes encoded = EncodeRound(round, value);
  // Encode-once push fan-out: all sites' kPush messages share one payload
  // allocation (each send is a refcount bump).
  net::PayloadPtr shared = net::MakePayload(Bytes(encoded));
  leader->client->Submit(
      Bytes(encoded), [this, leader, shared](uint64_t) {
        for (auto& [site, coordinator] : coordinators_) {
          if (site == leader->site) continue;
          net::Message msg;
          msg.src = leader->self;
          msg.dst = coordinator->self;
          msg.type = kPush;
          msg.payload = shared;
          hotpath_stats().bytes_copied_saved +=
              static_cast<int64_t>(shared->size());
          network_->Send(std::move(msg));
        }
      });
}

void HierPbft::Coordinator::HandleMessage(const net::Message& msg) {
  switch (msg.type) {
    case kPush: {
      uint64_t push_round = 0;
      Bytes value;
      if (!DecodeRound(msg.body(), &push_round, &value)) return;
      // 3. Commit the received value into the local SMR log, then ack.
      net::NodeId reply_to = msg.src;
      client->Submit(Bytes(msg.body()),
                     [this, push_round, reply_to](uint64_t) {
                       ++decided;
                       Encoder enc;
                       enc.PutU64(push_round);
                       net::Message ack;
                       ack.src = self;
                       ack.dst = reply_to;
                       ack.type = kAck;
                       ack.set_body(enc.Take());
                       owner->network_->Send(std::move(ack));
                     });
      break;
    }
    case kAck: {
      Decoder dec(msg.body());
      uint64_t acked_round = 0;
      if (!dec.GetU64(&acked_round).ok() || acked_round != round) return;
      if (!done) return;
      acks.insert(msg.src.site);
      if (static_cast<int>(acks.size()) < owner->majority_) return;
      // 4. Majority holds the value: commit the decision locally.
      auto callback = std::move(done);
      done = nullptr;
      uint64_t decided_round = round;
      Encoder enc;
      enc.PutString("decided");
      enc.PutU64(decided_round);
      client->Submit(enc.Take(),
                     [this, callback, decided_round](uint64_t) {
                       ++decided;
                       if (callback) callback(decided_round);
                     });
      break;
    }
    default:
      break;
  }
}

}  // namespace blockplane::protocols
