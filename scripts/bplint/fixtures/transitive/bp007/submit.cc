// Transitive fixture group: bp007. This file owns the Runner seam: the
// lambda handed to RunPrologue runs on a worker thread, so everything
// it calls — DecodeAndCount, defined in counters.cc — inherits the
// BP007 concurrency obligations. The returned lambda is the epilogue
// (submit thread) and is deliberately NOT part of the worker closure.

struct Runner {
  void RunPrologue(int job);
};

int DecodeAndCount(int bytes);
void Publish(int n);

void Enqueue(Runner* runner, int bytes) {
  runner->RunPrologue([bytes] {
    int n = DecodeAndCount(bytes);  // worker-side: taints counters.cc
    return [n] { Publish(n); };     // epilogue: submit thread, exempt
  });
}
