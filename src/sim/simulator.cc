#include "sim/simulator.h"

#include <utility>

namespace blockplane::sim {

namespace {
/// Pre-sized backing storage: a busy deployment schedules thousands of
/// events before the queue's vector would otherwise finish doubling.
constexpr size_t kInitialQueueCapacity = 4096;
}  // namespace

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  std::vector<Event> storage;
  storage.reserve(kInitialQueueCapacity);
  queue_ = std::priority_queue<Event, std::vector<Event>, EventLater>(
      EventLater{}, std::move(storage));
  pending_ids_.reserve(kInitialQueueCapacity);
}

EventId Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  BP_CHECK(when >= now_);
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

void Simulator::Cancel(EventId id) {
  // Only ids that are actually live enter `cancelled_`. Cancelling an
  // already-fired, already-cancelled, or invalid id is a strict no-op —
  // previously such ids were inserted unconditionally and, with no queue
  // entry left to pop them out, leaked for the simulator's lifetime.
  if (id == kInvalidEventId) return;
  if (pending_ids_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(ev.id);
    BP_CHECK(ev.when >= now_);
    now_ = ev.when;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

bool Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) {
      now_ = deadline;
      return false;
    }
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return true;
}

bool Simulator::RunUntilCondition(const std::function<bool()>& pred,
                                  SimTime deadline) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
    if (pred()) return true;
  }
  return false;
}

}  // namespace blockplane::sim
