#include "crypto/hmac.h"

#include <cstring>

namespace blockplane::crypto {

Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len) {
  constexpr size_t kBlock = 64;
  uint8_t key_block[kBlock] = {0};
  if (key.size() > kBlock) {
    Digest kd = Sha256Digest(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlock];
  uint8_t opad[kBlock];
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlock);
  inner.Update(data, len);
  Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlock);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

}  // namespace blockplane::crypto
