// Fixture: BP003 — wire-struct field coverage. Adding a field and
// forgetting it in Decode or in the digest/canonical path is the
// silent-mismatch bug class the PR-4 soak kept catching.
// bplint:wire-coverage
struct Encoder {
  void PutU64(unsigned long long v);
  void PutU32(unsigned v);
};
struct Decoder {
  bool GetU64(unsigned long long* v);
  bool GetU32(unsigned* v);
};
using Bytes = int;
using Digest = int;

struct SampleMsg {
  unsigned long long view = 0;
  unsigned long long seq = 0;
  // This field was added later and is covered by Encode only: Decode
  // silently drops it and the digest does not bind it.
  unsigned long long epoch = 0;
  // This one is not even encoded.
  unsigned site = 0;

  Bytes Encode() const;
  static bool Decode(const Bytes& buf, SampleMsg* out);
  Bytes CanonicalBody() const;
};

Bytes SampleMsg::Encode() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutU64(epoch);
  return 0;
}

bool SampleMsg::Decode(const Bytes& buf, SampleMsg* out) {
  Decoder dec;
  if (!dec.GetU64(&out->view)) return false;
  return dec.GetU64(&out->seq);
}

Bytes SampleMsg::CanonicalBody() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutU64(seq);
  return 0;
}
