// Fixture: BP011 clean — the count is checked against the remaining
// payload before it reaches reserve (every encoded element is at least
// one byte, so a count beyond remaining() is corrupt by definition).

struct Status {
  static Status OK();
  bool ok() const;
};

struct Decoder {
  Status GetU32(unsigned* value);
  unsigned long remaining() const;
};

struct Frame {
  int parts[4];
};

Status DecodeFrames(Decoder* dec, std::vector<Frame>* out) {
  unsigned n = 0;
  Status s = dec->GetU32(&n);
  if (!s.ok()) return s;
  if (n > dec->remaining()) return s;  // bounded by the payload: fine
  out->reserve(n);
  out->resize(n);
  return Status::OK();
}
