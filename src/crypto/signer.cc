#include "crypto/signer.h"

#include <set>

#include "common/codec.h"

namespace blockplane::crypto {

std::unique_ptr<Signer> KeyStore::RegisterNode(net::NodeId node) {
  auto it = keys_.find(node);
  if (it == keys_.end()) {
    // Deterministic per-node key material derived from a store-local seed.
    Encoder enc;
    enc.PutU64(next_key_seed_++);
    enc.PutU32(static_cast<uint32_t>(node.site));
    enc.PutU32(static_cast<uint32_t>(node.index));
    Digest key = Sha256Digest(enc.buffer());
    keys_.emplace(node, Bytes(key.begin(), key.end()));
  }
  return std::unique_ptr<Signer>(new Signer(this, node));
}

Digest KeyStore::SignAs(net::NodeId node, const Bytes& msg) const {
  auto it = keys_.find(node);
  BP_CHECK_MSG(it != keys_.end(), "signing for unregistered node");
  return HmacSha256(it->second, msg);
}

bool KeyStore::Verify(const Bytes& msg, const Signature& sig) const {
  auto it = keys_.find(sig.signer);
  if (it == keys_.end()) return false;
  return HmacSha256(it->second, msg) == sig.mac;
}

bool KeyStore::VerifyProof(const Bytes& msg,
                           const std::vector<Signature>& proof,
                           net::SiteId site, int threshold) const {
  std::set<int32_t> distinct_signers;
  for (const Signature& sig : proof) {
    if (sig.signer.site != site) continue;
    if (!Verify(msg, sig)) continue;
    distinct_signers.insert(sig.signer.index);
  }
  return static_cast<int>(distinct_signers.size()) >= threshold;
}

void EncodeSignature(Encoder* enc, const Signature& sig) {
  enc->PutU32(static_cast<uint32_t>(sig.signer.site));
  enc->PutU32(static_cast<uint32_t>(sig.signer.index));
  enc->PutRaw(sig.mac.data(), sig.mac.size());
}

Status DecodeSignature(Decoder* dec, Signature* out) {
  uint32_t site = 0;
  uint32_t index = 0;
  BP_RETURN_NOT_OK(dec->GetU32(&site));
  BP_RETURN_NOT_OK(dec->GetU32(&index));
  out->signer.site = static_cast<int32_t>(site);
  out->signer.index = static_cast<int32_t>(index);
  for (auto& byte : out->mac) {
    BP_RETURN_NOT_OK(dec->GetU8(&byte));
  }
  return Status::OK();
}

void EncodeProof(Encoder* enc, const std::vector<Signature>& proof) {
  enc->PutVarint(proof.size());
  for (const Signature& sig : proof) EncodeSignature(enc, sig);
}

Status DecodeProof(Decoder* dec, std::vector<Signature>* out) {
  uint64_t n = 0;
  BP_RETURN_NOT_OK(dec->GetVarint(&n));
  if (n > 4096) return Status::Corruption("oversized proof");
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Signature sig;
    BP_RETURN_NOT_OK(DecodeSignature(dec, &sig));
    out->push_back(sig);
  }
  return Status::OK();
}

}  // namespace blockplane::crypto
