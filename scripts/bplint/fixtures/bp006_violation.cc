// Fixture: BP006 — metrics/trace hygiene. A counter that is never
// registered with MetricsRegistry is invisible to bench_metrics_dump
// and scripts/check.sh; a Mark() phase outside the kTracePhases
// catalog silently truncates latency breakdowns.

struct DemoStats {
  long long cache_hits = 0;
  long long cache_misses = 0;  // never registered below: invisible
  void Reset() { *this = DemoStats{}; }
};

struct Registry {
  void RegisterCounter(const char* name, long long* value);
};

void RegisterDemo(Registry* reg, DemoStats* stats) {
  reg->RegisterCounter("cache_hits", &stats->cache_hits);
  // forgot: cache_misses
}

inline constexpr const char* kTracePhases[] = {
    "submit",
    "committed",
    "done",  // declared terminal phase, but no Mark() ever closes on it
};

struct Tracer {
  void Mark(unsigned long long trace, const char* phase, long long ts);
};

void Instrument(Tracer* tr, unsigned long long trace, long long now) {
  tr->Mark(trace, "submit", now);
  tr->Mark(trace, "comitted", now);  // typo: not in the catalog
}

inline constexpr const char* kCongestionGaugeKeys[] = {
    "window",
    "decreases",  // declared but never emitted: reads as absent
};

struct GaugeMap {};
void CongestionGauge(GaugeMap* out, const char* key, long long value);

void SnapshotDemo(GaugeMap* out, long long window) {
  CongestionGauge(out, "window", window);
  CongestionGauge(out, "windw", 0);  // typo: not in the catalog
}
