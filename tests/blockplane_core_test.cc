// Blockplane core tests: the log-commit / send / receive / read interface,
// communication daemons and reserves, verification routines, byzantine
// behaviours, and geo-correlated fault tolerance (§III–§VI).
#include "core/deployment.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/wire.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::kCalifornia;
using net::kIreland;
using net::kOregon;
using net::kVirginia;
using net::Topology;
using sim::Milliseconds;
using sim::Seconds;

class CoreHarness {
 public:
  explicit CoreHarness(BlockplaneOptions options = {}, uint64_t seed = 1,
                       Topology topology = Topology::Aws4())
      : simulator_(seed),
        deployment_(&simulator_, std::move(topology), options) {}

  /// Commits and waits for the done callback.
  uint64_t CommitAndWait(net::SiteId site, const std::string& payload,
                         uint64_t routine = 0,
                         sim::SimTime deadline = Seconds(60)) {
    uint64_t committed_pos = 0;
    bool done = false;
    deployment_.participant(site)->LogCommit(ToBytes(payload), routine,
                                             [&](uint64_t pos) {
                                               committed_pos = pos;
                                               done = true;
                                             });
    EXPECT_TRUE(simulator_.RunUntilCondition([&] { return done; },
                                             simulator_.Now() + deadline))
        << "commit timed out";
    return committed_pos;
  }

  /// Sends and waits until the destination participant can receive it.
  bool SendAndDeliver(net::SiteId src, net::SiteId dest,
                      const std::string& payload, Bytes* out,
                      sim::SimTime deadline = Seconds(60)) {
    deployment_.participant(src)->Send(dest, ToBytes(payload), 0, nullptr);
    Participant* receiver = deployment_.participant(dest);
    if (!simulator_.RunUntilCondition(
            [&] {
              Bytes received;
              if (receiver->TryReceive(src, &received)) {
                *out = std::move(received);
                return true;
              }
              return false;
            },
            simulator_.Now() + deadline)) {
      return false;
    }
    return true;
  }

  sim::Simulator simulator_;
  Deployment deployment_;
};

TEST(BlockplaneCoreTest, LogCommitReplicatesAcrossUnit) {
  CoreHarness harness;
  uint64_t pos = harness.CommitAndWait(kCalifornia, "state change");
  EXPECT_EQ(pos, 1u);
  harness.simulator_.RunFor(Seconds(1));
  for (int i = 0; i < 4; ++i) {
    const auto& log = harness.deployment_.node(kCalifornia, i)->log();
    ASSERT_EQ(log.size(), 1u) << "node " << i;
    EXPECT_EQ(ToString(log.at(1).payload), "state change");
    EXPECT_EQ(log.at(1).type, RecordType::kLogCommit);
  }
}

TEST(BlockplaneCoreTest, LocalCommitIsFast) {
  CoreHarness harness;
  sim::SimTime start = harness.simulator_.Now();
  harness.CommitAndWait(kVirginia, "quick");
  double ms = sim::ToMillis(harness.simulator_.Now() - start);
  // A local commit is a three-phase intra-datacenter protocol: ~1-2 ms,
  // never wide-area scale (Fig. 4a).
  EXPECT_LT(ms, 5.0);
}

TEST(BlockplaneCoreTest, SendDeliversToDestination) {
  CoreHarness harness;
  Bytes received;
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kOregon, "hello oregon",
                                     &received));
  EXPECT_EQ(ToString(received), "hello oregon");
  // The receive was committed into Oregon's Local Log as a received record.
  harness.simulator_.RunFor(Seconds(1));
  const auto& log = harness.deployment_.node(kOregon, 0)->log();
  ASSERT_GE(log.size(), 1u);
  EXPECT_EQ(log.at(1).type, RecordType::kReceived);
  EXPECT_EQ(log.at(1).src_site, kCalifornia);
}

TEST(BlockplaneCoreTest, MessagesDeliverInSourceOrder) {
  CoreHarness harness;
  Participant* sender = harness.deployment_.participant(kCalifornia);
  for (int i = 0; i < 10; ++i) {
    sender->Send(kIreland, ToBytes("m" + std::to_string(i)), 0, nullptr);
  }
  Participant* receiver = harness.deployment_.participant(kIreland);
  std::vector<std::string> got;
  receiver->SetReceiveHandler([&](net::SiteId src, const Bytes& payload) {
    got.push_back(ToString(payload));
  });
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return got.size() == 10; }, Seconds(120)));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], "m" + std::to_string(i));
}

TEST(BlockplaneCoreTest, BidirectionalTraffic) {
  CoreHarness harness;
  Participant* a = harness.deployment_.participant(kCalifornia);
  Participant* b = harness.deployment_.participant(kVirginia);
  for (int i = 0; i < 5; ++i) {
    a->Send(kVirginia, ToBytes("c" + std::to_string(i)), 0, nullptr);
    b->Send(kCalifornia, ToBytes("v" + std::to_string(i)), 0, nullptr);
  }
  std::vector<std::string> at_b;
  std::vector<std::string> at_a;
  b->SetReceiveHandler(
      [&](net::SiteId, const Bytes& m) { at_b.push_back(ToString(m)); });
  a->SetReceiveHandler(
      [&](net::SiteId, const Bytes& m) { at_a.push_back(ToString(m)); });
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return at_a.size() == 5 && at_b.size() == 5; }, Seconds(120)));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(at_b[i], "c" + std::to_string(i));
    EXPECT_EQ(at_a[i], "v" + std::to_string(i));
  }
}

TEST(BlockplaneCoreTest, CommunicationLatencyTracksRtt) {
  // Fig. 6: one send + receive + ack is roughly the pair RTT plus small
  // local-commit overheads (23.4 ms measured for C-O against a 19 ms RTT).
  CoreHarness harness;
  Bytes received;
  sim::SimTime start = harness.simulator_.Now();
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kOregon, "ping",
                                     &received));
  double one_way_ms = sim::ToMillis(harness.simulator_.Now() - start);
  // Receipt at the destination takes one-way latency (9.5) + commit
  // overheads; well under a full RTT + overhead budget.
  EXPECT_GT(one_way_ms, 9.5);
  EXPECT_LT(one_way_ms, 19.0);
}

TEST(BlockplaneCoreTest, TryReceiveEmptyReturnsFalse) {
  CoreHarness harness;
  Bytes payload;
  EXPECT_FALSE(
      harness.deployment_.participant(kOregon)->TryReceive(kCalifornia,
                                                           &payload));
}

TEST(BlockplaneCoreTest, UserVerificationRoutineBlocksBadCommits) {
  CoreHarness harness;
  constexpr uint64_t kRoutine = 7;
  harness.deployment_.RegisterVerifier(
      kCalifornia, kRoutine, [](BlockplaneNode*) {
        return [](const LogRecord& record) {
          return ToString(record.payload).find("forbidden") ==
                 std::string::npos;
        };
      });
  bool done = false;
  harness.deployment_.participant(kCalifornia)
      ->LogCommit(ToBytes("forbidden value"), kRoutine,
                  [&](uint64_t) { done = true; });
  EXPECT_FALSE(
      harness.simulator_.RunUntilCondition([&] { return done; }, Seconds(3)));
  // A good value still goes through afterwards.
  harness.CommitAndWait(kCalifornia, "allowed value", kRoutine);
}

TEST(BlockplaneCoreTest, ForgedTransmissionIsRejected) {
  CoreHarness harness;
  // A malicious node fabricates a transmission record with bogus
  // signatures and pushes it at Oregon's unit.
  TransmissionRecord forged;
  forged.src_site = kCalifornia;
  forged.dest_site = kOregon;
  forged.src_log_pos = 1;
  forged.prev_src_log_pos = 0;
  forged.payload = ToBytes("increment your counter, trust me");
  crypto::Signature bogus;
  bogus.signer = {kCalifornia, 0};
  forged.sigs = {bogus, bogus};

  // Register the claimed signer so verification runs (and fails on MAC).
  harness.deployment_.keys()->RegisterNode({kCalifornia, 0});
  net::Message msg;
  msg.src = {kCalifornia, 3};
  msg.dst = {kOregon, 0};
  msg.type = kTransmission;
  msg.set_body(forged.Encode());
  harness.deployment_.network()->Send(msg);

  harness.simulator_.RunFor(Seconds(5));
  Bytes payload;
  EXPECT_FALSE(
      harness.deployment_.participant(kOregon)->TryReceive(kCalifornia,
                                                           &payload));
  // Nothing entered Oregon's Local Log.
  EXPECT_EQ(harness.deployment_.node(kOregon, 1)->log_size(), 0u);
}

TEST(BlockplaneCoreTest, DuplicateTransmissionCommitsOnce) {
  CoreHarness harness;
  Bytes received;
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kOregon, "once",
                                     &received));
  harness.simulator_.RunFor(Seconds(2));
  uint64_t log_size = harness.deployment_.node(kOregon, 0)->log_size();

  // Replay the committed transmission verbatim at every Oregon node.
  const auto& log = harness.deployment_.node(kCalifornia, 0)->log();
  ASSERT_FALSE(log.empty());
  TransmissionRecord replay;
  replay.src_site = kCalifornia;
  replay.dest_site = kOregon;
  replay.src_log_pos = 1;
  replay.prev_src_log_pos = 0;
  replay.payload = ToBytes("once");
  // (Signatures don't matter: the dedup check fires first.)
  net::Message msg;
  msg.src = {kCalifornia, 0};
  msg.dst = {kOregon, 0};
  msg.type = kTransmission;
  msg.set_body(replay.Encode());
  harness.deployment_.network()->Send(msg);
  harness.simulator_.RunFor(Seconds(2));

  EXPECT_EQ(harness.deployment_.node(kOregon, 0)->log_size(), log_size);
  Bytes payload;
  EXPECT_FALSE(
      harness.deployment_.participant(kOregon)->TryReceive(kCalifornia,
                                                           &payload));
}

TEST(BlockplaneCoreTest, MutedDaemonReserveTakesOver) {
  // §IV-C: a malicious daemon "may pretend maliciously to send messages";
  // the reserve detects the reception gap and becomes a daemon.
  CoreHarness harness;
  harness.deployment_.node(kCalifornia, 0)->MuteDaemons();
  Bytes received;
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kVirginia,
                                     "despite malicious daemon", &received,
                                     Seconds(60)));
  EXPECT_EQ(ToString(received), "despite malicious daemon");
}

TEST(BlockplaneCoreTest, CrashedUnitNodeDoesNotBlockAnything) {
  CoreHarness harness;
  harness.deployment_.network()->Crash({kCalifornia, 2});
  harness.CommitAndWait(kCalifornia, "commit with crash");
  Bytes received;
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kOregon, "send with crash",
                                     &received));
}

TEST(BlockplaneCoreTest, ByzantineUnitNodeDoesNotBlockAnything) {
  CoreHarness harness;
  harness.deployment_.node(kCalifornia, 3)
      ->SetByzantineMode(pbft::ByzantineMode::kBogusVotes);
  harness.deployment_.node(kCalifornia, 3)->RefuseAttestations();
  harness.CommitAndWait(kCalifornia, "commit");
  Bytes received;
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kOregon, "send",
                                     &received));
}

// --- reads (§VI-A) -----------------------------------------------------------

TEST(BlockplaneCoreTest, ReadStrategies) {
  CoreHarness harness;
  uint64_t pos = harness.CommitAndWait(kCalifornia, "readable");
  harness.simulator_.RunFor(Seconds(1));

  for (ReadStrategy strategy :
       {ReadStrategy::kReadOne, ReadStrategy::kReadQuorum,
        ReadStrategy::kLinearizable}) {
    bool done = false;
    LogRecord result;
    harness.deployment_.participant(kCalifornia)
        ->Read(pos, strategy, [&](Status status, LogRecord record) {
          ASSERT_TRUE(status.ok()) << status;
          result = std::move(record);
          done = true;
        });
    ASSERT_TRUE(harness.simulator_.RunUntilCondition([&] { return done; },
                                                     Seconds(30)));
    EXPECT_EQ(ToString(result.payload), "readable");
  }
}

TEST(BlockplaneCoreTest, ReadOneFallsBackWhenClosestNodeIsDown) {
  CoreHarness harness;
  uint64_t pos = harness.CommitAndWait(kCalifornia, "still readable");
  harness.simulator_.RunFor(Seconds(1));
  // The node read-1 consults first is crashed; the read must widen to the
  // rest of the unit instead of hanging.
  harness.deployment_.network()->Crash({kCalifornia, 0});
  bool done = false;
  LogRecord result;
  harness.deployment_.participant(kCalifornia)
      ->Read(pos, ReadStrategy::kReadOne, [&](Status s, LogRecord record) {
        ASSERT_TRUE(s.ok());
        result = std::move(record);
        done = true;
      });
  ASSERT_TRUE(
      harness.simulator_.RunUntilCondition([&] { return done; }, Seconds(30)));
  EXPECT_EQ(ToString(result.payload), "still readable");
}

TEST(BlockplaneCoreTest, ReadMissingPositionIsNotFound) {
  CoreHarness harness;
  harness.CommitAndWait(kCalifornia, "only one");
  harness.simulator_.RunFor(Seconds(1));
  bool done = false;
  harness.deployment_.participant(kCalifornia)
      ->Read(99, ReadStrategy::kReadQuorum,
             [&](Status status, LogRecord) {
               EXPECT_TRUE(status.IsNotFound());
               done = true;
             });
  ASSERT_TRUE(
      harness.simulator_.RunUntilCondition([&] { return done; }, Seconds(30)));
}

// --- geo-correlated fault tolerance (§V) ----------------------------------------

TEST(BlockplaneGeoTest, CommitWaitsForMirrorProofs) {
  BlockplaneOptions options;
  options.fg = 1;
  CoreHarness harness(options);
  sim::SimTime start = harness.simulator_.Now();
  harness.CommitAndWait(kCalifornia, "geo commit");
  double ms = sim::ToMillis(harness.simulator_.Now() - start);
  // Needs a round trip to the closest mirror (Oregon, 19 ms RTT) plus
  // local commits — Fig. 5's C(1) is ~23 ms.
  EXPECT_GT(ms, 19.0);
  EXPECT_LT(ms, 40.0);
}

TEST(BlockplaneGeoTest, MirrorLogsHoldTheRecord) {
  BlockplaneOptions options;
  options.fg = 1;
  CoreHarness harness(options);
  harness.CommitAndWait(kCalifornia, "mirrored");
  harness.simulator_.RunFor(Seconds(2));
  // California's mirrors are Oregon and Virginia (closest two).
  int holding = 0;
  for (net::SiteId host : harness.deployment_.mirror_sites_of(kCalifornia)) {
    BlockplaneNode* node =
        harness.deployment_.mirror_node(host, kCalifornia, 0);
    if (node->log_size() >= 1) {
      LogRecord inner;
      ASSERT_TRUE(
          LogRecord::Decode(node->log().at(1).payload, &inner).ok());
      EXPECT_EQ(ToString(inner.payload), "mirrored");
      ++holding;
    }
  }
  EXPECT_GE(holding, 1);  // fg = 1 mirror must hold it
}

TEST(BlockplaneGeoTest, BackupFailureRaisesLatencyToNextMirror) {
  // Fig. 8(a): with the closest mirror down, commits wait for the
  // second-closest mirror.
  BlockplaneOptions options;
  options.fg = 1;
  CoreHarness harness(options);
  harness.CommitAndWait(kCalifornia, "warm");
  harness.deployment_.network()->CrashSite(kOregon);
  sim::SimTime start = harness.simulator_.Now();
  harness.CommitAndWait(kCalifornia, "after backup failure");
  double ms = sim::ToMillis(harness.simulator_.Now() - start);
  // Now bounded below by the C-V RTT (61 ms).
  EXPECT_GT(ms, 61.0);
  EXPECT_LT(ms, 120.0);
}

TEST(BlockplaneGeoTest, SecondaryActsAfterPrimaryFailure) {
  // Fig. 8(b): the primary site fails; a mirror site continues the log.
  BlockplaneOptions options;
  options.fg = 1;
  CoreHarness harness(options);
  harness.CommitAndWait(kCalifornia, "by primary");
  harness.simulator_.RunFor(Seconds(2));
  harness.deployment_.network()->CrashSite(kCalifornia);

  // Virginia mirrors California; it takes over.
  Participant* secondary = harness.deployment_.participant(kVirginia);
  std::vector<net::SiteId> peers =
      harness.deployment_.mirror_sites_of(kCalifornia);
  peers.push_back(kCalifornia);
  secondary->SetMirrorPeers(kCalifornia, peers);

  bool done = false;
  uint64_t pos = 0;
  secondary->MirrorCommit(kCalifornia, ToBytes("by secondary"), 0,
                          [&](uint64_t p) {
                            pos = p;
                            done = true;
                          });
  ASSERT_TRUE(
      harness.simulator_.RunUntilCondition([&] { return done; }, Seconds(60)));
  // The new entry extends the mirrored stream (position 2 after the
  // primary's one commit).
  EXPECT_EQ(pos, 2u);
  harness.simulator_.RunFor(Seconds(2));
  // Virginia's mirror group of California holds both entries.
  BlockplaneNode* mirror =
      harness.deployment_.mirror_node(kVirginia, kCalifornia, 0);
  EXPECT_GE(mirror->log_size(), 2u);
}

TEST(BlockplaneGeoTest, LaggingSecondaryReconcilesBeforeActing) {
  // The primary needs proofs from only fg mirrors, so a secondary's mirror
  // can lag. Before acting as primary it must fetch the missing entries
  // from an up-to-date peer (§V's fg+1-intersection argument), or it would
  // fork the stream.
  BlockplaneOptions options;
  options.fg = 1;
  CoreHarness harness(options);
  harness.CommitAndWait(kCalifornia, "first");
  harness.simulator_.RunFor(Seconds(2));

  // Virginia's datacenter goes dark while the primary keeps committing
  // (Oregon supplies the fg=1 proofs).
  harness.deployment_.network()->CrashSite(kVirginia);
  harness.CommitAndWait(kCalifornia, "second");
  harness.CommitAndWait(kCalifornia, "third");

  // Virginia comes back; California fails; Virginia takes over.
  harness.deployment_.network()->RecoverSite(kVirginia);
  harness.deployment_.network()->CrashSite(kCalifornia);
  Participant* secondary = harness.deployment_.participant(kVirginia);
  std::vector<net::SiteId> peers =
      harness.deployment_.mirror_sites_of(kCalifornia);
  peers.push_back(kCalifornia);
  secondary->SetMirrorPeers(kCalifornia, peers);

  bool done = false;
  uint64_t pos = 0;
  secondary->MirrorCommit(kCalifornia, ToBytes("fourth"), 0,
                          [&](uint64_t p) {
                            pos = p;
                            done = true;
                          });
  ASSERT_TRUE(
      harness.simulator_.RunUntilCondition([&] { return done; }, Seconds(120)));
  // The new entry continues after the three the old primary committed —
  // Virginia reconciled entries 2 and 3 from Oregon before acting.
  EXPECT_EQ(pos, 4u);
  harness.simulator_.RunFor(Seconds(2));
  BlockplaneNode* mirror =
      harness.deployment_.mirror_node(kVirginia, kCalifornia, 0);
  ASSERT_EQ(mirror->log_size(), 4u);
  std::vector<std::string> contents;
  for (const auto& [mirror_pos, record] : mirror->log()) {
    LogRecord inner;
    ASSERT_TRUE(LogRecord::Decode(record.payload, &inner).ok());
    contents.push_back(ToString(inner.payload));
  }
  EXPECT_EQ(contents, (std::vector<std::string>{"first", "second", "third",
                                                "fourth"}));
}

TEST(BlockplaneGeoTest, SendCarriesGeoProofs) {
  BlockplaneOptions options;
  options.fg = 1;
  CoreHarness harness(options);
  Bytes received;
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kVirginia, "geo send",
                                     &received, Seconds(120)));
  EXPECT_EQ(ToString(received), "geo send");
  harness.simulator_.RunFor(Seconds(1));
  // The received record embeds a non-empty geo proof.
  const auto& log = harness.deployment_.node(kVirginia, 0)->log();
  ASSERT_GE(log.size(), 1u);
  EXPECT_EQ(log.at(1).type, RecordType::kReceived);
  EXPECT_FALSE(log.at(1).geo_proof.empty());
}

// --- property sweeps ----------------------------------------------------------

class CorePairSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CorePairSweepTest, AllPairsDeliverInOrder) {
  auto [src, dest] = GetParam();
  if (src == dest) GTEST_SKIP();
  CoreHarness harness({}, /*seed=*/17);
  Participant* sender = harness.deployment_.participant(src);
  constexpr int kCount = 5;
  for (int i = 0; i < kCount; ++i) {
    sender->Send(dest, ToBytes("p" + std::to_string(i)), 0, nullptr);
  }
  Participant* receiver = harness.deployment_.participant(dest);
  std::vector<std::string> got;
  receiver->SetReceiveHandler([&](net::SiteId s, const Bytes& payload) {
    EXPECT_EQ(s, src);
    got.push_back(ToString(payload));
  });
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return got.size() == kCount; }, Seconds(120)));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[i], "p" + std::to_string(i));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CorePairSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pinfo) {
      return "from" + std::to_string(std::get<0>(pinfo.param)) + "_to" +
             std::to_string(std::get<1>(pinfo.param));
    });

class CoreFiSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CoreFiSweepTest, CommitAndSendWorkAcrossFaultLevels) {
  BlockplaneOptions options;
  options.fi = GetParam();
  CoreHarness harness(options);
  harness.CommitAndWait(kCalifornia, "commit");
  Bytes received;
  ASSERT_TRUE(harness.SendAndDeliver(kCalifornia, kOregon, "send",
                                     &received, Seconds(120)));
}

INSTANTIATE_TEST_SUITE_P(FaultLevels, CoreFiSweepTest,
                         ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "fi" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace blockplane::core
