#include "pbft/replica.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "crypto/sha256.h"

namespace blockplane::pbft {

PbftReplica::PbftReplica(net::Network* network, crypto::KeyStore* keys,
                         PbftConfig config, net::NodeId self,
                         ExecuteCallback execute)
    : network_(network),
      sim_(network->simulator()),
      keys_(keys),
      config_(std::move(config)),
      runner_(config_.runner != nullptr ? config_.runner
                                        : common::DefaultRunner()),
      self_(self),
      execute_(std::move(execute)) {
  config_.Validate();
  index_ = config_.ReplicaIndex(self_);
  BP_CHECK_MSG(index_ >= 0, "replica is not a member of its own group");
  signer_ = keys_->RegisterNode(self_);
  state_digest_.fill(0);
  // Jitter stream for the view-change backoff: seeded from this replica's
  // identity so it is deterministic per seed yet distinct per replica,
  // without consuming draws from the simulator's root RNG (which would
  // shift every downstream Fork and invalidate golden traces).
  backoff_rng_.Seed(0x5bd1e995u ^
                    (static_cast<uint64_t>(self_.site) << 32) ^
                    (static_cast<uint64_t>(self_.index) + 1));
}

void PbftReplica::RegisterWithNetwork() { network_->Register(self_, this); }

template <typename Map>
int PbftReplica::CountMatching(const Map& votes, const Digest& digest) {
  int count = 0;
  for (const auto& [index, vote] : votes) {
    if constexpr (std::is_same_v<std::decay_t<decltype(vote)>, Digest>) {
      if (vote == digest) ++count;
    } else {
      if (vote.digest == digest) ++count;
    }
  }
  return count;
}

void PbftReplica::HandleMessage(const net::Message& msg) {
  if (byzantine_ == ByzantineMode::kSilent) return;
  // Runner seam (DESIGN.md §12): every PBFT message rides the runner so
  // that epilogues — the state-touching halves — retire strictly in
  // delivery order, whatever the prologue fan-out. The three-phase hot
  // types get real prologues (decode + signature checks, offloadable to
  // worker threads); everything else submits a pass-through prologue.
  switch (msg.type) {
    case kPrePrepare:
      runner_->RunPrologue(ProloguePrePrepare(msg));
      return;
    case kPrepare:
    case kCommit:
      runner_->RunPrologue(PrologueVote(msg));
      return;
    case kRequest:
    case kCheckpoint:
    case kViewChange:
    case kNewView:
    case kFetchCommitted:
    case kCommittedEntry:
    case kFetchSnapshot:
    case kSnapshot:
      runner_->RunPrologue([this, msg]() -> common::Runner::Epilogue {
        return [this, msg]() { DispatchSerial(msg); };
      });
      return;
    default:
      return;  // not a PBFT message; ignore
  }
}

void PbftReplica::DispatchSerial(const net::Message& msg) {
  switch (msg.type) {
    case kRequest:
      OnRequest(msg);
      break;
    case kCheckpoint:
      OnCheckpoint(msg);
      break;
    case kViewChange:
      OnViewChange(msg);
      break;
    case kNewView:
      OnNewView(msg);
      break;
    case kFetchCommitted:
      OnFetchCommitted(msg);
      break;
    case kCommittedEntry:
      OnCommittedEntry(msg);
      break;
    case kFetchSnapshot:
      OnFetchSnapshot(msg);
      break;
    case kSnapshot:
      OnSnapshot(msg);
      break;
    default:
      break;
  }
}

// --- plumbing ---------------------------------------------------------------

void PbftReplica::Broadcast(net::MessageType type, Bytes payload,
                            uint64_t trace_id) {
  // Encode-once fan-out: one allocation, shared by every recipient's
  // Message. Each SendShared is a refcount bump where it used to be a full
  // buffer copy per peer.
  net::PayloadPtr shared = net::MakePayload(std::move(payload));
  int recipients = 0;
  for (const net::NodeId& node : config_.nodes) {
    if (node == self_) continue;
    SendShared(node, type, shared, trace_id);
    ++recipients;
  }
  if (recipients > 1) {
    hotpath_stats().bytes_copied_saved +=
        static_cast<int64_t>(recipients - 1) *
        static_cast<int64_t>(shared->size());
  }
}

void PbftReplica::SendTo(net::NodeId dst, net::MessageType type,
                         Bytes payload, uint64_t trace_id) {
  SendShared(dst, type, net::MakePayload(std::move(payload)), trace_id);
}

void PbftReplica::SendShared(net::NodeId dst, net::MessageType type,
                             net::PayloadPtr payload, uint64_t trace_id) {
  net::Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.trace_id = trace_id;
  network_->Send(std::move(msg));
}

const Bytes& PbftReplica::CanonicalBodyFor(const VoteMsg& vote) {
  if (canonical_memo_.size() >= kCanonicalMemoMax) canonical_memo_.clear();
  auto key = std::make_tuple(static_cast<uint8_t>(vote.type), vote.view,
                             vote.seq);
  auto it = canonical_memo_.find(key);
  if (it != canonical_memo_.end() && it->second.digest == vote.digest) {
    hotpath_stats().encodes_elided++;
    return it->second.body;
  }
  // Miss (or a vote for the same slot with a different digest, e.g. a
  // byzantine bogus-digest vote): encode and (re)install.
  CanonicalMemoEntry entry{vote.digest, vote.CanonicalBody()};
  return (canonical_memo_[key] = std::move(entry)).body;
}

Signature PbftReplica::Sign(const Bytes& canonical) const {
  if (!config_.sign_messages) return Signature{self_, {}};
  return signer_->Sign(canonical);
}

bool PbftReplica::VerifySig(const Bytes& canonical,
                            const Signature& sig) const {
  if (!config_.sign_messages) return true;
  return keys_->Verify(canonical, sig);
}

bool PbftReplica::VerifySigPure(const Bytes& canonical,
                                const Signature& sig) const {
  if (!config_.sign_messages) return true;
  return keys_->VerifyDetached(canonical, sig);
}

bool PbftReplica::RunVerifier(const Bytes& value) const {
  if (byzantine_ == ByzantineMode::kRejectVerification) return false;
  if (!verifier_) return true;
  if (value.empty()) return true;  // no-op gap filler
  return verifier_(value);
}

// --- client requests ---------------------------------------------------------

void PbftReplica::OnRequest(const net::Message& msg) {
  RequestMsg request;
  if (!RequestMsg::Decode(msg.body(), &request).ok()) return;

  // Already executed? Re-send the cached reply (the client's first reply
  // may have been lost).
  auto executed_it = executed_reqs_.find(request.client_token);
  if (executed_it != executed_reqs_.end() &&
      executed_it->second.count(request.req_id) > 0) {
    auto client_it = cached_replies_.find(request.client_token);
    if (client_it != cached_replies_.end()) {
      auto reply_it = client_it->second.find(request.req_id);
      if (reply_it != client_it->second.end()) {
        SendTo(ClientFromToken(request.client_token), kReply,
               reply_it->second);
      }
    }
    return;
  }

  if (IsLeader() && !in_view_change_) {
    auto key = std::make_pair(request.client_token, request.req_id);
    if (assigned_requests_.count(key) > 0) return;  // already proposed
    if (byzantine_ == ByzantineMode::kReorderGeo && !reorder_stashed_) {
      // Geo-reorder attack: silently censor the first request (mark it
      // assigned so retries stay censored too) while proposing later ones.
      // The unit log then carries non-contiguous geo positions until a view
      // change evicts this leader and an honest one proposes the gap.
      reorder_stashed_ = true;
      assigned_requests_.insert(key);
      return;
    }
    assigned_requests_.insert(key);
    pending_requests_.push_back({std::move(request), msg.trace_id, sim_->Now()});
    MaybeProposeNext();
    return;
  }

  // A request our own verification routine rejects will (rightly) be
  // censored by an honest leader; forwarding or watching it would only
  // provoke pointless view changes.
  if (!RunVerifier(request.value)) return;

  // Backup: forward to the current leader and watch for progress. If the
  // leader censors the request, the watchdog forces a view change.
  // Forward the received payload verbatim by reference — no re-encode, no
  // copy (the leader decodes the same bytes we did).
  hotpath_stats().bytes_copied_saved += static_cast<int64_t>(msg.body().size());
  SendShared(leader(), kRequest, msg.payload, msg.trace_id);
  auto key = std::make_pair(request.client_token, request.req_id);
  if (watched_requests_.count(key) > 0) return;
  WatchedRequest& watch = watched_requests_[key];
  watch.payload = msg.payload;  // kept for re-forwarding on view entry
  watch.trace_id = msg.trace_id;
  ArmRequestWatchdog(key);
}

void PbftReplica::ArmRequestWatchdog(
    const std::pair<uint64_t, uint64_t>& key) {
  auto it = watched_requests_.find(key);
  if (it == watched_requests_.end()) return;
  sim_->Cancel(it->second.timer);
  it->second.timer = sim_->Schedule(config_.view_timeout, [this, key]() {
    watched_requests_.erase(key);
    // The quorum may have executed the request without us; fetch decided
    // entries before blaming the leader.
    CatchUp();
    StartViewChange(view_ + 1);
  });
}

uint64_t PbftReplica::EffectiveWindow() const {
  if (config_.window_provider) {
    uint64_t window = config_.window_provider();
    return window < 1 ? 1 : window;
  }
  return config_.window;
}

uint64_t PbftReplica::HighWatermark() const {
  // Keep the un-truncated log bounded: never run more than two checkpoint
  // intervals (or two windows, whichever is larger) past the last stable
  // checkpoint. At window 1 this is never the binding constraint.
  uint64_t span = std::max<uint64_t>(2 * config_.checkpoint_interval,
                                     2 * EffectiveWindow());
  return last_stable_ + span;
}

bool PbftReplica::AdmitValue(const Bytes& value) {
  if (byzantine_ == ByzantineMode::kRejectVerification) return false;
  // A geo-reordering byzantine leader does not run the honest admission
  // projection (which would reject its own out-of-contiguity proposals).
  if (byzantine_ == ByzantineMode::kReorderGeo) return true;
  if (value.empty()) return true;  // no-op gap filler
  if (admission_) return admission_(value);
  if (verifier_) return verifier_(value);
  return true;
}

void PbftReplica::RebuildAdmissionProjection(
    const std::map<uint64_t, const Bytes*>& extra) {
  if (!admission_) return;
  if (admission_reset_) admission_reset_();
  // Replay every value that is decided (committed instance) or carried over
  // (prepared proof from a view change) but not yet executed, in sequence
  // order, so fresh admissions are judged against the state the log will
  // reach once the in-flight window drains. Admission verdicts are ignored
  // here: these values are already fixed in the log.
  uint64_t max_seq = extra.empty() ? 0 : extra.rbegin()->first;
  if (!instances_.empty()) {
    max_seq = std::max(max_seq, instances_.rbegin()->first);
  }
  for (uint64_t seq = last_executed_ + 1; seq <= max_seq; ++seq) {
    const Bytes* value = nullptr;
    auto ei = extra.find(seq);
    if (ei != extra.end()) {
      value = ei->second;
    } else {
      auto ii = instances_.find(seq);
      if (ii != instances_.end() && ii->second.committed) {
        value = &ii->second.value;
      }
    }
    if (value != nullptr && !value->empty()) admission_(*value);
  }
}

void PbftReplica::MaybeProposeNext() {
  if (!IsLeader() || in_view_change_) return;
  if (next_seq_ <= last_executed_) next_seq_ = last_executed_ + 1;
  while (!pending_requests_.empty()) {
    // Sliding window: at most `window` proposed-but-unexecuted instances,
    // and never beyond the high watermark (checkpoint lag bound).
    uint64_t outstanding = (next_seq_ - 1) - last_executed_;
    if (outstanding >= EffectiveWindow() || next_seq_ > HighWatermark()) {
      // Count stall *episodes*, not pump invocations: this path re-enters
      // on every request arrival and execution while the same stall
      // persists, and ticking the counter each time made it meaningless
      // as a back-pressure signal. The episode closes below as soon as
      // any proposal is admitted (partial drain included).
      if (!window_stalled_) {
        window_stalled_ = true;
        pipeline_stats().pbft_window_stalls++;
      }
      return;
    }
    window_stalled_ = false;
    PendingRequest pending = std::move(pending_requests_.front());
    RequestMsg& request = pending.request;
    pending_requests_.pop_front();
    // An honest leader does not propose values its admission check rejects
    // (e.g. a receive that another node already committed); proposing them
    // would stall the group into a needless view change. With window > 1
    // the check runs against the projected state (DESIGN.md §9).
    if (!AdmitValue(request.value)) {
      pipeline_stats().pbft_admission_rejects++;
      continue;
    }
    Propose(request.client_token, request.req_id, std::move(request.value),
            pending.trace_id, pending.enqueued);
  }
  // Queue drained: whatever stall was open is over (the window has room).
  window_stalled_ = false;
}

void PbftReplica::Propose(uint64_t client_token, uint64_t req_id,
                          Bytes value, uint64_t trace_id,
                          sim::SimTime enqueued) {
  uint64_t seq = next_seq_++;
  PipelineStats& ps = pipeline_stats();
  ps.pbft_proposals++;
  int64_t inflight = static_cast<int64_t>((next_seq_ - 1) - last_executed_);
  ps.pbft_inflight_peak = std::max(ps.pbft_inflight_peak, inflight);
  Tracer& tr = tracer();
  if (tr.enabled() && trace_id != 0 && enqueued != 0 &&
      sim_->Now() > enqueued) {
    // Queue-wait vs in-flight: how long the request sat behind a full
    // proposal window before its pre-prepare went out.
    tr.Span(trace_id, "queue_wait", "pipeline", enqueued, sim_->Now(),
            self_.site, self_.index, seq);
  }

  PrePrepareMsg pp;
  pp.view = view_;
  pp.seq = seq;
  pp.digest = DigestOf(value);
  pp.client_token = client_token;
  pp.req_id = req_id;
  pp.value = std::move(value);
  pp.sig = Sign(pp.CanonicalHeader());

  Instance& instance = instances_[seq];
  instance.view = view_;
  instance.digest = pp.digest;
  instance.has_preprepare = true;
  instance.preprepare_sig = pp.sig;
  instance.value = pp.value;
  instance.client_token = client_token;
  instance.req_id = req_id;
  instance.trace_id = trace_id;
  instance.ts_started = sim_->Now();
  ArmProgressTimer(seq);

  if (byzantine_ == ByzantineMode::kEquivocate) {
    // Send a different value (hence digest) to each half of the replicas.
    int parity = 0;
    for (const net::NodeId& node : config_.nodes) {
      if (node == self_) continue;
      PrePrepareMsg forged = pp;
      if (parity++ % 2 == 1) {
        forged.value.push_back(0xEE);
        forged.digest = DigestOf(forged.value);
        forged.sig = Sign(forged.CanonicalHeader());
      }
      SendTo(node, kPrePrepare, forged.Encode(), trace_id);
    }
    return;
  }
  Broadcast(kPrePrepare, pp.Encode(), trace_id);
}

// --- three-phase protocol -----------------------------------------------------

common::Runner::Prologue PbftReplica::ProloguePrePrepare(net::Message msg) {
  return [this, msg = std::move(msg)]() -> common::Runner::Epilogue {
    // Pure stage: decode, leader-of-view, signature, and payload-digest
    // checks read only the captured message, the immutable config, and the
    // registered key material. On a serial runner the cached VerifySig path
    // is safe (single thread) and keeps the verify-once cache warm exactly
    // as the seed did; threaded prologues take the detached path and leave
    // counters/caches to epilogues (BP007 discipline).
    auto pp = std::make_shared<PrePrepareMsg>();
    if (!PrePrepareMsg::Decode(msg.body(), pp.get()).ok()) return nullptr;
    if (msg.src != config_.LeaderOf(pp->view)) return nullptr;
    const bool sig_ok = runner_->serial()
                            ? VerifySig(pp->CanonicalHeader(), pp->sig)
                            : VerifySigPure(pp->CanonicalHeader(), pp->sig);
    if (!sig_ok) return nullptr;
    if (pp->sig.signer != msg.src) return nullptr;
    if (DigestOf(pp->value) != pp->digest) return nullptr;
    const uint64_t trace_id = msg.trace_id;
    return [this, pp, trace_id]() {
      OnPrePrepareVerified(std::move(*pp), trace_id);
    };
  };
}

void PbftReplica::OnPrePrepareVerified(PrePrepareMsg pp, uint64_t trace_id) {
  if (pp.view != view_ || in_view_change_) return;
  if (pp.seq <= last_stable_) return;
  // Flood protection: reject sequence numbers far beyond our high
  // watermark (lax by 2x so an honest leader whose stable checkpoint runs
  // ahead of ours is never rejected — checkpoint certificates travel on
  // the same reliable links as pre-prepares).
  if (pp.seq > HighWatermark() + (HighWatermark() - last_stable_)) return;

  // After a view change, carried-over sequence numbers must match the
  // digest recomputed from the view-change set.
  auto expected = expected_digests_.find(pp.seq);
  if (expected != expected_digests_.end() && expected->second != pp.digest) {
    return;
  }

  Instance& instance = instances_[pp.seq];
  if (instance.has_preprepare) {
    // Accept only an identical re-transmission for this view.
    if (instance.view == pp.view && instance.digest != pp.digest) {
      // Equivocation evidence: same (view, seq), different digest.
      StartViewChange(view_ + 1);
    }
    return;
  }
  instance.view = pp.view;
  instance.digest = pp.digest;
  instance.has_preprepare = true;
  instance.preprepare_sig = pp.sig;
  instance.value = std::move(pp.value);
  instance.client_token = pp.client_token;
  instance.req_id = pp.req_id;
  if (instance.trace_id == 0) instance.trace_id = trace_id;
  if (instance.ts_started == 0) instance.ts_started = sim_->Now();
  ArmProgressTimer(pp.seq);

  // Broadcast our prepare vote.
  VoteMsg prepare;
  prepare.type = kPrepare;
  prepare.view = pp.view;
  prepare.seq = pp.seq;
  prepare.digest = instance.digest;
  if (byzantine_ == ByzantineMode::kBogusVotes) {
    prepare.digest[0] ^= 0xff;
  }
  prepare.sig = Sign(CanonicalBodyFor(prepare));
  instance.sent_prepare = true;
  instance.prepares[index_] = {prepare.digest, prepare.sig};  // own vote
  Broadcast(kPrepare, prepare.Encode(), instance.trace_id);
  MaybePrepared(pp.seq);
}

common::Runner::Prologue PbftReplica::PrologueVote(net::Message msg) {
  return [this, msg = std::move(msg)]() -> common::Runner::Epilogue {
    // Pure stage for both vote types: decode, membership, leaders-don't-
    // prepare, and the signature check. The canonical-body memo is only
    // consulted on a serial runner (single thread); threaded prologues
    // re-encode — pure, at worker-thread prices — and verify detached.
    auto vote = std::make_shared<VoteMsg>();
    const PbftMessageType type = msg.type == kPrepare ? kPrepare : kCommit;
    if (!VoteMsg::Decode(type, msg.body(), vote.get()).ok()) return nullptr;
    const int sender = config_.ReplicaIndex(msg.src);
    if (sender < 0) return nullptr;
    if (type == kPrepare && msg.src == config_.LeaderOf(vote->view)) {
      return nullptr;  // leaders don't prepare
    }
    const bool sig_ok =
        runner_->serial()
            ? VerifySig(CanonicalBodyFor(*vote), vote->sig)
            : VerifySigPure(vote->CanonicalBody(), vote->sig);
    if (!sig_ok) return nullptr;
    if (vote->sig.signer != msg.src) return nullptr;
    const uint64_t trace_id = msg.trace_id;
    return [this, vote, sender, trace_id]() {
      OnVoteVerified(std::move(*vote), sender, trace_id);
    };
  };
}

void PbftReplica::OnVoteVerified(VoteMsg vote, int sender,
                                 uint64_t trace_id) {
  if (vote.view != view_ || in_view_change_) return;
  if (vote.seq <= last_stable_) return;

  if (vote.type == kPrepare) {
    Instance& instance = instances_[vote.seq];
    if (!instance.has_preprepare) instance.view = vote.view;
    if (instance.trace_id == 0) instance.trace_id = trace_id;
    // Buffered early votes carry their digest; only matching ones count.
    instance.prepares.emplace(sender,
                              Instance::Vote{vote.digest, vote.sig});
    ArmProgressTimer(vote.seq);
    MaybePrepared(vote.seq);
    return;
  }
  Instance& instance = instances_[vote.seq];
  if (instance.trace_id == 0) instance.trace_id = trace_id;
  instance.commit_view = vote.view;
  instance.commits[sender] = {vote.digest, vote.sig};
  MaybeCommitted(vote.seq);
}

void PbftReplica::MaybePrepared(uint64_t seq) {
  auto it = instances_.find(seq);
  if (it == instances_.end()) return;
  Instance& instance = it->second;
  if (instance.prepared || !instance.has_preprepare) return;
  // Prepared = pre-prepare + 2f matching prepares from distinct backups.
  if (CountMatching(instance.prepares, instance.digest) < 2 * config_.f) {
    return;
  }
  instance.prepared = true;
  instance.ts_prepared = sim_->Now();

  // Blockplane §IV-B: run the verification routine before the commit vote.
  if (!RunVerifier(instance.value)) {
    // The routine may merely be ahead of our state (e.g. it checks a chain
    // pointer whose predecessor has not executed here yet); retry after
    // each execution instead of voting now.
    instance.verify_pending = true;
    BP_LOG(kInfo) << self_.ToString() << " verification rejected seq " << seq;
    return;  // withhold the commit-phase vote for now
  }
  SendCommitVote(seq);
}

void PbftReplica::SendCommitVote(uint64_t seq) {
  auto it = instances_.find(seq);
  if (it == instances_.end() || it->second.sent_commit) return;
  Instance& instance = it->second;
  instance.verify_pending = false;
  VoteMsg commit;
  commit.type = kCommit;
  commit.view = instance.view;
  commit.seq = seq;
  commit.digest = instance.digest;
  if (byzantine_ == ByzantineMode::kBogusVotes) {
    commit.digest[1] ^= 0xff;
  }
  commit.sig = Sign(CanonicalBodyFor(commit));
  instance.sent_commit = true;
  instance.commit_view = instance.view;
  instance.commits[index_] = {instance.digest, commit.sig};
  Broadcast(kCommit, commit.Encode(), instance.trace_id);
  MaybeCommitted(seq);
}

void PbftReplica::RetryPendingVerifications() {
  std::vector<uint64_t> ready;
  for (auto& [seq, instance] : instances_) {
    if (instance.verify_pending && instance.prepared &&
        !instance.sent_commit && RunVerifier(instance.value)) {
      ready.push_back(seq);
    }
  }
  for (uint64_t seq : ready) SendCommitVote(seq);
}

void PbftReplica::MaybeCommitted(uint64_t seq) {
  auto it = instances_.find(seq);
  if (it == instances_.end()) return;
  Instance& instance = it->second;
  if (instance.committed || !instance.prepared) return;
  if (CountMatching(instance.commits, instance.digest) < config_.quorum()) {
    return;
  }
  instance.committed = true;
  instance.ts_committed = sim_->Now();
  if (seq != last_executed_ + 1) {
    // Certificate completed out of sequence order; execution will hold it
    // until every earlier instance commits (in-order delivery).
    pipeline_stats().pbft_ooo_commits++;
  }
  CancelProgressTimer(&instance);
  ExecuteReady();
}

void PbftReplica::ExecuteReady() {
  while (true) {
    auto it = instances_.find(last_executed_ + 1);
    if (it == instances_.end() || !it->second.committed) break;
    Instance& instance = it->second;
    uint64_t seq = last_executed_ + 1;

    bool is_noop = instance.client_token == 0 && instance.value.empty();
    bool duplicate =
        !is_noop &&
        executed_reqs_[instance.client_token].count(instance.req_id) > 0;

    if (!is_noop && !duplicate) {
      executed_reqs_[instance.client_token].insert(instance.req_id);
      executed_log_[seq] = instance.value;
      // Chain the state digest (cheap: fixed 64-byte input).
      Encoder chain;
      chain.PutRaw(state_digest_.data(), state_digest_.size());
      chain.PutRaw(instance.digest.data(), instance.digest.size());
      state_digest_ = crypto::Sha256Digest(chain.buffer());
      if (execute_) execute_(seq, instance.value);
      Tracer& tr = tracer();
      if (tr.enabled() && instance.trace_id != 0) {
        // Per-replica phase spans: how long this instance spent reaching
        // the prepared and committed points, plus an execution instant.
        if (instance.ts_prepared >= instance.ts_started) {
          tr.Span(instance.trace_id, "prepare", "pbft", instance.ts_started,
                  instance.ts_prepared, self_.site, self_.index, seq);
        }
        if (instance.ts_committed >= instance.ts_prepared &&
            instance.ts_prepared > 0) {
          tr.Span(instance.trace_id, "commit", "pbft", instance.ts_prepared,
                  instance.ts_committed, self_.site, self_.index, seq);
        }
        tr.Instant(instance.trace_id, "execute", "pbft", sim_->Now(),
                   self_.site, self_.index, seq);
      }
      SendReply(instance, seq);
      if (config_.on_commit_latency) {
        // Every executed instance grows the adaptive proposal window on
        // every replica — a backup that never grew would hand its next
        // leadership term a stale, collapsed window. Only the leader of
        // the proposing view reports a propose-to-execute latency sample
        // (an instance inherited across a view change mixes two leaders'
        // clocks — the congestion controller's Karn rule); backups report
        // 0, meaning "count the ack, skip the sample".
        bool clean = IsLeader() && instance.view == view_ &&
                     instance.ts_started > 0;
        config_.on_commit_latency(
            clean ? sim_->Now() - instance.ts_started : 0);
      }
    }

    auto wit =
        watched_requests_.find({instance.client_token, instance.req_id});
    if (wit != watched_requests_.end()) {
      sim_->Cancel(wit->second.timer);
      watched_requests_.erase(wit);
    }
    expected_digests_.erase(seq);
    ++last_executed_;

    if (last_executed_ % config_.checkpoint_interval == 0) {
      TakeCheckpoint(last_executed_);
    }
  }
  RetryPendingVerifications();
  MaybeAbandonViewChange();
  MaybeProposeNext();
}

void PbftReplica::MaybeAbandonViewChange() {
  // If execution progressed while we alone demand a new view, we were
  // merely lagging (now caught up), not facing a faulty leader. Resuming
  // normal operation is safe: our view-change message is just a vote that
  // others may still use.
  if (!in_view_change_) return;
  auto votes = view_changes_.find(target_view_);
  int supporters =
      votes == view_changes_.end() ? 0 : static_cast<int>(votes->second.size());
  if (supporters > config_.f) return;  // a real view change is brewing
  in_view_change_ = false;
  target_view_ = view_;
  viewchange_attempts_ = 0;
  sim_->Cancel(view_change_timer_);
  view_change_timer_ = sim::kInvalidEventId;
}

void PbftReplica::SendReply(const Instance& instance, uint64_t seq) {
  if (instance.client_token == 0) return;
  ReplyMsg reply;
  reply.view = view_;
  reply.req_id = instance.req_id;
  reply.seq = seq;
  reply.replica = index_;
  // The rolling state digest after executing `seq` (chained just before
  // this call). Honest replicas agree on it; it is what makes the client's
  // f+1 "matching" replies actually match — see ReplyMsg::result_digest.
  reply.result_digest = state_digest_;
  Bytes encoded = reply.Encode();
  auto& cache = cached_replies_[instance.client_token];
  cache[instance.req_id] = encoded;
  if (cache.size() > 128) cache.erase(cache.begin());
  SendTo(ClientFromToken(instance.client_token), kReply, std::move(encoded),
         instance.trace_id);
}

// --- state transfer / catch-up -------------------------------------------------

void PbftReplica::CatchUp() {
  FetchCommittedMsg fetch;
  fetch.from_seq = last_executed_ + 1;
  Broadcast(kFetchCommitted, fetch.Encode());
}

void PbftReplica::OnFetchCommitted(const net::Message& msg) {
  FetchCommittedMsg fetch;
  if (!FetchCommittedMsg::Decode(msg.body(), &fetch).ok()) return;
  if (config_.ReplicaIndex(msg.src) < 0) return;
  // Answer with a bounded range of committed entries we still hold.
  constexpr uint64_t kMaxEntries = 32;
  uint64_t sent = 0;
  for (auto it = instances_.lower_bound(fetch.from_seq);
       it != instances_.end() && sent < kMaxEntries; ++it) {
    const Instance& instance = it->second;
    if (!instance.committed) continue;
    CommittedEntryMsg entry;
    entry.seq = it->first;
    entry.view = instance.commit_view;
    entry.digest = instance.digest;
    entry.client_token = instance.client_token;
    entry.req_id = instance.req_id;
    entry.value = instance.value;
    for (const auto& [idx, vote] : instance.commits) {
      if (vote.digest == instance.digest) {
        entry.commit_sigs.push_back(vote.sig);
      }
    }
    SendTo(msg.src, kCommittedEntry, entry.Encode());
    ++sent;
  }
}

void PbftReplica::OnCommittedEntry(const net::Message& msg) {
  CommittedEntryMsg entry;
  if (!CommittedEntryMsg::Decode(msg.body(), &entry).ok()) return;
  if (config_.ReplicaIndex(msg.src) < 0) return;
  if (entry.seq <= last_executed_ || entry.seq <= last_stable_) return;
  auto existing = instances_.find(entry.seq);
  if (existing != instances_.end() && existing->second.committed) return;

  if (DigestOf(entry.value) != entry.digest) return;
  if (config_.sign_messages) {
    // The certificate must hold 2f+1 distinct valid commit votes.
    VoteMsg commit;
    commit.type = kCommit;
    commit.view = entry.view;
    commit.seq = entry.seq;
    commit.digest = entry.digest;
    Bytes body = commit.CanonicalBody();
    std::set<int32_t> valid;
    for (const Signature& sig : entry.commit_sigs) {
      if (config_.ReplicaIndex(sig.signer) < 0) continue;
      if (!keys_->Verify(body, sig)) continue;
      valid.insert(config_.ReplicaIndex(sig.signer));
    }
    if (static_cast<int>(valid.size()) < config_.quorum()) return;
  }

  Instance& instance = instances_[entry.seq];
  CancelProgressTimer(&instance);
  instance.view = entry.view;
  instance.digest = entry.digest;
  instance.value = std::move(entry.value);
  instance.client_token = entry.client_token;
  instance.req_id = entry.req_id;
  instance.has_preprepare = true;
  instance.prepared = true;
  instance.committed = true;
  instance.commit_view = entry.view;
  ExecuteReady();
}

void PbftReplica::RequestSnapshot() {
  Broadcast(kFetchSnapshot, Bytes{});
}

void PbftReplica::OnFetchSnapshot(const net::Message& msg) {
  if (config_.ReplicaIndex(msg.src) < 0) return;
  if (stable_snapshot_.seq == 0) return;  // no stable checkpoint yet
  SendTo(msg.src, kSnapshot, stable_snapshot_.Encode());
}

void PbftReplica::OnSnapshot(const net::Message& msg) {
  if (config_.ReplicaIndex(msg.src) < 0) return;
  SnapshotMsg snapshot;
  if (!SnapshotMsg::Decode(msg.body(), &snapshot).ok()) return;
  if (snapshot.seq <= last_executed_) return;
  if (config_.sign_messages) {
    // The certificate must hold 2f+1 distinct valid checkpoint votes.
    CheckpointMsg cp;
    cp.seq = snapshot.seq;
    cp.state_digest = snapshot.state_digest;
    Bytes body = cp.CanonicalBody();
    std::set<int32_t> valid;
    for (const Signature& sig : snapshot.cert) {
      if (config_.ReplicaIndex(sig.signer) < 0) continue;
      if (!keys_->Verify(body, sig)) continue;
      valid.insert(config_.ReplicaIndex(sig.signer));
    }
    if (static_cast<int>(valid.size()) < config_.quorum()) return;
  }
  if (snapshot_callback_) {
    // The application fetches + verifies the log contents, then installs.
    snapshot_callback_(snapshot);
    return;
  }
  InstallCheckpoint(snapshot.seq, snapshot.state_digest);
  CatchUp();
}

void PbftReplica::InstallCheckpoint(uint64_t seq, const Digest& digest) {
  if (seq <= last_executed_) return;
  last_executed_ = seq;
  last_stable_ = std::max(last_stable_, seq);
  state_digest_ = digest;
  for (auto it = instances_.begin();
       it != instances_.end() && it->first <= seq;) {
    CancelProgressTimer(&it->second);
    it = instances_.erase(it);
  }
  executed_log_.erase(executed_log_.begin(),
                      executed_log_.upper_bound(seq));
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(seq));
  // The fast-forward may have skipped values the admission projection
  // counted (or never saw); re-base it on the new applied state.
  if (IsLeader()) RebuildAdmissionProjection({});
  ExecuteReady();
}

// --- checkpoints --------------------------------------------------------------

void PbftReplica::TakeCheckpoint(uint64_t seq) {
  CheckpointMsg cp;
  cp.seq = seq;
  cp.state_digest = state_digest_;
  cp.sig = Sign(cp.CanonicalBody());
  checkpoint_votes_[seq][cp.state_digest][index_] = cp.sig;
  Broadcast(kCheckpoint, cp.Encode());
}

void PbftReplica::OnCheckpoint(const net::Message& msg) {
  CheckpointMsg cp;
  if (!CheckpointMsg::Decode(msg.body(), &cp).ok()) return;
  int sender = config_.ReplicaIndex(msg.src);
  if (sender < 0) return;
  if (!VerifySig(cp.CanonicalBody(), cp.sig) || cp.sig.signer != msg.src) {
    return;
  }
  if (cp.seq <= last_stable_) return;
  auto& votes = checkpoint_votes_[cp.seq][cp.state_digest];
  votes[sender] = cp.sig;
  if (static_cast<int>(votes.size()) < config_.quorum()) return;

  // Keep the certificate: it lets far-behind replicas verify snapshots.
  stable_snapshot_.seq = cp.seq;
  stable_snapshot_.state_digest = cp.state_digest;
  stable_snapshot_.cert.clear();
  for (auto& [index, sig] : votes) stable_snapshot_.cert.push_back(sig);

  // Stable: truncate everything at or below the checkpoint.
  last_stable_ = cp.seq;
  instances_.erase(instances_.begin(), instances_.upper_bound(cp.seq));
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(cp.seq));
  executed_log_.erase(executed_log_.begin(),
                      executed_log_.upper_bound(cp.seq));
}

// --- view changes --------------------------------------------------------------

void PbftReplica::ArmProgressTimer(uint64_t seq) {
  Instance& instance = instances_[seq];
  if (instance.progress_timer != sim::kInvalidEventId) return;
  instance.progress_timer = sim_->Schedule(config_.view_timeout, [this, seq]() {
    auto it = instances_.find(seq);
    if (it == instances_.end() || it->second.committed) return;
    it->second.progress_timer = sim::kInvalidEventId;
    BP_LOG(kDebug) << self_.ToString() << " progress timeout on seq " << seq;
    // We may simply have fallen behind a quorum that committed without us;
    // ask for the decided entries before demanding a new leader.
    CatchUp();
    StartViewChange(view_ + 1);
  });
}

void PbftReplica::CancelProgressTimer(Instance* instance) {
  if (instance->progress_timer != sim::kInvalidEventId) {
    sim_->Cancel(instance->progress_timer);
    instance->progress_timer = sim::kInvalidEventId;
  }
}

void PbftReplica::StartViewChange(uint64_t new_view) {
  if (new_view <= view_) return;
  if (in_view_change_ && target_view_ >= new_view) return;
  in_view_change_ = true;
  target_view_ = new_view;
  BP_LOG(kInfo) << self_.ToString() << " view change -> " << new_view;

  ViewChangeMsg vc;
  vc.new_view = new_view;
  vc.last_stable = last_stable_;
  for (auto& [seq, instance] : instances_) {
    if (!instance.prepared || seq <= last_stable_) continue;
    PreparedProof proof;
    proof.view = instance.view;
    proof.seq = seq;
    proof.digest = instance.digest;
    proof.client_token = instance.client_token;
    proof.req_id = instance.req_id;
    proof.value = instance.value;
    proof.preprepare_sig = instance.preprepare_sig;
    for (auto& [idx, vote] : instance.prepares) {
      if (vote.digest == instance.digest) {
        proof.prepare_sigs.push_back(vote.sig);
      }
    }
    vc.prepared.push_back(std::move(proof));
  }
  vc.sig = Sign(vc.CanonicalBody());

  Bytes encoded = vc.Encode();
  // Record our own view-change vote, then broadcast.
  view_changes_[new_view][index_] = vc;
  Broadcast(kViewChange, encoded);
  MaybeSendNewView(new_view);

  // Escalate if the new view does not start in time — with capped
  // exponential backoff plus jitter. A flat 2 * view_timeout retry lets
  // every replica's escalation fire in lock-step under a partition; the
  // repeated synchronized broadcasts then become a retry storm exactly when
  // the network is least able to absorb one. Each consecutive failed
  // attempt doubles the delay (up to view_backoff_cap), and per-replica
  // jitter decorrelates the herd (DESIGN.md §10).
  sim::SimTime delay = 2 * config_.view_timeout;
  uint64_t shift = std::min<uint64_t>(viewchange_attempts_, 16);
  if (shift > 0 && delay < config_.view_backoff_cap) {
    // Saturating left-shift: never overflows, never exceeds the cap.
    for (uint64_t i = 0; i < shift && delay < config_.view_backoff_cap; ++i) {
      delay *= 2;
    }
  }
  delay = std::min(delay, config_.view_backoff_cap);
  if (config_.view_backoff_jitter_permille > 0) {
    // Uniform in [0, jitter_permille/1000 * delay], all-integer so the
    // schedule replays bit-identically (BP005: no FP in consensus paths).
    const uint64_t span = static_cast<uint64_t>(delay) *
                          config_.view_backoff_jitter_permille / 1000;
    delay += static_cast<sim::SimTime>(backoff_rng_.NextBelow(span + 1));
  }
  ++viewchange_attempts_;
  RobustnessStats& rs = robustness_stats();
  rs.viewchange_attempts++;
  rs.viewchange_backoff_ms += static_cast<int64_t>(sim::ToMillis(delay));
  sim_->Cancel(view_change_timer_);
  view_change_timer_ = sim_->Schedule(delay, [this, new_view]() {
    if (view_ >= new_view) return;
    StartViewChange(target_view_ + 1);
  });
}

void PbftReplica::OnViewChange(const net::Message& msg) {
  ViewChangeMsg vc;
  if (!ViewChangeMsg::Decode(msg.body(), &vc).ok()) return;
  int sender = config_.ReplicaIndex(msg.src);
  if (sender < 0) return;
  if (!VerifySig(vc.CanonicalBody(), vc.sig) || vc.sig.signer != msg.src) {
    return;
  }
  if (vc.new_view <= view_) return;

  uint64_t new_view = vc.new_view;
  auto& votes = view_changes_[new_view];
  votes[sender] = std::move(vc);

  // Join the view change once f+1 replicas demand it (they cannot all be
  // wrong: at least one is honest).
  if (static_cast<int>(votes.size()) >= config_.f + 1 &&
      (!in_view_change_ || target_view_ < new_view)) {
    StartViewChange(new_view);
  }
  MaybeSendNewView(new_view);
}

void PbftReplica::MaybeSendNewView(uint64_t v) {
  if (v == 0 || v <= view_) return;
  if (config_.LeaderOf(v) != self_) return;
  auto it = view_changes_.find(v);
  if (it == view_changes_.end()) return;
  if (static_cast<int>(it->second.size()) < config_.quorum()) return;

  NewViewMsg nv;
  nv.view = v;
  std::vector<ViewChangeMsg> vcs;
  for (auto& [idx, vc] : it->second) {
    nv.view_changes.push_back(vc.Encode());
    vcs.push_back(vc);
    if (static_cast<int>(vcs.size()) == config_.quorum()) break;
  }
  nv.sig = Sign(nv.CanonicalBody());
  Broadcast(kNewView, nv.Encode());
  EnterView(v, vcs);
}

bool PbftReplica::ValidatePreparedProof(const PreparedProof& proof) const {
  if (!config_.sign_messages) return true;
  if (ComputeDigest(proof.value, config_.hash_payloads) != proof.digest) {
    return false;
  }
  // The pre-prepare must be signed by the leader of the view it cites.
  PrePrepareMsg pp;
  pp.view = proof.view;
  pp.seq = proof.seq;
  pp.digest = proof.digest;
  pp.client_token = proof.client_token;
  pp.req_id = proof.req_id;
  if (proof.preprepare_sig.signer != config_.LeaderOf(proof.view)) {
    return false;
  }
  if (!keys_->Verify(pp.CanonicalHeader(), proof.preprepare_sig)) return false;

  // 2f distinct valid backup prepares over the canonical vote body.
  VoteMsg vote;
  vote.type = kPrepare;
  vote.view = proof.view;
  vote.seq = proof.seq;
  vote.digest = proof.digest;
  Bytes body = vote.CanonicalBody();
  std::set<int32_t> valid;
  for (const Signature& sig : proof.prepare_sigs) {
    if (config_.ReplicaIndex(sig.signer) < 0) continue;
    if (sig.signer == config_.LeaderOf(proof.view)) continue;
    if (!keys_->Verify(body, sig)) continue;
    valid.insert(config_.ReplicaIndex(sig.signer));
  }
  return static_cast<int>(valid.size()) >= 2 * config_.f;
}

void PbftReplica::OnNewView(const net::Message& msg) {
  NewViewMsg nv;
  if (!NewViewMsg::Decode(msg.body(), &nv).ok()) return;
  if (nv.view <= view_) return;
  if (msg.src != config_.LeaderOf(nv.view)) return;
  if (!VerifySig(nv.CanonicalBody(), nv.sig) || nv.sig.signer != msg.src) {
    return;
  }

  // Validate the embedded view-change set: 2f+1 distinct, properly signed,
  // all targeting this view.
  std::vector<ViewChangeMsg> vcs;
  std::set<int32_t> senders;
  for (const Bytes& encoded : nv.view_changes) {
    ViewChangeMsg vc;
    if (!ViewChangeMsg::Decode(encoded, &vc).ok()) return;
    if (vc.new_view != nv.view) return;
    int sender = config_.ReplicaIndex(vc.sig.signer);
    if (sender < 0) return;
    if (!VerifySig(vc.CanonicalBody(), vc.sig)) return;
    if (!senders.insert(sender).second) return;
    vcs.push_back(std::move(vc));
  }
  if (static_cast<int>(vcs.size()) < config_.quorum()) return;

  EnterView(nv.view, vcs);
}

void PbftReplica::EnterView(uint64_t v, const std::vector<ViewChangeMsg>& vcs) {
  if (v <= view_) return;

  // Recompute the carried-over proposals deterministically from the
  // view-change set: for every sequence above the highest stable
  // checkpoint, the valid prepared-certificate from the highest view wins.
  uint64_t stable = last_stable_;
  for (const ViewChangeMsg& vc : vcs) stable = std::max(stable, vc.last_stable);

  std::map<uint64_t, const PreparedProof*> winners;
  for (const ViewChangeMsg& vc : vcs) {
    for (const PreparedProof& proof : vc.prepared) {
      if (proof.seq <= stable) continue;
      if (!ValidatePreparedProof(proof)) continue;
      auto [it, inserted] = winners.emplace(proof.seq, &proof);
      if (!inserted && proof.view > it->second->view) it->second = &proof;
    }
  }
  uint64_t max_seq = winners.empty() ? stable : winners.rbegin()->first;

  view_ = v;
  target_view_ = v;
  in_view_change_ = false;
  viewchange_attempts_ = 0;
  // Churn signal for the adaptive proposal window (DESIGN.md §13): a
  // *completed* view change re-proposes the in-flight tail, so a deep
  // window amplifies the disruption — back off before resuming. Spurious
  // backup escalations that never gather a quorum are not churn; firing on
  // attempts would let 1% message loss collapse the window for nothing.
  if (config_.on_view_change) config_.on_view_change();
  sim_->Cancel(view_change_timer_);
  view_change_timer_ = sim::kInvalidEventId;
  view_changes_.erase(view_changes_.begin(),
                      view_changes_.upper_bound(v));
  BP_LOG(kInfo) << self_.ToString() << " entered view " << v << " (leader "
                << leader().ToString() << ")";

  // Drop in-flight instances from older views; committed ones stay (their
  // values are already decided and will be re-confirmed identically).
  for (auto it = instances_.begin(); it != instances_.end();) {
    Instance& instance = it->second;
    if (!instance.committed && it->first > stable) {
      CancelProgressTimer(&instance);
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }

  expected_digests_.clear();
  std::map<uint64_t, PreparedProof> carryover;
  for (uint64_t seq = stable + 1; seq <= max_seq; ++seq) {
    auto win = winners.find(seq);
    PreparedProof proof;
    if (win != winners.end()) {
      proof = *win->second;
    } else {
      proof.seq = seq;  // gap: fill with a no-op
      proof.value.clear();
      proof.client_token = 0;
      proof.req_id = 0;
      proof.digest = DigestOf(proof.value);
    }
    auto inst_it = instances_.find(seq);
    if (inst_it != instances_.end() && inst_it->second.committed) {
      continue;  // already committed locally; nothing to redo
    }
    expected_digests_[seq] = proof.digest;
    carryover.emplace(seq, std::move(proof));
  }

  if (IsLeader()) {
    next_seq_ = std::max(max_seq, last_executed_) + 1;
    assigned_requests_.clear();
    // Re-base the leader-side admission projection: applied state plus
    // every decided-or-carried-but-unexecuted value in seq order. Without
    // this, a retransmitted duplicate of a carried-over request could be
    // admitted again and stall the group on an unverifiable duplicate.
    std::map<uint64_t, const Bytes*> carried_values;
    for (const auto& [seq, proof] : carryover) {
      carried_values[seq] = &proof.value;
      // The carried-over requests are already assigned seqs in this view;
      // retransmissions of them must not be proposed a second time.
      if (proof.client_token != 0 || proof.req_id != 0) {
        assigned_requests_.insert({proof.client_token, proof.req_id});
      }
    }
    RebuildAdmissionProjection(carried_values);
    // Re-issue pre-prepares (in the new view) for every carried-over seq.
    for (auto& [seq, proof] : carryover) {
      PrePrepareMsg pp;
      pp.view = view_;
      pp.seq = seq;
      pp.digest = proof.digest;
      pp.client_token = proof.client_token;
      pp.req_id = proof.req_id;
      pp.value = proof.value;
      pp.sig = Sign(pp.CanonicalHeader());

      Instance& instance = instances_[seq];
      instance.view = view_;
      instance.digest = pp.digest;
      instance.has_preprepare = true;
      instance.preprepare_sig = pp.sig;
      instance.value = pp.value;
      instance.client_token = pp.client_token;
      instance.req_id = pp.req_id;
      instance.prepares.clear();
      instance.commits.clear();
      instance.prepared = false;
      instance.sent_prepare = false;
      instance.sent_commit = false;
      ArmProgressTimer(seq);
      Broadcast(kPrePrepare, pp.Encode());
    }
    MaybeProposeNext();
  } else if (!carryover.empty()) {
    // Backups: watch for the leader's re-issued pre-prepares.
    ArmProgressTimer(carryover.begin()->first);
  }

  // Give the new view a full timeout to serve the requests we are still
  // watching. Watchdogs armed in the old view would otherwise depose each
  // new leader before the client's (slower) retransmission reaches it, and
  // when the client retry period is close to the view timeout this repeats
  // in every view — a view-change storm that starves the request forever.
  // Re-forwarding from the backups' own stash breaks the synchronization.
  for (auto& [key, watch] : watched_requests_) {
    if (!watch.payload) continue;
    if (IsLeader()) {
      // Broadcast/SendShared deliberately skip self-delivery, so feed the
      // stashed request straight back into our own request path.
      net::Message msg;
      msg.src = self_;
      msg.dst = self_;
      msg.type = kRequest;
      msg.payload = watch.payload;
      msg.trace_id = watch.trace_id;
      OnRequest(msg);
    } else {
      SendShared(leader(), kRequest, watch.payload, watch.trace_id);
    }
    ArmRequestWatchdog(key);
  }
}

}  // namespace blockplane::pbft
