// Transitive fixture group: bp005. An out-of-scope utility file (no
// consensus-path marker): its own doubles are legal here, but any
// consensus-path caller that reaches them has smuggled floating point
// into the decision path.

long Smooth(long prev, long sample) {
  double mixed = prev * 0.875 + sample * 0.125;
  return (long)mixed;
}

long Trend(long prev, long sample) {
  return Smooth(prev, sample) - prev;
}
