// Fixture: BP002 — wall-clock time and unseeded entropy outside
// src/sim and bench/ break bit-for-bit replay.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long long WallClockNow() {
  auto now = std::chrono::system_clock::now();  // forbidden: wall clock
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

int UnseededJitter() {
  std::random_device rd;    // forbidden: hardware entropy
  std::mt19937 gen(rd());   // forbidden: stdlib generator (not replayable)
  return static_cast<int>(gen());
}

int LegacyJitter() {
  srand(42);                           // forbidden: process-global PRNG
  int base = rand() % 100;             // forbidden
  return base + static_cast<int>(time(nullptr) % 7);  // forbidden
}
