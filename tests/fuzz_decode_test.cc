// Decode robustness: every wire decoder must survive arbitrary bytes —
// a byzantine peer controls everything it sends, so "corrupted message"
// must always mean a clean error, never a crash or an out-of-bounds read.
//
// Three generators: pure random bytes, truncations of valid encodings, and
// single-byte mutations of valid encodings.
#include <gtest/gtest.h>

#include "core/record.h"
#include "core/wire.h"
#include "paxos/message.h"
#include "pbft/message.h"
#include "sim/random.h"

namespace blockplane {
namespace {

using sim::Rng;

Bytes RandomBytes(Rng& rng, size_t max_len) {
  Bytes out(rng.NextBelow(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextU64());
  return out;
}

/// Runs every decoder in the code base against one input.
void DecodeEverything(const Bytes& input) {
  {
    core::LogRecord out;
    (void)core::LogRecord::Decode(input, &out);
  }
  {
    core::TransmissionRecord out;
    (void)core::TransmissionRecord::Decode(input, &out);
  }
  {
    core::TransmissionAckMsg out;
    (void)core::TransmissionAckMsg::Decode(input, &out);
  }
  {
    core::AttestRequestMsg out;
    (void)core::AttestRequestMsg::Decode(input, &out);
  }
  {
    core::AttestResponseMsg out;
    (void)core::AttestResponseMsg::Decode(input, &out);
  }
  {
    core::DeliverNoticeMsg out;
    (void)core::DeliverNoticeMsg::Decode(input, &out);
  }
  {
    core::GeoReplicateMsg out;
    (void)core::GeoReplicateMsg::Decode(input, &out);
  }
  {
    core::GeoAckMsg out;
    (void)core::GeoAckMsg::Decode(input, &out);
  }
  {
    core::MirrorFetchMsg out;
    (void)core::MirrorFetchMsg::Decode(input, &out);
  }
  {
    core::MirrorEntryMsg out;
    (void)core::MirrorEntryMsg::Decode(input, &out);
  }
  {
    core::ReadReplyMsg out;
    (void)core::ReadReplyMsg::Decode(input, &out);
  }
  {
    pbft::RequestMsg out;
    (void)pbft::RequestMsg::Decode(input, &out);
  }
  {
    pbft::PrePrepareMsg out;
    (void)pbft::PrePrepareMsg::Decode(input, &out);
  }
  {
    pbft::VoteMsg out;
    (void)pbft::VoteMsg::Decode(pbft::kPrepare, input, &out);
  }
  {
    pbft::ViewChangeMsg out;
    (void)pbft::ViewChangeMsg::Decode(input, &out);
  }
  {
    pbft::NewViewMsg out;
    (void)pbft::NewViewMsg::Decode(input, &out);
  }
  {
    pbft::CommittedEntryMsg out;
    (void)pbft::CommittedEntryMsg::Decode(input, &out);
  }
  {
    paxos::PromiseMsg out;
    (void)paxos::PromiseMsg::Decode(input, &out);
  }
  {
    paxos::AcceptMsg out;
    (void)paxos::AcceptMsg::Decode(input, &out);
  }
}

class FuzzDecodeTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDecodeTest, RandomBytesNeverCrashDecoders) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0x9e3779b9);
  for (int i = 0; i < 500; ++i) {
    DecodeEverything(RandomBytes(rng, 300));
  }
}

TEST_P(FuzzDecodeTest, TruncatedValidRecordsFailCleanly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337);
  core::LogRecord record;
  record.type = core::RecordType::kReceived;
  record.routine_id = 9;
  record.payload = RandomBytes(rng, 64);
  record.src_site = 1;
  record.dest_site = 2;
  record.src_log_pos = 5;
  record.prev_src_log_pos = 3;
  Bytes valid = record.Encode();

  // Every strict prefix must decode to an error, never to success with
  // garbage fields silently accepted... and never crash.
  for (size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + len);
    core::LogRecord out;
    Status status = core::LogRecord::Decode(truncated, &out);
    EXPECT_FALSE(status.ok()) << "prefix of length " << len << " decoded";
  }
  // The full encoding round-trips.
  core::LogRecord out;
  ASSERT_TRUE(core::LogRecord::Decode(valid, &out).ok());
  EXPECT_EQ(out.payload, record.payload);
  EXPECT_EQ(out.src_log_pos, record.src_log_pos);
}

TEST_P(FuzzDecodeTest, MutatedValidEncodingsNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7);
  core::TransmissionRecord tr;
  tr.src_site = 0;
  tr.dest_site = 3;
  tr.src_log_pos = 11;
  tr.prev_src_log_pos = 9;
  tr.payload = RandomBytes(rng, 128);
  crypto::Signature sig;
  sig.signer = {0, 1};
  tr.sigs = {sig, sig};
  Bytes valid = tr.Encode();

  for (int i = 0; i < 300; ++i) {
    Bytes mutated = valid;
    size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] = static_cast<uint8_t>(rng.NextU64());
    DecodeEverything(mutated);
  }
}

TEST_P(FuzzDecodeTest, ConcatenatedGarbageAfterValidPrefixIsHandled) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101);
  pbft::RequestMsg request;
  request.client_token = 42;
  request.req_id = 7;
  request.value = RandomBytes(rng, 40);
  Bytes valid = request.Encode();
  for (int i = 0; i < 100; ++i) {
    Bytes extended = valid;
    Bytes garbage = RandomBytes(rng, 50);
    extended.insert(extended.end(), garbage.begin(), garbage.end());
    DecodeEverything(extended);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecodeTest,
                         ::testing::Values(1, 2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace blockplane
