// Chaos engine regression tests (DESIGN.md §10): campaign compilation is
// deterministic and respects the recoverability constraints, campaign JSON
// embeds the config, and the byzantine-leader geo-reorder campaign — the
// attack the quarantine-and-gap-fill defense exists for — no longer stalls
// the participant.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chaos/campaign.h"
#include "chaos/engine.h"
#include "common/metrics.h"

namespace blockplane::chaos {
namespace {

bool IsByzantine(FaultType t) {
  switch (t) {
    case FaultType::kByzEquivocate:
    case FaultType::kByzSilent:
    case FaultType::kByzBogusVotes:
    case FaultType::kByzWithholdAttest:
    case FaultType::kByzForgeReads:
    case FaultType::kByzReorderGeo:
      return true;
    case FaultType::kCrashNode:
    case FaultType::kRecoverNode:
    case FaultType::kCrashSite:
    case FaultType::kRecoverSite:
    case FaultType::kPartition:
    case FaultType::kHeal:
    case FaultType::kPartitionOneWay:
    case FaultType::kHealOneWay:
    case FaultType::kDropBurst:
    case FaultType::kCorruptBurst:
    case FaultType::kDuplicateBurst:
    case FaultType::kHealAll:
      return false;
  }
  return false;  // unreachable: all enumerators handled above
}

constexpr ScheduleTemplate kAllTemplates[] = {
    ScheduleTemplate::kCrashHeavy,
    ScheduleTemplate::kPartitionHeavy,
    ScheduleTemplate::kByzantineHeavy,
    ScheduleTemplate::kMixed,
};

TEST(ChaosCampaignTest, CompileIsDeterministic) {
  for (ScheduleTemplate t : kAllTemplates) {
    CampaignConfig config;
    config.seed = 77;
    config.schedule = t;
    Campaign a = CompileCampaign(config);
    Campaign b = CompileCampaign(config);
    EXPECT_EQ(a.ToJson(), b.ToJson()) << ScheduleTemplateName(t);
    config.seed = 78;
    Campaign c = CompileCampaign(config);
    EXPECT_NE(a.ToJson(), c.ToJson())
        << ScheduleTemplateName(t) << ": seed must change the schedule";
  }
}

TEST(ChaosCampaignTest, JsonEmbedsConfigAndActions) {
  CampaignConfig config;
  config.seed = 9001;
  config.schedule = ScheduleTemplate::kMixed;
  Campaign campaign = CompileCampaign(config);
  std::string json = campaign.ToJson();
  EXPECT_NE(json.find("\"seed\": 9001"), std::string::npos);
  EXPECT_NE(json.find("\"schedule\": \"mixed\""), std::string::npos);
  EXPECT_NE(json.find("\"actions\""), std::string::npos);
  EXPECT_NE(json.find("heal_all"), std::string::npos);
}

// The compiler's recoverability constraints: at most f_i simultaneously
// faulty nodes per unit, at most one site outage at a time, everything
// healed by the horizon, and a terminal heal-all sweep.
TEST(ChaosCampaignTest, RespectsRecoverabilityConstraints) {
  for (ScheduleTemplate t : kAllTemplates) {
    for (uint64_t seed = 1; seed <= 40; ++seed) {
      CampaignConfig config;
      config.seed = seed;
      config.schedule = t;
      Campaign campaign = CompileCampaign(config);
      SCOPED_TRACE(std::string(ScheduleTemplateName(t)) + " seed " +
                   std::to_string(seed));

      ASSERT_FALSE(campaign.actions.empty());
      const FaultAction& last = campaign.actions.back();
      EXPECT_EQ(last.type, FaultType::kHealAll);
      EXPECT_EQ(last.at, campaign.config.horizon);

      // Track per-unit faulty sets and the site-outage count over time;
      // actions are sorted by `at`.
      std::map<net::SiteId, std::set<int>> faulty;  // crashed or byzantine
      std::set<net::SiteId> sites_down;
      for (const FaultAction& a : campaign.actions) {
        EXPECT_LE(a.at, campaign.config.horizon);
        if (a.duration > 0) {
          EXPECT_LE(a.at + a.duration, campaign.config.horizon)
              << FaultTypeName(a.type) << " burst must end by the horizon";
        }
        switch (a.type) {
          case FaultType::kCrashNode:
            faulty[a.site_a].insert(a.node_index);
            break;
          case FaultType::kRecoverNode:
            faulty[a.site_a].erase(a.node_index);
            break;
          case FaultType::kCrashSite:
            sites_down.insert(a.site_a);
            break;
          case FaultType::kRecoverSite:
            sites_down.erase(a.site_a);
            break;
          case FaultType::kByzEquivocate:
          case FaultType::kByzSilent:
          case FaultType::kByzBogusVotes:
          case FaultType::kByzWithholdAttest:
          case FaultType::kByzForgeReads:
          case FaultType::kByzReorderGeo:
            ASSERT_TRUE(IsByzantine(a.type));
            faulty[a.site_a].insert(a.node_index);
            break;
          case FaultType::kPartition:
          case FaultType::kHeal:
          case FaultType::kPartitionOneWay:
          case FaultType::kHealOneWay:
          case FaultType::kDropBurst:
          case FaultType::kCorruptBurst:
          case FaultType::kDuplicateBurst:
          case FaultType::kHealAll:
            break;  // link-level faults consume no per-node budget
        }
        for (const auto& [site, nodes] : faulty) {
          EXPECT_LE(static_cast<int>(nodes.size()), campaign.config.fi)
              << "unit " << site << " exceeds its f_i fault budget at "
              << sim::ToMillis(a.at) << " ms";
        }
        EXPECT_LE(sites_down.size(), 1u) << "more than one site down at "
                                         << sim::ToMillis(a.at) << " ms";
      }
      // Everything healed at the end (byzantine roles are permanent by
      // design — the unit masks them — so only crashes must clear).
      EXPECT_TRUE(sites_down.empty());
    }
  }
}

// Dedicated regression for the ROADMAP's geo-reorder hole: a byzantine unit
// leader censors a request while committing later ones, producing
// non-contiguous geo positions. Quarantine-and-gap-fill must (a) keep the
// stream contiguous for downstream consumers and (b) restore liveness well
// before the campaign deadline — before this PR the participant's geo round
// stalled forever.
TEST(ChaosEngineTest, GeoReorderLeaderNoLongerStallsParticipant) {
  CampaignConfig config;
  config.seed = 4242;
  config.schedule = ScheduleTemplate::kByzantineHeavy;  // label only
  config.num_sites = 3;
  config.fi = 1;
  config.fg = 1;
  config.pbft_window = 4;
  config.participant_window = 4;
  config.ops_per_site = 8;
  config.sends_per_site = 0;  // keep site 0's unit log all-API
  config.horizon = sim::Seconds(12);
  config.deadline = sim::Seconds(40);

  Campaign campaign;
  campaign.config = config;
  campaign.actions.push_back(
      {sim::Milliseconds(10), FaultType::kByzReorderGeo, 0, -1, 0});
  campaign.actions.push_back({config.horizon, FaultType::kHealAll});

  RobustnessStats& rs = robustness_stats();
  rs.Reset();
  ChaosReport report = RunCampaign(campaign);
  EXPECT_TRUE(report.ok) << report.ToString() << "\n" << campaign.ToJson();
  EXPECT_TRUE(report.live);
  EXPECT_EQ(report.completions, report.expected_completions);

  // The attack actually fired and the defense actually ran: later positions
  // were quarantined around the censored one, the unit notified the
  // participant, and every quarantined record was eventually released.
  EXPECT_GT(rs.geo_quarantined, 0) << "attack never produced a geo gap";
  EXPECT_EQ(rs.geo_quarantine_released, rs.geo_quarantined);
  EXPECT_GT(rs.geo_gap_notices, 0);
  // Evicting the censoring leader goes through the view-change path.
  EXPECT_GT(rs.viewchange_attempts, 0);
}

// One quick end-to-end campaign per template — the soak test covers many
// seeds; this keeps a cheap always-on sanity check in the default suite.
TEST(ChaosEngineTest, OneCampaignPerTemplateHoldsInvariants) {
  for (ScheduleTemplate t : kAllTemplates) {
    CampaignConfig config;
    config.seed = 7;
    config.schedule = t;
    Campaign campaign = CompileCampaign(config);
    ChaosReport report = RunCampaign(campaign);
    EXPECT_TRUE(report.ok) << ScheduleTemplateName(t) << "\n"
                           << report.ToString() << "\n"
                           << campaign.ToJson();
  }
}

// Quorum-cert aggregation (DESIGN.md §14) swaps the wire's signature
// vectors for compact certs — safety invariants I1–I4 and liveness must
// hold under every fault template with the optimization on, and the
// campaigns must actually exercise the cert path (certs built, repeat
// verifications elided through the cache).
TEST(ChaosEngineTest, QuorumCertsHoldInvariantsUnderEveryTemplate) {
  for (ScheduleTemplate t : kAllTemplates) {
    CampaignConfig config;
    config.seed = 7;
    config.schedule = t;
    config.quorum_certs = true;
    Campaign campaign = CompileCampaign(config);
    qc_stats().Reset();
    ChaosReport report = RunCampaign(campaign);
    EXPECT_TRUE(report.ok) << ScheduleTemplateName(t) << "\n"
                           << report.ToString() << "\n"
                           << campaign.ToJson();
    EXPECT_GT(qc_stats().certs_built, 0) << ScheduleTemplateName(t);
    EXPECT_GT(qc_stats().verifies_elided, 0) << ScheduleTemplateName(t);
  }
  qc_stats().Reset();
}

}  // namespace
}  // namespace blockplane::chaos
