#include "core/wire.h"

#include <algorithm>

#include "common/runner.h"

namespace blockplane::core {

namespace {

Status GetPurpose(Decoder* dec, AttestPurpose* out) {
  uint8_t v = 0;
  BP_RETURN_NOT_OK(dec->GetU8(&v));
  if (v < 1 || v > 3) return Status::Corruption("bad attest purpose");
  *out = static_cast<AttestPurpose>(v);
  return Status::OK();
}

}  // namespace

Bytes TransmissionAckMsg::Encode() const {
  Encoder enc;
  enc.PutU64(src_log_pos);
  return enc.Take();
}

Status TransmissionAckMsg::Decode(const Bytes& buf, TransmissionAckMsg* out) {
  Decoder dec(buf);
  return dec.GetU64(&out->src_log_pos);
}

Bytes AttestRequestMsg::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(purpose));
  enc.PutU64(pos);
  enc.PutU32(static_cast<uint32_t>(dest_site));
  return enc.Take();
}

Status AttestRequestMsg::Decode(const Bytes& buf, AttestRequestMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(GetPurpose(&dec, &out->purpose));
  BP_RETURN_NOT_OK(dec.GetU64(&out->pos));
  uint32_t site = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&site));
  out->dest_site = static_cast<net::SiteId>(site);
  return Status::OK();
}

Bytes AttestResponseMsg::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(purpose));
  enc.PutU64(pos);
  crypto::EncodeSignature(&enc, sig);
  return enc.Take();
}

Status AttestResponseMsg::Decode(const Bytes& buf, AttestResponseMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(GetPurpose(&dec, &out->purpose));
  BP_RETURN_NOT_OK(dec.GetU64(&out->pos));
  return crypto::DecodeSignature(&dec, &out->sig);
}

Bytes DeliverNoticeMsg::Encode() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(src_site));
  enc.PutU64(src_log_pos);
  enc.PutU64(prev_src_log_pos);
  enc.PutBytes(payload);
  return enc.Take();
}

Status DeliverNoticeMsg::Decode(const Bytes& buf, DeliverNoticeMsg* out) {
  Decoder dec(buf);
  uint32_t site = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&site));
  out->src_site = static_cast<net::SiteId>(site);
  BP_RETURN_NOT_OK(dec.GetU64(&out->src_log_pos));
  BP_RETURN_NOT_OK(dec.GetU64(&out->prev_src_log_pos));
  return dec.GetBytes(&out->payload);
}

Bytes RecvStatusQueryMsg::Encode() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(src_site));
  return enc.Take();
}

Status RecvStatusQueryMsg::Decode(const Bytes& buf, RecvStatusQueryMsg* out) {
  Decoder dec(buf);
  uint32_t site = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&site));
  out->src_site = static_cast<net::SiteId>(site);
  return Status::OK();
}

Bytes RecvStatusReplyMsg::Encode() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(src_site));
  enc.PutU64(last_pos);
  return enc.Take();
}

Status RecvStatusReplyMsg::Decode(const Bytes& buf, RecvStatusReplyMsg* out) {
  Decoder dec(buf);
  uint32_t site = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&site));
  out->src_site = static_cast<net::SiteId>(site);
  return dec.GetU64(&out->last_pos);
}

Bytes GeoReplicateMsg::Encode() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(acting_site));
  enc.PutU64(geo_pos);
  enc.PutBytes(record);
  crypto::EncodeProof(&enc, sigs);
  // Trailing optional cert section (wire v2): absent when empty, so
  // qc-off encodings stay byte-identical to v1.
  if (!sig_certs.empty()) crypto::EncodeCertList(&enc, sig_certs);
  return enc.Take();
}

Status GeoReplicateMsg::Decode(const Bytes& buf, GeoReplicateMsg* out) {
  Decoder dec(buf);
  uint32_t site = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&site));
  out->acting_site = static_cast<net::SiteId>(site);
  BP_RETURN_NOT_OK(dec.GetU64(&out->geo_pos));
  BP_RETURN_NOT_OK(dec.GetBytes(&out->record));
  BP_RETURN_NOT_OK(crypto::DecodeProof(&dec, &out->sigs));
  out->sig_certs.clear();
  if (!dec.AtEnd()) {
    BP_RETURN_NOT_OK(crypto::DecodeCertList(&dec, &out->sig_certs));
  }
  return Status::OK();
}

Bytes GeoAckMsg::Encode() const {
  Encoder enc;
  enc.PutU64(geo_pos);
  crypto::EncodeSignature(&enc, sig);
  return enc.Take();
}

Status GeoAckMsg::Decode(const Bytes& buf, GeoAckMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->geo_pos));
  return crypto::DecodeSignature(&dec, &out->sig);
}

Bytes GeoGapNoticeMsg::Encode() const {
  Encoder enc;
  enc.PutU64(missing_geo_pos);
  enc.PutU64(quarantined_high);
  return enc.Take();
}

Status GeoGapNoticeMsg::Decode(const Bytes& buf, GeoGapNoticeMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->missing_geo_pos));
  return dec.GetU64(&out->quarantined_high);
}

Bytes ReadRequestMsg::Encode() const {
  Encoder enc;
  enc.PutU64(read_id);
  enc.PutU64(pos);
  return enc.Take();
}

Status ReadRequestMsg::Decode(const Bytes& buf, ReadRequestMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->read_id));
  return dec.GetU64(&out->pos);
}

Bytes ReadReplyMsg::Encode() const {
  Encoder enc;
  enc.PutU64(read_id);
  enc.PutU64(pos);
  enc.PutBool(found);
  enc.PutBytes(record);
  return enc.Take();
}

Status ReadReplyMsg::Decode(const Bytes& buf, ReadReplyMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->read_id));
  BP_RETURN_NOT_OK(dec.GetU64(&out->pos));
  BP_RETURN_NOT_OK(dec.GetBool(&out->found));
  return dec.GetBytes(&out->record);
}

Bytes MirrorFetchMsg::Encode() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(origin_site));
  enc.PutU64(from_geo_pos);
  return enc.Take();
}

Status MirrorFetchMsg::Decode(const Bytes& buf, MirrorFetchMsg* out) {
  Decoder dec(buf);
  uint32_t site = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&site));
  out->origin_site = static_cast<net::SiteId>(site);
  return dec.GetU64(&out->from_geo_pos);
}

Bytes MirrorEntryMsg::Encode() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(origin_site));
  enc.PutBytes(record);
  return enc.Take();
}

Status MirrorEntryMsg::Decode(const Bytes& buf, MirrorEntryMsg* out) {
  Decoder dec(buf);
  uint32_t site = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&site));
  out->origin_site = static_cast<net::SiteId>(site);
  return dec.GetBytes(&out->record);
}

Bytes LogSyncRequestMsg::Encode() const {
  Encoder enc;
  enc.PutU64(from_pos);
  enc.PutU64(to_pos);
  return enc.Take();
}

Status LogSyncRequestMsg::Decode(const Bytes& buf, LogSyncRequestMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->from_pos));
  return dec.GetU64(&out->to_pos);
}

Bytes LogSyncReplyMsg::Encode() const {
  Encoder enc;
  enc.PutU64(pos);
  enc.PutBytes(value);
  return enc.Take();
}

Status LogSyncReplyMsg::Decode(const Bytes& buf, LogSyncReplyMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->pos));
  return dec.GetBytes(&out->value);
}

Bytes GeoProofBundleMsg::Encode() const {
  Encoder enc;
  enc.PutU64(pos);
  crypto::EncodeProof(&enc, proof);
  // Trailing optional cert section (wire v2), as in GeoReplicateMsg.
  if (!proof_certs.empty()) crypto::EncodeCertList(&enc, proof_certs);
  return enc.Take();
}

Status GeoProofBundleMsg::Decode(const Bytes& buf, GeoProofBundleMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->pos));
  BP_RETURN_NOT_OK(crypto::DecodeProof(&dec, &out->proof));
  out->proof_certs.clear();
  if (!dec.AtEnd()) {
    BP_RETURN_NOT_OK(crypto::DecodeCertList(&dec, &out->proof_certs));
  }
  return Status::OK();
}

namespace {
// Jobs per prologue: amortizes the runner's queue round-trip over several
// codec calls (a short transmission record encodes in ~1 µs).
constexpr size_t kCodecChunk = 8;
}  // namespace

std::vector<Bytes> EncodeTransmissionBatch(
    const std::vector<TransmissionRecord>& records, common::Runner* runner) {
  if (runner == nullptr) runner = common::DefaultRunner();
  std::vector<Bytes> out(records.size());
  if (runner->serial()) {
    for (size_t i = 0; i < records.size(); ++i) out[i] = records[i].Encode();
    return out;
  }
  std::vector<common::Runner::BatchTask> tasks;
  tasks.reserve((records.size() + kCodecChunk - 1) / kCodecChunk);
  for (size_t start = 0; start < records.size(); start += kCodecChunk) {
    size_t end = std::min(start + kCodecChunk, records.size());
    // Each chunk writes a disjoint slice of `out`; `records` is immutable
    // for the duration (the caller blocks inside RunBatch).
    tasks.push_back([&records, &out, start, end] {
      for (size_t i = start; i < end; ++i) out[i] = records[i].Encode();
    });
  }
  runner->RunBatch(std::move(tasks));
  return out;
}

void DecodeTransmissionBatch(std::vector<TransmissionDecodeJob>* jobs,
                             common::Runner* runner) {
  if (runner == nullptr) runner = common::DefaultRunner();
  if (runner->serial()) {
    for (TransmissionDecodeJob& job : *jobs) {
      job.ok = TransmissionRecord::Decode(job.buf, &job.record).ok();
    }
    return;
  }
  std::vector<common::Runner::BatchTask> tasks;
  tasks.reserve((jobs->size() + kCodecChunk - 1) / kCodecChunk);
  for (size_t start = 0; start < jobs->size(); start += kCodecChunk) {
    size_t end = std::min(start + kCodecChunk, jobs->size());
    tasks.push_back([jobs, start, end] {
      for (size_t i = start; i < end; ++i) {
        TransmissionDecodeJob& job = (*jobs)[i];
        job.ok = TransmissionRecord::Decode(job.buf, &job.record).ok();
      }
    });
  }
  runner->RunBatch(std::move(tasks));
}

}  // namespace blockplane::core
