// ReliableTransport: a TCP-like perfect-link layer on top of the lossy
// Network.
//
// The paper assumes "Blockplane utilizes existing approaches to detect data
// corruption and reordering such as the TCP protocol". This module is that
// approach: per-peer sequence numbers, CRC-32 frame checksums, positive
// acks, timeout-based retransmission with exponential backoff, duplicate
// suppression, and in-order delivery. With it, drops / corruption /
// duplication injected by the Network are masked from the protocol above.
//
// The one failure TCP cannot mask is a dead peer: after max_retries the
// frame is abandoned and the registered on_drop callback tells the sender —
// a silent erase here used to leave upper layers waiting forever (see
// transport_test.cc's AbandonedFrameNotifiesSender regression test).
#ifndef BLOCKPLANE_NET_TRANSPORT_H_
#define BLOCKPLANE_NET_TRANSPORT_H_

#include <functional>
#include <map>
#include <unordered_map>

#include "common/codec.h"
#include "common/rtt_estimator.h"
#include "net/network.h"

namespace blockplane::net {

struct TransportOptions {
  /// Base retransmission timeout; actual RTO adds the peer RTT.
  sim::SimTime base_rto = sim::Milliseconds(10);
  /// Backoff multiplier applied per retry.
  double backoff = 2.0;
  sim::SimTime max_rto = sim::Seconds(2);
  /// After this many retries the frame is abandoned (peer presumed dead)
  /// and the on_drop callback fires.
  int max_retries = 20;
};

class ReliableTransport : public Host {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Invoked when an in-flight frame is abandoned after max_retries: the
  /// application message of `type` with transport sequence `seq` will never
  /// reach `dst`. Fired after the frame is removed from the in-flight set,
  /// so the callback may safely Send again (e.g. to a different peer).
  using DropCallback =
      std::function<void(NodeId dst, MessageType type, uint64_t seq)>;

  /// Registers `self` with the network. `handler` receives application
  /// messages exactly once each, in per-peer FIFO order.
  ReliableTransport(Network* network, NodeId self, Handler handler,
                    TransportOptions options = {});
  ~ReliableTransport() override;
  BP_DISALLOW_COPY_AND_ASSIGN(ReliableTransport);

  /// Queues an application message for reliable in-order delivery. Takes
  /// the payload by rvalue: the frame encoder is the single copy the bytes
  /// ever take (the old by-value signature copied them twice). Callers keep
  /// a payload by passing `Bytes(payload)` explicitly.
  void Send(NodeId dst, MessageType type, Bytes&& payload,
            uint64_t trace_id = 0);

  /// Installs the abandoned-frame notification hook.
  void set_on_drop(DropCallback on_drop) { on_drop_ = std::move(on_drop); }

  void HandleMessage(const Message& raw) override;

  NodeId self() const { return self_; }
  int64_t retransmissions() const { return retransmissions_; }
  int64_t discarded_corrupt() const { return discarded_corrupt_; }
  /// Frames given up on after max_retries (each fired on_drop).
  int64_t frames_abandoned() const { return frames_abandoned_; }

  /// True once at least one clean (never-retransmitted) ack round trip to
  /// `dst` has been measured; srtt(dst) is meaningful only then.
  bool has_rtt_estimate(NodeId dst) const;
  /// Smoothed measured RTT to `dst` (0 before the first sample).
  sim::SimTime srtt(NodeId dst) const;
  /// Effective retransmission timeout for the given retry count: the
  /// smoothed measured peer RTT (topology RTT until the first sample) plus
  /// base_rto, scaled by backoff^retries, clamped to max_rto. The clamp
  /// bounds the *scaled* value — public so tests can pin that property.
  sim::SimTime RtoFor(NodeId dst, int retries) const;

 private:
  struct Pending {
    /// Encoded data frame, shared with every (re)transmission in flight:
    /// retransmitting is a refcount bump, not a buffer copy.
    PayloadPtr frame;
    sim::EventId timer = sim::kInvalidEventId;
    int retries = 0;
    /// The application message type inside the frame, kept so an abandoned
    /// frame can be reported meaningfully without re-decoding the frame.
    MessageType app_type = 0;
    /// Causal trace of the payload (0 = untraced).
    uint64_t trace_id = 0;
    /// First-transmission time: the RTT sample for a clean (retries == 0)
    /// ack is ack time minus this. Karn's rule: retransmitted frames are
    /// never sampled, their ack cannot be matched to an attempt.
    sim::SimTime first_sent = 0;
  };
  struct BufferedFrame {
    MessageType app_type = 0;
    PayloadPtr payload;
    uint64_t trace_id = 0;
  };
  struct PeerRecv {
    uint64_t next_expected = 1;
    // Out-of-order frames buffered until the gap fills. The payload is
    // shared with the decode buffer, not copied.
    std::map<uint64_t, BufferedFrame> pending;
  };
  struct PeerSend {
    uint64_t next_seq = 1;
    std::unordered_map<uint64_t, Pending> in_flight;
  };

  void TransmitFrame(NodeId dst, uint64_t seq);
  void ArmTimer(NodeId dst, uint64_t seq);
  void HandleDataFrame(const Message& raw);
  void HandleAckFrame(const Message& raw);

  Network* network_;
  NodeId self_;
  Handler handler_;
  DropCallback on_drop_;
  TransportOptions options_;

  std::unordered_map<NodeId, PeerSend, NodeIdHash> send_state_;
  std::unordered_map<NodeId, PeerRecv, NodeIdHash> recv_state_;
  /// Smoothed per-peer RTT from clean ack round trips; drives RtoFor.
  std::unordered_map<NodeId, common::RttEstimator, NodeIdHash> rtt_;
  int64_t retransmissions_ = 0;
  int64_t discarded_corrupt_ = 0;
  int64_t frames_abandoned_ = 0;
};

}  // namespace blockplane::net

#endif  // BLOCKPLANE_NET_TRANSPORT_H_
