// Recovery tests (§VI-B): short outages recover through PBFT catch-up;
// outages longer than the stable-checkpoint garbage-collection window
// recover through certified snapshot transfer plus chain-verified log sync.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::Topology;
using sim::Seconds;

class RecoveryHarness {
 public:
  explicit RecoveryHarness(uint64_t checkpoint_interval, uint64_t seed = 51)
      : simulator_(seed) {
    BlockplaneOptions options;
    options.checkpoint_interval = checkpoint_interval;
    deployment_ =
        std::make_unique<Deployment>(&simulator_, Topology::SingleSite(),
                                     options);
  }

  void CommitMany(int count) {
    int completed = 0;
    for (int i = 0; i < count; ++i) {
      deployment_->participant(0)->LogCommit(
          ToBytes("entry-" + std::to_string(next_entry_++)), 0,
          [&](uint64_t) { ++completed; });
    }
    ASSERT_TRUE(simulator_.RunUntilCondition(
        [&] { return completed == count; }, Seconds(120)));
  }

  sim::Simulator simulator_;
  std::unique_ptr<Deployment> deployment_;
  int next_entry_ = 0;
};

TEST(RecoveryTest, ShortOutageRecoversViaCatchUp) {
  RecoveryHarness harness(/*checkpoint_interval=*/128);
  net::NodeId down{0, 3};
  harness.deployment_->network()->Crash(down);
  harness.CommitMany(10);
  harness.deployment_->network()->Recover(down);
  harness.deployment_->node(0, 3)->Recover();
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.deployment_->node(0, 3)->log_size() == 10; },
      Seconds(60)));
}

TEST(RecoveryTest, LongOutageRecoversViaSnapshotTransfer) {
  // Checkpoints every 4 entries: after 20 commits the early instances (and
  // their commit certificates) are garbage-collected everywhere, so plain
  // catch-up cannot serve them. The snapshot certificate + digest-chain
  // log sync must kick in.
  RecoveryHarness harness(/*checkpoint_interval=*/4);
  net::NodeId down{0, 3};
  harness.deployment_->network()->Crash(down);
  harness.CommitMany(20);
  harness.simulator_.RunFor(Seconds(1));
  // The survivors garbage-collected past several checkpoints.
  EXPECT_GE(
      harness.deployment_->node(0, 0)->replica()->last_stable_checkpoint(),
      16u);

  harness.deployment_->network()->Recover(down);
  harness.deployment_->node(0, 3)->Recover();
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.deployment_->node(0, 3)->log_size() == 20; },
      Seconds(60)));
  // Every entry matches a healthy node, byte for byte.
  const auto& healthy = harness.deployment_->node(0, 0)->log();
  const auto& recovered = harness.deployment_->node(0, 3)->log();
  for (const auto& [pos, record] : healthy) {
    ASSERT_TRUE(recovered.count(pos) > 0) << "missing pos " << pos;
    EXPECT_EQ(recovered.at(pos).payload, record.payload);
  }
}

TEST(RecoveryTest, RecoveredNodeParticipatesAgain) {
  RecoveryHarness harness(4);
  net::NodeId down{0, 1};
  harness.deployment_->network()->Crash(down);
  harness.CommitMany(12);
  harness.deployment_->network()->Recover(down);
  harness.deployment_->node(0, 1)->Recover();
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.deployment_->node(0, 1)->log_size() == 12; },
      Seconds(60)));

  // With the node back, the unit tolerates losing a *different* node.
  harness.deployment_->network()->Crash({0, 2});
  harness.CommitMany(3);
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.deployment_->node(0, 1)->log_size() == 15; },
      Seconds(60)));
}

TEST(RecoveryTest, CrashDuringSnapshotTransferRestartsIdempotently) {
  // The recovering node goes down again *mid snapshot transfer* (snapshot
  // certificate received, log-sync replies still in flight). The partial
  // sync state must not poison the second recovery: the transfer restarts
  // from scratch — against a target that moved while the node was down —
  // and still installs a byte-for-byte copy.
  RecoveryHarness harness(/*checkpoint_interval=*/4);
  net::NodeId down{0, 3};
  harness.deployment_->network()->Crash(down);
  harness.CommitMany(20);
  harness.simulator_.RunFor(Seconds(1));
  ASSERT_GE(
      harness.deployment_->node(0, 0)->replica()->last_stable_checkpoint(),
      16u);

  // First recovery attempt: let the snapshot certificate and the first few
  // sync replies land, then yank the node again mid-transfer.
  harness.deployment_->network()->Recover(down);
  harness.deployment_->node(0, 3)->Recover();
  harness.simulator_.RunFor(sim::Microseconds(700));
  EXPECT_LT(harness.deployment_->node(0, 3)->log_size(), 20u)
      << "transfer already finished; crash no longer lands mid-transfer";
  harness.deployment_->network()->Crash(down);

  // The unit keeps committing while the straggler is down again, so the
  // restarted transfer chases a target past the one it first saw.
  harness.CommitMany(4);
  harness.simulator_.RunFor(Seconds(1));

  harness.deployment_->network()->Recover(down);
  harness.deployment_->node(0, 3)->Recover();
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.deployment_->node(0, 3)->log_size() == 24; },
      Seconds(60)));
  // Every entry matches a healthy node, byte for byte — no duplicated or
  // torn entries from the abandoned first transfer.
  const auto& healthy = harness.deployment_->node(0, 0)->log();
  const auto& recovered = harness.deployment_->node(0, 3)->log();
  ASSERT_EQ(healthy.size(), recovered.size());
  for (const auto& [pos, record] : healthy) {
    ASSERT_TRUE(recovered.count(pos) > 0) << "missing pos " << pos;
    EXPECT_EQ(recovered.at(pos).Encode(), record.Encode()) << "pos " << pos;
  }
  // And the node is a live voter again: the unit survives losing another.
  harness.deployment_->network()->Crash({0, 1});
  harness.CommitMany(3);
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.deployment_->node(0, 3)->log_size() == 27; },
      Seconds(60)));
}

TEST(RecoveryTest, ForgedSnapshotCertificateIsRejected) {
  // A byzantine peer offers a recovering node a snapshot far ahead of
  // reality, with an invalid certificate: the node must ignore it and
  // recover to the true state.
  RecoveryHarness harness(4);
  net::NodeId down{0, 3};
  harness.deployment_->network()->Crash(down);
  harness.CommitMany(20);
  harness.deployment_->network()->Recover(down);

  pbft::SnapshotMsg forged;
  forged.seq = 1000;
  forged.state_digest.fill(0xEE);
  crypto::Signature bogus;
  bogus.signer = {0, 0};
  forged.cert = {bogus, bogus, bogus};
  net::Message msg;
  msg.src = {0, 1};
  msg.dst = down;
  msg.type = pbft::kSnapshot;
  msg.set_body(forged.Encode());
  harness.deployment_->network()->Send(msg);

  harness.deployment_->node(0, 3)->Recover();
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.deployment_->node(0, 3)->log_size() == 20; },
      Seconds(60)));
  // The replica did not fast-forward past reality.
  EXPECT_EQ(harness.deployment_->node(0, 3)->replica()->last_executed(),
            20u);
}

TEST(RecoveryTest, PipelinedGeoCommitsCompleteInOrder) {
  // The participant serializes geo rounds; five queued commits must all
  // complete, in order, with consecutive geo stream positions.
  sim::Simulator simulator(57);
  BlockplaneOptions options;
  options.fg = 1;
  Deployment deployment(&simulator, Topology::Aws4(), options);
  std::vector<uint64_t> positions;
  for (int i = 0; i < 5; ++i) {
    deployment.participant(net::kCalifornia)
        ->LogCommit(ToBytes("geo-" + std::to_string(i)), 0,
                    [&](uint64_t pos) { positions.push_back(pos); });
  }
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return positions.size() == 5; }, Seconds(300)));
  for (size_t i = 1; i < positions.size(); ++i) {
    EXPECT_GT(positions[i], positions[i - 1]);
  }
  // The closest mirror holds all five, in stream order.
  simulator.RunFor(Seconds(3));
  BlockplaneNode* mirror =
      deployment.mirror_node(net::kOregon, net::kCalifornia, 0);
  ASSERT_EQ(mirror->log_size(), 5u);
  uint64_t expected_geo_pos = 1;
  for (auto& [pos, record] : mirror->log()) {
    EXPECT_EQ(record.geo_pos, expected_geo_pos++);
  }
}

TEST(RecoveryTest, SnapshotTransferPreservesReceptionState) {
  // The synced log rebuilds derived state: reception watermarks must be
  // correct so future receive verification still enforces the chain.
  sim::Simulator simulator(53);
  BlockplaneOptions options;
  options.checkpoint_interval = 4;
  Deployment deployment(&simulator, Topology::Aws4(), options);
  net::NodeId down{net::kOregon, 3};
  deployment.network()->Crash(down);

  // Ten messages California -> Oregon (each also forces commits at C).
  Participant* receiver = deployment.participant(net::kOregon);
  int received = 0;
  receiver->SetReceiveHandler(
      [&](net::SiteId, const Bytes&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    deployment.participant(net::kCalifornia)
        ->Send(net::kOregon, ToBytes("m" + std::to_string(i)), 0, nullptr);
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return received == 10; },
                                          Seconds(120)));

  deployment.network()->Recover(down);
  deployment.node(net::kOregon, 3)->Recover();
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] {
        return deployment.node(net::kOregon, 3)
                   ->last_received_pos(net::kCalifornia) ==
               deployment.node(net::kOregon, 0)
                   ->last_received_pos(net::kCalifornia);
      },
      Seconds(60)));
  // And an 11th message still flows end to end.
  deployment.participant(net::kCalifornia)
      ->Send(net::kOregon, ToBytes("m10"), 0, nullptr);
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return received == 11; },
                                          Seconds(120)));
}

}  // namespace
}  // namespace blockplane::core
