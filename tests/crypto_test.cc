// Unit tests for the crypto substrate: SHA-256 against FIPS vectors,
// HMAC-SHA256 against RFC 4231 vectors, and signature/proof semantics.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/metrics.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "sim/random.h"

namespace blockplane::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(DigestToHex(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  for (char c : msg) ctx.Update(std::string_view(&c, 1));
  EXPECT_EQ(ctx.Finish(), Sha256Digest(msg));
}

TEST(Sha256Test, ExactBlockBoundary) {
  std::string msg(64, 'x');
  std::string msg2(63, 'x');
  std::string msg3(65, 'x');
  EXPECT_NE(Sha256Digest(msg), Sha256Digest(msg2));
  EXPECT_NE(Sha256Digest(msg), Sha256Digest(msg3));
  // Streaming across the boundary agrees with one-shot.
  Sha256 ctx;
  ctx.Update(msg.substr(0, 40));
  ctx.Update(msg.substr(40));
  EXPECT_EQ(ctx.Finish(), Sha256Digest(msg));
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(DigestToHex(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  EXPECT_EQ(DigestToHex(HmacSha256(key, "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(DigestToHex(HmacSha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(SignerTest, SignVerifyRoundTrip) {
  KeyStore store;
  auto signer = store.RegisterNode({0, 1});
  Bytes msg = ToBytes("commit record 42");
  Signature sig = signer->Sign(msg);
  EXPECT_EQ(sig.signer, (net::NodeId{0, 1}));
  EXPECT_TRUE(store.Verify(msg, sig));
}

TEST(SignerTest, TamperedMessageFailsVerification) {
  KeyStore store;
  auto signer = store.RegisterNode({0, 1});
  Signature sig = signer->Sign(ToBytes("original"));
  EXPECT_FALSE(store.Verify(ToBytes("tampered"), sig));
}

TEST(SignerTest, SignatureNotTransferableBetweenNodes) {
  KeyStore store;
  auto signer1 = store.RegisterNode({0, 1});
  store.RegisterNode({0, 2});
  Bytes msg = ToBytes("msg");
  Signature sig = signer1->Sign(msg);
  // A byzantine node relabeling the signature as node 0-2's does not verify.
  sig.signer = {0, 2};
  EXPECT_FALSE(store.Verify(msg, sig));
}

TEST(SignerTest, UnknownSignerFailsVerification) {
  KeyStore store;
  Signature sig;
  sig.signer = {9, 9};
  EXPECT_FALSE(store.Verify(ToBytes("m"), sig));
}

TEST(SignerTest, RegisterIsIdempotent) {
  KeyStore store;
  auto a = store.RegisterNode({1, 0});
  auto b = store.RegisterNode({1, 0});
  Bytes msg = ToBytes("m");
  EXPECT_EQ(a->Sign(msg).mac, b->Sign(msg).mac);
}

TEST(ProofTest, ThresholdOfDistinctSigners) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  auto s1 = store.RegisterNode({0, 1});
  Bytes msg = ToBytes("transmission record");
  std::vector<Signature> proof = {s0->Sign(msg), s1->Sign(msg)};
  EXPECT_TRUE(store.VerifyProof(msg, proof, /*site=*/0, /*threshold=*/2));
  EXPECT_FALSE(store.VerifyProof(msg, proof, 0, 3));
}

TEST(ProofTest, DuplicateSignersDoNotCount) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  Bytes msg = ToBytes("m");
  std::vector<Signature> proof = {s0->Sign(msg), s0->Sign(msg),
                                  s0->Sign(msg)};
  EXPECT_FALSE(store.VerifyProof(msg, proof, 0, 2));
}

TEST(ProofTest, WrongSiteSignaturesIgnored) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  auto other = store.RegisterNode({1, 0});
  Bytes msg = ToBytes("m");
  std::vector<Signature> proof = {s0->Sign(msg), other->Sign(msg)};
  EXPECT_FALSE(store.VerifyProof(msg, proof, /*site=*/0, /*threshold=*/2));
  EXPECT_TRUE(store.VerifyProof(msg, proof, /*site=*/0, /*threshold=*/1));
}

TEST(ProofTest, InvalidSignaturesIgnored) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  store.RegisterNode({0, 1});
  Bytes msg = ToBytes("m");
  Signature forged;
  forged.signer = {0, 1};  // claims to be 0-1 but mac is zeroed
  std::vector<Signature> proof = {s0->Sign(msg), forged};
  EXPECT_FALSE(store.VerifyProof(msg, proof, 0, 2));
}

TEST(ProofCodecTest, RoundTrip) {
  KeyStore store;
  auto s0 = store.RegisterNode({2, 3});
  auto s1 = store.RegisterNode({2, 4});
  Bytes msg = ToBytes("payload");
  std::vector<Signature> proof = {s0->Sign(msg), s1->Sign(msg)};

  Encoder enc;
  EncodeProof(&enc, proof);
  Decoder dec(enc.buffer());
  std::vector<Signature> decoded;
  ASSERT_TRUE(DecodeProof(&dec, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], proof[0]);
  EXPECT_EQ(decoded[1], proof[1]);
  EXPECT_TRUE(store.VerifyProof(msg, decoded, 2, 2));
}

TEST(ProofCodecTest, OversizedProofRejected) {
  Encoder enc;
  enc.PutVarint(100000);
  Decoder dec(enc.buffer());
  std::vector<Signature> decoded;
  EXPECT_TRUE(DecodeProof(&dec, &decoded).IsCorruption());
}

// --- PrecomputedHmacKey equivalence (property test) --------------------------

Bytes RandomBytes(sim::Rng* rng, size_t len) {
  Bytes out(len);
  for (auto& b : out) b = static_cast<uint8_t>(rng->NextBelow(256));
  return out;
}

TEST(PrecomputedHmacKeyTest, MatchesReferenceForRandomKeysAndLengths) {
  // The midstate path must be bit-identical to the stateless reference for
  // every key length — shorter than, equal to, and longer than the 64-byte
  // block (long keys are pre-hashed per RFC 2104) — and every message
  // length across the SHA-256 padding boundaries.
  sim::Rng rng(20260806);
  const size_t key_lens[] = {0, 1, 16, 31, 32, 63, 64, 65, 100, 128, 257};
  for (size_t key_len : key_lens) {
    Bytes key = RandomBytes(&rng, key_len);
    PrecomputedHmacKey fast(key);
    const size_t msg_lens[] = {0,  1,  47,  48,  55,  56,  63,
                               64, 65, 119, 120, 127, 128, 1000};
    for (size_t msg_len : msg_lens) {
      Bytes msg = RandomBytes(&rng, msg_len);
      EXPECT_EQ(fast.Sign(msg), HmacSha256(key, msg))
          << "key_len=" << key_len << " msg_len=" << msg_len;
    }
  }
}

TEST(PrecomputedHmacKeyTest, RandomizedFuzzAgainstReference) {
  sim::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Bytes key = RandomBytes(&rng, rng.NextBelow(200));
    Bytes msg = RandomBytes(&rng, rng.NextBelow(500));
    PrecomputedHmacKey fast(key);
    ASSERT_EQ(fast.Sign(msg), HmacSha256(key, msg)) << "iteration " << i;
  }
}

TEST(PrecomputedHmacKeyTest, KeyIsReusableAcrossManySigns) {
  // Sign must not corrupt the cached midstates: the Nth signature equals
  // the 1st for identical input, and interleaved inputs don't cross-talk.
  sim::Rng rng(7);
  Bytes key = RandomBytes(&rng, 32);
  PrecomputedHmacKey fast(key);
  Bytes a = ToBytes("alpha");
  Bytes b = ToBytes("beta");
  Digest first_a = fast.Sign(a);
  Digest first_b = fast.Sign(b);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fast.Sign(a), first_a);
    EXPECT_EQ(fast.Sign(b), first_b);
  }
  EXPECT_NE(first_a, first_b);
}

TEST(PrecomputedHmacKeyTest, VerifyAcceptsGenuineRejectsTampered) {
  sim::Rng rng(13);
  Bytes key = RandomBytes(&rng, 64);
  PrecomputedHmacKey fast(key);
  Bytes msg = ToBytes("payload under test");
  Digest mac = fast.Sign(msg);
  EXPECT_TRUE(fast.Verify(msg, mac));
  Digest bad_mac = mac;
  bad_mac[0] ^= 0x01;
  EXPECT_FALSE(fast.Verify(msg, bad_mac));
  Bytes bad_msg = msg;
  bad_msg.back() ^= 0x01;
  EXPECT_FALSE(fast.Verify(bad_msg, mac));
}

// --- KeyStore verify-once cache ---------------------------------------------

TEST(VerifyCacheTest, RepeatedVerifyHitsCache) {
  KeyStore keys;
  auto signer = keys.RegisterNode({0, 0});
  Bytes msg = ToBytes("quorum certificate bytes");
  Signature sig = signer->Sign(msg);

  hotpath_stats().Reset();
  EXPECT_TRUE(keys.Verify(msg, sig));  // miss: full HMAC, then cached
  EXPECT_EQ(hotpath_stats().sig_cache_hits, 0);
  EXPECT_EQ(hotpath_stats().sig_cache_misses, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(keys.Verify(msg, sig));
  EXPECT_EQ(hotpath_stats().sig_cache_hits, 10);
  EXPECT_EQ(hotpath_stats().sig_cache_misses, 1);
  hotpath_stats().Reset();
}

TEST(VerifyCacheTest, ForgedSignaturesNeverHitTheCache) {
  // A cached success for (signer, mac, msg) must not leak acceptance to any
  // forgery: flipped mac, flipped msg, or a different claimed signer all
  // take (and fail) the full check, every time.
  KeyStore keys;
  auto signer = keys.RegisterNode({0, 0});
  keys.RegisterNode({0, 1});
  Bytes msg = ToBytes("transfer 100 coins");
  Signature sig = signer->Sign(msg);
  ASSERT_TRUE(keys.Verify(msg, sig));  // prime the cache

  Signature forged_mac = sig;
  forged_mac.mac[5] ^= 0xff;
  Bytes forged_msg = msg;
  forged_msg[0] ^= 0xff;
  Signature stolen = sig;  // genuine mac, wrong claimed signer
  stolen.signer = {0, 1};
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(keys.Verify(msg, forged_mac));
    EXPECT_FALSE(keys.Verify(forged_msg, sig));
    EXPECT_FALSE(keys.Verify(msg, stolen));
  }
  // The genuine triple still verifies after the forgery attempts.
  EXPECT_TRUE(keys.Verify(msg, sig));
}

TEST(VerifyCacheTest, DisabledCacheStillVerifiesCorrectly) {
  KeyStore keys;
  keys.set_verify_cache_capacity(0);
  auto signer = keys.RegisterNode({1, 2});
  Bytes msg = ToBytes("no cache");
  Signature sig = signer->Sign(msg);
  hotpath_stats().Reset();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(keys.Verify(msg, sig));
  EXPECT_EQ(hotpath_stats().sig_cache_hits, 0);
  Signature bad = sig;
  bad.mac[0] ^= 1;
  EXPECT_FALSE(keys.Verify(msg, bad));
  hotpath_stats().Reset();
}

TEST(VerifyCacheTest, CapacityIsBoundedUnderChurn) {
  // Flood far past capacity: correctness holds (evicted entries simply
  // re-verify) and the generations flip instead of growing unboundedly.
  KeyStore keys;
  keys.set_verify_cache_capacity(64);
  auto signer = keys.RegisterNode({2, 0});
  hotpath_stats().Reset();
  std::vector<std::pair<Bytes, Signature>> signed_msgs;
  for (int i = 0; i < 500; ++i) {
    Bytes msg = ToBytes("msg-" + std::to_string(i));
    Signature sig = signer->Sign(msg);
    signed_msgs.emplace_back(msg, sig);
    ASSERT_TRUE(keys.Verify(msg, sig));
  }
  EXPECT_GT(hotpath_stats().verify_cache_evictions, 0);
  // Every message still verifies — via cache or full HMAC alike.
  for (const auto& [msg, sig] : signed_msgs) {
    ASSERT_TRUE(keys.Verify(msg, sig));
  }
  hotpath_stats().Reset();
}

}  // namespace
}  // namespace blockplane::crypto
