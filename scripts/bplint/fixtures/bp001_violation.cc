// Fixture: BP001 — unordered-container iteration order escaping into
// order-sensitive sinks (wire encoding, JSON export, event scheduling).
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Encoder {
  void PutU64(unsigned long long v);
  void PutU32(unsigned v);
};

struct Simulator {
  void Schedule(long long delay_ns, int what);
};

class PeerTable {
 public:
  // Iteration order of an unordered_map escapes into the wire encoding:
  // two replicas encoding the same table can produce different bytes.
  void EncodePeers(Encoder* enc) const {
    for (const auto& [id, seq] : peers_) {
      enc->PutU32(id);
      enc->PutU64(seq);
    }
  }

  // JSON/metrics export with unordered key order: same-seed runs can
  // emit differently ordered documents.
  std::string ToJson() const {
    std::string out = "{";
    for (const auto& [id, seq] : peers_) {
      out.append(std::to_string(id));
    }
    out += "}";
    return out;
  }

  // Scheduling one event per element makes the event order (and thus
  // every downstream timestamp) depend on hash-table layout.
  void ScheduleRetries(Simulator* sim) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      sim->Schedule(1000, *it);
    }
  }

 private:
  std::unordered_map<unsigned, unsigned long long> peers_;
  std::unordered_set<int> pending_;
};
