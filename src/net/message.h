// The unit of communication between simulated nodes.
//
// Payloads are refcounted (`std::shared_ptr<const Bytes>`): a broadcast
// fan-out, a retransmission buffer, and the simulator's in-flight delivery
// closures all share ONE allocation instead of deep-copying the bytes per
// recipient / per retransmit. The bytes behind a PayloadPtr are immutable —
// anything that must mutate (e.g. fault-injected corruption) copies first.
#ifndef BLOCKPLANE_NET_MESSAGE_H_
#define BLOCKPLANE_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "net/node_id.h"

namespace blockplane::net {

/// Protocol-defined message type tag. Each protocol stack running on a node
/// owns the full space; the reliable transport reserves the top bit for its
/// control frames.
using MessageType = uint32_t;

/// Immutable, shared message payload.
using PayloadPtr = std::shared_ptr<const Bytes>;

/// Wraps an owned buffer into a shareable payload (one allocation; every
/// subsequent fan-out copy is a refcount bump).
inline PayloadPtr MakePayload(Bytes bytes) {
  return std::make_shared<const Bytes>(std::move(bytes));
}

/// The canonical empty payload (so Message::body() never dereferences null).
const Bytes& EmptyPayloadBytes();

struct Message {
  NodeId src;
  NodeId dst;
  MessageType type = 0;
  /// Shared payload; may be null, which reads as empty.
  PayloadPtr payload;

  /// Modeled on-wire size (payload + headers). Filled by the network layer
  /// when zero.
  uint64_t wire_bytes = 0;

  /// Causal trace id (common/trace.h) of the operation this message serves,
  /// or 0 when untraced. Simulator metadata, not wire bytes: it rides the
  /// Message struct the way wire_bytes does and never changes an encoding.
  uint64_t trace_id = 0;

  /// The payload bytes (empty if none). Read-only by construction.
  const Bytes& body() const { return payload ? *payload : EmptyPayloadBytes(); }

  /// Replaces the payload with a fresh single-owner buffer.
  void set_body(Bytes bytes) { payload = MakePayload(std::move(bytes)); }
};

}  // namespace blockplane::net

#endif  // BLOCKPLANE_NET_MESSAGE_H_
