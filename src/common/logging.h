// Minimal leveled logging. Off by default above WARNING so that benches and
// tests stay quiet; flip with Logger::SetLevel. A time source callback lets
// the simulator stamp log lines with virtual time.
#ifndef BLOCKPLANE_COMMON_LOGGING_H_
#define BLOCKPLANE_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace blockplane {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel level();
  /// Installs a callback that returns the current (virtual) time in
  /// nanoseconds for log-line prefixes. Pass nullptr to clear.
  static void SetTimeSource(std::function<int64_t()> now_ns);
  static void Write(LogLevel level, const std::string& msg);
};

namespace internal_logging {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace blockplane

#define BP_LOG(severity)                                                  \
  if (::blockplane::LogLevel::severity >= ::blockplane::Logger::level())  \
  ::blockplane::internal_logging::LogMessage(                             \
      ::blockplane::LogLevel::severity)

#endif  // BLOCKPLANE_COMMON_LOGGING_H_
