// A multi-decree Paxos node (proposer + acceptor + learner in one process),
// in the style of "Paxos Made Simple" [Lamport 2001] — the benign protocol
// the paper byzantizes in §VI-E and benchmarks in Fig. 7.
//
// Leader election: a node that suspects the leader (missed heartbeats) runs
// the prepare phase with a higher ballot; promises carry previously
// accepted values, which the new leader must re-propose (max-ballot rule).
// Replication: the leader sends accepts, commits on a majority of
// accepted-acks, and disseminates decisions with learn messages.
#ifndef BLOCKPLANE_PAXOS_NODE_H_
#define BLOCKPLANE_PAXOS_NODE_H_

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "net/network.h"
#include "paxos/message.h"

namespace blockplane::paxos {

struct PaxosConfig {
  std::vector<net::NodeId> nodes;
  sim::SimTime heartbeat_interval = sim::Milliseconds(50);
  /// Follower election timeout; multiplied by a per-node random factor to
  /// avoid duelling proposers.
  sim::SimTime election_timeout = sim::Milliseconds(400);

  int n() const { return static_cast<int>(nodes.size()); }
  int majority() const { return n() / 2 + 1; }
  int IndexOf(net::NodeId id) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == id) return static_cast<int>(i);
    }
    return -1;
  }
};

class PaxosNode : public net::Host {
 public:
  /// Called for every decided value, in slot order.
  using CommitCallback =
      std::function<void(uint64_t slot, const Bytes& value)>;

  PaxosNode(net::Network* network, PaxosConfig config, net::NodeId self,
            CommitCallback commit);
  BP_DISALLOW_COPY_AND_ASSIGN(PaxosNode);

  void RegisterWithNetwork();
  void HandleMessage(const net::Message& msg) override;

  /// Submits a value for replication. If this node is not the leader the
  /// value is forwarded to the current leader.
  void Submit(Bytes value);

  /// Forces this node to run the Leader Election routine now.
  void StartLeaderElection();

  bool IsLeader() const { return is_leader_; }
  Ballot current_ballot() const { return ballot_; }
  uint64_t last_committed() const { return last_committed_; }
  const std::map<uint64_t, Bytes>& decided_log() const { return decided_; }

  /// Starts the failure detector (call once after all nodes exist).
  /// Wide-area benches that pin a stable leader can skip this.
  void EnableFailureDetector();

 private:
  struct Proposal {
    Ballot ballot = 0;
    Bytes value;
    std::set<int> acks;
    bool noop_refill = false;  // re-proposal of an adopted value
  };

  void OnPrepare(const net::Message& msg);
  void OnPromise(const net::Message& msg);
  void OnAccept(const net::Message& msg);
  void OnAccepted(const net::Message& msg);
  void OnNack(const net::Message& msg);
  void OnLearn(const net::Message& msg);
  void OnHeartbeat(const net::Message& msg);
  void OnForward(const net::Message& msg);

  void ProposeNext();
  void SendAccept(uint64_t slot, Bytes value, bool refill);
  void ArmAcceptRetry(uint64_t slot, Ballot ballot);
  void Decide(uint64_t slot, Bytes value);
  void DeliverReady();
  void ResetElectionTimer();
  void SendHeartbeats();

  void Broadcast(net::MessageType type, const Bytes& payload);
  void SendTo(net::NodeId dst, net::MessageType type, Bytes payload);

  net::Network* network_;
  sim::Simulator* sim_;
  PaxosConfig config_;
  net::NodeId self_;
  int index_;
  CommitCallback commit_;
  sim::Rng rng_;

  // Acceptor state.
  Ballot promised_ = 0;
  std::map<uint64_t, AcceptedEntry> accepted_;  // slot -> (ballot, value)

  // Proposer state.
  bool is_leader_ = false;
  bool electing_ = false;
  Ballot ballot_ = 0;
  std::map<int, PromiseMsg> promises_;
  uint64_t next_slot_ = 1;
  std::map<uint64_t, Proposal> proposals_;  // in-flight accepts by slot
  std::deque<Bytes> pending_;
  bool replication_outstanding_ = false;

  // Learner state.
  std::map<uint64_t, Bytes> decided_;
  uint64_t last_committed_ = 0;

  // Failure detector.
  bool failure_detector_ = false;
  int leader_hint_ = 0;  // index of the believed leader
  sim::EventId election_timer_ = sim::kInvalidEventId;
  sim::EventId heartbeat_timer_ = sim::kInvalidEventId;
};

}  // namespace blockplane::paxos

#endif  // BLOCKPLANE_PAXOS_NODE_H_
