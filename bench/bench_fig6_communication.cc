// Figure 6: latency of communication between participants — a message
// through the send interface, received at the destination, with the
// receipt acknowledged back at the source — for every datacenter pair.
//
// Paper reference: C-O 23.4 ms; {C-V, O-V, V-I} 64-80 ms; {C-I, O-I}
// >135 ms. Overhead vs the raw RTT is 1-7% (23% for the close C-O pair).
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

double RunOne(net::SiteId src, net::SiteId dest) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.sign_messages = false;
  options.hash_payloads = false;
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              net_options);

  Bytes batch = bench::MakeBatch(1);
  Histogram latency_ms;
  core::BlockplaneNode* daemon_host = deployment.node(src, 0);
  constexpr int kWarmup = 3;
  constexpr int kMessages = 30;
  for (int i = 0; i < kWarmup + kMessages; ++i) {
    sim::SimTime start = simulator.Now();
    deployment.participant(src)->Send(dest, Bytes(batch), 0, nullptr);
    uint64_t target = static_cast<uint64_t>(i) + 1;
    // "Acknowledging the receipt of the message back at the source": the
    // daemon's ack watermark reaches this message once f_i+1 destination
    // nodes confirmed the committed reception.
    // Sends are the only records in this workload, so the i-th message is
    // the communication record at Local Log position i+1.
    simulator.RunUntilCondition(
        [&] { return daemon_host->daemon_acked(dest) >= target; },
        simulator.Now() + sim::Seconds(30));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader(
      "Figure 6: communication latency between participants (send -> "
      "receive -> ack)",
      "CO 23.4ms; CV/OV/VI 64-80ms; CI/OI >135ms; overhead vs RTT 1-7% "
      "(23% for CO)");
  net::Topology topo = net::Topology::Aws4();
  std::printf("%10s %14s %12s %14s\n", "pair", "latency (ms)", "RTT (ms)",
              "overhead");
  const std::pair<int, int> pairs[] = {
      {net::kCalifornia, net::kOregon},  {net::kCalifornia, net::kVirginia},
      {net::kCalifornia, net::kIreland}, {net::kOregon, net::kVirginia},
      {net::kOregon, net::kIreland},     {net::kVirginia, net::kIreland}};
  for (auto [a, b] : pairs) {
    double ms = RunOne(a, b);
    double rtt = sim::ToMillis(topo.Rtt(a, b));
    std::printf("%9.1s%1.1s %14.1f %12.1f %13.1f%%\n",
                topo.site_name(a).c_str(), topo.site_name(b).c_str(), ms,
                rtt, (ms - rtt) / rtt * 100.0);
  }
  return 0;
}
