// A geo-sharded, byzantized key-value store: each datacenter is the
// byzantine-masked system of record for its hash shard; writes for remote
// shards are forwarded as verified Blockplane messages.
//
//   $ ./global_kv
#include <cstdio>

#include "core/deployment.h"
#include "protocols/kv_store.h"

using namespace blockplane;

int main() {
  sim::Simulator simulator(17);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), {});
  protocols::KvStore kv(&deployment);
  net::Topology topo = net::Topology::Aws4();

  std::printf("Geo-sharded byzantized KV store over 4 datacenters\n\n");

  const char* keys[] = {"user:alice", "user:bob", "order:1001",
                        "order:1002", "cart:77", "session:abc"};
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    // Every write is issued from California; routing delivers it to the
    // key's shard owner.
    kv.Put(net::kCalifornia, keys[i], "value-" + std::to_string(i),
           [&](Status) { ++completed; });
  }
  simulator.RunUntilCondition(
      [&] {
        if (completed < 6) return false;
        for (int i = 0; i < 6; ++i) {
          std::string value;
          if (!kv.Get(keys[i], &value)) return false;
        }
        return true;
      },
      sim::Seconds(300));

  std::printf("%14s %12s %14s\n", "key", "value", "shard owner");
  bool ok = true;
  for (int i = 0; i < 6; ++i) {
    std::string value;
    bool found = kv.Get(keys[i], &value);
    ok = ok && found && value == "value-" + std::to_string(i);
    std::printf("%14s %12s %14s\n", keys[i],
                found ? value.c_str() : "<missing>",
                topo.site_name(kv.OwnerOf(keys[i])).c_str());
  }

  std::printf("\nwrites per shard:");
  for (int site = 0; site < 4; ++site) {
    std::printf(" %s=%lu", topo.site_name(site).c_str(),
                static_cast<unsigned long>(kv.writes_at(site)));
  }
  std::printf("\n\n%s (%.0f simulated ms)\n",
              ok ? "OK" : "UNEXPECTED STATE",
              sim::ToMillis(simulator.Now()));
  return ok ? 0 : 1;
}
