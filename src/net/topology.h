// Wide-area topology: sites (datacenters) and the round-trip times between
// them. The default topology is the paper's Table I — the four AWS regions
// California (C), Oregon (O), Virginia (V), and Ireland (I).
#ifndef BLOCKPLANE_NET_TOPOLOGY_H_
#define BLOCKPLANE_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status_or.h"
#include "sim/sim_time.h"

namespace blockplane::net {

class Topology {
 public:
  /// Builds a topology from a symmetric RTT matrix in milliseconds.
  /// rtt_ms must be square and match site_names, rtt_ms[i][j] must equal
  /// rtt_ms[j][i] >= 0, and rtt_ms[i][i] must be 0. Violations return
  /// InvalidArgument — operator-supplied matrices (config files, CLI
  /// flags) must not be able to abort a daemon. (An earlier revision
  /// validated with BP_CHECK in the constructor, which crashed the
  /// process on asymmetric/negative input while Parse() returned a
  /// Status for the same mistakes.)
  static StatusOr<Topology> Create(std::vector<std::string> site_names,
                                   std::vector<std::vector<double>> rtt_ms);

  /// The paper's Table I: C, O, V, I with RTTs 19–132 ms.
  /// Site order (and thus SiteId values): C=0, O=1, V=2, I=3.
  static Topology Aws4();

  /// A single-site topology (for local-commit experiments).
  static Topology SingleSite(const std::string& name = "local");

  /// Uniform n-site topology with the same RTT between every pair — handy
  /// for property tests.
  static Topology Uniform(int num_sites, double rtt_ms);

  /// Parses a topology spec of the form
  ///   "A,B,C; A-B:19 A-C:61 B-C:79"
  /// (site names, then RTTs in milliseconds for every pair). Every pair
  /// must appear exactly once.
  static StatusOr<Topology> Parse(const std::string& spec);

  int num_sites() const { return static_cast<int>(names_.size()); }
  const std::string& site_name(int site) const { return names_[site]; }

  /// Round-trip time between two sites (0 for a == b).
  sim::SimTime Rtt(int a, int b) const;

  /// One-way propagation delay between sites (Rtt/2).
  sim::SimTime OneWay(int a, int b) const { return Rtt(a, b) / 2; }

  /// Sites sorted by RTT from `from`, excluding `from` itself.
  std::vector<int> SitesByProximity(int from) const;

  /// RTT from `from` to its k-th closest other site (k >= 1).
  sim::SimTime RttToKthClosest(int from, int k) const;

 private:
  /// Trusts its input: all validation lives in Create().
  Topology(std::vector<std::string> site_names,
           std::vector<std::vector<double>> rtt_ms);

  std::vector<std::string> names_;
  std::vector<std::vector<sim::SimTime>> rtt_;
};

/// Site indices for Topology::Aws4().
enum Aws4Site : int {
  kCalifornia = 0,
  kOregon = 1,
  kVirginia = 2,
  kIreland = 3,
};

}  // namespace blockplane::net

#endif  // BLOCKPLANE_NET_TOPOLOGY_H_
