// Fixture: BP007 — mutable shared state on a Runner prologue path.
// Prologues run on ThreadPoolRunner worker threads, so any mutable
// static or un-mutexed namespace-scope variable they can reach is a
// data race (DESIGN.md section 12).

struct Runner {
  void RunPrologue(int job);
};

namespace frames {

int g_decode_count = 0;  // forbidden: un-mutexed global on a prologue path

int DecodeFrame(int frame) {
  static int frames_seen = 0;  // forbidden: mutable function-local static
  frames_seen++;
  g_decode_count++;
  return frame + frames_seen;
}

}  // namespace frames
