"""Structural facts bplint extracts from one C++ file.

Everything here is token-stream pattern matching over lexer.lex()
output. The extraction is intentionally conservative: rules only fire
on patterns the model recognized positively, so an unrecognized
construct degrades to silence, never to a false diagnostic.

Facts per file (see FileFacts):
  * enums (name, base, enumerators) and whether they are message-type
    enums (name ends in "MessageType" or the base mentions MessageType)
  * structs/classes with their data fields and method bodies (inline
    and, project-wide via Project, out-of-line `T::Method` definitions)
  * switch statements (subject tokens, case labels, default presence),
    parsed recursively so nested switches don't leak labels outward
  * iterations: range-for targets and `it = x.begin()` style loops,
    with their body token slices
  * unordered_map/unordered_set variable names (direct declarations
    and via `using Alias = std::unordered_...` aliases)
  * Tracer::Mark call sites and the kTracePhases catalog
  * CongestionGauge call sites and the kCongestionGaugeKeys catalog
  * `bplint:allow(...)` suppressions and `bplint:` file markers
  * identifier usage contexts used by BP004 (case labels, ==/!=
    comparisons)
  * function/method definitions (FunctionDef) with qualified-name
    resolution data: enclosing class (inline and out-of-line `T::M`),
    return type, parameter tokens, body, and the call sites inside the
    body (callee name + receiver + explicit `Cls::` qualifier) — the raw
    material callgraph.py links into the project-wide call graph
  * function declarations (prototypes) so return-type knowledge (BP008's
    Status/StatusOr set) covers functions declared in headers but
    defined in another translation unit
  * timer facts for BP010: Schedule/ScheduleAt sites (assigned handle or
    discarded result, plus the names called / handles assigned inside
    the scheduled lambda for self-rearm detection) and the identifiers
    appearing in Cancel(...) argument lists
  * prologue-context call roots for BP007: names called inside lambdas
    passed to RunPrologue (the returned epilogue — a lambda after
    `return` — is excluded: it retires on the submit thread) and inside
    lambdas pushed into BatchTask vectors in files that call RunBatch
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from lexer import Tok, lex

SUPPRESS_RE = re.compile(
    r"bplint:allow\(\s*(BP\d{3}(?:\s*,\s*BP\d{3})*)\s*\)\s*(.*)")
MARKER_RE = re.compile(r"bplint:([a-z][a-z0-9-]*)")


@dataclass
class Suppression:
    line: int
    rules: Tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class Enum:
    name: str
    base: str
    line: int
    enumerators: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def is_message_type(self) -> bool:
        return self.name.endswith("MessageType") or "MessageType" in self.base


@dataclass
class Field:
    name: str
    type_str: str
    line: int


@dataclass
class Struct:
    name: str
    line: int
    fields: List[Field] = field(default_factory=list)
    # method name -> list of body token slices (inline definitions).
    methods: Dict[str, List[List[Tok]]] = field(default_factory=dict)


@dataclass
class Switch:
    line: int
    subject: List[Tok]
    # (enumerator, line, qualifier-or-None); qualifier is the `Foo` in a
    # `case Foo::kBar:` label, used to resolve enumerator-name collisions.
    cases: List[Tuple[str, int, Optional[str]]] = field(default_factory=list)
    has_default: bool = False


@dataclass
class Iteration:
    line: int
    target: str  # final identifier of the iterated expression
    body: List[Tok] = field(default_factory=list)


@dataclass
class MarkCall:
    line: int
    phase: str


@dataclass
class CallSite:
    """One `name(...)` call inside a function body."""
    line: int
    name: str
    recv: Optional[str] = None  # `x` in `x.name(...)` / `x->name(...)`
    qual: Optional[str] = None  # `Cls` in `Cls::name(...)`


@dataclass
class FunctionDef:
    """A function or method definition (body present)."""
    path: str
    cls: Optional[str]  # enclosing/qualifying class; None for free fns
    name: str
    line: int
    ret: str  # return type as a space-joined token string ('' for ctors)
    params: List[Tok] = field(default_factory=list)
    body: List[Tok] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    lock_param: Optional[str] = None  # name of a unique_lock& parameter

    @property
    def qname(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass
class FnDecl:
    """A function declaration (prototype, no body)."""
    cls: Optional[str]
    name: str
    ret: str
    line: int


@dataclass
class ScheduleSite:
    """One Schedule/ScheduleAt call (BP010 timer hygiene)."""
    line: int
    handle: Optional[str]  # final identifier assigned, None if none
    discarded: bool  # True when the TimerId result is dropped outright
    lambda_calls: Set[str] = field(default_factory=set)
    lambda_assigns: Set[str] = field(default_factory=set)


@dataclass
class GaugeCall:
    line: int
    key: str


@dataclass
class FileFacts:
    path: str
    tokens: List[Tok] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    markers: Set[str] = field(default_factory=set)
    enums: List[Enum] = field(default_factory=list)
    structs: List[Struct] = field(default_factory=list)
    # (class, method) -> list of body token slices (out-of-line defs).
    out_of_line: Dict[Tuple[str, str], List[List[Tok]]] = field(
        default_factory=dict)
    switches: List[Switch] = field(default_factory=list)
    iterations: List[Iteration] = field(default_factory=list)
    unordered_vars: Set[str] = field(default_factory=set)
    mark_calls: List[MarkCall] = field(default_factory=list)
    trace_catalog: List[str] = field(default_factory=list)
    trace_catalog_line: int = 0
    gauge_calls: List[GaugeCall] = field(default_factory=list)
    gauge_catalog: List[str] = field(default_factory=list)
    gauge_catalog_line: int = 0
    string_literals: Set[str] = field(default_factory=set)
    case_idents: Set[str] = field(default_factory=set)
    cmp_idents: Set[str] = field(default_factory=set)
    fn_defs: List[FunctionDef] = field(default_factory=list)
    fn_decls: List[FnDecl] = field(default_factory=list)
    cancel_args: Set[str] = field(default_factory=set)
    prologue_roots: Set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# token scanning helpers
# ---------------------------------------------------------------------------

_OPEN = {"(": ")", "{": "}", "[": "]"}


def match_balanced(toks: Sequence[Tok], i: int) -> int:
    """toks[i] is an opener; returns index one past its matching closer."""
    opener = toks[i].text
    closer = _OPEN[opener]
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def match_template(toks: Sequence[Tok], i: int) -> int:
    """toks[i] is '<'; returns index one past the matching '>'.

    Treats '>>' as two closers. Gives up (returns i+1) on suspicious
    tokens so a stray less-than comparison can't eat the file.
    """
    depth = 0
    n = len(toks)
    j = i
    while j < n:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}"):
            return i + 1  # not a template argument list after all
        j += 1
    return n


# ---------------------------------------------------------------------------
# extraction passes
# ---------------------------------------------------------------------------

def _parse_enum(toks: List[Tok], i: int, facts: FileFacts) -> int:
    """toks[i].text == 'enum'. Returns index past the enum body."""
    n = len(toks)
    j = i + 1
    if j < n and toks[j].text in ("class", "struct"):
        j += 1
    if j >= n or toks[j].kind != "id":
        return i + 1  # anonymous enum: skip keyword only
    name = toks[j].text
    line = toks[j].line
    j += 1
    base = ""
    if j < n and toks[j].text == ":":
        k = j + 1
        base_toks = []
        while k < n and toks[k].text not in ("{", ";"):
            base_toks.append(toks[k].text)
            k += 1
        base = "".join(base_toks)
        j = k
    if j >= n or toks[j].text != "{":
        return j  # forward declaration
    end = match_balanced(toks, j)
    enum = Enum(name=name, base=base, line=line)
    k = j + 1
    expect_name = True
    while k < end - 1:
        t = toks[k]
        if expect_name and t.kind == "id":
            enum.enumerators.append((t.text, t.line))
            expect_name = False
        elif t.text == ",":
            expect_name = True
        elif t.text in ("(", "{", "["):
            k = match_balanced(toks, k)
            continue
        k += 1
    facts.enums.append(enum)
    return end


def _field_from_stmt(stmt: List[Tok]) -> Optional[Field]:
    """A struct-body statement with no '(': extract the declared field."""
    if not stmt:
        return None
    head = stmt[0].text
    if head in ("using", "typedef", "static", "friend", "public", "private",
                "protected", "template", "operator"):
        return None
    # Name = last identifier before '=', '{', '[' or end.
    last_id = None
    last_idx = -1
    for idx, t in enumerate(stmt):
        if t.text in ("=", "{", "["):
            break
        if t.kind == "id":
            last_id = t
            last_idx = idx
    if last_id is None or last_idx == 0:
        return None  # a lone type name is not a member declaration
    type_str = " ".join(t.text for t in stmt[:last_idx])
    return Field(name=last_id.text, type_str=type_str, line=last_id.line)


def _parse_struct(toks: List[Tok], i: int, facts: FileFacts) -> int:
    """toks[i].text in ('struct','class'). Returns index past the body."""
    n = len(toks)
    j = i + 1
    # Skip attributes / alignas.
    while j < n and toks[j].text == "[":
        j = match_balanced(toks, j)
    if j >= n or toks[j].kind != "id":
        return i + 1
    name = toks[j].text
    line = toks[j].line
    j += 1
    if j < n and toks[j].text == ":":  # base clause
        while j < n and toks[j].text not in ("{", ";"):
            j += 1
    if j >= n or toks[j].text != "{":
        return j  # forward declaration or variable of elaborated type
    end = match_balanced(toks, j)
    struct = Struct(name=name, line=line)
    k = j + 1
    while k < end - 1:
        t = toks[k]
        if t.kind == "id" and t.text in ("public", "private", "protected") \
                and k + 1 < end and toks[k + 1].text == ":":
            k += 2
            continue
        if t.kind == "id" and t.text == "enum":
            k = _parse_enum(toks, k, facts)
            # Consume a trailing ';' if present.
            if k < end and toks[k].text == ";":
                k += 1
            continue
        if t.kind == "id" and t.text in ("struct", "class"):
            k = _parse_struct(toks, k, facts)
            if k < end and toks[k].text == ";":
                k += 1
            continue
        if t.kind == "id" and t.text == "template":
            # Skip the parameter list, then let the next loop round
            # handle whatever is declared.
            k += 1
            if k < end and toks[k].text == "<":
                k = match_template(toks, k)
            continue
        # Scan one member declaration.
        stmt: List[Tok] = []
        saw_paren = False
        fn_name: Optional[str] = None
        m = k
        while m < end - 1:
            tm = toks[m]
            if tm.text == ";":
                m += 1
                break
            if tm.text == "(" and not saw_paren:
                saw_paren = True
                if stmt and stmt[-1].kind == "id":
                    fn_name = stmt[-1].text
                m = match_balanced(toks, m)
                # cv-qualifiers / noexcept / override between ')' and body.
                while m < end - 1 and toks[m].kind == "id" and \
                        toks[m].text in ("const", "noexcept", "override",
                                         "final"):
                    m += 1
                if m < end - 1 and toks[m].text == "=":
                    # `= default;` / `= delete;` / `= 0;`
                    while m < end - 1 and toks[m].text != ";":
                        m += 1
                    m += 1
                    break
                if m < end - 1 and toks[m].text == "{":
                    body_end = match_balanced(toks, m)
                    if fn_name:
                        struct.methods.setdefault(fn_name, []).append(
                            list(toks[m + 1:body_end - 1]))
                    m = body_end
                    break
                continue
            if tm.text == "{":
                m = match_balanced(toks, m)
                continue
            if tm.text == "[":
                m = match_balanced(toks, m)
                continue
            stmt.append(tm)
            m += 1
        if not saw_paren:
            fld = _field_from_stmt(stmt)
            if fld is not None:
                struct.fields.append(fld)
        k = max(m, k + 1)
    if struct.fields or struct.methods:
        facts.structs.append(struct)
    return end


def _parse_out_of_line(toks: List[Tok], facts: FileFacts) -> None:
    """Collects `Cls::Method(...) ... { body }` definitions."""
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].text == "(" and i >= 3 and toks[i - 1].kind == "id" \
                and toks[i - 2].text == "::" and toks[i - 3].kind == "id":
            cls = toks[i - 3].text
            method = toks[i - 1].text
            j = match_balanced(toks, i)
            while j < n and toks[j].kind == "id" and \
                    toks[j].text in ("const", "noexcept", "override", "final"):
                j += 1
            if j < n and toks[j].text == "{":
                end = match_balanced(toks, j)
                facts.out_of_line.setdefault((cls, method), []).append(
                    list(toks[j + 1:end - 1]))
                i = end
                continue
        i += 1


def _parse_switch_body(toks: List[Tok], start: int, end: int,
                       sw: Switch, facts: FileFacts) -> None:
    """Scans [start, end) for case labels; recurses into nested switches."""
    k = start
    while k < end:
        t = toks[k]
        if t.kind == "id" and t.text == "switch":
            k = _parse_switch(toks, k, facts)
            continue
        if t.kind == "id" and t.text == "case":
            label: List[Tok] = []
            m = k + 1
            while m < end and toks[m].text != ":":
                label.append(toks[m])
                m += 1
            label_id = None
            label_idx = -1
            for li, lt in enumerate(label):
                if lt.kind == "id":
                    label_id = lt  # last identifier wins (handles Foo::kBar)
                    label_idx = li
            if label_id is not None:
                qualifier = None
                if label_idx >= 2 and label[label_idx - 1].text == "::" and \
                        label[label_idx - 2].kind == "id":
                    qualifier = label[label_idx - 2].text
                sw.cases.append((label_id.text, label_id.line, qualifier))
                facts.case_idents.add(label_id.text)
            k = m + 1
            continue
        if t.kind == "id" and t.text == "default":
            sw.has_default = True
        k += 1


def _parse_switch(toks: List[Tok], i: int, facts: FileFacts) -> int:
    """toks[i].text == 'switch'. Returns index past the switch statement."""
    n = len(toks)
    j = i + 1
    if j >= n or toks[j].text != "(":
        return i + 1
    subj_end = match_balanced(toks, j)
    subject = list(toks[j + 1:subj_end - 1])
    k = subj_end
    if k >= n or toks[k].text != "{":
        return subj_end
    body_end = match_balanced(toks, k)
    sw = Switch(line=toks[i].line, subject=subject)
    _parse_switch_body(toks, k + 1, body_end - 1, sw, facts)
    facts.switches.append(sw)
    return body_end


def _final_ident(expr: Sequence[Tok]) -> Optional[str]:
    last = None
    for t in expr:
        if t.kind == "id":
            last = t.text
    return last


def _loop_body(toks: List[Tok], i: int) -> Tuple[List[Tok], int]:
    """toks[i] is the first token after a for(...) header."""
    n = len(toks)
    if i < n and toks[i].text == "{":
        end = match_balanced(toks, i)
        return list(toks[i + 1:end - 1]), end
    # Single statement body.
    j = i
    while j < n and toks[j].text != ";":
        if toks[j].text in _OPEN:
            j = match_balanced(toks, j)
            continue
        j += 1
    return list(toks[i:j]), j + 1


def _parse_iterations(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].kind == "id" and toks[i].text == "for" and i + 1 < n \
                and toks[i + 1].text == "(":
            hdr_end = match_balanced(toks, i + 1)
            header = toks[i + 2:hdr_end - 1]
            # Range-for: a top-level single ':' inside the header.
            colon = -1
            depth = 0
            for idx, t in enumerate(header):
                if t.text in _OPEN:
                    depth += 1
                elif t.text in (")", "}", "]"):
                    depth -= 1
                elif t.text == ":" and depth == 0:
                    colon = idx
                    break
            target: Optional[str] = None
            if colon >= 0:
                target = _final_ident(header[colon + 1:])
            else:
                # Classic loop over iterators: look for `X.begin()` /
                # `X->begin()` in the init clause.
                for idx in range(len(header) - 2):
                    if header[idx + 1].text in (".", "->") and \
                            header[idx + 2].text == "begin" and \
                            header[idx].kind == "id":
                        target = header[idx].text
                        break
            body, nxt = _loop_body(toks, hdr_end)
            if target is not None:
                facts.iterations.append(
                    Iteration(line=toks[i].line, target=target, body=body))
            i = hdr_end  # re-scan the body for nested loops
            continue
        i += 1


def _parse_unordered(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    aliases: Set[str] = set()
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in ("unordered_map", "unordered_set",
                                         "unordered_multimap",
                                         "unordered_multiset"):
            # Alias? `using Name = std::unordered_...<...>`
            back = i - 1
            while back >= 0 and toks[back].text in ("::", "std"):
                back -= 1
            if back >= 1 and toks[back].text == "=" and \
                    toks[back - 1].kind == "id" and back >= 2 and \
                    toks[back - 2].text == "using":
                aliases.add(toks[back - 1].text)
            j = i + 1
            if j < n and toks[j].text == "<":
                j = match_template(toks, j)
            # Skip ref/pointer/const between the type and the name.
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "id":
                facts.unordered_vars.add(toks[j].text)
            i = j
            continue
        i += 1
    # Second pass: variables declared with an alias type.
    if aliases:
        for i in range(n - 1):
            if toks[i].kind == "id" and toks[i].text in aliases and \
                    toks[i + 1].kind == "id":
                facts.unordered_vars.add(toks[i + 1].text)


def _parse_marks_and_catalog(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in ("Mark", "CongestionGauge") and \
                i + 1 < n and toks[i + 1].text == "(":
            end = match_balanced(toks, i + 1)
            args = toks[i + 2:end - 1]
            # Split at top-level commas; the phase/key is argument #2
            # (Mark(trace, phase, ...) / CongestionGauge(out, key, value)).
            depth = 0
            arg_idx = 0
            name: Optional[Tok] = None
            for a in args:
                if a.text in _OPEN:
                    depth += 1
                elif a.text in (")", "}", "]"):
                    depth -= 1
                elif a.text == "," and depth == 0:
                    arg_idx += 1
                    continue
                if arg_idx == 1 and a.kind == "str" and name is None:
                    name = a
            if name is not None:
                if t.text == "Mark":
                    facts.mark_calls.append(MarkCall(line=name.line,
                                                     phase=name.text))
                else:
                    facts.gauge_calls.append(GaugeCall(line=name.line,
                                                       key=name.text))
            i = end
            continue
        if t.kind == "id" and \
                t.text in ("kTracePhases", "kCongestionGaugeKeys"):
            # Only a *declaration* (`... kTracePhases[] = { ... }`) defines
            # the catalog: require an `=` before the brace so a use site
            # (e.g. a range-for over the catalog) doesn't swallow the
            # following block's string literals as catalog entries.
            j = i + 1
            saw_eq = False
            while j < n and toks[j].text not in ("{", ";"):
                if toks[j].text == "=":
                    saw_eq = True
                j += 1
            if j < n and toks[j].text == "{" and saw_eq:
                end = match_balanced(toks, j)
                entries = [a.text for a in toks[j + 1:end - 1]
                           if a.kind == "str"]
                if t.text == "kTracePhases":
                    facts.trace_catalog = entries
                    facts.trace_catalog_line = t.line
                else:
                    facts.gauge_catalog = entries
                    facts.gauge_catalog_line = t.line
                i = end
                continue
        i += 1


# ---------------------------------------------------------------------------
# function definitions / declarations and call sites
# ---------------------------------------------------------------------------

# Keywords that can directly precede a '(' without being a call or a
# function name. `operator` is included: overloaded operators are not
# interesting call-graph nodes for the rules bplint runs.
_NON_FN_IDS = {
    "if", "for", "while", "switch", "return", "co_return", "sizeof",
    "alignof", "decltype", "catch", "new", "delete", "throw", "do",
    "else", "case", "default", "operator", "assert", "defined",
    "static_assert", "alignas", "noexcept", "typeid",
}
# Statement heads a return-type walk-back must stop at.
_HEAD_STOP = {";", "{", "}", ":", ",", "(", ")"}
_RET_SKIP_HEADS = {"public", "private", "protected", "template", "typename",
                   "virtual", "explicit", "friend", "using"}


def _brace_kind(toks: Sequence[Tok], i: int) -> str:
    """Classifies the '{' at toks[i]: 'ns', 'type', or 'block'."""
    j = i - 1
    header: List[str] = []
    while j >= 0 and toks[j].text not in (";", "{", "}") and len(header) < 32:
        header.append(toks[j].text)
        j -= 1
    if "namespace" in header:
        return "ns"
    if {"struct", "class", "union", "enum"} & set(header) and \
            "=" not in header:
        return "type"
    return "block"


def _type_name_before(toks: Sequence[Tok], i: int) -> Optional[str]:
    """The declared name of the struct/class whose body opens at toks[i]."""
    j = i - 1
    while j >= 0 and toks[j].text not in (";", "{", "}") and i - j < 32:
        if toks[j].text in ("struct", "class", "union", "enum"):
            k = j + 1
            if k < i and toks[k].text in ("class", "struct"):
                k += 1
            while k < i and toks[k].text == "[":
                k = match_balanced(toks, k)
            if k < i and toks[k].kind == "id":
                return toks[k].text
            return None
        j -= 1
    return None


def _ret_type_before(toks: Sequence[Tok], end: int) -> str:
    """Return-type token texts ending just before index `end` (exclusive)."""
    parts: List[str] = []
    j = end - 1
    while j >= 0 and len(parts) < 12:
        t = toks[j]
        if t.text in _HEAD_STOP or t.text in _RET_SKIP_HEADS or \
                t.text == "=":
            break
        if t.text == ">":
            # Template argument list (e.g. StatusOr<T>): consume back to
            # the matching '<' so the template name lands in the type.
            depth = 1
            parts.append(t.text)
            j -= 1
            while j >= 0 and depth > 0:
                if toks[j].text == ">":
                    depth += 1
                elif toks[j].text == "<":
                    depth -= 1
                parts.append(toks[j].text)
                j -= 1
            continue
        parts.append(t.text)
        j -= 1
    drop = {"inline", "static", "constexpr", "extern", "virtual", "explicit"}
    parts = [p for p in parts if p not in drop]
    return " ".join(reversed(parts))


def _extract_calls(body: Sequence[Tok]) -> List[CallSite]:
    calls: List[CallSite] = []
    n = len(body)
    for i, t in enumerate(body):
        if t.kind != "id" or t.text in _NON_FN_IDS:
            continue
        if i + 1 >= n or body[i + 1].text != "(":
            continue
        recv: Optional[str] = None
        qual: Optional[str] = None
        if i >= 2 and body[i - 1].text == "::" and body[i - 2].kind == "id":
            qual = body[i - 2].text
        elif i >= 1 and body[i - 1].text in (".", "->"):
            if i >= 2 and body[i - 2].kind == "id":
                recv = body[i - 2].text
            else:
                recv = "?"  # chained off a call result / subscript
        calls.append(CallSite(line=t.line, name=t.text, recv=recv, qual=qual))
    return calls


def _lock_param_name(params: Sequence[Tok]) -> Optional[str]:
    """The name of a unique_lock& parameter, if the signature has one."""
    n = len(params)
    for i, t in enumerate(params):
        if t.kind == "id" and t.text == "unique_lock":
            j = i + 1
            if j < n and params[j].text == "<":
                j = match_template(params, j)
            while j < n and params[j].text in ("&", "*", "const"):
                j += 1
            if j < n and params[j].kind == "id":
                return params[j].text
    return None


def _parse_functions(toks: List[Tok], facts: FileFacts) -> None:
    """Collects every function/method definition and declaration.

    A single forward scan with a namespace/class context stack: function
    bodies are skipped wholesale once recorded, so call-looking tokens
    inside bodies can never masquerade as definitions."""
    n = len(toks)
    stack: List[Tuple[str, Optional[str]]] = []  # (kind, type name)
    i = 0
    while i < n:
        t = toks[i]
        if t.text == "{":
            kind = _brace_kind(toks, i)
            name = _type_name_before(toks, i) if kind == "type" else None
            stack.append((kind, name))
            i += 1
            continue
        if t.text == "}":
            if stack:
                stack.pop()
            i += 1
            continue
        if t.text == "(" and i >= 1 and toks[i - 1].kind == "id" and \
                toks[i - 1].text not in _NON_FN_IDS and \
                all(k != "block" for k, _ in stack):
            nxt = _try_function(toks, i, stack, facts)
            if nxt > i:
                i = nxt
                continue
        i += 1


def _try_function(toks: List[Tok], paren: int,
                  stack: List[Tuple[str, Optional[str]]],
                  facts: FileFacts) -> int:
    """toks[paren] == '(' preceded by an identifier at namespace/class
    scope. Returns the index to resume at (past the def/decl), or paren
    when this is not a function at all."""
    n = len(toks)
    name_idx = paren - 1
    name = toks[name_idx].text
    line = toks[name_idx].line
    cls: Optional[str] = None
    head_end = name_idx  # exclusive end of the return-type region
    p = name_idx - 1
    if p >= 0 and toks[p].text == "~":  # destructor: Cls::~Cls()
        name = "~" + name
        p -= 1
        head_end = p + 1
    if p >= 1 and toks[p].text == "::" and toks[p - 1].kind == "id":
        cls = toks[p - 1].text
        head_end = p - 1
    elif stack and stack[-1][0] == "type" and stack[-1][1]:
        cls = stack[-1][1]
    ret = _ret_type_before(toks, head_end)

    close = match_balanced(toks, paren)
    params = list(toks[paren + 1:close - 1])
    k = close
    while k < n and toks[k].kind == "id" and \
            toks[k].text in ("const", "noexcept", "override", "final",
                             "mutable", "try"):
        k += 1
    if k < n and toks[k].text == "->":  # trailing return type
        k += 1
        while k < n and toks[k].text not in ("{", ";"):
            if toks[k].text == "<":
                k = match_template(toks, k)
                continue
            k += 1
    if k < n and toks[k].text == "=":
        # `= default;` / `= delete;` / `= 0;` — declaration-like.
        while k < n and toks[k].text != ";":
            k += 1
        if ret or cls:
            facts.fn_decls.append(FnDecl(cls=cls, name=name, ret=ret,
                                         line=line))
        return k + 1
    if k < n and toks[k].text == ":":  # constructor initializer list
        k += 1
        while k < n and toks[k].text not in (";",):
            if toks[k].text in ("(", "["):
                k = match_balanced(toks, k)
                continue
            if toks[k].text == "{":
                if toks[k - 1].kind == "id":  # brace-init member
                    k = match_balanced(toks, k)
                    continue
                break  # the function body
            k += 1
    if k < n and toks[k].text == ";":
        # Prototype. Variable declarations with ctor arguments also land
        # here; they are harmless in the return-type index.
        if ret:
            facts.fn_decls.append(FnDecl(cls=cls, name=name, ret=ret,
                                         line=line))
        return k + 1
    if k >= n or toks[k].text != "{":
        return paren  # not a function after all (expression, macro, ...)
    body_end = match_balanced(toks, k)
    body = list(toks[k + 1:body_end - 1])
    fn = FunctionDef(path=facts.path, cls=cls, name=name, line=line,
                     ret=ret, params=params, body=body,
                     calls=_extract_calls(body),
                     lock_param=_lock_param_name(params))
    facts.fn_defs.append(fn)
    return body_end


# ---------------------------------------------------------------------------
# timer facts (BP010)
# ---------------------------------------------------------------------------

_SCHEDULE_NAMES = ("Schedule", "ScheduleAt")


def schedule_sites(body: Sequence[Tok]) -> List[ScheduleSite]:
    sites: List[ScheduleSite] = []
    n = len(body)
    i = 0
    while i < n:
        t = body[i]
        if t.kind != "id" or t.text not in _SCHEDULE_NAMES or \
                i + 1 >= n or body[i + 1].text != "(":
            i += 1
            continue
        end = match_balanced(body, i + 1)
        args = body[i + 2:end - 1]
        site = ScheduleSite(line=t.line, handle=None, discarded=True)
        for ci, ct in enumerate(args):
            if ct.kind == "id" and ci + 1 < len(args) and \
                    args[ci + 1].text == "(" and ct.text not in _NON_FN_IDS:
                site.lambda_calls.add(ct.text)
            if ct.text == "=" and ci >= 1 and args[ci - 1].kind == "id" and \
                    (ci + 1 >= len(args) or args[ci + 1].text != "="):
                site.lambda_assigns.add(args[ci - 1].text)
        # Walk backwards to find what happens to the returned TimerId.
        p = i - 1
        steps = 0
        while p >= 0 and steps < 48:
            tt = body[p].text
            if tt in (";", "{", "}"):
                break  # statement-position call: result dropped
            if tt in ("return", ",", "(") or tt == "co_return":
                site.discarded = False  # escapes to the caller / an arg
                break
            if tt == "=":
                site.discarded = False
                if p >= 1 and body[p - 1].kind == "id":
                    site.handle = body[p - 1].text
                break
            if tt == ")":
                depth = 1
                p -= 1
                while p >= 0 and depth > 0:
                    if body[p].text == ")":
                        depth += 1
                    elif body[p].text == "(":
                        depth -= 1
                    p -= 1
                steps += 1
                continue
            p -= 1
            steps += 1
        sites.append(site)
        i = end
    return sites


def _parse_cancels(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text == "Cancel" and i + 1 < n and \
                toks[i + 1].text == "(":
            end = match_balanced(toks, i + 1)
            for a in toks[i + 2:end - 1]:
                if a.kind == "id":
                    facts.cancel_args.add(a.text)
            i = end
            continue
        i += 1


# ---------------------------------------------------------------------------
# prologue-context roots (BP007 transitive scope)
# ---------------------------------------------------------------------------

def _lambda_body_span(toks: Sequence[Tok], i: int) -> Optional[Tuple[int, int]]:
    """toks[i] == '['. Returns the (start, end) token span of the lambda
    body when this really is a lambda, else None."""
    n = len(toks)
    j = match_balanced(toks, i)  # past the capture list
    if j < n and toks[j].text == "(":
        j = match_balanced(toks, j)
    while j < n and toks[j].kind == "id" and \
            toks[j].text in ("mutable", "noexcept", "constexpr"):
        j += 1
    if j < n and toks[j].text == "->":
        j += 1
        while j < n and toks[j].text not in ("{", ";", ")"):
            if toks[j].text == "<":
                j = match_template(toks, j)
                continue
            j += 1
    if j < n and toks[j].text == "{":
        return j + 1, match_balanced(toks, j) - 1
    return None


def _collect_worker_calls(toks: Sequence[Tok], start: int, end: int,
                          out: Set[str]) -> None:
    """Call names in [start, end), skipping lambdas that follow a
    `return`: a returned lambda is the epilogue, and epilogues retire on
    the submit thread (DESIGN.md section 12), not on workers."""
    i = start
    prev_id = ""
    while i < end:
        t = toks[i]
        if t.text == "[":
            span = _lambda_body_span(toks, i)
            if span is not None:
                lam_start, lam_end = span
                if prev_id != "return":
                    _collect_worker_calls(toks, lam_start, lam_end, out)
                i = lam_end + 1
                prev_id = ""
                continue
        if t.kind == "id":
            if t.text not in _NON_FN_IDS and i + 1 < end and \
                    toks[i + 1].text == "(":
                out.add(t.text)
            prev_id = t.text
        elif t.kind == "punct":
            prev_id = ""
        i += 1


def _parse_prologue_roots(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    mentions_runbatch = any(t.kind == "id" and t.text == "RunBatch"
                            for t in toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
            i += 1
            continue
        if t.text == "RunPrologue":
            end = match_balanced(toks, i + 1)
            _collect_worker_calls(toks, i + 2, end - 1,
                                  facts.prologue_roots)
            i = end
            continue
        if mentions_runbatch and t.text in ("push_back", "emplace_back"):
            end = match_balanced(toks, i + 1)
            region = toks[i + 2:end - 1]
            if any(a.text == "[" for a in region):
                _collect_worker_calls(toks, i + 2, end - 1,
                                      facts.prologue_roots)
            i = end
            continue
        i += 1


def _parse_usage_contexts(toks: List[Tok], facts: FileFacts) -> None:
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == "str":
            facts.string_literals.add(t.text)
        if t.kind == "id":
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            if prev in ("==", "!=") or nxt in ("==", "!="):
                facts.cmp_idents.add(t.text)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def analyze_file(path: str, text: str) -> FileFacts:
    toks, comments = lex(text)
    facts = FileFacts(path=path, tokens=toks)

    for line, comment in comments:
        m = SUPPRESS_RE.search(comment)
        if m:
            rules = tuple(r.strip() for r in m.group(1).split(","))
            facts.suppressions.append(
                Suppression(line=line, rules=rules, reason=m.group(2).strip()))
            continue
        for marker in MARKER_RE.findall(comment):
            if marker != "allow":
                facts.markers.add(marker)

    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text == "enum":
            i = _parse_enum(toks, i, facts)
            continue
        if t.kind == "id" and t.text in ("struct", "class"):
            nxt = _parse_struct(toks, i, facts)
            if nxt <= i:
                nxt = i + 1
            i = nxt
            continue
        i += 1

    _parse_out_of_line(toks, facts)

    i = 0
    while i < n:
        if toks[i].kind == "id" and toks[i].text == "switch":
            i = _parse_switch(toks, i, facts)
            continue
        i += 1

    _parse_iterations(toks, facts)
    _parse_unordered(toks, facts)
    _parse_marks_and_catalog(toks, facts)
    _parse_usage_contexts(toks, facts)
    _parse_functions(toks, facts)
    _parse_cancels(toks, facts)
    _parse_prologue_roots(toks, facts)
    return facts
