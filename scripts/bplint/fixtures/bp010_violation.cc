// Fixture: BP010 — timers in a file that manages cancellable timers
// (it calls Cancel somewhere) must each reach a Cancel or re-arm
// themselves; anything else is the Simulator Cancel-leak class.

struct Sim {
  unsigned long Schedule(long delay_ns, void (*fn)());
  void Cancel(unsigned long id);
};

struct Node {
  Sim* sim_;
  unsigned long election_timer_ = 0;
  unsigned long retry_timer_ = 0;

  void OnTimeout();

  void ArmRetry() {
    // forbidden: the handle is kept but nothing ever cancels it and
    // the callback never re-arms — a stale retry fires after teardown.
    retry_timer_ = sim_->Schedule(10, [this] { OnTimeout(); });
  }

  void ArmOrphan() {
    // forbidden: the handle is dropped outright, so this timer can
    // neither be cancelled nor re-armed.
    sim_->Schedule(5, [this] { OnTimeout(); });
  }

  void ArmElection() {
    election_timer_ = sim_->Schedule(20, [this] { OnTimeout(); });
  }

  void Stop() { sim_->Cancel(election_timer_); }
};
