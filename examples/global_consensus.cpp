// Global consensus byzantized with Blockplane (§VI-E): the paxos protocol
// of Algorithm 3, where every state change is log-committed and every
// cross-datacenter message travels through send/receive.
//
// The example elects a leader, replicates a few commands, and compares the
// observed replication latency against the benign paxos expectation (one
// RTT to the closest majority) — the core claim of Fig. 7: byzantine
// fault tolerance at nearly benign-protocol latency.
//
//   $ ./global_consensus
#include <cstdio>

#include "core/deployment.h"
#include "protocols/bp_paxos.h"

using namespace blockplane;

int main() {
  sim::Simulator simulator(42);
  core::BlockplaneOptions options;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options);
  protocols::BpPaxos paxos(&deployment);

  std::printf("Blockplane-paxos: byzantized global consensus over 4 "
              "datacenters\n\n");

  // Algorithm 3, Leader Election routine at Virginia.
  bool elected = false;
  paxos.LeaderElection(net::kVirginia, [&](bool won) { elected = won; });
  simulator.RunUntilCondition([&] { return elected; }, sim::Seconds(60));
  if (!elected) {
    std::printf("leader election failed\n");
    return 1;
  }
  std::printf("Virginia won the leader election (t=%.1f ms)\n\n",
              sim::ToMillis(simulator.Now()));

  // Algorithm 3, Replication routine: commit three commands.
  net::Topology topo = net::Topology::Aws4();
  double majority_rtt = sim::ToMillis(topo.RttToKthClosest(net::kVirginia, 2));
  for (int i = 0; i < 3; ++i) {
    bool committed = false;
    sim::SimTime start = simulator.Now();
    paxos.Replicate(net::kVirginia,
                    ToBytes("command-" + std::to_string(i)),
                    [&](bool ok) { committed = ok; });
    simulator.RunUntilCondition([&] { return committed; }, sim::Seconds(60));
    double ms = sim::ToMillis(simulator.Now() - start);
    std::printf("replicated command-%d in %.1f ms "
                "(benign paxos needs ~%.0f ms; overhead %.0f%%)\n",
                i, ms, majority_rtt, (ms - majority_rtt) / majority_rtt * 100);
  }

  // Decisions disseminate to every participant.
  simulator.RunUntilCondition(
      [&] {
        for (int site = 0; site < 4; ++site) {
          if (paxos.decided(site).size() != 3) return false;
        }
        return true;
      },
      sim::Seconds(120));

  std::printf("\ndecided log at each participant:\n");
  for (int site = 0; site < 4; ++site) {
    std::printf("  %-10s :", topo.site_name(site).c_str());
    for (const auto& [slot, value] : paxos.decided(site)) {
      std::printf(" [%lu]=%s", static_cast<unsigned long>(slot),
                  ToString(value).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nOK\n");
  return 0;
}
