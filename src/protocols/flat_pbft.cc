#include "protocols/flat_pbft.h"

namespace blockplane::protocols {

FlatPbft::FlatPbft(net::Network* network, crypto::KeyStore* keys,
                   net::SiteId leader_site, bool sign_messages) {
  const int num_sites = network->topology().num_sites();
  BP_CHECK_MSG((num_sites - 1) % 3 == 0,
               "flat PBFT needs n = 3f+1 sites");

  pbft::PbftConfig config;
  config.f = (num_sites - 1) / 3;
  // Order the replica list so the desired site leads view 0.
  for (int i = 0; i < num_sites; ++i) {
    config.nodes.push_back(net::NodeId{(leader_site + i) % num_sites, 0});
  }
  config.sign_messages = sign_messages;
  // Wide-area deployment: timeouts must exceed WAN round trips.
  config.view_timeout = sim::Milliseconds(1500);
  config.client_retry = sim::Milliseconds(3000);

  for (int i = 0; i < num_sites; ++i) {
    net::NodeId self{i, 0};
    auto replica = std::make_unique<pbft::PbftReplica>(
        network, keys, config, self, nullptr);
    replica->RegisterWithNetwork();
    replicas_.push_back(std::move(replica));
  }
  client_ = std::make_unique<pbft::PbftClient>(
      network, config, net::NodeId{leader_site, 900});
}

void FlatPbft::Commit(Bytes value, pbft::PbftClient::DoneCallback done) {
  client_->Submit(std::move(value), std::move(done));
}

}  // namespace blockplane::protocols
