// Fixture: BP009 — Send reachable while a lock is held, both directly
// and through a project helper (the interprocedural part: Relay itself
// takes no lock, but calling it under one drags Send into the scope).

struct Transport {
  void Send(int bytes);
};

struct Session {
  std::mutex mu_;
  Transport* net_;

  void Relay(int m) { net_->Send(m); }

  void Flush(int m) {
    std::lock_guard<std::mutex> lock(mu_);
    net_->Send(m);  // forbidden: direct Send under the lock
    Relay(m);       // forbidden: Relay -> Send, still under the lock
  }
};
