// Structured round-trip property tests: randomly generated Local Log
// records and transmission records (with proofs) must encode/decode to
// exactly equal values, and content digests must be stable under
// re-encoding and sensitive to every identity field.
#include <gtest/gtest.h>

#include "core/blockplane.h"
#include "sim/random.h"

namespace blockplane::core {
namespace {

using sim::Rng;

Bytes RandomPayload(Rng& rng, size_t max_len) {
  Bytes out(rng.NextBelow(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextU64());
  return out;
}

crypto::Signature RandomSig(Rng& rng) {
  crypto::Signature sig;
  sig.signer = {static_cast<int32_t>(rng.NextBelow(4)),
                static_cast<int32_t>(rng.NextBelow(2000))};
  for (auto& b : sig.mac) b = static_cast<uint8_t>(rng.NextU64());
  return sig;
}

LogRecord RandomRecord(Rng& rng) {
  LogRecord record;
  record.type = static_cast<RecordType>(1 + rng.NextBelow(4));
  record.routine_id = rng.NextBelow(100);
  record.payload = RandomPayload(rng, 200);
  record.dest_site = static_cast<net::SiteId>(rng.NextBelow(4));
  record.src_site = static_cast<net::SiteId>(rng.NextBelow(4));
  record.src_log_pos = rng.NextBelow(1000);
  record.prev_src_log_pos = rng.NextBelow(1000);
  record.geo_pos = rng.NextBelow(1000);
  for (uint64_t i = 0; i < rng.NextBelow(4); ++i) {
    record.proof.push_back(RandomSig(rng));
  }
  for (uint64_t i = 0; i < rng.NextBelow(4); ++i) {
    record.geo_proof.push_back(RandomSig(rng));
  }
  return record;
}

bool RecordsEqual(const LogRecord& a, const LogRecord& b) {
  return a.type == b.type && a.routine_id == b.routine_id &&
         a.payload == b.payload && a.dest_site == b.dest_site &&
         a.src_site == b.src_site && a.src_log_pos == b.src_log_pos &&
         a.prev_src_log_pos == b.prev_src_log_pos && a.geo_pos == b.geo_pos &&
         a.proof == b.proof && a.geo_proof == b.geo_proof;
}

class RecordRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RecordRoundTripTest, LogRecordsRoundTripExactly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0xabcdef);
  for (int i = 0; i < 200; ++i) {
    LogRecord record = RandomRecord(rng);
    LogRecord decoded;
    ASSERT_TRUE(LogRecord::Decode(record.Encode(), &decoded).ok());
    EXPECT_TRUE(RecordsEqual(record, decoded));
    // Digest stability: re-encoding the decoded record preserves identity.
    EXPECT_EQ(record.ContentDigest(), decoded.ContentDigest());
    EXPECT_EQ(record.Encode(), decoded.Encode());
  }
}

TEST_P(RecordRoundTripTest, TransmissionRecordsRoundTripExactly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0x13579b);
  for (int i = 0; i < 200; ++i) {
    TransmissionRecord tr;
    tr.src_site = static_cast<net::SiteId>(rng.NextBelow(4));
    tr.dest_site = static_cast<net::SiteId>(rng.NextBelow(4));
    tr.src_log_pos = rng.NextBelow(1000);
    tr.prev_src_log_pos = rng.NextBelow(1000);
    tr.routine_id = rng.NextBelow(100);
    tr.payload = RandomPayload(rng, 200);
    tr.geo_pos = rng.NextBelow(1000);
    for (uint64_t s = 0; s < 1 + rng.NextBelow(3); ++s) {
      tr.sigs.push_back(RandomSig(rng));
    }
    TransmissionRecord decoded;
    ASSERT_TRUE(TransmissionRecord::Decode(tr.Encode(), &decoded).ok());
    EXPECT_EQ(tr.Encode(), decoded.Encode());
    // The transmission's digest equals its received-record form's digest —
    // the invariant source attestations and receive verification share.
    EXPECT_EQ(tr.ContentDigest(),
              decoded.ToReceivedRecord().ContentDigest());
  }
}

TEST_P(RecordRoundTripTest, DigestSensitiveToEveryIdentityField) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0x2468a);
  LogRecord base = RandomRecord(rng);
  crypto::Digest original = base.ContentDigest();

  LogRecord mutated = base;
  mutated.routine_id += 1;
  EXPECT_NE(mutated.ContentDigest(), original);

  mutated = base;
  mutated.payload.push_back(0x01);
  EXPECT_NE(mutated.ContentDigest(), original);

  mutated = base;
  mutated.src_log_pos += 1;
  EXPECT_NE(mutated.ContentDigest(), original);

  mutated = base;
  mutated.prev_src_log_pos += 1;
  EXPECT_NE(mutated.ContentDigest(), original);

  mutated = base;
  mutated.geo_pos += 1;
  EXPECT_NE(mutated.ContentDigest(), original);

  // ...but NOT to the proofs, which vary by which nodes happened to sign.
  mutated = base;
  mutated.proof.push_back(RandomSig(rng));
  EXPECT_EQ(mutated.ContentDigest(), original);
}

TEST_P(RecordRoundTripTest, AttestCanonicalSeparatesPurposes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0x777);
  crypto::Digest digest;
  for (auto& b : digest) b = static_cast<uint8_t>(rng.NextU64());
  uint64_t pos = rng.NextBelow(1000);
  net::SiteId site = static_cast<net::SiteId>(rng.NextBelow(4));

  Bytes tx = AttestCanonical(AttestPurpose::kTransmission, site, pos, digest);
  Bytes geo = AttestCanonical(AttestPurpose::kGeoSource, site, pos, digest);
  Bytes ack = AttestCanonical(AttestPurpose::kGeoAck, site, pos, digest);
  EXPECT_NE(tx, geo);
  EXPECT_NE(geo, ack);
  EXPECT_NE(tx, ack);
  // And separates sites and positions.
  EXPECT_NE(tx, AttestCanonical(AttestPurpose::kTransmission,
                                (site + 1) % 4, pos, digest));
  EXPECT_NE(tx, AttestCanonical(AttestPurpose::kTransmission, site, pos + 1,
                                digest));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordRoundTripTest,
                         ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace blockplane::core
