// Adversarial end-to-end tests: the byzantine behaviours of §VII's lemmas
// driven against the full Blockplane stack, plus a randomized crash/recover
// soak over the counter protocol.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/deployment.h"
#include "pbft/client.h"
#include "pbft/message.h"
#include "protocols/bank.h"
#include "protocols/counter.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::kCalifornia;
using net::kIreland;
using net::kOregon;
using net::kVirginia;
using net::Topology;
using sim::Seconds;

TEST(ByzantineEndToEndTest, EquivocatingUnitLeaderIsDethroned) {
  // Lemma 1: honest nodes of a participant agree on every Local Log entry
  // even when the unit's PBFT leader equivocates.
  sim::Simulator simulator(31);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  deployment.node(kCalifornia, 0)
      ->SetByzantineMode(pbft::ByzantineMode::kEquivocate);

  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    deployment.participant(kCalifornia)
        ->LogCommit(ToBytes("v" + std::to_string(i)), 0,
                    [&](uint64_t) { ++completed; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return completed == 5; },
                                          Seconds(120)));
  simulator.RunFor(Seconds(2));
  // All honest nodes hold identical logs.
  const auto& reference = deployment.node(kCalifornia, 1)->log();
  for (int i = 2; i < 4; ++i) {
    const auto& log = deployment.node(kCalifornia, i)->log();
    ASSERT_EQ(log.size(), reference.size()) << "node " << i;
    for (const auto& [pos, record] : reference) {
      EXPECT_EQ(log.at(pos).payload, record.payload);
    }
  }
  // Note: with a 3-vs-1 split the majority value still commits and the
  // odd node catches up via state transfer, so the equivocator may keep
  // the lead — what matters (and is asserted above) is that no two honest
  // nodes ever diverge.
}

TEST(ByzantineEndToEndTest, LyingStatusRepliesCannotSuppressReserve) {
  // §IV-C: a faulty destination node reporting a huge reception watermark
  // must not convince the reserve that everything was delivered. The
  // reserve takes the (f_i+1)-th largest reply: one liar is outvoted.
  sim::Simulator simulator(33);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  deployment.node(kCalifornia, 0)->MuteDaemons();      // malicious daemon
  deployment.node(kVirginia, 0)->LieAboutReception();  // accomplice

  deployment.participant(kCalifornia)
      ->Send(kVirginia, ToBytes("must arrive"), 0, nullptr);
  Participant* receiver = deployment.participant(kVirginia);
  Bytes payload;
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &payload); },
      Seconds(60)));
  EXPECT_EQ(ToString(payload), "must arrive");
}

TEST(ByzantineEndToEndTest, DoubleDaemonFailureStillDelivers) {
  // Both the active daemon and the first reserve go mute; the second
  // reserve (nodes 1..f_i+1 hold reserves) must still take over.
  sim::Simulator simulator(43);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  deployment.node(kCalifornia, 0)->MuteDaemons();
  deployment.node(kCalifornia, 1)->MuteDaemons();

  deployment.participant(kCalifornia)
      ->Send(kVirginia, ToBytes("twice unlucky"), 0, nullptr);
  Participant* receiver = deployment.participant(kVirginia);
  Bytes payload;
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &payload); },
      Seconds(120)));
  EXPECT_EQ(ToString(payload), "twice unlucky");
}

TEST(ByzantineEndToEndTest, TwoMixedByzantineNodesUnderF2) {
  // f_i = 2: one silent node AND one bogus-voter in the same unit, plus a
  // read liar — the 7-node unit absorbs all of it.
  sim::Simulator simulator(45);
  BlockplaneOptions options;
  options.fi = 2;
  Deployment deployment(&simulator, Topology::Aws4(), options);
  deployment.node(kCalifornia, 5)
      ->SetByzantineMode(pbft::ByzantineMode::kSilent);
  deployment.node(kCalifornia, 6)
      ->SetByzantineMode(pbft::ByzantineMode::kBogusVotes);
  deployment.node(kCalifornia, 6)->RefuseAttestations();
  deployment.node(kCalifornia, 6)->LieOnReads();

  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    deployment.participant(kCalifornia)
        ->LogCommit(ToBytes("v" + std::to_string(i)), 0,
                    [&](uint64_t) { ++completed; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return completed == 5; },
                                          Seconds(120)));
  // Cross-site traffic also survives (attestations need f_i+1 = 3 of 7).
  deployment.participant(kCalifornia)
      ->Send(kOregon, ToBytes("from the f2 unit"), 0, nullptr);
  Participant* receiver = deployment.participant(kOregon);
  Bytes payload;
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &payload); },
      Seconds(120)));
  // Honest nodes agree.
  simulator.RunFor(Seconds(2));
  const auto& reference = deployment.node(kCalifornia, 0)->log();
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(deployment.node(kCalifornia, i)->log().size(),
              reference.size());
  }
}

TEST(ByzantineEndToEndTest, OutOfOrderTransmissionIsRejected) {
  // Lemma 2's ordering half: a transmission whose chain pointer skips an
  // earlier message is refused, so messages cannot be maliciously dropped
  // or reordered by a daemon.
  sim::Simulator simulator(35);
  BlockplaneOptions options;
  options.sign_messages = false;  // isolates the ordering check
  Deployment deployment(&simulator, Topology::Aws4(), options);

  TransmissionRecord skipping;
  skipping.src_site = kCalifornia;
  skipping.dest_site = kOregon;
  skipping.src_log_pos = 7;       // claims to be the 7th record...
  skipping.prev_src_log_pos = 5;  // ...chained after an undelivered 5th
  skipping.payload = ToBytes("out of order");
  net::Message msg;
  msg.src = {kCalifornia, 0};
  msg.dst = {kOregon, 0};
  msg.type = kTransmission;
  msg.set_body(skipping.Encode());
  deployment.network()->Send(msg);

  simulator.RunFor(Seconds(5));
  Bytes payload;
  EXPECT_FALSE(
      deployment.participant(kOregon)->TryReceive(kCalifornia, &payload));
  EXPECT_EQ(deployment.node(kOregon, 0)->log_size(), 0u);
}

TEST(ByzantineEndToEndTest, ForgedGeoAcksCannotFakeGlobalCommit) {
  // §V: with both mirrors down, a commit cannot complete — injected fake
  // geo-acks (wrong signatures) must not count as mirror proofs.
  sim::Simulator simulator(37);
  BlockplaneOptions options;
  options.fg = 1;
  Deployment deployment(&simulator, Topology::Aws4(), options);
  deployment.network()->CrashSite(kOregon);
  deployment.network()->CrashSite(kVirginia);  // both of California's mirrors

  bool committed = false;
  deployment.participant(kCalifornia)
      ->LogCommit(ToBytes("doomed"), 0, [&](uint64_t) { committed = true; });

  // An attacker sprays forged acks at the participant.
  simulator.Schedule(sim::Milliseconds(50), [&] {
    for (int i = 0; i < 4; ++i) {
      GeoAckMsg forged;
      forged.geo_pos = 1;
      forged.sig.signer = MirrorNodeId(kOregon, kCalifornia, i);
      net::Message msg;
      msg.src = forged.sig.signer;
      msg.dst = ParticipantNodeId(kCalifornia);
      msg.type = kGeoAck;
      msg.set_body(forged.Encode());
      // Bypass the site crash by sending from a live node id.
      msg.src = net::NodeId{kIreland, 0};
      deployment.network()->Send(msg);
    }
  });
  EXPECT_FALSE(
      simulator.RunUntilCondition([&] { return committed; }, Seconds(5)));
}

TEST(ByzantineEndToEndTest, ReplayedWireCannotDoubleCredit) {
  // A byzantine daemon replaying a committed wire must not mint money.
  sim::Simulator simulator(39);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  protocols::BankLedger bank(&deployment);

  bool funded = false;
  bank.Deposit(kCalifornia, "alice", 100, [&](Status) { funded = true; });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return funded; }, Seconds(30)));
  bank.Wire(kCalifornia, "alice", kIreland, "seamus", 60, nullptr);
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return bank.Balance(kIreland, "seamus") == 60; }, Seconds(120)));

  // Replay the wire's committed received-record content as a fresh
  // transmission at every Ireland node.
  const auto& log = deployment.node(kIreland, 0)->log();
  const LogRecord* wire = nullptr;
  for (const auto& [pos, record] : log) {
    if (record.type == RecordType::kReceived) wire = &record;
  }
  ASSERT_NE(wire, nullptr);
  TransmissionRecord replay;
  replay.src_site = wire->src_site;
  replay.dest_site = kIreland;
  replay.src_log_pos = wire->src_log_pos;
  replay.prev_src_log_pos = wire->prev_src_log_pos;
  replay.routine_id = wire->routine_id;
  replay.payload = wire->payload;
  replay.sigs = wire->proof;  // genuine signatures, replayed
  for (int i = 0; i < 4; ++i) {
    net::Message msg;
    msg.src = {kCalifornia, 3};
    msg.dst = {kIreland, i};
    msg.type = kTransmission;
    msg.set_body(replay.Encode());
    deployment.network()->Send(msg);
  }
  simulator.RunFor(Seconds(5));
  EXPECT_EQ(bank.Balance(kIreland, "seamus"), 60);  // not 120
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bank.NodeBalance(kIreland, i, "seamus"), 60);
  }
}

TEST(ByzantineEndToEndTest, ForgedTransmissionRejectedAfterCachesArePrimed) {
  // The verify-once cache memoizes *successful* (signer, mac, message)
  // triples only. After genuine traffic has filled it hot, a forged
  // transmission that reuses genuine signatures over DIFFERENT content
  // must still take — and fail — the full HMAC check: no cache entry can
  // vouch for bytes it never verified.
  sim::Simulator simulator(43);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  protocols::BankLedger bank(&deployment);

  hotpath_stats().Reset();
  bool funded = false;
  bank.Deposit(kCalifornia, "alice", 100, [&](Status) { funded = true; });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return funded; }, Seconds(30)));
  bank.Wire(kCalifornia, "alice", kIreland, "seamus", 40, nullptr);
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return bank.Balance(kIreland, "seamus") == 40; }, Seconds(120)));
  // The deployment's verify-once cache is demonstrably hot.
  ASSERT_GT(hotpath_stats().sig_cache_hits, 0);

  // Forge the "next" transmission in the chain: correct chain pointers,
  // genuine (cached-as-valid) signatures — but content they never signed.
  const auto& log = deployment.node(kIreland, 0)->log();
  const LogRecord* wire = nullptr;
  for (const auto& [pos, record] : log) {
    if (record.type == RecordType::kReceived) wire = &record;
  }
  ASSERT_NE(wire, nullptr);
  TransmissionRecord forged;
  forged.src_site = kCalifornia;
  forged.dest_site = kIreland;
  forged.src_log_pos = wire->src_log_pos + 1;
  forged.prev_src_log_pos = wire->src_log_pos;
  forged.routine_id = wire->routine_id;
  forged.payload = ToBytes("forged credit of 1000 coins");
  forged.sigs = wire->proof;  // genuine signatures over other bytes
  for (int i = 0; i < 4; ++i) {
    net::Message msg;
    msg.src = {kCalifornia, 3};
    msg.dst = {kIreland, i};
    msg.type = kTransmission;
    msg.set_body(forged.Encode());
    deployment.network()->Send(msg);
  }
  simulator.RunFor(Seconds(5));
  EXPECT_EQ(bank.Balance(kIreland, "seamus"), 40);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bank.NodeBalance(kIreland, i, "seamus"), 40);
  }
  hotpath_stats().Reset();
}

TEST(ByzantineEndToEndTest, ForgedCertCannotVouchForNewContent) {
  // The quorum-cert analogue of the primed-cache forgery (DESIGN.md §14):
  // with qc.enabled, transmissions carry one compact certificate instead
  // of f_i+1 signatures, and the KeyStore memoizes *successfully verified*
  // (cert, message) pairs. A byzantine daemon that replays a genuine
  // certificate under different content must take — and fail — the full
  // aggregate recomputation: the cache key binds the canonical bytes, so
  // no cached entry can vouch for bytes it never certified.
  sim::Simulator simulator(47);
  BlockplaneOptions options;
  options.qc.enabled = true;
  Deployment deployment(&simulator, Topology::Aws4(), options);
  protocols::BankLedger bank(&deployment);

  qc_stats().Reset();
  bool funded = false;
  bank.Deposit(kCalifornia, "alice", 100, [&](Status) { funded = true; });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return funded; }, Seconds(30)));
  bank.Wire(kCalifornia, "alice", kIreland, "seamus", 40, nullptr);
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return bank.Balance(kIreland, "seamus") == 40; }, Seconds(120)));
  // The wire rode the cert path and the cert cache is demonstrably hot.
  ASSERT_GT(qc_stats().certs_built, 0);
  ASSERT_GT(qc_stats().cache_hits, 0);

  // Forge the "next" transmission: correct chain pointers, the genuine
  // (cached-as-valid) certificate — but content its signers never saw.
  const auto& log = deployment.node(kIreland, 0)->log();
  const LogRecord* wire = nullptr;
  for (const auto& [pos, record] : log) {
    if (record.type == RecordType::kReceived) wire = &record;
  }
  ASSERT_NE(wire, nullptr);
  ASSERT_FALSE(wire->proof_certs.empty());
  TransmissionRecord forged;
  forged.src_site = kCalifornia;
  forged.dest_site = kIreland;
  forged.src_log_pos = wire->src_log_pos + 1;
  forged.prev_src_log_pos = wire->src_log_pos;
  forged.routine_id = wire->routine_id;
  forged.payload = ToBytes("forged credit of 1000 coins");
  forged.sig_certs = wire->proof_certs;  // genuine cert over other bytes
  for (int i = 0; i < 4; ++i) {
    net::Message msg;
    msg.src = {kCalifornia, 3};
    msg.dst = {kIreland, i};
    msg.type = kTransmission;
    msg.set_body(forged.Encode());
    deployment.network()->Send(msg);
  }
  simulator.RunFor(Seconds(5));
  EXPECT_EQ(bank.Balance(kIreland, "seamus"), 40);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bank.NodeBalance(kIreland, i, "seamus"), 40);
  }
  qc_stats().Reset();
}

TEST(ByzantineEndToEndTest, QuorumReadSurvivesALyingReplica) {
  // §VI-A: read-1 trusts the answering node; the 2f+1-identical-responses
  // strategy "overcomes the scenario where a malicious node returns"
  // wrong data.
  sim::Simulator simulator(41);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  bool committed = false;
  uint64_t pos = 0;
  deployment.participant(kCalifornia)
      ->LogCommit(ToBytes("the truth"), 0, [&](uint64_t p) {
        pos = p;
        committed = true;
      });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return committed; }, Seconds(30)));
  simulator.RunFor(Seconds(1));

  // Node 0 — the one read-1 happens to consult — starts lying.
  deployment.node(kCalifornia, 0)->LieOnReads();

  bool read_done = false;
  LogRecord result;
  deployment.participant(kCalifornia)
      ->Read(pos, ReadStrategy::kReadOne, [&](Status s, LogRecord record) {
        result = std::move(record);
        read_done = true;
      });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return read_done; }, Seconds(30)));
  // read-1 is fooled (this is its documented trust model)...
  EXPECT_EQ(ToString(result.payload), "forged read result");

  // ...while the quorum strategy returns the real entry: the liar can
  // never assemble 2f+1 identical forged answers.
  read_done = false;
  deployment.participant(kCalifornia)
      ->Read(pos, ReadStrategy::kReadQuorum,
             [&](Status s, LogRecord record) {
               ASSERT_TRUE(s.ok());
               result = std::move(record);
               read_done = true;
             });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return read_done; }, Seconds(30)));
  EXPECT_EQ(ToString(result.payload), "the truth");
}

// Regression: the client used to count f+1 replies as "matching" when they
// merely agreed on the sequence number. f byzantine replicas plus one
// honest straggler could then complete a request whose outcome the honest
// quorum never produced. Replies now vote on (seq, result_digest) — the
// replica's post-execution state digest — so divergent states never reach
// f+1 together.
TEST(ByzantineEndToEndTest, DivergentRepliesDoNotComplete) {
  sim::Simulator simulator(7);
  net::Network network(&simulator, Topology::Aws4(), {});
  pbft::PbftConfig config;
  config.f = 1;
  for (int i = 0; i < 4; ++i) config.nodes.push_back(net::NodeId{0, i});
  pbft::PbftClient client(&network, config, net::NodeId{0, 1001});

  int completions = 0;
  uint64_t completed_seq = 0;
  client.Submit(ToBytes("op"), [&](uint64_t seq) {
    completed_seq = seq;
    ++completions;
  });

  auto reply_from = [&](int replica, const crypto::Digest& digest) {
    pbft::ReplyMsg reply;
    reply.view = 0;
    reply.req_id = 1;
    reply.seq = 1;
    reply.replica = replica;
    reply.result_digest = digest;
    net::Message msg;
    msg.src = config.nodes[replica];
    msg.dst = client.self();
    msg.type = pbft::kReply;
    msg.set_body(reply.Encode());
    client.HandleMessage(msg);
  };

  crypto::Digest honest{};
  honest.fill(0xaa);
  crypto::Digest lying{};
  lying.fill(0xbb);

  // f+1 = 2 replies that agree on seq but diverge on post-execution state:
  // the pre-fix client accepted here.
  reply_from(0, honest);
  reply_from(1, lying);
  EXPECT_EQ(completions, 0) << "divergent replies must not complete";
  EXPECT_EQ(client.completed(), 0u);

  // A second reply matching the honest digest is a genuine f+1 match.
  reply_from(2, honest);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(completed_seq, 1u);
  EXPECT_EQ(client.completed(), 1u);
}

// --- randomized crash/recover soak ---------------------------------------------

class FaultSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultSoakTest, CountersConvergeUnderChurn) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  sim::Simulator simulator(seed);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  protocols::CounterProtocol counter(&deployment);
  sim::Rng rng(seed * 7919);

  // Background churn: every 150 ms, crash or recover a random node, never
  // exceeding f_i = 1 down per site.
  std::map<net::SiteId, int> down;
  std::set<net::NodeId> crashed;
  std::function<void()> churn = [&]() {
    net::SiteId site = static_cast<net::SiteId>(rng.NextBelow(4));
    int index = static_cast<int>(rng.NextBelow(4));
    net::NodeId node{site, index};
    if (crashed.count(node) > 0) {
      deployment.network()->Recover(node);
      deployment.node(site, index)->Recover();
      crashed.erase(node);
      --down[site];
    } else if (down[site] < 1) {
      deployment.network()->Crash(node);
      crashed.insert(node);
      ++down[site];
    }
    simulator.Schedule(sim::Milliseconds(150), churn);
  };
  simulator.Schedule(sim::Milliseconds(100), churn);

  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    counter.UserRequest(kCalifornia, kOregon, "trusted-soak");
  }
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return counter.counter(kOregon) == kRequests; }, Seconds(300)))
      << "only " << counter.counter(kOregon) << " arrived";
  simulator.RunFor(Seconds(5));
  EXPECT_EQ(counter.counter(kOregon), kRequests);  // exactly once each
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakTest, ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace blockplane::core
