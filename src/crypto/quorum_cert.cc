#include "crypto/quorum_cert.h"

#include <algorithm>

#include "common/metrics.h"

namespace blockplane::crypto {

namespace {

int Popcount(uint64_t bits) {
  int n = 0;
  while (bits != 0) {
    bits &= bits - 1;
    ++n;
  }
  return n;
}

}  // namespace

int QuorumCert::signer_count() const { return Popcount(signer_bits); }

QuorumCert BuildQuorumCert(net::SiteId site,
                           const std::vector<Signature>& sigs) {
  QuorumCert cert;
  cert.site = site;
  // The bitmap base is the group's lowest signer index: unit nodes give
  // base 0, a mirror group gives its range start (quorum_cert.h).
  bool have_base = false;
  for (const Signature& sig : sigs) {
    if (sig.signer.site != site || sig.signer.index < 0) continue;
    if (!have_base || sig.signer.index < cert.index_base) {
      cert.index_base = sig.signer.index;
    }
    have_base = true;
  }
  // Collect (index, mac) for this site's signers, first occurrence wins;
  // ascending index order is the canonical aggregation order.
  std::vector<std::pair<int32_t, Digest>> members;
  members.reserve(sigs.size());
  for (const Signature& sig : sigs) {
    if (sig.signer.site != site) continue;
    int32_t offset = sig.signer.index - cert.index_base;
    if (offset < 0 || offset >= 64) continue;
    uint64_t bit = uint64_t{1} << offset;
    if ((cert.signer_bits & bit) != 0) continue;  // duplicate signer
    cert.signer_bits |= bit;
    members.emplace_back(sig.signer.index, sig.mac);
  }
  std::sort(members.begin(), members.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Bytes macs;
  macs.reserve(members.size() * sizeof(Digest));
  for (const auto& [index, mac] : members) {
    macs.insert(macs.end(), mac.begin(), mac.end());
  }
  cert.agg = Sha256Digest(macs);
  return cert;
}

void QuorumCert::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(site));
  enc->PutU32(static_cast<uint32_t>(index_base));
  enc->PutU64(signer_bits);
  enc->PutRaw(agg.data(), agg.size());
}

Status QuorumCert::DecodeFrom(Decoder* dec) {
  uint32_t raw_site = 0;
  BP_RETURN_NOT_OK(dec->GetU32(&raw_site));
  site = static_cast<net::SiteId>(raw_site);
  uint32_t raw_base = 0;
  BP_RETURN_NOT_OK(dec->GetU32(&raw_base));
  index_base = static_cast<int32_t>(raw_base);
  BP_RETURN_NOT_OK(dec->GetU64(&signer_bits));
  for (auto& byte : agg) {
    BP_RETURN_NOT_OK(dec->GetU8(&byte));
  }
  return Status::OK();
}

void EncodeCertList(Encoder* enc, const std::vector<QuorumCert>& certs) {
  enc->PutVarint(certs.size());
  for (const QuorumCert& cert : certs) cert.EncodeTo(enc);
}

Status DecodeCertList(Decoder* dec, std::vector<QuorumCert>* out) {
  uint64_t n = 0;
  BP_RETURN_NOT_OK(dec->GetVarint(&n));
  if (n > 64) return Status::Corruption("oversized cert list");
  // Reject counts beyond the remaining payload before reserve() turns an
  // attacker-chosen varint into an allocation (BP011); every encoded
  // cert is multiple bytes, so this can never reject a valid list.
  if (n > dec->remaining()) return Status::Corruption("truncated cert list");
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    QuorumCert cert;
    BP_RETURN_NOT_OK(cert.DecodeFrom(dec));
    out->push_back(cert);
  }
  return Status::OK();
}

// --- KeyStore cert verification ---------------------------------------------
//
// Defined here (not signer.cc) so the cert subsystem stays in one place;
// they are KeyStore members because verification needs the registered key
// material and the shared two-generation cert cache.

size_t KeyStore::VerifiedCertHash::operator()(const VerifiedCert& v) const {
  // FNV-1a over site, bitmap, and the aggregate's first 16 bytes — the
  // aggregate is SHA-256 output, so this spreads perfectly; equality still
  // compares the full entry including the message bytes.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) { h = (h ^ x) * 0x100000001b3ULL; };
  mix(static_cast<uint64_t>(static_cast<uint32_t>(v.site)) << 32 |
      static_cast<uint32_t>(v.index_base));
  mix(v.signer_bits);
  for (int i = 0; i < 16; i += 8) {
    uint64_t word = 0;
    for (int j = 0; j < 8; ++j) {
      word |= static_cast<uint64_t>(v.agg[i + j]) << (8 * j);
    }
    mix(word);
  }
  return static_cast<size_t>(h);
}

bool KeyStore::CertCacheLookup(const VerifiedCert& entry) const {
  return cert_cur_.count(entry) > 0 || cert_prev_.count(entry) > 0;
}

void KeyStore::CertCacheInsert(VerifiedCert entry) const {
  if (verify_cache_capacity_ == 0) return;
  if (cert_cur_.size() >= std::max<size_t>(1, verify_cache_capacity_ / 2)) {
    hotpath_stats().verify_cache_evictions +=
        static_cast<int64_t>(cert_prev_.size());
    cert_prev_ = std::move(cert_cur_);
    cert_cur_.clear();
  }
  cert_cur_.insert(std::move(entry));
}

bool KeyStore::VerifyCertDetached(const Bytes& msg, const QuorumCert& cert,
                                  int threshold) const {
  if (cert.site < 0 || cert.index_base < 0) return false;
  if (cert.signer_count() < threshold) return false;
  // Recompute each listed signer's MAC (ascending index — the canonical
  // aggregation order) and compare the aggregate. One unregistered index
  // or one tampered MAC byte changes the aggregate and the cert fails.
  Bytes macs;
  macs.reserve(static_cast<size_t>(cert.signer_count()) * sizeof(Digest));
  for (int32_t offset = 0; offset < 64; ++offset) {
    if ((cert.signer_bits >> offset & 1) == 0) continue;
    auto it = keys_.find(net::NodeId{cert.site, cert.index_base + offset});
    if (it == keys_.end()) return false;
    Digest mac = it->second.hmac.SignDetached(msg);
    macs.insert(macs.end(), mac.begin(), mac.end());
  }
  return Sha256Digest(macs) == cert.agg;
}

bool KeyStore::VerifyCert(const Bytes& msg, const QuorumCert& cert,
                          int threshold) const {
  if (cert.signer_count() < threshold) return false;
  if (verify_cache_capacity_ == 0) {
    bool ok = VerifyCertDetached(msg, cert, threshold);
    qc_stats().certs_verified++;
    qc_stats().proof_sig_verifies += cert.signer_count();
    return ok;
  }
  VerifiedCert probe{cert.site, cert.index_base, cert.signer_bits, cert.agg,
                     msg};
  if (CertCacheLookup(probe)) {
    // One probe answers for every constituent MAC: the f_i+1 individual
    // verifications VerifyProof would have run are elided wholesale.
    qc_stats().cache_hits++;
    qc_stats().verifies_elided += cert.signer_count();
    return true;
  }
  bool ok = VerifyCertDetached(msg, cert, threshold);
  qc_stats().certs_verified++;
  qc_stats().proof_sig_verifies += cert.signer_count();
  if (ok) CertCacheInsert(std::move(probe));
  return ok;
}

void KeyStore::SeedCertCache(const Bytes& msg, const QuorumCert& cert) const {
  // Ordered-epilogue half of a worker-thread VerifyCertDetached (the
  // capture-at-submit pattern of DESIGN.md §12): accounting and cache
  // seeding land on the retire thread, exactly as the serial VerifyCert
  // miss path would have produced them.
  qc_stats().certs_verified++;
  qc_stats().proof_sig_verifies += cert.signer_count();
  if (verify_cache_capacity_ == 0) return;
  VerifiedCert entry{cert.site, cert.index_base, cert.signer_bits, cert.agg,
                     msg};
  if (CertCacheLookup(entry)) return;
  CertCacheInsert(std::move(entry));
}

}  // namespace blockplane::crypto
