// Quickstart: byzantizing the paper's distributed counting protocol
// (Algorithm 1) with Blockplane.
//
// Four participants (AWS datacenters) each run a Blockplane unit of
// 3f_i+1 = 4 nodes. A user request at one participant log-commits the
// request info and sends a message to a destination participant, which
// increments its counter — all through Blockplane's log-commit / send /
// receive interface, with verification routines guarding every step.
//
//   $ ./quickstart
#include <cstdio>

#include "core/deployment.h"
#include "protocols/counter.h"

using namespace blockplane;

int main() {
  // A deterministic simulation of the paper's four-datacenter deployment.
  sim::Simulator simulator(/*seed=*/2024);
  core::BlockplaneOptions options;  // f_i = 1, f_g = 0
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options);

  // Install the counting protocol (verification routines + receive loops)
  // at every participant.
  protocols::CounterProtocol counter(&deployment);

  std::printf("Blockplane quickstart: the distributed counting protocol\n");
  std::printf("  4 datacenters x 4 Blockplane nodes, f_i = 1\n\n");

  // Trusted users trigger requests: three towards Oregon, one to Ireland.
  counter.UserRequest(net::kCalifornia, net::kOregon, "trusted-alice");
  counter.UserRequest(net::kVirginia, net::kOregon, "trusted-bob");
  counter.UserRequest(net::kIreland, net::kOregon, "trusted-carol");
  counter.UserRequest(net::kOregon, net::kIreland, "trusted-dave");

  // A malicious user's request never passes the UserRequest verification
  // routine — the unit's honest nodes withhold their commit votes.
  counter.UserRequest(net::kCalifornia, net::kOregon, "evil-mallory");

  simulator.RunUntilCondition(
      [&] {
        return counter.counter(net::kOregon) == 3 &&
               counter.counter(net::kIreland) == 1;
      },
      sim::Seconds(120));

  for (int site = 0; site < 4; ++site) {
    std::printf("  counter at %-10s = %ld\n",
                deployment.network()->topology().site_name(site).c_str(),
                counter.counter(site));
  }

  bool ok = counter.counter(net::kOregon) == 3 &&
            counter.counter(net::kIreland) == 1 &&
            counter.counter(net::kCalifornia) == 0;
  std::printf("\n%s (mallory's request was rejected; %lu simulated ms)\n",
              ok ? "OK" : "UNEXPECTED STATE",
              static_cast<unsigned long>(sim::ToMillis(simulator.Now())));
  return ok ? 0 : 1;
}
