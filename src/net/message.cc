#include "net/message.h"

namespace blockplane::net {

const Bytes& EmptyPayloadBytes() {
  static const Bytes empty;
  return empty;
}

}  // namespace blockplane::net
