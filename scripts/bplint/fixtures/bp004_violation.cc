// Fixture: BP004 — message-type dispatch exhaustiveness. MessageType
// is a plain uint32 on the wire, so -Wswitch-enum cannot help here:
// only bplint knows these case labels belong to an enum.
using MessageType = unsigned;

enum DemoMessageType : MessageType {
  kPing = 401,
  kPong = 402,
  kGapNotice = 403,  // freshly added; nobody handles it anywhere
};

struct Message {
  MessageType type = 0;
};

void HandlePing(const Message& msg);
void HandlePong(const Message& msg);

// Non-exhaustive switch without a default: kPong and kGapNotice fall
// straight through and are silently dropped.
void HandleMessage(const Message& msg) {
  switch (msg.type) {
    case kPing:
      HandlePing(msg);
      break;
  }
}

// kPong at least appears in a comparison-dispatch elsewhere...
bool IsPong(const Message& msg) { return msg.type == kPong; }
// ...but kGapNotice is dispatched nowhere in the project.
