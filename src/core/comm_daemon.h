// The communication daemon (§IV-C, Algorithm 2) and the daemon reserve.
//
// A daemon serves one destination participant. It scans its host node's
// copy of the Local Log for communication records to that destination,
// builds transmission records (message + pointer to the previous
// communication record to the same destination), collects f_i+1 signatures
// from local Blockplane nodes, pushes the record to nodes at the
// destination, and retransmits until f_i+1 of them acknowledge the commit.
//
// Transmissions are pipelined up to a window: the receiver's chain-pointer
// verification guarantees in-order commitment regardless, so the daemon
// never needs to stall on an ack before shipping the next record.
//
// A *reserve* daemon stays passive: it periodically asks >= f_i+1 nodes at
// the destination for the most recent transmission they received from this
// participant (taking the value attested by some group of f_i+1 responders)
// and activates itself when the gap to the local send watermark suggests
// the active daemon is faulty or malicious.
#ifndef BLOCKPLANE_CORE_COMM_DAEMON_H_
#define BLOCKPLANE_CORE_COMM_DAEMON_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/record.h"
#include "net/network.h"

namespace blockplane::core {

class BlockplaneNode;
class WindowController;
struct AttestResponseMsg;

class CommDaemon {
 public:
  CommDaemon(BlockplaneNode* host, net::SiteId dest, bool reserve);
  ~CommDaemon();
  BP_DISALLOW_COPY_AND_ASSIGN(CommDaemon);

  /// Called by the host node when its log (or geo-proof store) grows.
  void NotifyLogAppend();

  /// Routes kTransmissionAck / kRecvStatusReply traffic.
  void OnMessage(const net::Message& msg);

  /// A decoded attestation response (the host node's prologue already
  /// decoded it and checked signer==src). Submits a signature-verify
  /// prologue through the host's Runner; the epilogue re-validates the
  /// flight before applying (DESIGN.md §12).
  void OnAttestResponseDecoded(net::NodeId src,
                               const AttestResponseMsg& response);

  /// Byzantine test hook: the daemon keeps claiming to work but sends
  /// nothing (the reserve should take over).
  void Mute() { muted_ = true; }

  net::SiteId dest() const { return dest_; }
  bool active() const { return active_; }
  /// Highest contiguously acknowledged source-log position.
  uint64_t acked_watermark() const { return acked_pos_; }

 private:
  /// One pipelined transmission.
  struct Flight {
    TransmissionRecord record;
    bool sigs_complete = false;
    std::set<net::NodeId> ack_senders;
    sim::EventId retransmit_timer = sim::kInvalidEventId;
    /// Time of the first actual wire transmission (0 = not yet sent).
    sim::SimTime first_transmit = 0;
    /// Time of the most recent wire transmission (adaptive timer deadline
    /// base).
    sim::SimTime last_transmit = 0;
    /// The flight was actually retransmitted on the wire: Karn's rule
    /// excludes it from RTT sampling.
    bool retransmitted = false;
  };

  void PumpPipeline();
  /// Called once when a flight's f_i+1 signature set completes. With
  /// qc.enabled, compresses the signature vector (and any geo proof) into
  /// compact quorum certs (DESIGN.md §14) so every subsequent Transmit —
  /// including widened retransmissions — ships certs instead of vectors.
  void FinalizeProof(Flight* flight);
  /// Ordered epilogue of a verified attestation: re-finds the flight (it
  /// may have completed or been acked away while the verify was in
  /// flight), dedups signers, and transmits on the f_i+1-th signature.
  void ApplyAttestation(uint64_t pos, const crypto::Signature& sig);
  void OnTransmissionAck(const net::Message& msg);
  void OnRecvStatusReply(const net::Message& msg);
  void Transmit(Flight& flight, bool widen);
  /// Ships every sigs-complete flight that has never been transmitted, in
  /// log order, stopping at the first flight still collecting signatures
  /// (adaptive mode only — static mode ships each flight on completion).
  void TransmitReady();
  void RequestAttestations(uint64_t pos);
  void ArmRetransmit(uint64_t pos);
  /// Retransmit-timer fire: static mode retransmits unconditionally (seed
  /// behavior); adaptive mode defers while acks are flowing and lets only
  /// the head-of-line flight retransmit and report loss (DESIGN.md §13).
  void OnRetransmitTimer(uint64_t pos, sim::SimTime period);
  void AdvanceAckedWatermark();
  void PollReceiver();

  BlockplaneNode* host_;
  net::SiteId dest_;
  bool active_;
  bool muted_ = false;

  uint64_t acked_pos_ = 0;     // contiguous ack watermark
  uint64_t next_send_pos_ = 0;  // highest source-log pos already shipped
  std::map<uint64_t, Flight> flights_;   // by source-log pos
  std::set<uint64_t> acked_out_of_order_;

  /// Adaptive flight window + retransmit timing toward dest_ (DESIGN.md
  /// §13); non-null only when options.congestion.adaptive. Null keeps the
  /// static daemon_window and transmission_retry behavior bit-identical.
  std::unique_ptr<WindowController> window_ctl_;
  /// Open window-stall episode flag: pipeline.daemon_window_stalls counts
  /// episodes (any admission closes one), not pump invocations.
  bool window_stalled_ = false;
  /// Last time any transmission ack arrived from dest_ (adaptive mode).
  /// The receiver commits in order, so flowing acks prove the path and
  /// stream are alive; the adaptive retransmit timer defers to
  /// max(last_transmit, last_progress_) + RTO instead of firing blindly —
  /// destination-side queueing under a deep window would otherwise make
  /// every flight's timer fire spuriously and Karn-freeze the estimator.
  sim::SimTime last_progress_ = 0;

  /// Reserve state.
  sim::EventId poll_timer_ = sim::kInvalidEventId;
  std::map<net::NodeId, uint64_t> status_replies_;
  uint64_t last_attested_ = 0;
  int stalled_polls_ = 0;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_COMM_DAEMON_H_
