// The chaos engine (DESIGN.md §10): applies a compiled Campaign to a real
// core::Deployment inside a fresh deterministic simulation, drives a
// log-commit / send / quorum-read workload through every participant, and
// then checks the cross-site invariants the paper promises:
//
//   I1  log agreement      — honest nodes of every unit (and every mirror
//                            group) hold pairwise-identical log prefixes,
//                            and equal digest chains at equal heights,
//   I2  completion order   — each participant's completion callbacks fire
//                            exactly once; with fg > 0 (the windowed geo
//                            path of DESIGN.md §9) additionally in
//                            submission order — fg == 0 deployments submit
//                            concurrently and let the unit leader order,
//   I3  mirror contiguity  — every mirror log holds geo positions 1..max
//                            with no holes, and no unit node ends the run
//                            with quarantined API records,
//   I4  liveness           — the whole workload completes before the
//                            campaign deadline (faults heal by `horizon`,
//                            so PBFT view changes + catch-up must restore
//                            progress afterwards).
//
// A failing run reports which invariant broke and why; callers print the
// campaign's JSON (which embeds the config) so the exact run can be
// recompiled and replayed from the seed.
#ifndef BLOCKPLANE_CHAOS_ENGINE_H_
#define BLOCKPLANE_CHAOS_ENGINE_H_

#include <string>
#include <vector>

#include "chaos/campaign.h"

namespace blockplane::chaos {

struct InvariantFailure {
  /// One of "log-agreement", "completion-order", "mirror-contiguity",
  /// "liveness", "read".
  std::string invariant;
  std::string detail;
};

struct ChaosReport {
  bool ok = false;
  /// The workload finished before `config.deadline`.
  bool live = false;
  std::vector<InvariantFailure> failures;

  int expected_completions = 0;
  int completions = 0;
  int expected_reads = 0;
  int reads_ok = 0;
  /// Virtual time when the workload finished (or the deadline, if it
  /// never did).
  sim::SimTime finished_at = 0;
  uint64_t events_processed = 0;

  /// Congestion-controller aggregates over the whole deployment, collected
  /// before teardown (all zero when config.adaptive_windows is off):
  /// summed loss events / multiplicative decreases, and the min/max of the
  /// per-controller gauges at campaign end plus the smallest window any
  /// controller ever reached.
  int64_t congestion_loss_events = 0;
  int64_t congestion_decreases = 0;
  int64_t window_min_seen = 0;
  int64_t window_final_min = 0;
  int64_t window_final_max = 0;

  /// One-line summary plus one line per failure.
  std::string ToString() const;
};

/// Runs `campaign` from scratch (fresh Simulator seeded with
/// `campaign.config.seed`, fresh Deployment) and checks I1–I4. Bit-for-bit
/// deterministic: the same campaign always produces the same report.
ChaosReport RunCampaign(const Campaign& campaign);

}  // namespace blockplane::chaos

#endif  // BLOCKPLANE_CHAOS_ENGINE_H_
