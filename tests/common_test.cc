// Unit tests for the common substrate: Status, StatusOr, codec, crc32,
// bytes, and metrics.
#include <gtest/gtest.h>

#include <limits>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/status_or.h"

namespace blockplane {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such record");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such record");
  EXPECT_EQ(s.ToString(), "NotFound: no such record");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad bytes");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.message(), "bad bytes");
  EXPECT_EQ(s, t);
  t = Status::OK();
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(s.IsCorruption());  // source unchanged
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::TimedOut("slow");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsTimedOut());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(CodecTest, RoundTripsFixedWidth) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0x1234);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-17);
  enc.PutBool(true);

  Decoder dec(enc.buffer());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  bool b = false;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  ASSERT_TRUE(dec.GetBool(&b).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -17);
  EXPECT_TRUE(b);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, RoundTripsVarints) {
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  1u << 20,  (1ull << 35) + 7,
                             std::numeric_limits<uint64_t>::max()};
  Encoder enc;
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.buffer());
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(dec.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, RoundTripsBytesAndStrings) {
  Encoder enc;
  enc.PutBytes(ToBytes("hello"));
  enc.PutString("world");
  enc.PutBytes({});
  Decoder dec(enc.buffer());
  Bytes b;
  std::string s;
  Bytes empty;
  ASSERT_TRUE(dec.GetBytes(&b).ok());
  ASSERT_TRUE(dec.GetString(&s).ok());
  ASSERT_TRUE(dec.GetBytes(&empty).ok());
  EXPECT_EQ(ToString(b), "hello");
  EXPECT_EQ(s, "world");
  EXPECT_TRUE(empty.empty());
}

TEST(CodecTest, UnderflowIsCorruptionNotCrash) {
  Encoder enc;
  enc.PutU8(1);
  Decoder dec(enc.buffer());
  uint64_t v;
  EXPECT_TRUE(dec.GetU64(&v).IsCorruption());
}

TEST(CodecTest, TruncatedBytesIsCorruption) {
  Encoder enc;
  enc.PutVarint(1000);  // claims 1000 bytes follow
  enc.PutU8(1);
  Decoder dec(enc.buffer());
  Bytes b;
  EXPECT_TRUE(dec.GetBytes(&b).IsCorruption());
}

TEST(CodecTest, InvalidBoolIsCorruption) {
  Encoder enc;
  enc.PutU8(2);
  Decoder dec(enc.buffer());
  bool b;
  EXPECT_TRUE(dec.GetBool(&b).IsCorruption());
}

TEST(CodecTest, MalformedVarintIsCorruption) {
  // 10 continuation bytes exceed the 64-bit range.
  Bytes buf(11, 0xff);
  Decoder dec(buf);
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint(&v).IsCorruption());
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  Bytes data = ToBytes("123456789");
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc32Test, DetectsBitFlip) {
  Bytes data = ToBytes("blockplane payload");
  uint32_t before = Crc32(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32(data), before);
}

TEST(BytesTest, HexEncode) {
  Bytes b = {0x00, 0x0f, 0xff};
  EXPECT_EQ(HexEncode(b), "000fff");
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {4.0, 1.0, 3.0, 2.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(CounterSetTest, IncrementAndRead) {
  CounterSet c;
  c.Increment("wan_messages");
  c.Increment("wan_messages", 2);
  EXPECT_EQ(c.Get("wan_messages"), 3);
  EXPECT_EQ(c.Get("missing"), 0);
  c.Clear();
  EXPECT_EQ(c.Get("wan_messages"), 0);
}

}  // namespace
}  // namespace blockplane
