#!/usr/bin/env bash
# Tier-1 verification gate, meant to be run before every merge:
#
#   1. Release-ish build + full ctest suite (the tier-1 contract from
#      ROADMAP.md: every test passing, determinism bit-for-bit).
#   2. Metrics snapshot: bench_metrics_dump drives one geo commit + one
#      cross-site send through the full pipeline and archives every
#      registered counter group as build/METRICS_dump.json (validated as
#      JSON when python3 is available).
#   3. Pipeline smoke: bench_pipeline --smoke compares window 1 vs 8 on
#      the Table-I WAN matrix and fails unless window 8 is strictly
#      faster (the DESIGN.md §9 pipelining regression gate). Any
#      BENCH_*.json produced under build/ is copied to the repo root so
#      results are versioned alongside the code.
#   4a. Static analysis: clang-tidy (.clang-tidy at the repo root; the
#       gate set is bugprone-* + performance-*) over src/ using the
#       compile database — skipped with a notice when clang-tidy is not
#       installed.
#   4b. bplint: the project-invariant static-analysis suite
#       (scripts/bplint; rules BP001–BP006 — determinism, entropy
#       hygiene, wire-field coverage, dispatch exhaustiveness, integer
#       consensus math, metrics/trace hygiene). Zero unsuppressed
#       diagnostics required, and two runs must be byte-identical.
#       Runs even under --fast: it is self-contained Python and <1 s.
#   5. The same suite under ASan+UBSan in a separate Debug build tree
#      (build-asan/). The zero-copy payload paths share one allocation
#      across broadcast fan-out, retransmission buffers, and reorder
#      buffers — exactly the kind of lifetime bug a sanitizer catches and
#      a passing test hides.
#
# Usage: scripts/check.sh [--fast|--chaos-smoke]
#   --fast         passes 1–3 + bplint; skip clang-tidy and sanitizers.
#   --chaos-smoke  quick chaos gate (<60s): build, then run the chaos
#                  regression + a reduced soak (2 seeds per template via
#                  CHAOS_SOAK_SEEDS) and the fig-8 chaos bench variant,
#                  which fails unless throughput recovers after the
#                  scheduled site outage. Failing campaigns print their
#                  JSON for seed-exact reproduction (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS_SMOKE="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "--chaos-smoke" ]]; then
  echo "=== chaos smoke: build ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS_SMOKE"
  echo "=== chaos smoke: regression + reduced soak ==="
  build/tests/chaos_test
  CHAOS_SOAK_SEEDS=2 build/tests/chaos_soak_test
  echo "=== chaos smoke: fig-8 chaos bench (outage recovery gate) ==="
  build/bench/bench_fig8_failures --chaos --out=build/BENCH_chaos.json
  cp build/BENCH_chaos.json . 2>/dev/null || true
  echo "=== chaos smoke passed ==="
  exit 0
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== pass 1: tier-1 build + tests (warnings are errors) ==="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DBLOCKPLANE_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

# Pass 4b (bplint) is cheap and dependency-free, so it also runs in --fast
# builds. Two back-to-back runs must agree byte for byte: a lint whose
# output wobbles cannot gate a determinism-obsessed repo.
run_bplint() {
  echo "=== pass 4b: bplint (BP001-BP006 project invariants) ==="
  python3 scripts/bplint -p build src bench | tee build/bplint.out
  python3 scripts/bplint -p build src bench > build/bplint.rerun.out
  cmp build/bplint.out build/bplint.rerun.out \
    || { echo "bplint output is not byte-identical across runs"; exit 1; }
  echo "bplint clean (byte-identical across two runs)"
}

echo "=== pass 2: metrics registry snapshot ==="
build/bench/bench_metrics_dump --out=build/METRICS_dump.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open('build/METRICS_dump.json'))" \
    || { echo "METRICS_dump.json is not valid JSON"; exit 1; }
fi
echo "metrics snapshot OK (build/METRICS_dump.json)"

echo "=== pass 3: pipeline smoke (window 1 vs 8) ==="
build/bench/bench_pipeline --smoke --out=build/BENCH_pipeline.json
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open('build/BENCH_pipeline.json'))" \
    || { echo "BENCH_pipeline.json is not valid JSON"; exit 1; }
fi
# Version bench results alongside the code.
cp build/BENCH_*.json . 2>/dev/null || true
echo "pipeline smoke OK (BENCH_pipeline.json)"

if [[ "$FAST" == "1" ]]; then
  run_bplint
  echo "=== --fast: skipping clang-tidy and sanitizer passes ==="
  exit 0
fi

echo "=== pass 4a: clang-tidy (bugprone-*, performance-*) ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # The full check set (with readability/modernize/misc additions) lives
  # in .clang-tidy for IDEs and `run-clang-tidy`; the merge gate enforces
  # the bugprone-* + performance-* core.
  mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
  clang-tidy -p build \
    --quiet \
    --warnings-as-errors='bugprone-*,performance-*' \
    --checks='-*,bugprone-*,performance-*,-bugprone-easily-swappable-parameters,-bugprone-exception-escape' \
    "${TIDY_SOURCES[@]}"
  echo "clang-tidy clean"
else
  echo "clang-tidy not installed; skipping static analysis pass"
fi

run_bplint

echo "=== pass 5: ASan+UBSan build + tests ==="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  >/dev/null
cmake --build build-asan -j "$JOBS"
# The suite includes one sanitized chaos-soak configuration: a reduced
# seed count keeps the fault-campaign sweep affordable under ASan while
# still exercising every schedule template with full instrumentation.
ASAN_OPTIONS=detect_leaks=1 CHAOS_SOAK_SEEDS=4 \
  ctest --test-dir build-asan --output-on-failure

echo "=== all checks passed ==="
