// Fixture: BP010 clean — every schedule either reaches a Cancel, is a
// self-rearming heartbeat, or escapes to a caller who owns it.

struct Sim {
  unsigned long Schedule(long delay_ns, void (*fn)());
  void Cancel(unsigned long id);
};

struct Node {
  Sim* sim_;
  unsigned long heartbeat_timer_ = 0;

  void SendHeartbeats() {
    // Self-rearm: the callback calls back into this very function, so
    // the timer chain is alive by construction (and Stop cancels it).
    heartbeat_timer_ = sim_->Schedule(10, [this] { SendHeartbeats(); });
  }

  unsigned long Lease(long ttl) {
    return sim_->Schedule(ttl, [] {});  // escapes: the caller owns it
  }

  void Stop() { sim_->Cancel(heartbeat_timer_); }
};
