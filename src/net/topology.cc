#include "net/topology.h"

#include <algorithm>

namespace blockplane::net {

StatusOr<Topology> Topology::Create(std::vector<std::string> site_names,
                                    std::vector<std::vector<double>> rtt_ms) {
  const size_t n = site_names.size();
  if (n == 0) {
    return Status::InvalidArgument("topology needs at least one site");
  }
  if (rtt_ms.size() != n) {
    return Status::InvalidArgument(
        "RTT matrix has " + std::to_string(rtt_ms.size()) + " rows for " +
        std::to_string(n) + " sites");
  }
  for (size_t i = 0; i < n; ++i) {
    if (rtt_ms[i].size() != n) {
      return Status::InvalidArgument(
          "RTT matrix row " + std::to_string(i) + " has " +
          std::to_string(rtt_ms[i].size()) + " entries for " +
          std::to_string(n) + " sites");
    }
    for (size_t j = 0; j < n; ++j) {
      if (rtt_ms[i][j] < 0.0) {
        return Status::InvalidArgument(
            "negative RTT between " + site_names[i] + " and " +
            site_names[j]);
      }
      if (rtt_ms[i][j] != rtt_ms[j][i]) {
        return Status::InvalidArgument(
            "asymmetric RTT between " + site_names[i] + " and " +
            site_names[j]);
      }
      if (i == j && rtt_ms[i][j] != 0.0) {
        return Status::InvalidArgument("nonzero self-RTT for " +
                                       site_names[i]);
      }
    }
  }
  return Topology(std::move(site_names), std::move(rtt_ms));
}

Topology::Topology(std::vector<std::string> site_names,
                   std::vector<std::vector<double>> rtt_ms)
    : names_(std::move(site_names)) {
  const size_t n = names_.size();
  rtt_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    rtt_[i].resize(n);
    for (size_t j = 0; j < n; ++j) {
      rtt_[i][j] = sim::MillisecondsD(rtt_ms[i][j]);
    }
  }
}

Topology Topology::Aws4() {
  // Table I of the paper: average RTTs in ms between C, O, V, I.
  StatusOr<Topology> t =
      Topology::Create({"California", "Oregon", "Virginia", "Ireland"},
                       {
                           {0, 19, 61, 130},   // C
                           {19, 0, 79, 132},   // O
                           {61, 79, 0, 70},    // V
                           {130, 132, 70, 0},  // I
                       });
  BP_CHECK(t.ok());  // compiled-in matrix; failure is a programming error
  return std::move(t).value();
}

Topology Topology::SingleSite(const std::string& name) {
  StatusOr<Topology> t = Topology::Create({name}, {{0}});
  BP_CHECK(t.ok());
  return std::move(t).value();
}

Topology Topology::Uniform(int num_sites, double rtt_ms) {
  std::vector<std::string> names;
  std::vector<std::vector<double>> rtt(num_sites,
                                       std::vector<double>(num_sites, rtt_ms));
  for (int i = 0; i < num_sites; ++i) {
    names.push_back("site" + std::to_string(i));
    rtt[i][i] = 0.0;
  }
  StatusOr<Topology> t = Topology::Create(std::move(names), std::move(rtt));
  BP_CHECK(t.ok());
  return std::move(t).value();
}

StatusOr<Topology> Topology::Parse(const std::string& spec) {
  auto semicolon = spec.find(';');
  if (semicolon == std::string::npos) {
    return Status::InvalidArgument("topology spec needs 'names; pairs'");
  }

  auto split = [](const std::string& text, char sep) {
    std::vector<std::string> out;
    std::string current;
    for (char c : text) {
      if (c == sep || c == ' ' || c == '\t' || c == '\n') {
        if (!current.empty()) out.push_back(current);
        current.clear();
        continue;
      }
      current.push_back(c);
    }
    if (!current.empty()) out.push_back(current);
    return out;
  };

  std::vector<std::string> names = split(spec.substr(0, semicolon), ',');
  if (names.size() < 2) {
    return Status::InvalidArgument("topology needs at least two sites");
  }
  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  };

  const size_t n = names.size();
  std::vector<std::vector<double>> rtt(n, std::vector<double>(n, -1.0));
  for (size_t i = 0; i < n; ++i) rtt[i][i] = 0.0;

  for (const std::string& entry : split(spec.substr(semicolon + 1), ' ')) {
    auto dash = entry.find('-');
    auto colon = entry.find(':');
    if (dash == std::string::npos || colon == std::string::npos ||
        colon < dash) {
      return Status::InvalidArgument("bad pair entry: " + entry);
    }
    int a = index_of(entry.substr(0, dash));
    int b = index_of(entry.substr(dash + 1, colon - dash - 1));
    if (a < 0 || b < 0 || a == b) {
      return Status::InvalidArgument("unknown site in entry: " + entry);
    }
    char* end = nullptr;
    std::string value = entry.substr(colon + 1);
    double ms = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || ms < 0) {
      return Status::InvalidArgument("bad RTT in entry: " + entry);
    }
    if (rtt[a][b] >= 0) {
      return Status::InvalidArgument("duplicate pair: " + entry);
    }
    rtt[a][b] = ms;
    rtt[b][a] = ms;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (rtt[i][j] < 0) {
        return Status::InvalidArgument("missing RTT for pair " + names[i] +
                                       "-" + names[j]);
      }
    }
  }
  return Topology::Create(std::move(names), std::move(rtt));
}

sim::SimTime Topology::Rtt(int a, int b) const {
  BP_CHECK(a >= 0 && a < num_sites() && b >= 0 && b < num_sites());
  return rtt_[a][b];
}

std::vector<int> Topology::SitesByProximity(int from) const {
  std::vector<int> sites;
  for (int s = 0; s < num_sites(); ++s) {
    if (s != from) sites.push_back(s);
  }
  std::stable_sort(sites.begin(), sites.end(), [&](int a, int b) {
    return Rtt(from, a) < Rtt(from, b);
  });
  return sites;
}

sim::SimTime Topology::RttToKthClosest(int from, int k) const {
  BP_CHECK(k >= 1);
  std::vector<int> sites = SitesByProximity(from);
  BP_CHECK(static_cast<size_t>(k) <= sites.size());
  return Rtt(from, sites[k - 1]);
}

}  // namespace blockplane::net
