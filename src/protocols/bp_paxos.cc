#include "protocols/bp_paxos.h"

#include "common/codec.h"
#include "common/logging.h"

namespace blockplane::protocols {

namespace {

enum MsgKind : uint8_t {
  kPrepare = 1,
  kPromise = 2,
  kPropose = 3,
  kAccept = 4,
  kDecide = 5,
};

struct PaxosMsg {
  uint8_t kind = 0;
  uint64_t ballot = 0;
  uint64_t slot = 0;
  bool ok = false;
  uint64_t accepted_ballot = 0;
  Bytes value;

  Bytes Encode() const {
    Encoder enc;
    enc.PutU8(kind);
    enc.PutU64(ballot);
    enc.PutU64(slot);
    enc.PutBool(ok);
    enc.PutU64(accepted_ballot);
    enc.PutBytes(value);
    return enc.Take();
  }
  static bool Decode(const Bytes& buf, PaxosMsg* out) {
    Decoder dec(buf);
    return dec.GetU8(&out->kind).ok() && dec.GetU64(&out->ballot).ok() &&
           dec.GetU64(&out->slot).ok() && dec.GetBool(&out->ok).ok() &&
           dec.GetU64(&out->accepted_ballot).ok() &&
           dec.GetBytes(&out->value).ok();
  }
};

/// A log-commit marker for a protocol state change (Definition 1).
Bytes StateChange(const std::string& what) { return ToBytes("paxos:" + what); }

}  // namespace

BpPaxos::BpPaxos(core::Deployment* deployment) : deployment_(deployment) {
  for (net::SiteId site = 0; site < deployment_->num_sites(); ++site) {
    auto state = std::make_unique<SiteState>();
    state->site = site;
    // r := proposal number, initially set to a unique number per site.
    state->r = static_cast<uint64_t>(site) + 1;
    sites_[site] = std::move(state);
    InstallAt(site);
  }
}

void BpPaxos::InstallAt(net::SiteId site) {
  // Verification routine: a "value committed" record is a legal state
  // transition only if the unit has received a majority of positive accept
  // votes for that slot (the leader's own vote counts).
  for (int i = 0; i < 3 * deployment_->options().fi + 1; ++i) {
    core::BlockplaneNode* node = deployment_->node(site, i);
    auto node_state = std::make_shared<NodeState>();
    node->SetApplyHook(
        [node_state](uint64_t pos, const core::LogRecord& record) {
          if (record.type != core::RecordType::kReceived) return;
          PaxosMsg msg;
          if (!PaxosMsg::Decode(record.payload, &msg)) return;
          if (msg.kind == kAccept && msg.ok) {
            ++node_state->accept_oks[msg.slot];
          }
        });
    int majority = Majority();
    node->RegisterVerifier(
        kVerifyDecision,
        [node_state, majority](const core::LogRecord& record) {
          Decoder dec(record.payload);
          uint64_t slot = 0;
          std::string tag;
          if (!dec.GetString(&tag).ok() || tag != "decided" ||
              !dec.GetU64(&slot).ok()) {
            return false;
          }
          return node_state->accept_oks[slot] + 1 >= majority;
        });
  }

  deployment_->participant(site)->SetReceiveHandler(
      [this, site](net::SiteId src, const Bytes& payload) {
        OnMessage(sites_.at(site).get(), src, payload);
      });
}

void BpPaxos::BroadcastToOthers(net::SiteId site, const Bytes& payload,
                                uint64_t routine_id) {
  core::Participant* participant = deployment_->participant(site);
  for (net::SiteId other = 0; other < deployment_->num_sites(); ++other) {
    if (other == site) continue;
    participant->Send(other, payload, routine_id, nullptr);
  }
}

// --- Algorithm 3: LeaderElection ------------------------------------------------

void BpPaxos::LeaderElection(net::SiteId site,
                             std::function<void(bool)> done) {
  SiteState* state = sites_.at(site).get();
  core::Participant* participant = deployment_->participant(site);
  state->promise_votes = 1;  // our own vote
  state->promise_replies = 1;
  state->election_done = std::move(done);
  if (state->r > state->promised) state->promised = state->r;

  // log-commit(Leader Election), then paxos-prepare to every participant.
  participant->LogCommit(
      StateChange("leader-election"), 0, [this, state, site](uint64_t) {
        PaxosMsg prepare;
        prepare.kind = kPrepare;
        prepare.ballot = state->r;
        BroadcastToOthers(site, prepare.Encode(), 0);
      });
}

// --- Algorithm 3: Replication ----------------------------------------------------

void BpPaxos::Replicate(net::SiteId site, Bytes value,
                        std::function<void(bool)> done) {
  SiteState* state = sites_.at(site).get();
  core::Participant* participant = deployment_->participant(site);
  // log-commit(Replication, value); if l == false return.
  if (!state->l) {
    if (done) done(false);
    return;
  }
  uint64_t slot = state->next_slot++;
  state->replicating_slot = slot;
  state->accept_votes = 1;  // our own acceptance
  state->accept_replies = 1;
  state->replicate_done = std::move(done);
  state->accepted[slot] = {state->r, value};

  participant->LogCommit(
      StateChange("replication-start"), 0,
      [this, state, site, slot, value = std::move(value)](uint64_t) {
        PaxosMsg propose;
        propose.kind = kPropose;
        propose.ballot = state->r;
        propose.slot = slot;
        propose.value = value;
        BroadcastToOthers(site, propose.Encode(), 0);
      });
}

// --- message handling --------------------------------------------------------------

void BpPaxos::OnMessage(SiteState* state, net::SiteId src,
                        const Bytes& payload) {
  PaxosMsg msg;
  if (!PaxosMsg::Decode(payload, &msg)) return;
  core::Participant* participant = deployment_->participant(state->site);

  switch (msg.kind) {
    case kPrepare: {
      PaxosMsg promise;
      promise.kind = kPromise;
      promise.ballot = msg.ballot;
      if (msg.ballot > state->promised) {
        state->promised = msg.ballot;
        promise.ok = true;
        // Report the highest accepted value (max-val rule). Algorithm 3
        // tracks a single max-val; we report the latest slot's.
        if (!state->accepted.empty()) {
          promise.accepted_ballot = state->accepted.rbegin()->second.first;
          promise.value = state->accepted.rbegin()->second.second;
        }
      } else {
        promise.ok = false;
        promise.accepted_ballot = state->promised;
      }
      // Commit the promise (a state change), then respond.
      participant->LogCommit(
          StateChange("promise"), 0,
          [participant, src, promise](uint64_t) {
            participant->Send(src, promise.Encode(), 0, nullptr);
          });
      break;
    }
    case kPromise: {
      if (!state->election_done) break;
      ++state->promise_replies;
      if (msg.ok) {
        ++state->promise_votes;
        if (msg.accepted_ballot > state->max_val_ballot) {
          state->max_val_ballot = msg.accepted_ballot;
          state->max_val = msg.value;
        }
      }
      if (state->promise_votes >= Majority()) {
        state->l = true;
        auto done = std::move(state->election_done);
        state->election_done = nullptr;
        // log-commit(l, max-val).
        participant->LogCommit(StateChange("elected"), 0,
                               [done](uint64_t) {
                                 if (done) done(true);
                               });
      } else if (state->promise_replies >= deployment_->num_sites()) {
        // No majority: pick the next unique proposal number and commit it.
        state->r += deployment_->num_sites();
        auto done = std::move(state->election_done);
        state->election_done = nullptr;
        participant->LogCommit(StateChange("new-proposal-number"), 0,
                               [done](uint64_t) {
                                 if (done) done(false);
                               });
      }
      break;
    }
    case kPropose: {
      PaxosMsg accept;
      accept.kind = kAccept;
      accept.ballot = msg.ballot;
      accept.slot = msg.slot;
      if (msg.ballot >= state->promised) {
        state->promised = msg.ballot;
        state->accepted[msg.slot] = {msg.ballot, msg.value};
        accept.ok = true;
      } else {
        accept.ok = false;
        accept.accepted_ballot = state->promised;
      }
      participant->LogCommit(
          StateChange("accepted"), 0,
          [participant, src, accept](uint64_t) {
            participant->Send(src, accept.Encode(), 0, nullptr);
          });
      break;
    }
    case kAccept: {
      if (!state->replicate_done || msg.slot != state->replicating_slot) {
        break;
      }
      ++state->accept_replies;
      if (msg.ok) ++state->accept_votes;
      if (state->accept_votes >= Majority()) {
        auto done = std::move(state->replicate_done);
        state->replicate_done = nullptr;
        uint64_t slot = msg.slot;
        // log-commit(value committed), guarded by the decision verifier.
        Encoder enc;
        enc.PutString("decided");
        enc.PutU64(slot);
        Bytes value = state->accepted[slot].second;
        state->decided[slot] = value;
        participant->LogCommit(
            enc.Take(), kVerifyDecision,
            [this, state, slot, value, done](uint64_t) {
              // Disseminate the decision (asynchronous).
              PaxosMsg decide;
              decide.kind = kDecide;
              decide.slot = slot;
              decide.value = value;
              BroadcastToOthers(state->site, decide.Encode(), 0);
              if (done) done(true);
            });
      } else if (state->accept_replies >= deployment_->num_sites() &&
                 state->replicate_done) {
        // Lost the slot: step down (l = false, next proposal number).
        state->l = false;
        state->r += deployment_->num_sites();
        auto done = std::move(state->replicate_done);
        state->replicate_done = nullptr;
        participant->LogCommit(StateChange("stepped-down"), 0,
                               [done](uint64_t) {
                                 if (done) done(false);
                               });
      }
      break;
    }
    case kDecide: {
      state->decided[msg.slot] = msg.value;
      participant->LogCommit(StateChange("learned-decision"), 0, nullptr);
      break;
    }
    default:
      break;
  }
}

}  // namespace blockplane::protocols
