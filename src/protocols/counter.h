// The paper's running example (Algorithm 1): a distributed counting
// protocol byzantized through Blockplane.
//
// Each participant holds a counter, initially 0. A user triggers a request
// at participant A naming a destination B; A log-commits the request info
// and sends a message to B; when B receives it, B log-commits an
// increment event and bumps its counter.
//
// The example demonstrates all three verification routines from §III-C:
//   * the UserRequest log-commit routine checks the request comes from a
//     trusted user,
//   * the send routine checks a matching user request was committed and
//     not already consumed by an earlier send,
//   * the increment routine checks a received message backs the increment
//     (the f_i+1-signature check itself is Blockplane's built-in receive
//     verification).
#ifndef BLOCKPLANE_PROTOCOLS_COUNTER_H_
#define BLOCKPLANE_PROTOCOLS_COUNTER_H_

#include <memory>
#include <set>

#include "core/deployment.h"

namespace blockplane::protocols {

class CounterProtocol {
 public:
  /// Verification-routine ids used by the protocol.
  static constexpr uint64_t kVerifyUserRequest = 11;
  static constexpr uint64_t kVerifySend = 12;
  static constexpr uint64_t kVerifyIncrement = 13;

  /// Installs the protocol at every participant of the deployment.
  explicit CounterProtocol(core::Deployment* deployment);
  BP_DISALLOW_COPY_AND_ASSIGN(CounterProtocol);

  /// Algorithm 1's UserRequest event at `site`: log-commit the request,
  /// then send to `destination`. `user` identifies the requester; only
  /// "trusted" users pass verification.
  void UserRequest(net::SiteId site, net::SiteId destination,
                   const std::string& user);

  /// The counter value at a participant (from its replicated state).
  int64_t counter(net::SiteId site) const { return counters_.at(site); }

 private:
  /// Per-node replica state maintained by the apply hook and consulted by
  /// the verification routines (each Blockplane node has its own copy).
  struct NodeState {
    std::set<uint64_t> committed_requests;  // request ids seen
    std::set<uint64_t> sent_requests;       // ids consumed by a send
    uint64_t receives = 0;                  // received messages
    uint64_t increments = 0;                // committed increments
  };

  void InstallAt(net::SiteId site);

  core::Deployment* deployment_;
  std::map<net::SiteId, int64_t> counters_;
  std::map<net::SiteId, uint64_t> next_request_id_;
  std::unordered_map<net::NodeId, std::shared_ptr<NodeState>,
                     net::NodeIdHash>
      node_states_;
};

}  // namespace blockplane::protocols

#endif  // BLOCKPLANE_PROTOCOLS_COUNTER_H_
