#include "common/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace blockplane {

namespace {

/// Appends `v` (already JSON-safe: our names are static C identifiers plus
/// spaces/arrows) as a quoted JSON string. Escapes defensively anyway.
void AppendJsonString(std::string* out, const char* v) {
  out->push_back('"');
  for (const char* p = v; *p; ++p) {
    char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendJsonString(std::string* out, const std::string& v) {
  AppendJsonString(out, v.c_str());
}

/// Nanoseconds -> microseconds with three decimals, locale-independent and
/// bit-deterministic (pure integer arithmetic; no floating point).
void AppendMicros(std::string* out, int64_t ns) {
  char buf[40];
  const char* sign = ns < 0 ? "-" : "";
  uint64_t abs_ns = ns < 0 ? static_cast<uint64_t>(-ns)
                           : static_cast<uint64_t>(ns);
  std::snprintf(buf, sizeof(buf), "%s%" PRIu64 ".%03" PRIu64, sign,
                abs_ns / 1000, abs_ns % 1000);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

const std::vector<TraceMark>& EmptyMarks() {
  static const std::vector<TraceMark> empty;
  return empty;
}

}  // namespace

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

void Tracer::Clear() {
  next_trace_ = 1;
  events_.clear();
  events_dropped_ = 0;
  marks_.clear();
  comm_bindings_.clear();
}

TraceId Tracer::NewTrace() {
  if (!enabled_) return kNoTrace;
  return next_trace_++;
}

void Tracer::Span(TraceId trace, const char* name, const char* cat,
                  int64_t ts_begin, int64_t ts_end, int32_t site,
                  int32_t index, uint64_t arg) {
  if (!enabled_) return;
  if (events_.size() >= kMaxEvents) {
    ++events_dropped_;
    return;
  }
  TraceEvent ev;
  ev.trace = trace;
  ev.kind = TraceEvent::Kind::kSpan;
  ev.ts = ts_begin;
  ev.dur = ts_end - ts_begin;
  ev.name = name;
  ev.cat = cat;
  ev.site = site;
  ev.index = index;
  ev.arg = arg;
  events_.push_back(ev);
}

void Tracer::Instant(TraceId trace, const char* name, const char* cat,
                     int64_t ts, int32_t site, int32_t index, uint64_t arg) {
  if (!enabled_) return;
  if (events_.size() >= kMaxEvents) {
    ++events_dropped_;
    return;
  }
  TraceEvent ev;
  ev.trace = trace;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.ts = ts;
  ev.name = name;
  ev.cat = cat;
  ev.site = site;
  ev.index = index;
  ev.arg = arg;
  events_.push_back(ev);
}

void Tracer::Mark(TraceId trace, const char* phase, int64_t ts) {
  if (!enabled_ || trace == kNoTrace) return;
  std::vector<TraceMark>& marks = marks_[trace];
  for (const TraceMark& mark : marks) {
    if (std::string_view(mark.phase) == phase) return;  // first call wins
  }
  marks.push_back({phase, ts});
}

const std::vector<TraceMark>& Tracer::MarksFor(TraceId trace) const {
  auto it = marks_.find(trace);
  return it == marks_.end() ? EmptyMarks() : it->second;
}

std::vector<BreakdownComponent> Tracer::BreakdownFor(TraceId trace) const {
  std::vector<BreakdownComponent> out;
  const std::vector<TraceMark>& marks = MarksFor(trace);
  for (size_t i = 1; i < marks.size(); ++i) {
    BreakdownComponent component;
    component.from = marks[i - 1].phase;
    component.to = marks[i].phase;
    component.dur = marks[i].ts - marks[i - 1].ts;
    out.push_back(std::move(component));
  }
  return out;
}

int64_t Tracer::EndToEndFor(TraceId trace) const {
  const std::vector<TraceMark>& marks = MarksFor(trace);
  if (marks.size() < 2) return 0;
  return marks.back().ts - marks.front().ts;
}

void Tracer::BindCommRecord(int32_t src_site, uint64_t log_pos,
                            TraceId trace) {
  if (!enabled_ || trace == kNoTrace) return;
  // Bounded wholesale reset (deterministic; bindings are only needed while
  // the corresponding transmissions are in flight).
  if (comm_bindings_.size() >= kMaxBindings) comm_bindings_.clear();
  comm_bindings_[{src_site, log_pos}] = trace;
}

TraceId Tracer::LookupCommRecord(int32_t src_site, uint64_t log_pos) const {
  auto it = comm_bindings_.find({src_site, log_pos});
  return it == comm_bindings_.end() ? kNoTrace : it->second;
}

std::string Tracer::ToChromeTrace() const {
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, ev.name);
    out += ",\"cat\":";
    AppendJsonString(&out, ev.cat);
    out += ",\"ph\":";
    out += ev.kind == TraceEvent::Kind::kSpan ? "\"X\"" : "\"i\"";
    out += ",\"ts\":";
    AppendMicros(&out, ev.ts);
    if (ev.kind == TraceEvent::Kind::kSpan) {
      out += ",\"dur\":";
      AppendMicros(&out, ev.dur);
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"pid\":";
    AppendI64(&out, ev.site);
    out += ",\"tid\":";
    AppendI64(&out, ev.index);
    out += ",\"args\":{\"trace\":";
    AppendU64(&out, ev.trace);
    out += ",\"arg\":";
    AppendU64(&out, ev.arg);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::ToJson() const {
  std::string out;
  out += "{\"traces\":[";
  bool first_trace = true;
  for (const auto& [trace, marks] : marks_) {
    if (!first_trace) out += ",";
    first_trace = false;
    out += "{\"trace\":";
    AppendU64(&out, trace);
    out += ",\"marks\":[";
    bool first_mark = true;
    for (const TraceMark& mark : marks) {
      if (!first_mark) out += ",";
      first_mark = false;
      out += "{\"phase\":";
      AppendJsonString(&out, mark.phase);
      out += ",\"ts_ns\":";
      AppendI64(&out, mark.ts);
      out += "}";
    }
    out += "],\"breakdown\":[";
    bool first_component = true;
    for (const BreakdownComponent& component : BreakdownFor(trace)) {
      if (!first_component) out += ",";
      first_component = false;
      out += "{\"from\":";
      AppendJsonString(&out, component.from);
      out += ",\"to\":";
      AppendJsonString(&out, component.to);
      out += ",\"dur_ns\":";
      AppendI64(&out, component.dur);
      out += "}";
    }
    out += "],\"end_to_end_ns\":";
    AppendI64(&out, EndToEndFor(trace));
    out += "}";
  }
  out += "],\"events\":";
  AppendU64(&out, events_.size());
  out += ",\"events_dropped\":";
  AppendI64(&out, events_dropped_);
  out += "}";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  std::string json = ToChromeTrace();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(file);
}

}  // namespace blockplane
