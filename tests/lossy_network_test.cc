// End-to-end behaviour over an unreliable network: Blockplane's layered
// retransmission (client retries, daemon retransmissions, PBFT catch-up and
// view changes, geo retries) must mask low-rate message loss and
// corruption. Corrupted protocol messages must be rejected (bad digests /
// failed decodes), never misinterpreted.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "protocols/counter.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::Topology;
using sim::Seconds;

class LossySweepTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LossySweepTest, CounterConvergesDespiteDrops) {
  auto [drop_prob, seed] = GetParam();
  sim::Simulator simulator(static_cast<uint64_t>(seed));
  Deployment deployment(&simulator, Topology::Aws4(), {});
  protocols::CounterProtocol counter(&deployment);
  deployment.network()->set_drop_prob(drop_prob);

  constexpr int kRequests = 4;
  for (int i = 0; i < kRequests; ++i) {
    counter.UserRequest(net::kCalifornia, net::kOregon, "trusted-lossy");
  }
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return counter.counter(net::kOregon) == kRequests; },
      Seconds(600)))
      << "drop=" << drop_prob << " seed=" << seed << " got "
      << counter.counter(net::kOregon);
  // Exactly-once even with retransmissions everywhere.
  simulator.RunFor(Seconds(5));
  EXPECT_EQ(counter.counter(net::kOregon), kRequests);
  EXPECT_GT(deployment.network()->counters().Get("dropped_messages"), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, LossySweepTest,
    ::testing::Combine(::testing::Values(0.002, 0.01),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<double, int>>& info) {
      return "drop" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 1000)) +
             "permille_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(LossyNetworkTest, CorruptionIsRejectedNotMisinterpreted) {
  sim::Simulator simulator(71);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  deployment.network()->set_corrupt_prob(0.01);

  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    deployment.participant(net::kCalifornia)
        ->LogCommit(ToBytes("payload-" + std::to_string(i)), 0,
                    [&](uint64_t) { ++completed; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return completed == 5; },
                                          Seconds(600)));
  simulator.RunFor(Seconds(5));
  // Whatever committed is exactly what was sent — flipped bytes can only
  // delay (failed digest checks trigger retries), never alter.
  const auto& log = deployment.node(net::kCalifornia, 0)->log();
  ASSERT_EQ(log.size(), 5u);
  std::set<std::string> seen;
  for (auto& [pos, record] : log) {
    seen.insert(ToString(record.payload));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(seen.count("payload-" + std::to_string(i)) > 0);
  }
}

}  // namespace
}  // namespace blockplane::core
