// Pipelining sweep (DESIGN.md §9): throughput of (A) a wide-area PBFT
// group and (B) the full geo-correlated commit path as a function of the
// sliding-window size, over the Table-I AWS RTT matrix.
//
// Window 1 reproduces the paper's stop-and-wait behaviour (§VI-C: "a
// leader only attempts to commit a single batch and does not start the
// next one until the current one is committed"); larger windows keep W
// consensus instances / geo rounds in flight while execution and
// completion callbacks stay strictly in submission order.
//
// Writes BENCH_pipeline.json. `--smoke` runs a small window-1-vs-8
// comparison and exits non-zero unless window 8 is strictly faster (used
// by scripts/check.sh as a perf regression gate).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/deployment.h"
#include "pbft/client.h"
#include "pbft/replica.h"

namespace blockplane {
namespace {

struct Result {
  uint64_t window = 0;
  uint64_t commits = 0;
  double sim_ms = 0;
  double throughput_per_sec = 0;
  uint64_t ooo_commits = 0;        // certificates finished out of order
  uint64_t ooo_completions = 0;    // geo rounds finished out of order
};

net::NetworkOptions BenchNet() {
  net::NetworkOptions options;
  options.intra_site_one_way = sim::Microseconds(100);
  options.per_message_cpu = sim::Microseconds(25);
  return options;
}

// --- A: flat wide-area PBFT, one replica per Table-I site ------------------

Result RunWanPbft(uint64_t window, uint64_t target_commits) {
  pipeline_stats().Reset();
  sim::Simulator simulator(1);
  net::Network network(&simulator, net::Topology::Aws4(), BenchNet());
  crypto::KeyStore keys;

  pbft::PbftConfig config;
  config.f = 1;
  for (int site = 0; site < 4; ++site) {
    config.nodes.push_back(net::NodeId{site, 0});
  }
  config.window = window;
  config.checkpoint_interval = 32;
  config.sign_messages = false;
  config.hash_payloads = false;
  // Wide-area deployment: timeouts must exceed WAN round trips.
  config.view_timeout = sim::Milliseconds(1500);
  config.client_retry = sim::Milliseconds(3000);

  std::vector<std::unique_ptr<pbft::PbftReplica>> replicas;
  for (int site = 0; site < 4; ++site) {
    auto replica = std::make_unique<pbft::PbftReplica>(
        &network, &keys, config, net::NodeId{site, 0}, nullptr);
    replica->RegisterWithNetwork();
    replicas.push_back(std::move(replica));
  }
  pbft::PbftClient client(&network, config, net::NodeId{0, 900});

  // Closed loop: keep `window` requests outstanding (offered concurrency
  // matches the window, so window 1 degenerates to the paper's behaviour).
  Bytes payload = bench::MakeBatch(1);
  uint64_t issued = 0;
  uint64_t completed = 0;
  std::function<void()> submit_next = [&]() {
    if (issued >= target_commits) return;
    ++issued;
    client.Submit(Bytes(payload), [&](uint64_t) {
      ++completed;
      submit_next();
    });
  };
  sim::SimTime start = simulator.Now();
  for (uint64_t i = 0; i < window && i < target_commits; ++i) submit_next();
  simulator.RunUntilCondition([&] { return completed >= target_commits; },
                              simulator.Now() + sim::Seconds(600));
  BP_CHECK_MSG(completed >= target_commits, "wan_pbft bench stalled");

  Result r;
  r.window = window;
  r.commits = completed;
  r.sim_ms = sim::ToMillis(simulator.Now() - start);
  r.throughput_per_sec = completed / (r.sim_ms / 1000.0);
  r.ooo_commits = pipeline_stats().pbft_ooo_commits;
  return r;
}

// --- B: full geo-correlated commit path (f_i = 1, f_g = 1) -----------------

Result RunGeoCommit(uint64_t window, uint64_t target_commits) {
  pipeline_stats().Reset();
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = 1;
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 32;
  options.pbft_window = window;
  options.participant_window = window;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              BenchNet());

  core::Participant* participant = deployment.participant(net::kCalifornia);
  Bytes payload = bench::MakeBatch(1);
  uint64_t issued = 0;
  uint64_t completed = 0;
  std::function<void()> submit_next = [&]() {
    if (issued >= target_commits) return;
    ++issued;
    participant->LogCommit(Bytes(payload), 0, [&](uint64_t) {
      ++completed;
      submit_next();
    });
  };
  sim::SimTime start = simulator.Now();
  for (uint64_t i = 0; i < window && i < target_commits; ++i) submit_next();
  simulator.RunUntilCondition([&] { return completed >= target_commits; },
                              simulator.Now() + sim::Seconds(600));
  BP_CHECK_MSG(completed >= target_commits, "geo_commit bench stalled");

  Result r;
  r.window = window;
  r.commits = completed;
  r.sim_ms = sim::ToMillis(simulator.Now() - start);
  r.throughput_per_sec = completed / (r.sim_ms / 1000.0);
  r.ooo_commits = pipeline_stats().pbft_ooo_commits;
  r.ooo_completions = pipeline_stats().participant_ooo_completions;
  return r;
}

// --- C: adaptive vs static daemon windows under injected loss ---------------
//
// An Oregon participant streams communication records to California (short
// link) and Ireland (the 132 ms Table-I link); the run ends when every
// record is *delivered* at both destinations, so daemon retransmission
// timing and flight-window admission dominate. The loss variant injects
// uniform message drops (the chaos engine's kDropBurst knob) to compare
// the static transmission_retry timer against the measured per-destination
// RTO of DESIGN.md §13.

struct DeliveryResult {
  std::string mode;       // "static-<w>" or "adaptive"
  double loss = 0.0;      // injected drop probability
  uint64_t delivered = 0;
  double sim_ms = 0;
  double throughput_per_sec = 0;
  uint64_t loss_events = 0;       // congestion controller loss signals
  uint64_t decreases = 0;         // multiplicative decreases applied
  uint64_t viewchange_decreases = 0;  // decreases from view-change churn
  uint64_t viewchange_attempts = 0;   // robustness.viewchange_attempts
  uint64_t window_stalls = 0;     // pipeline.daemon_window_stalls episodes
};

DeliveryResult RunDelivery(bool adaptive, uint64_t daemon_window, double loss,
                           uint64_t records_per_dest) {
  pipeline_stats().Reset();
  congestion_stats().Reset();
  robustness_stats().Reset();
  sim::Simulator simulator(7);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = 0;
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 32;
  options.pbft_window = 8;
  options.daemon_window = daemon_window;
  options.congestion.adaptive = adaptive;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              BenchNet());
  deployment.network()->set_drop_prob(loss);

  core::Participant* sender = deployment.participant(net::kOregon);
  const uint64_t total = 2 * records_per_dest;
  uint64_t received = 0;
  for (net::SiteId dest : {net::kCalifornia, net::kIreland}) {
    deployment.participant(dest)->SetReceiveHandler(
        [&received](net::SiteId, const Bytes&) { ++received; });
  }

  // Closed loop on *local commits* (8 outstanding submissions keeps the
  // source log ahead of the daemons without flooding the PBFT client);
  // the clock runs until the last record is delivered remotely.
  Bytes payload = bench::MakeBatch(1);
  uint64_t issued = 0;
  std::function<void()> submit_next = [&]() {
    if (issued >= total) return;
    net::SiteId dest = issued % 2 == 0 ? net::kCalifornia : net::kIreland;
    ++issued;
    sender->Send(dest, Bytes(payload), 0, [&](uint64_t) { submit_next(); });
  };
  sim::SimTime start = simulator.Now();
  for (int i = 0; i < 8; ++i) submit_next();
  simulator.RunUntilCondition([&] { return received >= total; },
                              simulator.Now() + sim::Seconds(600));
  if (received < total) {
    std::fprintf(stderr,
                 "delivery stalled: adaptive=%d window=%llu loss=%.3f "
                 "received=%llu/%llu issued=%llu\n",
                 adaptive ? 1 : 0, (unsigned long long)daemon_window, loss,
                 (unsigned long long)received, (unsigned long long)total,
                 (unsigned long long)issued);
    for (net::SiteId dest : {net::kCalifornia, net::kIreland}) {
      for (int i = 0; i < 4; ++i) {
        std::fprintf(
            stderr,
            "  dest=%d: src_node%d acked=%llu, dest_node%d last_recv=%llu\n",
            (int)dest, i,
            (unsigned long long)deployment.node(net::kOregon, i)
                ->daemon_acked(dest),
            i,
            (unsigned long long)deployment.node(dest, i)->last_received_pos(
                net::kOregon));
      }
    }
  }
  BP_CHECK_MSG(received >= total, "delivery bench stalled");

  DeliveryResult r;
  r.mode = adaptive ? "adaptive"
                    : "static-" + std::to_string(daemon_window);
  r.loss = loss;
  r.delivered = received;
  r.sim_ms = sim::ToMillis(simulator.Now() - start);
  r.throughput_per_sec = received / (r.sim_ms / 1000.0);
  r.loss_events = congestion_stats().loss_events;
  r.decreases = congestion_stats().decreases;
  r.viewchange_decreases = congestion_stats().viewchange_decreases;
  r.viewchange_attempts =
      static_cast<uint64_t>(robustness_stats().viewchange_attempts);
  r.window_stalls = pipeline_stats().daemon_window_stalls;
  return r;
}

void PrintDeliveryRows(const char* name,
                       const std::vector<DeliveryResult>& results) {
  std::printf("\n%s:\n", name);
  std::printf("%12s %6s %10s %12s %14s %8s %6s %6s %6s %8s\n", "mode",
              "loss", "delivered", "sim (ms)", "records/sec", "losses",
              "dec", "vcdec", "vc", "stalls");
  for (const DeliveryResult& r : results) {
    std::printf(
        "%12s %5.1f%% %10llu %12.1f %14.1f %8llu %6llu %6llu %6llu %8llu\n",
        r.mode.c_str(), 100.0 * r.loss,
        static_cast<unsigned long long>(r.delivered), r.sim_ms,
        r.throughput_per_sec, static_cast<unsigned long long>(r.loss_events),
        static_cast<unsigned long long>(r.decreases),
        static_cast<unsigned long long>(r.viewchange_decreases),
        static_cast<unsigned long long>(r.viewchange_attempts),
        static_cast<unsigned long long>(r.window_stalls));
  }
}

void PutDeliveryResults(std::ofstream& out,
                        const std::vector<DeliveryResult>& results) {
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const DeliveryResult& r = results[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"loss\": " << r.loss
        << ", \"delivered\": " << r.delivered << ", \"sim_ms\": " << r.sim_ms
        << ", \"throughput_per_sec\": " << r.throughput_per_sec
        << ", \"loss_events\": " << r.loss_events
        << ", \"decreases\": " << r.decreases
        << ", \"viewchange_decreases\": " << r.viewchange_decreases
        << ", \"window_stalls\": " << r.window_stalls << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]";
}

void PrintRows(const char* name, const std::vector<Result>& results) {
  std::printf("\n%s:\n", name);
  std::printf("%8s %9s %12s %14s %10s %8s\n", "window", "commits", "sim (ms)",
              "commits/sec", "speedup", "ooo");
  double base = results.empty() ? 1.0 : results[0].throughput_per_sec;
  for (const Result& r : results) {
    std::printf("%8llu %9llu %12.1f %14.1f %9.2fx %8llu\n",
                static_cast<unsigned long long>(r.window),
                static_cast<unsigned long long>(r.commits), r.sim_ms,
                r.throughput_per_sec, r.throughput_per_sec / base,
                static_cast<unsigned long long>(r.ooo_commits +
                                                r.ooo_completions));
  }
}

void PutResults(std::ofstream& out, const std::vector<Result>& results) {
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out << "    {\"window\": " << r.window << ", \"commits\": " << r.commits
        << ", \"sim_ms\": " << r.sim_ms
        << ", \"throughput_per_sec\": " << r.throughput_per_sec
        << ", \"ooo_commits\": " << r.ooo_commits
        << ", \"ooo_completions\": " << r.ooo_completions << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]";
}

}  // namespace
}  // namespace blockplane

int main(int argc, char** argv) {
  using namespace blockplane;
  bool smoke = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::PrintHeader(
      "Pipelining sweep: sliding-window PBFT + windowed geo-commit",
      "window 1 = the paper's stop-and-wait group commit (SVI-C); "
      "DESIGN.md S9");

  std::vector<uint64_t> windows =
      smoke ? std::vector<uint64_t>{1, 8}
            : std::vector<uint64_t>{1, 2, 4, 8, 16};
  const uint64_t wan_commits = smoke ? 48 : 120;
  const uint64_t geo_commits = smoke ? 32 : 80;

  std::vector<Result> wan;
  for (uint64_t w : windows) wan.push_back(RunWanPbft(w, wan_commits));
  PrintRows("A. wide-area PBFT (one replica per Table-I site, f=1)", wan);

  std::vector<Result> geo;
  for (uint64_t w : windows) geo.push_back(RunGeoCommit(w, geo_commits));
  PrintRows("B. geo-correlated commit (California, f_i=1, f_g=1)", geo);

  // C: adaptive vs static daemon windows, lossless and with 1% uniform
  // message loss on the Table-I topology (Oregon -> California + Ireland).
  std::vector<uint64_t> static_windows =
      smoke ? std::vector<uint64_t>{4, 64}
            : std::vector<uint64_t>{1, 4, 16, 64};
  const uint64_t records_per_dest = smoke ? 40 : 120;
  const double lossy = 0.01;
  std::vector<DeliveryResult> delivery;
  for (double loss : {0.0, lossy}) {
    for (uint64_t w : static_windows) {
      delivery.push_back(
          RunDelivery(/*adaptive=*/false, w, loss, records_per_dest));
    }
    delivery.push_back(
        RunDelivery(/*adaptive=*/true, 64, loss, records_per_dest));
  }
  PrintDeliveryRows(
      "C. remote delivery, adaptive vs static daemon windows (Oregon -> "
      "California+Ireland)",
      delivery);

  std::ofstream out(out_path);
  out << "{\n  \"wan_pbft\": ";
  PutResults(out, wan);
  out << ",\n  \"geo_commit\": ";
  PutResults(out, geo);
  out << ",\n  \"delivery_adaptive\": ";
  PutDeliveryResults(out, delivery);
  out << "\n}\n";
  out.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  // Regression gate: the window-8 pipeline must beat stop-and-wait. The
  // full sweep additionally expects >= 4x on the WAN PBFT experiment.
  auto thpt = [](const std::vector<Result>& rs, uint64_t w) {
    for (const Result& r : rs) {
      if (r.window == w) return r.throughput_per_sec;
    }
    return 0.0;
  };
  bool ok = thpt(wan, 8) > thpt(wan, 1) && thpt(geo, 8) > thpt(geo, 1);
  if (!smoke) ok = ok && thpt(wan, 8) >= 4.0 * thpt(wan, 1);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: window-8 pipeline did not outperform window 1\n");
    return 1;
  }
  std::printf("pipeline speedup gate passed (w8/w1: wan %.2fx, geo %.2fx)\n",
              thpt(wan, 8) / thpt(wan, 1), thpt(geo, 8) / thpt(geo, 1));

  // Adaptive gate (section C): under loss the measured per-destination RTO
  // must beat every static window's fixed transmission_retry timer
  // strictly; lossless, adaptive must stay within 3% of the best static
  // configuration (it inherits the static window, so any gap is noise).
  auto best_static = [&](double loss) {
    double best = 0.0;
    for (const DeliveryResult& r : delivery) {
      if (r.loss == loss && r.mode != "adaptive") {
        best = std::max(best, r.throughput_per_sec);
      }
    }
    return best;
  };
  auto adaptive_thpt = [&](double loss) {
    for (const DeliveryResult& r : delivery) {
      if (r.loss == loss && r.mode == "adaptive") return r.throughput_per_sec;
    }
    return 0.0;
  };
  if (adaptive_thpt(lossy) <= best_static(lossy)) {
    std::fprintf(stderr,
                 "FAIL: adaptive (%.1f rec/s) did not beat best static "
                 "(%.1f rec/s) under %.0f%% loss\n",
                 adaptive_thpt(lossy), best_static(lossy), 100.0 * lossy);
    return 1;
  }
  if (adaptive_thpt(0.0) < 0.97 * best_static(0.0)) {
    std::fprintf(stderr,
                 "FAIL: lossless adaptive (%.1f rec/s) fell more than 3%% "
                 "behind best static (%.1f rec/s)\n",
                 adaptive_thpt(0.0), best_static(0.0));
    return 1;
  }
  std::printf(
      "adaptive window gate passed (lossy %.1f vs best static %.1f rec/s; "
      "lossless %.1f vs %.1f)\n",
      adaptive_thpt(lossy), best_static(lossy), adaptive_thpt(0.0),
      best_static(0.0));
  return 0;
}
