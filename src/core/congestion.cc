#include "core/congestion.h"

#include <utility>

#include "common/metrics.h"

namespace blockplane::core {

void CongestionGauge(std::map<std::string, int64_t>* out, const char* key,
                     int64_t value) {
  (*out)[key] = value;
}

WindowController::WindowController(const CongestionOptions& opts,
                                   uint64_t initial_window,
                                   sim::SimTime rtt_prior, std::string label)
    : opts_(opts),
      rtt_(rtt_prior),
      label_(std::move(label)),
      window_(0),
      // Slow start runs until the first decrease establishes a real
      // ssthresh; starting it at max_window means a small initial window
      // ramps exponentially instead of crawling toward the BDP.
      ssthresh_(opts.max_window) {
  window_ = Clamp(initial_window);
  min_window_seen_ = window_;
  congestion_stats().controllers_created++;
  registry_handle_ = metrics_registry().Register(
      "congestion." + label_, [this]() { return SnapshotGauges(); });
}

WindowController::~WindowController() {
  metrics_registry().Unregister(registry_handle_);
}

uint64_t WindowController::Clamp(uint64_t window) const {
  uint64_t lo = opts_.min_window < 1 ? 1 : opts_.min_window;
  if (window < lo) return lo;
  if (window > opts_.max_window) return opts_.max_window;
  return window;
}

uint64_t WindowController::spike_threshold() const { return 3; }

void WindowController::OnAck(sim::SimTime rtt) {
  rtt_.AddSample(rtt);
  ++rtt_samples_;
  congestion_stats().rtt_samples++;
  Grow();
}

void WindowController::OnAckNoSample() { Grow(); }

void WindowController::Grow() {
  if (window_ >= opts_.max_window) {
    ack_credit_ = 0;
    return;
  }
  if (window_ < ssthresh_) {
    // Slow start: +1 per ack (the window doubles every RTT).
    window_ = Clamp(window_ + 1);
    ++increases_;
    congestion_stats().increases++;
    return;
  }
  // Congestion avoidance: +1 per full window of acks.
  if (++ack_credit_ >= window_) {
    ack_credit_ = 0;
    window_ = Clamp(window_ + 1);
    ++increases_;
    congestion_stats().increases++;
  }
}

void WindowController::OnLoss(sim::SimTime now) {
  ++loss_events_;
  congestion_stats().loss_events++;
  // Head-of-line loss signals are bucketed into spike windows of
  // spike_threshold() RTOs: isolated timeouts retransmit (with the
  // adaptive timer) but keep the window; back-to-back head stalls — a
  // partition or a sustained burst fires one per RTO — cross the
  // threshold and mean the path is genuinely degraded.
  sim::SimTime rto = rtt_.Rto(opts_.min_rto);
  if (spike_count_ == 0 ||
      now - spike_started_ > static_cast<sim::SimTime>(spike_threshold()) *
                                 rto) {
    spike_started_ = now;
    spike_count_ = 0;
  }
  ++spike_count_;
  if (spike_count_ >= spike_threshold()) {
    Decrease(now, /*from_viewchange=*/false);
  }
}

void WindowController::OnViewChange(sim::SimTime now) {
  Decrease(now, /*from_viewchange=*/true);
}

void WindowController::Decrease(sim::SimTime now, bool from_viewchange) {
  // One decrease per RTO: a burst of correlated loss signals (every
  // in-flight item timing out at once) is one congestion event.
  sim::SimTime rto = rtt_.Rto(opts_.min_rto);
  if (last_decrease_ >= 0 && now - last_decrease_ < rto) return;
  last_decrease_ = now;
  spike_count_ = 0;
  ssthresh_ = Clamp(window_ / 2);
  window_ = ssthresh_;
  ack_credit_ = 0;
  if (window_ < min_window_seen_) min_window_seen_ = window_;
  ++decreases_;
  congestion_stats().decreases++;
  if (from_viewchange) congestion_stats().viewchange_decreases++;
}

sim::SimTime WindowController::RetryTimeout(sim::SimTime floor,
                                            sim::SimTime cap) const {
  sim::SimTime rto = rtt_.Rto(opts_.min_rto);
  if (rto < floor) rto = floor;
  if (rto > cap) rto = cap;
  return rto;
}

std::map<std::string, int64_t> WindowController::SnapshotGauges() const {
  std::map<std::string, int64_t> out;
  CongestionGauge(&out, "window", static_cast<int64_t>(window_));
  CongestionGauge(&out, "min_window_seen",
                  static_cast<int64_t>(min_window_seen_));
  CongestionGauge(&out, "srtt_us", rtt_.srtt() / 1000);
  CongestionGauge(&out, "rttvar_us", rtt_.rttvar() / 1000);
  CongestionGauge(&out, "rtt_samples", rtt_samples_);
  CongestionGauge(&out, "increases", increases_);
  CongestionGauge(&out, "decreases", decreases_);
  CongestionGauge(&out, "loss_events", loss_events_);
  return out;
}

}  // namespace blockplane::core
