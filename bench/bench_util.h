// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef BLOCKPLANE_BENCH_BENCH_UTIL_H_
#define BLOCKPLANE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "sim/sim_time.h"

namespace blockplane::bench {

/// Prints a banner identifying which table/figure a binary reproduces.
inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_summary) {
  std::printf("=================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  paper: %s\n", paper_summary.c_str());
  std::printf("=================================================================\n");
}

/// Prints one aligned row of a results table.
template <typename... Args>
void Row(const char* format, Args... args) {
  std::printf(format, args...);
  std::printf("\n");
}

/// A payload of `kilobytes` KB of deterministic filler ("an arbitrary set
/// of commands", per the paper's workload).
inline Bytes MakeBatch(size_t kilobytes) {
  Bytes batch(kilobytes * 1000);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  return batch;
}

}  // namespace blockplane::bench

#endif  // BLOCKPLANE_BENCH_BENCH_UTIL_H_
