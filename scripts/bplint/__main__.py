"""bplint - Blockplane's project-invariant static-analysis suite.

Usage:
  python3 scripts/bplint [paths...] [options]

  paths                 files or directories to analyze, relative to
                        --root (default: src bench)
  -p, --build DIR       CMake build directory; the compile-commands
                        database there widens the file set to every
                        translation unit the build knows about
  --root DIR            project root diagnostics are reported relative
                        to (default: the current directory)
  --disable RULES       comma-separated rule ids to disable
                        (e.g. --disable BP003,BP005)
  --list-rules          print the rule catalog and exit
  --no-clang            skip the optional libclang refinement backend
  -j, --jobs N          analyze files on N worker processes (the rule
                        passes stay serial over the merged project, so
                        diagnostics are byte-identical to -j1)
  --since-git [REF]     report only diagnostics in files changed since
                        REF (default HEAD, plus uncommitted/untracked);
                        the whole project is still analyzed so
                        cross-file rules keep their full view. The REF
                        is optional, so write --since-git=REF (or put
                        paths first) when also listing paths.
  --sarif FILE          also write diagnostics as SARIF 2.1.0 to FILE
                        ('-' for stdout) for GitHub code scanning

Exit status: 0 when no diagnostics, 1 otherwise, 2 on usage errors.
Diagnostics go to stdout as sorted `path:line: RULE: message` lines and
are byte-identical across runs and --jobs settings; the summary goes to
stderr.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from engine import run  # noqa: E402
from rules import ALL_RULES, RULE_DESCRIPTIONS  # noqa: E402


def _git_changed_files(root: str, ref: str) -> set:
    """Root-relative paths changed since `ref`, plus uncommitted and
    untracked files — 'what this branch/worktree touches'."""
    changed = set()
    cmds = [
        ["git", "diff", "--name-only", ref],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for cmd in cmds:
        proc = subprocess.run(cmd, cwd=root, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(proc.stderr.strip() or
                               f"{' '.join(cmd)} failed")
        changed.update(line.strip() for line in proc.stdout.splitlines()
                       if line.strip())
    return changed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bplint",
        description="Blockplane determinism / wire-coverage / entropy-"
                    "hygiene static analysis")
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("-p", "--build", dest="build", default=None)
    parser.add_argument("--root", default=".")
    parser.add_argument("--disable", default="")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--no-clang", action="store_true")
    parser.add_argument("-j", "--jobs", type=int, default=1)
    parser.add_argument("--since-git", nargs="?", const="HEAD", default=None,
                        metavar="REF")
    parser.add_argument("--sarif", default=None, metavar="FILE")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULE_DESCRIPTIONS:
            print(f"{rule}  {desc}")
        return 0

    disabled = {r.strip() for r in args.disable.split(",") if r.strip()}
    unknown = disabled - set(ALL_RULES)
    if unknown:
        print(f"bplint: unknown rule id(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths or ["src", "bench"]
    root = args.root
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if not os.path.exists(full):
            print(f"bplint: no such path: {p}", file=sys.stderr)
            return 2

    if args.jobs < 1:
        print("bplint: --jobs must be >= 1", file=sys.stderr)
        return 2

    changed_only = None
    if args.since_git is not None:
        try:
            changed_only = _git_changed_files(root, args.since_git)
        except (RuntimeError, OSError) as exc:
            print(f"bplint: --since-git: {exc}", file=sys.stderr)
            return 2

    diags, nfiles = run(paths, root, compile_commands_dir=args.build,
                        disabled=disabled, use_clang=not args.no_clang,
                        jobs=args.jobs, changed_only=changed_only)
    for d in diags:
        print(d.render())
    if args.sarif:
        from sarif import to_sarif
        text = to_sarif(diags)
        if args.sarif == "-":
            sys.stdout.write(text)
        else:
            with open(args.sarif, "w", encoding="utf-8") as fh:
                fh.write(text)
    print(f"bplint: {nfiles} files analyzed, {len(diags)} diagnostic(s)",
          file=sys.stderr)
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
