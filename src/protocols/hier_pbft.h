// Hierarchical PBFT (Fig. 7's third baseline): PBFT locally within each
// datacenter, with the local SMR logs used to communicate events committed
// globally via a paxos-style exchange — "the same communication patterns
// of Blockplane-paxos but without the overhead of API separation".
//
// Concretely, a replication round from the leader site is:
//   1. locally PBFT-commit the proposal at the leader site's unit,
//   2. push the value to every other site's coordinator (raw wide-area
//      message — no signature-collection round, no separate send record),
//   3. each remote site locally PBFT-commits the received value and acks,
//   4. on a majority of acks, the leader site locally PBFT-commits the
//      decision.
#ifndef BLOCKPLANE_PROTOCOLS_HIER_PBFT_H_
#define BLOCKPLANE_PROTOCOLS_HIER_PBFT_H_

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "crypto/signer.h"
#include "pbft/client.h"
#include "pbft/replica.h"

namespace blockplane::protocols {

class HierPbft {
 public:
  /// Builds a 3f+1-node PBFT unit per site plus a per-site coordinator.
  HierPbft(net::Network* network, crypto::KeyStore* keys, int f,
           bool sign_messages = true);
  BP_DISALLOW_COPY_AND_ASSIGN(HierPbft);

  /// Runs one global replication round led by `leader_site`; `done` fires
  /// when the decision is locally committed at the leader site.
  void Replicate(net::SiteId leader_site, Bytes value,
                 std::function<void(uint64_t round)> done);

  /// Rounds a site knows to be decided.
  uint64_t decided_rounds(net::SiteId site) const {
    return coordinators_.at(site)->decided;
  }

 private:
  struct Coordinator : public net::Host {
    HierPbft* owner = nullptr;
    net::SiteId site = -1;
    net::NodeId self;
    std::unique_ptr<pbft::PbftClient> client;
    uint64_t decided = 0;
    // Leader-side round state.
    uint64_t round = 0;
    std::set<net::SiteId> acks;
    std::function<void(uint64_t)> done;

    void HandleMessage(const net::Message& msg) override;
  };

  net::Network* network_;
  int majority_;
  std::map<net::SiteId,
           std::vector<std::unique_ptr<pbft::PbftReplica>>>
      units_;
  std::map<net::SiteId, std::unique_ptr<Coordinator>> coordinators_;
};

}  // namespace blockplane::protocols

#endif  // BLOCKPLANE_PROTOCOLS_HIER_PBFT_H_
