#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace blockplane {

HotPathStats& hotpath_stats() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static HotPathStats stats;
  return stats;
}

TransportStats& transport_stats() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static TransportStats stats;
  return stats;
}

PipelineStats& pipeline_stats() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static PipelineStats stats;
  return stats;
}

RobustnessStats& robustness_stats() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static RobustnessStats stats;
  return stats;
}

RunnerStats& runner_stats() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static RunnerStats stats;
  return stats;
}

CongestionStats& congestion_stats() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static CongestionStats stats;
  return stats;
}

QcStats& qc_stats() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static QcStats stats;
  return stats;
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry::MetricsRegistry() {
  // Built-in groups: the process-wide counter blocks.
  Register(
      "hotpath",
      []() {
        const HotPathStats& s = hotpath_stats();
        return std::map<std::string, int64_t>{
            {"sig_cache_hits", s.sig_cache_hits},
            {"sig_cache_misses", s.sig_cache_misses},
            {"encodes_elided", s.encodes_elided},
            {"bytes_copied_saved", s.bytes_copied_saved},
            {"hmac_precomputed_ops", s.hmac_precomputed_ops},
            {"verify_cache_evictions", s.verify_cache_evictions},
        };
      },
      []() { hotpath_stats().Reset(); });
  Register(
      "transport",
      []() {
        const TransportStats& s = transport_stats();
        return std::map<std::string, int64_t>{
            {"frames_sent", s.frames_sent},
            {"retransmissions", s.retransmissions},
            {"discarded_corrupt", s.discarded_corrupt},
            {"frames_abandoned", s.frames_abandoned},
            {"bytes_copied_saved", s.bytes_copied_saved},
            {"rtt_samples", s.rtt_samples},
        };
      },
      []() { transport_stats().Reset(); });
  Register(
      "pipeline",
      []() {
        const PipelineStats& s = pipeline_stats();
        return std::map<std::string, int64_t>{
            {"pbft_proposals", s.pbft_proposals},
            {"pbft_inflight_peak", s.pbft_inflight_peak},
            {"pbft_admission_rejects", s.pbft_admission_rejects},
            {"pbft_window_stalls", s.pbft_window_stalls},
            {"pbft_ooo_commits", s.pbft_ooo_commits},
            {"participant_inflight_peak", s.participant_inflight_peak},
            {"participant_ooo_completions", s.participant_ooo_completions},
            {"batcher_inflight_peak", s.batcher_inflight_peak},
            {"participant_window_stalls", s.participant_window_stalls},
            {"daemon_window_stalls", s.daemon_window_stalls},
        };
      },
      []() { pipeline_stats().Reset(); });
  Register(
      "robustness",
      []() {
        const RobustnessStats& s = robustness_stats();
        return std::map<std::string, int64_t>{
            {"viewchange_attempts", s.viewchange_attempts},
            {"viewchange_backoff_ms", s.viewchange_backoff_ms},
            {"geo_quarantined", s.geo_quarantined},
            {"geo_quarantine_released", s.geo_quarantine_released},
            {"geo_quarantine_dropped", s.geo_quarantine_dropped},
            {"geo_gap_notices", s.geo_gap_notices},
            {"geo_gap_nudges", s.geo_gap_nudges},
            {"mirror_gap_fetches", s.mirror_gap_fetches},
            {"mirror_gap_filled", s.mirror_gap_filled},
        };
      },
      []() { robustness_stats().Reset(); });
  Register(
      "runner",
      []() {
        const RunnerStats& s = runner_stats();
        return std::map<std::string, int64_t>{
            {"prologues_submitted", s.prologues_submitted},
            {"epilogues_retired", s.epilogues_retired},
            {"prologues_dropped", s.prologues_dropped},
            {"backpressure_waits", s.backpressure_waits},
            {"queue_depth_peak", s.queue_depth_peak},
            {"batch_tasks", s.batch_tasks},
        };
      },
      []() { runner_stats().Reset(); });
  Register(
      "congestion",
      []() {
        const CongestionStats& s = congestion_stats();
        return std::map<std::string, int64_t>{
            {"controllers_created", s.controllers_created},
            {"rtt_samples", s.rtt_samples},
            {"increases", s.increases},
            {"decreases", s.decreases},
            {"loss_events", s.loss_events},
            {"viewchange_decreases", s.viewchange_decreases},
        };
      },
      []() { congestion_stats().Reset(); });
  Register(
      "qc",
      []() {
        const QcStats& s = qc_stats();
        return std::map<std::string, int64_t>{
            {"certs_built", s.certs_built},
            {"certs_verified", s.certs_verified},
            {"cache_hits", s.cache_hits},
            {"verifies_elided", s.verifies_elided},
            {"proof_sig_verifies", s.proof_sig_verifies},
            {"wan_proof_bytes", s.wan_proof_bytes},
        };
      },
      []() { qc_stats().Reset(); });
}

int64_t MetricsRegistry::Register(std::string name, SnapshotFn snapshot,
                                  ResetFn reset) {
  int64_t handle = next_handle_++;
  entries_[handle] = Entry{std::move(name), std::move(snapshot),
                           std::move(reset)};
  return handle;
}

void MetricsRegistry::Unregister(int64_t handle) { entries_.erase(handle); }

std::map<std::string, std::map<std::string, int64_t>>
MetricsRegistry::Snapshot() const {
  std::map<std::string, std::map<std::string, int64_t>> out;
  // First pass: find duplicated group names so they can be suffixed.
  std::map<std::string, int> name_counts;
  for (const auto& [handle, entry] : entries_) ++name_counts[entry.name];
  for (const auto& [handle, entry] : entries_) {
    std::string key = entry.name;
    if (name_counts[entry.name] > 1) {
      key += "#" + std::to_string(handle);
    }
    out[key] = entry.snapshot ? entry.snapshot()
                              : std::map<std::string, int64_t>{};
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  for (auto& [handle, entry] : entries_) {
    if (entry.reset) entry.reset();
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n";
  auto snapshot = Snapshot();
  bool first_group = true;
  for (const auto& [group, counters] : snapshot) {
    if (!first_group) out += ",\n";
    first_group = false;
    out += "  \"" + group + "\": {";
    bool first_counter = true;
    for (const auto& [name, value] : counters) {
      if (!first_counter) out += ",";
      first_counter = false;
      out += "\n    \"" + name + "\": " + std::to_string(value);
    }
    out += counters.empty() ? "}" : "\n  }";
  }
  out += "\n}\n";
  return out;
}

MetricsRegistry& metrics_registry() {
  // bplint:allow(BP007) submit/serial-thread-owned counter block (metrics.h); worker prologues call only *Detached paths, and the lone Verify chain is runner->serial()-gated
  static MetricsRegistry registry;
  return registry;
}

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  BP_CHECK(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (p <= 0.0) return samples_.front();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

}  // namespace blockplane
