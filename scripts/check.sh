#!/usr/bin/env bash
# Tier-1 verification gate, meant to be run before every merge:
#
#   1. Release-ish build + full ctest suite (the tier-1 contract from
#      ROADMAP.md: every test passing, determinism bit-for-bit).
#   2. Metrics snapshot: bench_metrics_dump drives one geo commit + one
#      cross-site send through the full pipeline and archives every
#      registered counter group as build/METRICS_dump.json (validated as
#      JSON when python3 is available).
#   3. Pipeline smoke: bench_pipeline --smoke compares window 1 vs 8 on
#      the Table-I WAN matrix and fails unless window 8 is strictly
#      faster (the DESIGN.md §9 pipelining regression gate), then sweeps
#      adaptive vs static daemon windows over the remote-delivery path
#      with and without injected loss and fails unless adaptive beats
#      the best static window under loss while matching it lossless
#      (the DESIGN.md §13 congestion-control gate).
#   3b. Parallel-runtime smoke: bench_parallel_runtime --smoke sweeps the
#       Runner seam (inline + 1/2/4/8 workers, DESIGN.md §12), checking
#       threaded results element-for-element against inline; the >=3x
#       scaling gate is enforced only on hosts with >= 4 hardware
#       threads (the JSON records the core count either way).
#       Every bench pass MUST refresh its repo-root BENCH_*.json copy —
#       a bench that ran without updating the versioned results fails
#       the gate (refresh_bench below).
#   3c. Quorum-cert ablation smoke: bench_fig6_communication --qc runs
#       the same send workload with real crypto, QC-off vs QC-on, and
#       fails unless QC-on performs at most half the individual MAC
#       verifications and ships strictly fewer WAN proof bytes (the
#       DESIGN.md §14 aggregation gate). Writes BENCH_qc.json.
#   4a. Static analysis: clang-tidy (.clang-tidy at the repo root; the
#       gate set is bugprone-* + performance-*) over src/ using the
#       compile database — skipped with a notice when clang-tidy is not
#       installed.
#   4b. bplint: the project-invariant static-analysis suite
#       (scripts/bplint; rules BP001–BP011 — determinism, entropy
#       hygiene, wire-field coverage, dispatch exhaustiveness, integer
#       consensus math, metrics/trace hygiene, runner prologue-path
#       state, discarded Status, lock-scope discipline, timer hygiene,
#       bounded decode; the entropy/float/prologue rules chase call
#       chains across translation units via the project call graph).
#       Zero unsuppressed diagnostics required; the serial run, a
#       rerun, and a --jobs=4 run must all be byte-identical; and the
#       whole-tree pass must finish inside its 1.5 s budget. Runs even
#       under --fast: it is self-contained Python.
#   5. The same suite under ASan+UBSan in a separate Debug build tree
#      (build-asan/). The zero-copy payload paths share one allocation
#      across broadcast fan-out, retransmission buffers, and reorder
#      buffers — exactly the kind of lifetime bug a sanitizer catches and
#      a passing test hides.
#
# Usage: scripts/check.sh [--fast|--chaos-smoke|--tsan]
#   --fast         passes 1–3b + bplint; skip clang-tidy and sanitizers.
#   --chaos-smoke  quick chaos gate (<60s): build, then run the chaos
#                  regression + a reduced soak (2 seeds per template via
#                  CHAOS_SOAK_SEEDS) and the fig-8 chaos bench variant,
#                  which fails unless throughput recovers after the
#                  scheduled site outage. Failing campaigns print their
#                  JSON for seed-exact reproduction (see EXPERIMENTS.md).
#   --tsan         ThreadSanitizer gate for the Runner seam: Debug build
#                  with -fsanitize=thread (build-tsan/), then runner_test,
#                  pbft_test, and bench_parallel_runtime --smoke. The
#                  worker threads touch only prologue-captured state, so
#                  any TSan report is a seam violation.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS_SMOKE="$(nproc 2>/dev/null || echo 4)"

# Copies build/$1 to the repo root, failing when the bench pass that was
# supposed to produce it did not: versioned bench results must never go
# stale relative to a bench run that succeeded.
refresh_bench() {
  local name="$1"
  [[ -s "build/$name" ]] \
    || { echo "$name missing after its bench pass — not refreshed"; exit 1; }
  cp "build/$name" "$name"
  cmp -s "build/$name" "$name" \
    || { echo "$name at the repo root does not match the fresh run"; exit 1; }
  echo "refreshed $name"
}

if [[ "${1:-}" == "--tsan" ]]; then
  echo "=== tsan: Debug build with -fsanitize=thread ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    >/dev/null
  cmake --build build-tsan -j "$JOBS_SMOKE" \
    --target runner_test pbft_test bench_parallel_runtime
  echo "=== tsan: runner_test ==="
  build-tsan/tests/runner_test
  echo "=== tsan: pbft_test ==="
  build-tsan/tests/pbft_test
  echo "=== tsan: bench_parallel_runtime --smoke ==="
  build-tsan/bench/bench_parallel_runtime --smoke \
    --out=build-tsan/BENCH_parallel.json
  echo "=== tsan pass complete ==="
  exit 0
fi
if [[ "${1:-}" == "--chaos-smoke" ]]; then
  echo "=== chaos smoke: build ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS_SMOKE"
  echo "=== chaos smoke: regression + reduced soak ==="
  build/tests/chaos_test
  CHAOS_SOAK_SEEDS=2 build/tests/chaos_soak_test
  echo "=== chaos smoke: fig-8 chaos bench (outage recovery gate) ==="
  build/bench/bench_fig8_failures --chaos --out=build/BENCH_chaos.json
  refresh_bench BENCH_chaos.json
  echo "=== chaos smoke passed ==="
  exit 0
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== pass 1: tier-1 build + tests (warnings are errors) ==="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DBLOCKPLANE_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

# Pass 4b (bplint) is cheap and dependency-free, so it also runs in --fast
# builds. The serial run, a rerun, and a --jobs=4 run must all agree byte
# for byte: a lint whose output wobbles — across time or across worker
# counts — cannot gate a determinism-obsessed repo. The timed first run
# must also stay inside the 1.5 s whole-tree budget that keeps the gate
# viable as a pre-commit hook.
run_bplint() {
  echo "=== pass 4b: bplint (BP001-BP011 project invariants) ==="
  local t0 t1 elapsed_ms
  t0="$(date +%s%N)"
  python3 scripts/bplint -p build src bench | tee build/bplint.out
  t1="$(date +%s%N)"
  elapsed_ms=$(( (t1 - t0) / 1000000 ))
  python3 scripts/bplint -p build src bench > build/bplint.rerun.out
  cmp build/bplint.out build/bplint.rerun.out \
    || { echo "bplint output is not byte-identical across runs"; exit 1; }
  python3 scripts/bplint -p build --jobs 4 src bench > build/bplint.jobs.out
  cmp build/bplint.out build/bplint.jobs.out \
    || { echo "bplint --jobs=4 output differs from the serial run"; exit 1; }
  [[ "$elapsed_ms" -lt 1500 ]] \
    || { echo "bplint took ${elapsed_ms}ms, over the 1500ms budget"; exit 1; }
  echo "bplint clean (${elapsed_ms}ms; serial == rerun == --jobs=4)"
}

echo "=== pass 2: metrics registry snapshot ==="
build/bench/bench_metrics_dump --out=build/METRICS_dump.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open('build/METRICS_dump.json'))" \
    || { echo "METRICS_dump.json is not valid JSON"; exit 1; }
fi
echo "metrics snapshot OK (build/METRICS_dump.json)"

echo "=== pass 3: pipeline smoke (window 1 vs 8, adaptive vs static) ==="
build/bench/bench_pipeline --smoke --out=build/BENCH_pipeline.json
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open('build/BENCH_pipeline.json'))" \
    || { echo "BENCH_pipeline.json is not valid JSON"; exit 1; }
fi
refresh_bench BENCH_pipeline.json
echo "pipeline smoke OK (BENCH_pipeline.json)"

echo "=== pass 3b: parallel-runtime smoke (Runner worker sweep) ==="
build/bench/bench_parallel_runtime --smoke --out=build/BENCH_parallel.json
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open('build/BENCH_parallel.json'))" \
    || { echo "BENCH_parallel.json is not valid JSON"; exit 1; }
fi
refresh_bench BENCH_parallel.json
echo "parallel-runtime smoke OK (BENCH_parallel.json)"

echo "=== pass 3c: quorum-cert ablation smoke (QC gate, DESIGN.md §14) ==="
# QC-on must perform at most half the individual MAC verifications of
# QC-off and ship strictly fewer WAN proof bytes; the bench exits non-zero
# otherwise.
build/bench/bench_fig6_communication --qc --out=build/BENCH_qc.json
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open('build/BENCH_qc.json'))" \
    || { echo "BENCH_qc.json is not valid JSON"; exit 1; }
fi
refresh_bench BENCH_qc.json
echo "qc ablation smoke OK (BENCH_qc.json)"

if [[ "$FAST" == "1" ]]; then
  run_bplint
  echo "=== --fast: skipping clang-tidy and sanitizer passes ==="
  exit 0
fi

echo "=== pass 4a: clang-tidy (bugprone-*, performance-*) ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # The full check set (with readability/modernize/misc additions) lives
  # in .clang-tidy for IDEs and `run-clang-tidy`; the merge gate enforces
  # the bugprone-* + performance-* core.
  mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
  clang-tidy -p build \
    --quiet \
    --warnings-as-errors='bugprone-*,performance-*' \
    --checks='-*,bugprone-*,performance-*,-bugprone-easily-swappable-parameters,-bugprone-exception-escape' \
    "${TIDY_SOURCES[@]}"
  echo "clang-tidy clean"
else
  echo "clang-tidy not installed; skipping static analysis pass"
fi

run_bplint

echo "=== pass 5: ASan+UBSan build + tests ==="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  >/dev/null
cmake --build build-asan -j "$JOBS"
# The suite includes one sanitized chaos-soak configuration: a reduced
# seed count keeps the fault-campaign sweep affordable under ASan while
# still exercising every schedule template with full instrumentation.
ASAN_OPTIONS=detect_leaks=1 CHAOS_SOAK_SEEDS=4 \
  ctest --test-dir build-asan --output-on-failure

echo "=== all checks passed ==="
