// A byzantized multi-site bank ledger — the class of "finances and mission
// critical operations, such as e-commerce and banking applications" the
// paper targets (§VI-D).
//
// Each participant (a bank branch / region) keeps accounts. Local transfers
// are log-committed; cross-site wires are sent through Blockplane's
// communication interface. Verification routines stop overdrafts and
// fabricated incoming wires: a byzantine Blockplane node cannot mint money
// because f_i+1 honest-inclusive signatures must back every incoming wire
// and every local transfer must pass the balance check on 2f_i+1 replicas.
#ifndef BLOCKPLANE_PROTOCOLS_BANK_H_
#define BLOCKPLANE_PROTOCOLS_BANK_H_

#include <map>
#include <unordered_map>
#include <memory>
#include <string>

#include "core/deployment.h"

namespace blockplane::protocols {

class BankLedger {
 public:
  static constexpr uint64_t kVerifyTransfer = 31;
  static constexpr uint64_t kVerifyWire = 32;

  using Callback = std::function<void(Status)>;

  explicit BankLedger(core::Deployment* deployment);
  BP_DISALLOW_COPY_AND_ASSIGN(BankLedger);

  /// Credits a new account (a deposit; always valid).
  void Deposit(net::SiteId site, const std::string& account, int64_t amount,
               Callback done = nullptr);

  /// Transfers between two accounts at the same site; fails verification
  /// (and never commits) on insufficient funds.
  void Transfer(net::SiteId site, const std::string& from,
                const std::string& to, int64_t amount,
                Callback done = nullptr);

  /// Wires money to an account at another site: debits locally, then
  /// sends the credit through Blockplane.
  void Wire(net::SiteId site, const std::string& from, net::SiteId dest,
            const std::string& to, int64_t amount, Callback done = nullptr);

  /// Balance as seen by the participant's user-space state.
  int64_t Balance(net::SiteId site, const std::string& account) const;

  /// Balance according to node `index`'s replica (for divergence checks).
  int64_t NodeBalance(net::SiteId site, int index,
                      const std::string& account) const;

 private:
  struct Accounts {
    std::map<std::string, int64_t> balance;
    /// Wires debited locally but not yet known delivered (in flight).
    int64_t outbound = 0;

    bool Apply(const core::LogRecord& record);
    bool Check(const core::LogRecord& record) const;
  };

  void InstallAt(net::SiteId site);

  core::Deployment* deployment_;
  std::map<net::SiteId, Accounts> user_state_;
  std::unordered_map<net::NodeId, std::shared_ptr<Accounts>, net::NodeIdHash>
      node_state_;
};

}  // namespace blockplane::protocols

#endif  // BLOCKPLANE_PROTOCOLS_BANK_H_
