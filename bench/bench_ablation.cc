// Ablations of Blockplane's design choices (see DESIGN.md §5):
//
//   A. Wide-area message complexity per consensus round — the hierarchy's
//      core claim: byzantine masking stays local, so the WAN traffic of
//      Blockplane-paxos looks like paxos's, not PBFT's.
//   B. Communication-daemon pipelining — serializing transmissions per
//      destination (window = 1) adds an extra cross-round RTT under load.
//   C. Crypto on/off — what the paper's prototype omitted: the cost of
//      real SHA-256 digests and HMAC signatures on local commitment.
//   D. Read strategies (§VI-A) — read-1 vs 2f+1-quorum vs linearizable.
//   F. Quorum-certificate aggregation (DESIGN.md §14) — compact certs vs
//      f_i+1 signature vectors on the cross-site wire.
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"
#include "paxos/node.h"
#include "protocols/bp_paxos.h"
#include "protocols/flat_pbft.h"

namespace blockplane {
namespace {

net::NetworkOptions BenchNet() {
  net::NetworkOptions options;
  options.intra_site_one_way = sim::Microseconds(100);
  options.per_message_cpu = sim::Microseconds(25);
  return options;
}

// --- A: WAN messages per round -------------------------------------------------

void AblateWanMessages() {
  std::printf("--- A. wide-area traffic per replicated command "
              "(leader: Virginia, 1 KB commands, mean of 20) ---\n");
  std::printf("%20s %16s %14s\n", "protocol", "WAN messages", "WAN KB");
  constexpr int kRounds = 20;

  {  // paxos
    sim::Simulator simulator(1);
    net::Network network(&simulator, net::Topology::Aws4(), BenchNet());
    paxos::PaxosConfig config;
    for (int site = 0; site < 4; ++site) config.nodes.push_back({site, 0});
    std::vector<std::unique_ptr<paxos::PaxosNode>> nodes;
    uint64_t committed = 0;
    for (int site = 0; site < 4; ++site) {
      auto node = std::make_unique<paxos::PaxosNode>(
          &network, config, config.nodes[site],
          [&, site](uint64_t, const Bytes&) {
            if (site == net::kVirginia) ++committed;
          });
      node->RegisterWithNetwork();
      nodes.push_back(std::move(node));
    }
    nodes[net::kVirginia]->StartLeaderElection();
    simulator.RunUntilCondition(
        [&] { return nodes[net::kVirginia]->IsLeader(); }, sim::Seconds(10));
    network.ResetCounters();
    for (int i = 0; i < kRounds; ++i) {
      uint64_t target = committed + 1;
      nodes[net::kVirginia]->Submit(bench::MakeBatch(1));
      simulator.RunUntilCondition([&] { return committed >= target; },
                                  simulator.Now() + sim::Seconds(10));
    }
    simulator.RunFor(sim::Seconds(1));
    std::printf("%20s %16.1f %14.1f\n", "paxos",
                static_cast<double>(network.counters().Get("wan_messages")) /
                    kRounds,
                static_cast<double>(network.counters().Get("wan_bytes")) /
                    kRounds / 1000.0);
  }

  {  // Blockplane-paxos
    sim::Simulator simulator(1);
    core::BlockplaneOptions options;
    options.sign_messages = false;
    options.hash_payloads = false;
    core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                                BenchNet());
    protocols::BpPaxos paxos(&deployment);
    bool elected = false;
    paxos.LeaderElection(net::kVirginia, [&](bool won) { elected = won; });
    simulator.RunUntilCondition([&] { return elected; }, sim::Seconds(60));
    deployment.network()->ResetCounters();
    for (int i = 0; i < kRounds; ++i) {
      bool done = false;
      paxos.Replicate(net::kVirginia, bench::MakeBatch(1),
                      [&](bool) { done = true; });
      simulator.RunUntilCondition([&] { return done; },
                                  simulator.Now() + sim::Seconds(10));
    }
    simulator.RunFor(sim::Seconds(1));
    const CounterSet& counters = deployment.network()->counters();
    std::printf("%20s %16.1f %14.1f\n", "Blockplane-paxos",
                static_cast<double>(counters.Get("wan_messages")) / kRounds,
                static_cast<double>(counters.Get("wan_bytes")) / kRounds /
                    1000.0);
  }

  {  // flat PBFT
    sim::Simulator simulator(1);
    net::Network network(&simulator, net::Topology::Aws4(), BenchNet());
    crypto::KeyStore keys;
    protocols::FlatPbft pbft(&network, &keys, net::kVirginia,
                             /*sign_messages=*/false);
    network.ResetCounters();
    for (int i = 0; i < kRounds; ++i) {
      bool done = false;
      pbft.Commit(bench::MakeBatch(1), [&](uint64_t) { done = true; });
      simulator.RunUntilCondition([&] { return done; },
                                  simulator.Now() + sim::Seconds(10));
    }
    simulator.RunFor(sim::Seconds(1));
    std::printf("%20s %16.1f %14.1f\n", "flat PBFT",
                static_cast<double>(network.counters().Get("wan_messages")) /
                    kRounds,
                static_cast<double>(network.counters().Get("wan_bytes")) /
                    kRounds / 1000.0);
  }
  std::printf(
      "(Blockplane keeps paxos's one-WAN-round-trip critical path but pays\n"
      " more raw WAN messages: each transmission goes to f_i+1 receivers,\n"
      " is acked by f_i+1 nodes, and reserves keep polling. Flat PBFT sends\n"
      " fewer messages yet needs three sequential WAN phases - which is\n"
      " why its latency in Fig. 7 is far worse.)\n\n");
}

// --- B: daemon pipelining --------------------------------------------------------

void AblatePipelining() {
  std::printf("--- B. communication-daemon pipelining: 10 back-to-back "
              "messages California -> Virginia ---\n");
  std::printf("%14s %22s\n", "window", "total delivery (ms)");
  for (size_t window : {size_t{1}, size_t{4}, size_t{32}}) {
    sim::Simulator simulator(1);
    core::BlockplaneOptions options;
    options.sign_messages = false;
    options.hash_payloads = false;
    options.daemon_window = window;
    core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                                BenchNet());
    for (int i = 0; i < 10; ++i) {
      deployment.participant(net::kCalifornia)
          ->Send(net::kVirginia, bench::MakeBatch(1), 0, nullptr);
    }
    int received = 0;
    deployment.participant(net::kVirginia)
        ->SetReceiveHandler(
            [&](net::SiteId, const Bytes&) { ++received; });
    sim::SimTime start = simulator.Now();
    simulator.RunUntilCondition([&] { return received == 10; },
                                sim::Seconds(60));
    std::printf("%14zu %22.1f\n", window,
                sim::ToMillis(simulator.Now() - start));
  }
  std::printf("(window=1 pays ~1 extra RTT per queued message.)\n\n");
}

// --- C: crypto cost ---------------------------------------------------------------

void AblateCrypto() {
  std::printf("--- C. real crypto vs the paper's prototype mode "
              "(local commit, 100 KB batches) ---\n");
  std::printf("%24s %14s\n", "mode", "latency (ms)");
  for (bool crypto_on : {false, true}) {
    sim::Simulator simulator(1);
    core::BlockplaneOptions options;
    options.sign_messages = crypto_on;
    options.hash_payloads = crypto_on;
    options.checkpoint_interval = 8;
    options.prune_applied_log = 8;
    core::Deployment deployment(&simulator,
                                net::Topology::SingleSite("Virginia"),
                                options, BenchNet());
    Bytes batch = bench::MakeBatch(100);
    Histogram latency_ms;
    for (int i = 0; i < 120; ++i) {
      bool done = false;
      sim::SimTime start = simulator.Now();
      deployment.participant(0)->LogCommit(Bytes(batch), 0,
                                           [&](uint64_t) { done = true; });
      simulator.RunUntilCondition([&] { return done; },
                                  simulator.Now() + sim::Seconds(10));
      if (i >= 20) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
    }
    std::printf("%24s %14.2f\n",
                crypto_on ? "SHA-256 + HMAC signatures" : "paper mode (none)",
                latency_ms.Mean());
  }
  std::printf("(simulated network time is identical; the real crypto cost "
              "is host CPU, visible in bench_micro.)\n\n");
}

// --- E: resource & message cost summary (§VI-D) ---------------------------------

void AblateCosts() {
  std::printf("--- E. performance and monetary costs (SVI-D): resources "
              "per deployment, traffic per local commit ---\n");
  std::printf("%6s %14s %16s %18s\n", "f_i", "nodes/site",
              "LAN msgs/commit", "LAN KB/commit");
  for (int fi = 1; fi <= 3; ++fi) {
    sim::Simulator simulator(1);
    core::BlockplaneOptions options;
    options.fi = fi;
    options.sign_messages = false;
    options.hash_payloads = false;
    core::Deployment deployment(&simulator,
                                net::Topology::SingleSite("Virginia"),
                                options, BenchNet());
    constexpr int kCommits = 50;
    int completed = 0;
    deployment.network()->ResetCounters();
    for (int i = 0; i < kCommits; ++i) {
      deployment.participant(0)->LogCommit(bench::MakeBatch(1), 0,
                                           [&](uint64_t) { ++completed; });
    }
    simulator.RunUntilCondition([&] { return completed == kCommits; },
                                sim::Seconds(60));
    const CounterSet& counters = deployment.network()->counters();
    std::printf("%6d %14d %16.1f %18.2f\n", fi, 3 * fi + 1,
                static_cast<double>(counters.Get("lan_messages")) / kCommits,
                static_cast<double>(counters.Get("lan_bytes")) / kCommits /
                    1000.0);
  }
  std::printf("(the paper's SVI-D: 3*f_i extra nodes per participant plus "
              "the three-phase commit traffic\n are the monetary price of "
              "byzantizing; traffic grows quadratically with the unit "
              "size.)\n\n");
}

// --- F: quorum-certificate aggregation (DESIGN.md §14) ---------------------------

void AblateQuorumCerts() {
  std::printf("--- F. quorum certificates vs signature vectors "
              "(California -> Virginia sends, real crypto) ---\n");
  std::printf("%6s %16s %16s %16s\n", "qc", "WAN KB/commit",
              "proof B/commit", "MAC verifies");
  constexpr int kMessages = 20;
  for (bool qc_on : {false, true}) {
    qc_stats().Reset();
    sim::Simulator simulator(1);
    core::BlockplaneOptions options;
    options.fi = 1;
    options.sign_messages = true;
    options.hash_payloads = true;
    options.qc.enabled = qc_on;
    core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                                BenchNet());
    core::BlockplaneNode* daemon_host =
        deployment.node(net::kCalifornia, 0);
    for (int i = 0; i < kMessages; ++i) {
      deployment.participant(net::kCalifornia)
          ->Send(net::kVirginia, bench::MakeBatch(1), 0, nullptr);
    }
    simulator.RunUntilCondition(
        [&] {
          return daemon_host->daemon_acked(net::kVirginia) >= kMessages;
        },
        sim::Seconds(120));
    simulator.RunFor(sim::Seconds(1));
    const CounterSet& counters = deployment.network()->counters();
    std::printf("%6s %16.2f %16.1f %16llu\n", qc_on ? "on" : "off",
                static_cast<double>(counters.Get("wan_bytes")) / kMessages /
                    1000.0,
                static_cast<double>(qc_stats().wan_proof_bytes) / kMessages,
                static_cast<unsigned long long>(
                    qc_stats().proof_sig_verifies));
  }
  std::printf("(one 48-byte cert replaces f_i+1 40-byte signatures on every\n"
              " transmission copy, and the receivers' cert cache answers\n"
              " repeat verifications with a single probe; the full sweep\n"
              " with gates is bench_fig6_communication --qc.)\n\n");
}

// --- D: read strategies -------------------------------------------------------------

void AblateReads() {
  std::printf("--- D. read strategies (SVI-A), reading one committed "
              "entry ---\n");
  std::printf("%16s %14s\n", "strategy", "latency (ms)");
  const core::ReadStrategy strategies[] = {core::ReadStrategy::kReadOne,
                                           core::ReadStrategy::kReadQuorum,
                                           core::ReadStrategy::kLinearizable};
  const char* names[] = {"read-1", "quorum(2f+1)", "linearizable"};
  for (int s = 0; s < 3; ++s) {
    sim::Simulator simulator(1);
    core::Deployment deployment(&simulator, net::Topology::Aws4(), {},
                                BenchNet());
    bool committed = false;
    uint64_t pos = 0;
    deployment.participant(net::kCalifornia)
        ->LogCommit(bench::MakeBatch(1), 0, [&](uint64_t p) {
          pos = p;
          committed = true;
        });
    simulator.RunUntilCondition([&] { return committed; }, sim::Seconds(30));
    simulator.RunFor(sim::Seconds(1));

    Histogram latency_ms;
    for (int i = 0; i < 30; ++i) {
      bool done = false;
      sim::SimTime start = simulator.Now();
      deployment.participant(net::kCalifornia)
          ->Read(pos, strategies[s],
                 [&](Status, core::LogRecord) { done = true; });
      simulator.RunUntilCondition([&] { return done; },
                                  simulator.Now() + sim::Seconds(10));
      latency_ms.Add(sim::ToMillis(simulator.Now() - start));
    }
    std::printf("%16s %14.2f\n", names[s], latency_ms.Mean());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader("Ablations of Blockplane design choices",
                     "hierarchy/WAN traffic, daemon pipelining, crypto, "
                     "read strategies");
  AblateWanMessages();
  AblatePipelining();
  AblateCrypto();
  AblateQuorumCerts();
  AblateReads();
  AblateCosts();
  return 0;
}
