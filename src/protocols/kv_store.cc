#include "protocols/kv_store.h"

#include "common/codec.h"
#include "crypto/sha256.h"

namespace blockplane::protocols {

namespace {

enum KvOpKind : uint8_t {
  kPut = 1,
  kDelete = 2,
};

struct KvOp {
  uint8_t kind = kPut;
  std::string key;
  std::string value;

  Bytes Encode() const {
    Encoder enc;
    enc.PutU8(kind);
    enc.PutString(key);
    enc.PutString(value);
    return enc.Take();
  }
  static bool Decode(const Bytes& buf, KvOp* out) {
    Decoder dec(buf);
    uint8_t kind = 0;
    if (!dec.GetU8(&kind).ok() || kind < 1 || kind > 2) return false;
    out->kind = kind;
    return dec.GetString(&out->key).ok() && dec.GetString(&out->value).ok();
  }
};

/// Deterministic shard assignment by key hash.
net::SiteId ShardOf(const std::string& key, int num_sites) {
  crypto::Digest digest = crypto::Sha256Digest(key);
  return static_cast<net::SiteId>(digest[0] % num_sites);
}

}  // namespace

bool KvStore::Shard::Apply(const core::LogRecord& record) {
  KvOp op;
  if (!KvOp::Decode(record.payload, &op)) return false;
  if (op.kind == kPut) {
    data[op.key] = op.value;
  } else {
    data.erase(op.key);
  }
  return true;
}

bool KvStore::CheckOp(const core::LogRecord& record, net::SiteId owner,
                      int num_sites) {
  KvOp op;
  if (!KvOp::Decode(record.payload, &op)) return false;
  if (op.key.empty()) return false;
  // Shard ownership: only the owner's Local Log may hold writes for a key.
  // Remote writes arrive as received records (whose f_i+1 source
  // signatures Blockplane already verified); local commits of remote keys
  // are forgeries.
  net::SiteId shard = ShardOf(op.key, num_sites);
  if (record.type == core::RecordType::kLogCommit) return shard == owner;
  if (record.type == core::RecordType::kReceived) return shard == owner;
  if (record.type == core::RecordType::kCommunication) {
    return shard == record.dest_site;  // forwarding to the right owner
  }
  return false;
}

KvStore::KvStore(core::Deployment* deployment) : deployment_(deployment) {
  for (net::SiteId site = 0; site < deployment_->num_sites(); ++site) {
    user_state_[site] = Shard{};
    writes_[site] = 0;
    InstallAt(site);
  }
}

void KvStore::InstallAt(net::SiteId site) {
  int num_sites = deployment_->num_sites();
  for (int i = 0; i < 3 * deployment_->options().fi + 1; ++i) {
    core::BlockplaneNode* node = deployment_->node(site, i);
    auto shard = std::make_shared<Shard>();
    node_state_[node->self()] = shard;
    node->SetApplyHook(
        [shard](uint64_t pos, const core::LogRecord& record) {
          if (record.type == core::RecordType::kLogCommit ||
              record.type == core::RecordType::kReceived) {
            shard->Apply(record);
          }
        });
    node->RegisterVerifier(kVerifyWrite,
                           [site, num_sites](const core::LogRecord& record) {
                             return CheckOp(record, site, num_sites);
                           });
  }

  // Remote writes arrive here and apply to the user-space shard view.
  core::Participant* participant = deployment_->participant(site);
  participant->SetReceiveHandler(
      [this, site](net::SiteId src, const Bytes& payload) {
        core::LogRecord as_record;
        as_record.type = core::RecordType::kReceived;
        as_record.payload = payload;
        user_state_[site].Apply(as_record);
        ++writes_[site];
      });
}

net::SiteId KvStore::OwnerOf(const std::string& key) const {
  return ShardOf(key, deployment_->num_sites());
}

void KvStore::Put(net::SiteId site, const std::string& key,
                  const std::string& value, PutCallback done) {
  KvOp op;
  op.kind = kPut;
  op.key = key;
  op.value = value;
  net::SiteId owner = OwnerOf(key);
  if (owner == site) {
    deployment_->participant(site)->LogCommit(
        op.Encode(), kVerifyWrite,
        [this, site, key, value, done](uint64_t) {
          user_state_[site].data[key] = value;
          ++writes_[site];
          if (done) done(Status::OK());
        });
    return;
  }
  deployment_->participant(site)->Send(
      owner, op.Encode(), kVerifyWrite, [done](uint64_t) {
        if (done) done(Status::OK());
      });
}

void KvStore::Delete(net::SiteId site, const std::string& key,
                     PutCallback done) {
  KvOp op;
  op.kind = kDelete;
  op.key = key;
  net::SiteId owner = OwnerOf(key);
  if (owner == site) {
    deployment_->participant(site)->LogCommit(
        op.Encode(), kVerifyWrite, [this, site, key, done](uint64_t) {
          user_state_[site].data.erase(key);
          ++writes_[site];
          if (done) done(Status::OK());
        });
    return;
  }
  deployment_->participant(site)->Send(owner, op.Encode(), kVerifyWrite,
                                       [done](uint64_t) {
                                         if (done) done(Status::OK());
                                       });
}

bool KvStore::Get(const std::string& key, std::string* value) const {
  const Shard& shard = user_state_.at(OwnerOf(key));
  auto it = shard.data.find(key);
  if (it == shard.data.end()) return false;
  *value = it->second;
  return true;
}

bool KvStore::NodeGet(net::SiteId site, int index, const std::string& key,
                      std::string* value) const {
  auto node = deployment_->node(site, index);
  const auto& shard = node_state_.at(node->self());
  auto it = shard->data.find(key);
  if (it == shard->data.end()) return false;
  *value = it->second;
  return true;
}

}  // namespace blockplane::protocols
