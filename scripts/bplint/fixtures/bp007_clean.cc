// Fixture: BP007 clean — prologue-path state that is immutable,
// per-thread, synchronized, or explicitly allowed with a reason.

struct Runner {
  void RunPrologue(int job);
};

namespace frames {

constexpr int kChunk = 8;            // immutable: fine
const char* const kName = "decode";  // immutable: fine

std::atomic<int> g_decoded{0};  // synchronizes itself: fine
std::mutex g_mu;                // a synchronization primitive: fine

// Submit-thread-owned counters follow the RunnerStats discipline: only
// the thread that calls RunPrologue/Poll ever touches them.
// bplint:allow(BP007) submit-thread-owned counter, workers never touch it
int g_submitted = 0;

int DecodeFrame(int frame) {
  thread_local int scratch = 0;  // per-thread: fine
  static constexpr int kBias = 3;
  scratch += frame;
  return scratch + kBias;
}

}  // namespace frames
