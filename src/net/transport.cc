#include "net/transport.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/metrics.h"

namespace blockplane::net {

namespace {

// Transport frames reserve the top bit of the MessageType space.
constexpr MessageType kDataFrame = 0x80000001u;
constexpr MessageType kAckFrame = 0x80000002u;

Bytes EncodeDataFrame(uint64_t seq, MessageType app_type,
                      const Bytes& payload) {
  Encoder enc;
  enc.PutU64(seq);
  enc.PutU32(app_type);
  enc.PutBytes(payload);
  enc.PutU32(Crc32(enc.buffer()));
  return enc.Take();
}

}  // namespace

ReliableTransport::ReliableTransport(Network* network, NodeId self,
                                     Handler handler, TransportOptions options)
    : network_(network),
      self_(self),
      handler_(std::move(handler)),
      options_(options) {
  network_->Register(self_, this);
}

ReliableTransport::~ReliableTransport() {
  for (auto& [dst, peer] : send_state_) {
    for (auto& [seq, pending] : peer.in_flight) {
      network_->simulator()->Cancel(pending.timer);
    }
  }
  network_->Unregister(self_);
}

sim::SimTime ReliableTransport::RtoFor(NodeId dst, int retries) const {
  sim::SimTime rtt = dst.site == self_.site
                         ? 2 * network_->options().intra_site_one_way
                         : network_->topology().Rtt(self_.site, dst.site);
  double factor = 1.0;
  for (int i = 0; i < retries; ++i) factor *= options_.backoff;
  sim::SimTime rto = options_.base_rto + rtt;
  rto = static_cast<sim::SimTime>(static_cast<double>(rto) * factor);
  return std::min(rto, options_.max_rto);
}

void ReliableTransport::Send(NodeId dst, MessageType type, Bytes payload) {
  PeerSend& peer = send_state_[dst];
  uint64_t seq = peer.next_seq++;
  Pending pending;
  // Encode the frame exactly once; every transmission (first send and all
  // retransmits) shares this one buffer.
  pending.frame = MakePayload(EncodeDataFrame(seq, type, payload));
  peer.in_flight.emplace(seq, std::move(pending));
  TransmitFrame(dst, seq);
  ArmTimer(dst, seq);
}

void ReliableTransport::TransmitFrame(NodeId dst, uint64_t seq) {
  const Pending& pending = send_state_[dst].in_flight.at(seq);
  Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.type = kDataFrame;
  msg.payload = pending.frame;  // refcount bump, not a copy
  if (pending.retries > 0) {
    hotpath_stats().bytes_copied_saved +=
        static_cast<int64_t>(pending.frame->size());
  }
  network_->Send(std::move(msg));
}

void ReliableTransport::ArmTimer(NodeId dst, uint64_t seq) {
  Pending& pending = send_state_[dst].in_flight.at(seq);
  pending.timer = network_->simulator()->Schedule(
      RtoFor(dst, pending.retries), [this, dst, seq]() {
        auto peer_it = send_state_.find(dst);
        if (peer_it == send_state_.end()) return;
        auto it = peer_it->second.in_flight.find(seq);
        if (it == peer_it->second.in_flight.end()) return;  // acked
        Pending& p = it->second;
        if (++p.retries > options_.max_retries) {
          peer_it->second.in_flight.erase(it);  // peer presumed dead
          return;
        }
        ++retransmissions_;
        TransmitFrame(dst, seq);
        ArmTimer(dst, seq);
      });
}

void ReliableTransport::HandleMessage(const Message& raw) {
  switch (raw.type) {
    case kDataFrame:
      HandleDataFrame(raw);
      break;
    case kAckFrame:
      HandleAckFrame(raw);
      break;
    default:
      // Not a transport frame; a peer is speaking raw Network at us.
      // Deliver as-is so mixed deployments keep working.
      handler_(raw);
  }
}

void ReliableTransport::HandleDataFrame(const Message& raw) {
  const Bytes& frame = raw.body();
  // Verify the checksum before trusting any field.
  if (frame.size() < 4) {
    ++discarded_corrupt_;
    return;
  }
  Decoder crc_dec(frame.data() + frame.size() - 4, 4);
  uint32_t expected_crc = 0;
  BP_CHECK(crc_dec.GetU32(&expected_crc).ok());
  if (Crc32(frame.data(), frame.size() - 4) != expected_crc) {
    ++discarded_corrupt_;  // corrupted in flight; sender will retransmit
    return;
  }

  Decoder dec(frame.data(), frame.size() - 4);
  uint64_t seq = 0;
  MessageType app_type = 0;
  Bytes payload;
  if (!dec.GetU64(&seq).ok() || !dec.GetU32(&app_type).ok() ||
      !dec.GetBytes(&payload).ok()) {
    ++discarded_corrupt_;
    return;
  }

  // Always ack, even duplicates (the first ack may have been dropped).
  // Acks are checksummed too: a corrupted ack must not decode as a valid
  // acknowledgement of a different (undelivered) frame.
  Encoder ack;
  ack.PutU64(seq);
  ack.PutU32(Crc32(ack.buffer()));
  Message ack_msg;
  ack_msg.src = self_;
  ack_msg.dst = raw.src;
  ack_msg.type = kAckFrame;
  ack_msg.set_body(ack.Take());
  network_->Send(std::move(ack_msg));

  PeerRecv& peer = recv_state_[raw.src];
  if (seq < peer.next_expected) return;  // duplicate
  PayloadPtr shared = MakePayload(std::move(payload));
  if (seq > peer.next_expected) {
    // Out-of-order: buffer the decoded payload by reference. Delivery later
    // moves the same allocation into the application message.
    hotpath_stats().bytes_copied_saved +=
        static_cast<int64_t>(shared->size());
    peer.pending.emplace(seq, std::make_pair(app_type, std::move(shared)));
    return;
  }
  // In-order: deliver, then drain any buffered successors.
  Message out;
  out.src = raw.src;
  out.dst = self_;
  out.type = app_type;
  out.payload = std::move(shared);
  peer.next_expected++;
  handler_(out);
  while (true) {
    auto it = peer.pending.find(peer.next_expected);
    if (it == peer.pending.end()) break;
    Message next;
    next.src = raw.src;
    next.dst = self_;
    next.type = it->second.first;
    next.payload = std::move(it->second.second);
    peer.pending.erase(it);
    peer.next_expected++;
    handler_(next);
  }
}

void ReliableTransport::HandleAckFrame(const Message& raw) {
  const Bytes& frame = raw.body();
  Decoder dec(frame);
  uint64_t seq = 0;
  uint32_t crc = 0;
  if (!dec.GetU64(&seq).ok() || !dec.GetU32(&crc).ok()) return;
  if (frame.size() < 12 ||
      Crc32(frame.data(), 8) != crc) {
    ++discarded_corrupt_;
    return;
  }
  auto peer_it = send_state_.find(raw.src);
  if (peer_it == send_state_.end()) return;
  auto it = peer_it->second.in_flight.find(seq);
  if (it == peer_it->second.in_flight.end()) return;
  network_->simulator()->Cancel(it->second.timer);
  peer_it->second.in_flight.erase(it);
}

}  // namespace blockplane::net
