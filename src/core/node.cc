#include "core/node.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "core/comm_daemon.h"
#include "core/congestion.h"
#include "core/wire.h"

namespace blockplane::core {

namespace {

/// The participant (user-space) process of a site lives at index 1000.
constexpr int32_t kParticipantIndex = 1000;

}  // namespace

net::NodeId ParticipantNodeId(net::SiteId site) {
  return net::NodeId{site, kParticipantIndex};
}

net::NodeId MirrorNodeId(net::SiteId host_site, net::SiteId origin_site,
                         int index) {
  // Mirror groups get disjoint index ranges per mirrored origin so they can
  // share the host site without demultiplexing PBFT traffic.
  return net::NodeId{host_site, 100 * (origin_site + 1) + index};
}

BlockplaneNode::BlockplaneNode(net::Network* network, crypto::KeyStore* keys,
                               const BlockplaneOptions& options,
                               pbft::PbftConfig group, net::NodeId self,
                               net::SiteId origin_site)
    : network_(network),
      sim_(network->simulator()),
      keys_(keys),
      signer_(keys->RegisterNode(self)),
      options_(options),
      self_(self),
      origin_site_(origin_site) {
  runner_ = options_.runner != nullptr ? options_.runner
                                       : common::DefaultRunner();
  group.hash_payloads = options_.hash_payloads;
  group.sign_messages = options_.sign_messages;
  group.view_timeout = options_.local_view_timeout;
  group.client_retry = options_.local_client_retry;
  group.checkpoint_interval = options_.checkpoint_interval;
  group.window = options_.pbft_window;
  // One runner per deployment: the replica shares this node's seam so all
  // of a node's epilogues retire in one delivery order (DESIGN.md §12).
  group.runner = runner_;
  if (options_.congestion.adaptive) {
    // Adaptive proposal window (DESIGN.md §13): the replica consults the
    // controller at admission time and feeds it propose-to-execute
    // latencies; view changes back it off. The controller's "RTT" is an
    // intra-site consensus round, so the prior is a few one-way hops.
    uint64_t initial = options_.congestion.initial_window != 0
                           ? options_.congestion.initial_window
                           : std::max<uint64_t>(1, options_.pbft_window);
    pbft_window_ctl_ = std::make_unique<WindowController>(
        options_.congestion, initial,
        4 * network_->options().intra_site_one_way,
        "pbft_s" + std::to_string(self_.site) + "n" +
            std::to_string(self_.index));
    group.window_provider = [this] { return pbft_window_ctl_->window(); };
    group.on_commit_latency = [this](sim::SimTime latency) {
      // latency == 0: backup-executed instance — grow without an RTT
      // sample (see PbftReplica::ExecuteReady).
      if (latency > 0) {
        pbft_window_ctl_->OnAck(latency);
      } else {
        pbft_window_ctl_->OnAckNoSample();
      }
    };
    group.on_view_change = [this] {
      pbft_window_ctl_->OnViewChange(sim_->Now());
    };
  }
  replica_ = std::make_unique<pbft::PbftReplica>(
      network_, keys_, std::move(group), self_,
      [this](uint64_t seq, const Bytes& value) { OnExecute(seq, value); });
  replica_->SetVerifier(
      [this](const Bytes& value) { return VerifyValue(value); });
  replica_->SetAdmission(
      [this](const Bytes& value) { return AdmitValue(value); },
      [this]() { ResetAdmission(); });
  replica_->SetSnapshotCallback([this](const pbft::SnapshotMsg& snapshot) {
    OnSnapshotCertificate(snapshot);
  });
  network_->Register(self_, this);
}

BlockplaneNode::~BlockplaneNode() { network_->Unregister(self_); }

void BlockplaneNode::SendTo(net::NodeId dst, net::MessageType type,
                            Bytes payload) {
  net::Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.type = type;
  msg.set_body(std::move(payload));
  if (msg.dst == self_) {
    HandleMessage(msg);
    return;
  }
  network_->Send(std::move(msg));
}

void BlockplaneNode::HandleMessage(const net::Message& msg) {
  // Runner seam (DESIGN.md §12). PBFT traffic submits its own prologues
  // inside the replica; the transmission/attestation hot paths get decode
  // (and signature-check) prologues here; everything else rides a
  // pass-through prologue so threaded epilogues still retire in this
  // node's delivery order.
  if (msg.type >= 100 && msg.type < 200) {
    // kReply messages addressed to this node are answers to SubmitLocalCommit
    // requests; execution is what matters, so they need no handling.
    if (msg.type == pbft::kReply) return;
    replica_->HandleMessage(msg);
    return;
  }
  switch (msg.type) {
    case kTransmission:
      runner_->RunPrologue(PrologueTransmission(msg));
      return;
    case kAttestResponse:
      runner_->RunPrologue(PrologueAttestResponse(msg));
      return;
    default:
      runner_->RunPrologue([this, msg]() -> common::Runner::Epilogue {
        return [this, msg] { DispatchSerial(msg); };
      });
      return;
  }
}

void BlockplaneNode::DispatchSerial(const net::Message& msg) {
  switch (msg.type) {
    case kTransmissionAck:
    case kRecvStatusReply:
      for (auto& daemon : daemons_) daemon->OnMessage(msg);
      return;
    case kAttestRequest:
      OnAttestRequest(msg);
      return;
    case kRecvStatusQuery:
      OnRecvStatusQuery(msg);
      return;
    case kGeoReplicate:
      OnGeoReplicate(msg);
      return;
    case kGeoProofBundle:
      OnGeoProofBundle(msg);
      return;
    case kLogSyncRequest:
      OnLogSyncRequest(msg);
      return;
    case kLogSyncReply:
      OnLogSyncReply(msg);
      return;
    case kMirrorFetch: {
      // Mirror reconciliation (§V): hand out the mirrored entries (with
      // their proofs) a recovering acting primary is missing. Mirror logs
      // commit strictly in geo order, so the PBFT sequence number equals
      // the geo position.
      if (!is_mirror()) return;
      MirrorFetchMsg fetch;
      if (!MirrorFetchMsg::Decode(msg.body(), &fetch).ok()) return;
      if (fetch.origin_site != origin_site_) return;
      constexpr uint64_t kMaxEntries = 64;
      for (uint64_t pos = fetch.from_geo_pos + 1;
           pos <= mirror_high_pos_ && pos <= fetch.from_geo_pos + kMaxEntries;
           ++pos) {
        auto it = log_.find(pos);
        if (it == log_.end()) break;
        MirrorEntryMsg entry;
        entry.origin_site = origin_site_;
        entry.record = it->second.Encode();
        SendTo(msg.src, kMirrorEntry, entry.Encode());
      }
      return;
    }
    case kMirrorEntry:
      OnMirrorEntry(msg);
      return;
    case kReadRequest: {
      ReadRequestMsg request;
      if (!ReadRequestMsg::Decode(msg.body(), &request).ok()) return;
      ReadReplyMsg reply;
      reply.read_id = request.read_id;
      reply.pos = request.pos;
      auto it = log_.find(request.pos);
      if (it != log_.end()) {
        reply.found = true;
        if (lie_on_reads_) {
          LogRecord forged = it->second;
          forged.payload = ToBytes("forged read result");
          reply.record = forged.Encode();
        } else {
          reply.record = it->second.Encode();
        }
      }
      SendTo(msg.src, kReadReply, reply.Encode());
      return;
    }
    default:
      break;
  }
}

void BlockplaneNode::RegisterVerifier(uint64_t routine_id,
                                      VerifyRoutine routine) {
  BP_CHECK_MSG(routine_id != 0, "routine id 0 is the accept-all default");
  verifiers_[routine_id] = std::move(routine);
}

void BlockplaneNode::SubmitLocalCommit(const LogRecord& record) {
  SubmitRequest(record, next_req_id_++, /*broadcast=*/false);
}

void BlockplaneNode::SubmitRequest(const LogRecord& record, uint64_t req_id,
                                   bool broadcast) {
  pbft::RequestMsg request;
  request.client_token = pbft::ClientToken(self_);
  request.req_id = req_id;
  request.value = record.Encode();
  Bytes encoded = request.Encode();
  if (broadcast) {
    // Escalation: the leader repeatedly failed to commit this record —
    // give it to every replica so the backups forward it and arm their
    // request watchdogs (a stale or censoring leader then loses a view
    // change instead of wedging the stream forever).
    for (const net::NodeId& peer : replica_->config().nodes) {
      SendTo(peer, pbft::kRequest, Bytes(encoded));
    }
    return;
  }
  SendTo(replica_->leader(), pbft::kRequest, std::move(encoded));
}

void BlockplaneNode::StartCommDaemon(net::SiteId dest, bool reserve) {
  daemons_.push_back(std::make_unique<CommDaemon>(this, dest, reserve));
}

void BlockplaneNode::MuteDaemons() {
  for (auto& daemon : daemons_) daemon->Mute();
}

uint64_t BlockplaneNode::last_received_pos(net::SiteId src) const {
  auto it = last_received_pos_.find(src);
  return it == last_received_pos_.end() ? 0 : it->second;
}

uint64_t BlockplaneNode::comm_records_to(net::SiteId dest) const {
  auto it = comm_positions_.find(dest);
  return it == comm_positions_.end() ? 0 : it->second.size();
}

uint64_t BlockplaneNode::daemon_acked(net::SiteId dest) const {
  for (const auto& daemon : daemons_) {
    if (daemon->dest() == dest) return daemon->acked_watermark();
  }
  return 0;
}

// --- PBFT hooks ----------------------------------------------------------------

bool BlockplaneNode::VerifyValue(const Bytes& value) {
  LogRecord record;
  if (!LogRecord::Decode(value, &record).ok()) return false;

  if (is_mirror()) {
    // A mirror group only ever stores mirrored entries of its origin.
    if (record.type != RecordType::kMirrored) return false;
    return VerifyMirrored(record);
  }
  switch (record.type) {
    case RecordType::kMirrored:
      return false;  // mirrored entries never enter a unit's own log
    case RecordType::kReceived:
      if (!VerifyReceived(record)) return false;
      break;
    case RecordType::kLogCommit:
    case RecordType::kCommunication:
      break;
  }
  // The user's verification routine (§III-C), if registered.
  if (record.routine_id != 0) {
    auto it = verifiers_.find(record.routine_id);
    if (it != verifiers_.end() && !it->second(record)) return false;
  }
  return true;
}

bool BlockplaneNode::AdmitValue(const Bytes& value) {
  // Floor the projection at applied state: values can commit and execute
  // through paths the projection never saw (catch-up entries, terms under
  // other leaders), so the projection must never lag reality.
  adm_api_count_ = std::max(adm_api_count_, api_record_count_);
  adm_mirror_high_ = std::max(adm_mirror_high_, mirror_high_pos_);
  for (const auto& [site, pos] : last_received_pos_) {
    uint64_t& projected = adm_last_received_[site];
    projected = std::max(projected, pos);
  }

  LogRecord record;
  if (!LogRecord::Decode(value, &record).ok()) return false;

  if (is_mirror()) {
    if (record.type != RecordType::kMirrored) return false;
    if (record.geo_pos != adm_mirror_high_ + 1) return false;
    if (!VerifyMirroredProof(record)) return false;
    adm_mirror_high_ = record.geo_pos;
    return true;
  }
  switch (record.type) {
    case RecordType::kMirrored:
      return false;  // mirrored entries never enter a unit's own log
    case RecordType::kReceived: {
      uint64_t& last = adm_last_received_[record.src_site];
      if (!VerifyReceivedAt(record, last)) return false;
      last = record.src_log_pos;
      break;
    }
    case RecordType::kLogCommit:
    case RecordType::kCommunication:
      // Geo-stream consistency: an API record's geo position must equal the
      // API-record count its execution will observe, or the unit's
      // attestations will never match the acting participant's canonicals.
      // Exact propose-time verification guaranteed this under stop-and-wait;
      // the projection restores it for window > 1.
      if (record.geo_pos != 0 && record.geo_pos != adm_api_count_ + 1) {
        return false;
      }
      break;
  }
  // The user's verification routine (§III-C), if registered. Note: routines
  // judge against this node's applied replica state, not the projection —
  // streams guarded by state-dependent routines should stay at window 1
  // (DESIGN.md §9).
  if (record.routine_id != 0) {
    auto it = verifiers_.find(record.routine_id);
    if (it != verifiers_.end() && !it->second(record)) return false;
  }
  if (record.type == RecordType::kLogCommit ||
      record.type == RecordType::kCommunication) {
    ++adm_api_count_;
  }
  return true;
}

void BlockplaneNode::ResetAdmission() {
  adm_api_count_ = api_record_count_;
  adm_mirror_high_ = mirror_high_pos_;
  adm_last_received_.clear();
  for (const auto& [site, pos] : last_received_pos_) {
    adm_last_received_[site] = pos;
  }
}

bool BlockplaneNode::VerifyReceived(const LogRecord& record) const {
  return VerifyReceivedAt(record, last_received_pos(record.src_site));
}

bool BlockplaneNode::VerifyReceivedAt(const LogRecord& record,
                                      uint64_t last) const {
  // The built-in receive verification routine (§IV-C).
  if (record.dest_site != origin_site_) return false;
  if (record.src_site == origin_site_ || record.src_site < 0) return false;

  // (1) f_i+1 signatures from the source participant's unit. With quorum
  // certificates (wire v2, DESIGN.md §14) the record carries one compact
  // cert instead of the signature vector; repeats of the same cert hit the
  // KeyStore's cert cache and elide the per-MAC re-verification entirely.
  if (options_.sign_messages) {
    Bytes canonical =
        AttestCanonical(AttestPurpose::kTransmission, record.src_site,
                        record.src_log_pos, record.ContentDigest());
    if (!record.proof_certs.empty()) {
      bool ok = false;
      for (const crypto::QuorumCert& cert : record.proof_certs) {
        if (cert.site != record.src_site) continue;
        ok = keys_->VerifyCert(canonical, cert, options_.fi + 1);
        break;
      }
      if (!ok) return false;
    } else if (!keys_->VerifyProof(canonical, record.proof, record.src_site,
                                   options_.fi + 1)) {
      return false;
    }
  }

  // (2) Not received before, and (3) no earlier unreceived transmission:
  // the chain pointer must extend the reception watermark.
  if (record.src_log_pos <= last) return false;
  if (record.prev_src_log_pos != last) return false;

  // (4) §V: with geo-correlated tolerance, the source must prove that fg
  // other participants hold the record.
  if (options_.fg > 0 && options_.sign_messages) {
    LogRecord original;
    original.type = RecordType::kCommunication;
    original.routine_id = record.routine_id;
    original.payload = record.payload;
    original.dest_site = record.dest_site;
    original.geo_pos = record.geo_pos;
    crypto::Digest geo_digest = crypto::Sha256Digest(original.Encode());

    std::set<net::SiteId> proven;
    if (!record.geo_certs.empty()) {
      // Wire v2: one cert per proving mirror site.
      for (const crypto::QuorumCert& cert : record.geo_certs) {
        if (cert.site == record.src_site || cert.site < 0) continue;
        if (cert.site >= network_->topology().num_sites()) continue;
        Bytes canonical = AttestCanonical(AttestPurpose::kGeoAck, cert.site,
                                          record.geo_pos, geo_digest);
        if (keys_->VerifyCert(canonical, cert, options_.fi + 1)) {
          proven.insert(cert.site);
        }
      }
    } else {
      for (int site = 0; site < network_->topology().num_sites(); ++site) {
        if (site == record.src_site) continue;
        Bytes canonical = AttestCanonical(AttestPurpose::kGeoAck, site,
                                          record.geo_pos, geo_digest);
        if (keys_->VerifyProof(canonical, record.geo_proof, site,
                               options_.fi + 1)) {
          proven.insert(site);
        }
      }
    }
    if (static_cast<int>(proven.size()) < options_.fg) return false;
  }
  return true;
}

bool BlockplaneNode::VerifyMirrored(const LogRecord& record) const {
  if (record.geo_pos != mirror_high_pos_ + 1) return false;
  return VerifyMirroredProof(record);
}

bool BlockplaneNode::VerifyMirroredProof(const LogRecord& record) const {
  LogRecord inner;
  if (!LogRecord::Decode(record.payload, &inner).ok()) return false;
  if (!options_.sign_messages) return true;

  crypto::Digest digest = crypto::Sha256Digest(record.payload);
  Bytes canonical = AttestCanonical(AttestPurpose::kGeoSource,
                                    record.src_site, record.geo_pos, digest);
  if (record.src_site == self_.site) {
    // Locally-acting participant: the (trusted, user-space) participant
    // process signs its own submissions; local PBFT masks byzantine nodes.
    for (const crypto::Signature& sig : record.proof) {
      if (sig.signer == ParticipantNodeId(self_.site) &&
          keys_->Verify(canonical, sig)) {
        return true;
      }
    }
    return false;
  }
  // Remote acting site: f_i+1 of its nodes must attest the record. With
  // quorum certificates the attestations arrive as one compact cert, so
  // backfill replays and buffered re-verification hit the cert cache.
  if (!record.proof_certs.empty()) {
    for (const crypto::QuorumCert& cert : record.proof_certs) {
      if (cert.site != record.src_site) continue;
      return keys_->VerifyCert(canonical, cert, options_.fi + 1);
    }
    return false;
  }
  return keys_->VerifyProof(canonical, record.proof, record.src_site,
                            options_.fi + 1);
}

void BlockplaneNode::OnExecute(uint64_t seq, const Bytes& value) {
  if (seq <= applied_high_) return;  // already applied via log sync
  ApplyValue(seq, value);
}

void BlockplaneNode::ApplyValue(uint64_t seq, const Bytes& value) {
  // Mirror the PBFT replica's state-digest chain so synced log contents
  // can be verified against a certified checkpoint.
  {
    crypto::Digest value_digest =
        pbft::ComputeDigest(value, options_.hash_payloads);
    Encoder chain;
    chain.PutRaw(chain_digest_.data(), chain_digest_.size());
    chain.PutRaw(value_digest.data(), value_digest.size());
    chain_digest_ = crypto::Sha256Digest(chain.buffer());
  }
  applied_high_ = seq;

  LogRecord record;
  if (!LogRecord::Decode(value, &record).ok()) {
    // Can only happen if f+1 replicas committed garbage — i.e. never.
    BP_LOG(kError) << self_.ToString() << " undecodable committed record";
    return;
  }
  log_[seq] = record;

  switch (record.type) {
    case RecordType::kLogCommit:
    case RecordType::kCommunication: {
      // Commit-time contiguity gate (DESIGN.md §10): the record stays in
      // the log and the digest chain regardless; only its api-stream side
      // effects may be deferred (quarantined) until the geo gap fills.
      if (AdmitApiRecord(seq, record)) {
        ApplyApiRecord(seq, record.type, record.dest_site, record.geo_pos);
        ReleaseQuarantineContiguous();
      }
      break;
    }
    case RecordType::kReceived: {
      // Monotonic: a synced or caught-up log can replay records whose
      // source positions are below an already-advanced watermark.
      uint64_t& watermark = last_received_pos_[record.src_site];
      watermark = std::max(watermark, record.src_log_pos);
      {
        Tracer& tr = tracer();
        if (tr.enabled()) {
          // A traced send whose transmission just committed in this
          // (destination) unit: record the WAN-crossing milestone.
          TraceId trace =
              tr.LookupCommRecord(record.src_site, record.src_log_pos);
          if (trace != kNoTrace) {
            sim::SimTime now = network_->simulator()->Now();
            tr.Mark(trace, "remote_committed", now);
            tr.Instant(trace, "remote_commit", "geo", now, self_.site,
                       self_.index, record.src_log_pos);
          }
        }
      }
      // Ack every node that asked us to commit this transmission.
      auto key = std::make_pair(record.src_site, record.src_log_pos);
      auto pending = pending_acks_.find(key);
      if (pending != pending_acks_.end()) {
        TransmissionAckMsg ack;
        ack.src_log_pos = record.src_log_pos;
        for (const net::NodeId& requester : pending->second) {
          SendTo(requester, kTransmissionAck, ack.Encode());
        }
        pending_acks_.erase(pending);
      }
      recv_submits_.erase(key);
      // Notify the participant process (f_i+1 matching notices convince it).
      DeliverNoticeMsg notice;
      notice.src_site = record.src_site;
      notice.src_log_pos = record.src_log_pos;
      notice.prev_src_log_pos = record.prev_src_log_pos;
      notice.payload = record.payload;
      SendTo(ParticipantNodeId(origin_site_), kDeliverNotice, notice.Encode());
      break;
    }
    case RecordType::kMirrored: {
      mirror_high_pos_ = record.geo_pos;
      mirror_digest_by_pos_[record.geo_pos] =
          crypto::Sha256Digest(record.payload);
      // Geo-ack back to the acting participant (§V): our signature counts
      // toward its f_i+1-per-site proof.
      GeoAckMsg ack;
      ack.geo_pos = record.geo_pos;
      ack.sig = signer_->Sign(
          AttestCanonical(AttestPurpose::kGeoAck, self_.site, record.geo_pos,
                          mirror_digest_by_pos_[record.geo_pos]));
      SendTo(ParticipantNodeId(record.src_site), kGeoAck, ack.Encode());
      // Keep the backfill loop self-driving: drain what just became
      // contiguous, and if a known gap remains with nothing buffered to
      // extend it, fetch the next batch (each fetch serves a bounded run).
      if (!mirror_backfill_.empty()) DrainMirrorBackfill();
      if (mirror_gap_target_ > mirror_high_pos_ &&
          mirror_backfill_.count(mirror_high_pos_ + 1) == 0) {
        MaybeFetchMirrorGap(mirror_gap_target_);
      }
      break;
    }
  }
  if (apply_hook_) apply_hook_(seq, record);

  if (options_.prune_applied_log > 0 &&
      log_.size() > options_.prune_applied_log) {
    // Drop old non-communication entries; communication records must stay
    // until their transmissions are acknowledged.
    uint64_t keep_from = seq > options_.prune_applied_log
                             ? seq - options_.prune_applied_log
                             : 0;
    for (auto it = log_.begin();
         it != log_.end() && it->first < keep_from;) {
      if (it->second.type == RecordType::kCommunication) {
        ++it;
      } else {
        api_pos_by_log_pos_.erase(it->first);
        it = log_.erase(it);
      }
    }
  }
}

// --- geo-contiguity quarantine (DESIGN.md §10) -----------------------------------

bool BlockplaneNode::AdmitApiRecord(uint64_t seq, const LogRecord& record) {
  // The gate is only live when this node participates in a geo stream:
  // unit nodes of a participant running with fg > 0. Mirrors never apply
  // API records, and with fg == 0 geo positions are never stamped (seed
  // behaviour is preserved exactly).
  if (is_mirror() || options_.fg == 0) return true;
  RobustnessStats& rs = robustness_stats();
  if (record.geo_pos == 0) {
    // With fg > 0 the (trusted) participant stamps every API record; an
    // unstamped one can only come from a byzantine proposer. Letting it
    // advance the api count would desynchronize api positions from geo
    // positions for every later record, so it is excluded from the stream.
    rs.geo_quarantine_dropped++;
    return false;
  }
  const uint64_t expected = api_record_count_ + 1;
  if (record.geo_pos == expected) return true;
  if (record.geo_pos <= api_record_count_) {
    // Stale duplicate of an already-released geo position (byzantine
    // re-proposal); the first holder keeps the api position.
    rs.geo_quarantine_dropped++;
    return false;
  }
  if (record.geo_pos > expected + kGeoQuarantineSpan) {
    // Absurdly far-future position: quarantining it would let a byzantine
    // leader grow the quarantine without bound.
    rs.geo_quarantine_dropped++;
    return false;
  }
  // Quarantine-and-gap-fill: defer the api-stream side effects (the record
  // itself is already in the log and the digest chain), tell the
  // participant which position the stream is stuck on, and keep committing.
  // This neither re-serializes the pipeline nor rejects the prepared
  // certificate — the poisoned position simply waits for the gap to fill
  // (typically after a view change evicts the censoring leader and an
  // honest one proposes the missing record).
  geo_quarantine_[record.geo_pos] =
      QuarantinedApi{seq, record.type, record.dest_site};
  rs.geo_quarantined++;
  GeoGapNoticeMsg notice;
  notice.missing_geo_pos = expected;
  notice.quarantined_high = geo_quarantine_.rbegin()->first;
  rs.geo_gap_notices++;
  SendTo(ParticipantNodeId(origin_site_), kGeoGapNotice, notice.Encode());
  return false;
}

void BlockplaneNode::ApplyApiRecord(uint64_t seq, RecordType type,
                                    net::SiteId dest_site, uint64_t geo_pos) {
  if (!is_mirror() && options_.fg > 0 && geo_pos > 0) {
    // The api position IS the geo position: under quarantine-and-gap-fill
    // records are released in geo order, so this stays contiguous (and in
    // honest executions it equals the old ++count exactly).
    api_record_count_ = geo_pos;
  } else {
    ++api_record_count_;
  }
  api_pos_by_log_pos_[seq] = api_record_count_;
  if (type == RecordType::kCommunication) {
    auto& positions = comm_positions_[dest_site];
    // Quarantine release can surface log positions out of ascending order;
    // PrevCommPos and the daemons assume a sorted stream.
    auto it = std::lower_bound(positions.begin(), positions.end(), seq);
    if (it == positions.end() || *it != seq) positions.insert(it, seq);
    for (auto& daemon : daemons_) daemon->NotifyLogAppend();
  }
}

void BlockplaneNode::ReleaseQuarantineContiguous() {
  while (true) {
    auto it = geo_quarantine_.find(api_record_count_ + 1);
    if (it == geo_quarantine_.end()) return;
    QuarantinedApi q = it->second;
    uint64_t geo_pos = it->first;
    geo_quarantine_.erase(it);
    robustness_stats().geo_quarantine_released++;
    ApplyApiRecord(q.seq, q.type, q.dest_site, geo_pos);
  }
}

// --- recovery past the checkpoint window (§VI-B) --------------------------------

void BlockplaneNode::OnSnapshotCertificate(const pbft::SnapshotMsg& snapshot) {
  if (snapshot.seq <= applied_high_) return;
  // The PBFT layer already verified the 2f+1-signature certificate. Fetch
  // the committed values from peers; the digest chain makes one honest
  // copy sufficient (and any dishonest copy detectable).
  sync_target_seq_ = snapshot.seq;
  sync_target_digest_ = snapshot.state_digest;
  LogSyncRequestMsg request;
  request.from_pos = applied_high_ + 1;
  request.to_pos = snapshot.seq;
  Bytes encoded = request.Encode();
  for (const net::NodeId& peer : replica_->config().nodes) {
    if (peer == self_) continue;
    SendTo(peer, kLogSyncRequest, Bytes(encoded));
  }
}

void BlockplaneNode::OnLogSyncRequest(const net::Message& msg) {
  if (replica_->config().ReplicaIndex(msg.src) < 0) return;
  LogSyncRequestMsg request;
  if (!LogSyncRequestMsg::Decode(msg.body(), &request).ok()) return;
  constexpr uint64_t kMaxEntries = 256;
  uint64_t sent = 0;
  for (uint64_t pos = request.from_pos;
       pos <= request.to_pos && sent < kMaxEntries; ++pos) {
    auto it = log_.find(pos);
    if (it == log_.end()) return;  // pruned or not yet applied here
    LogSyncReplyMsg reply;
    reply.pos = pos;
    reply.value = it->second.Encode();
    SendTo(msg.src, kLogSyncReply, reply.Encode());
    ++sent;
  }
}

void BlockplaneNode::OnLogSyncReply(const net::Message& msg) {
  if (sync_target_seq_ == 0) return;
  if (replica_->config().ReplicaIndex(msg.src) < 0) return;
  LogSyncReplyMsg reply;
  if (!LogSyncReplyMsg::Decode(msg.body(), &reply).ok()) return;
  if (reply.pos <= applied_high_ || reply.pos > sync_target_seq_) return;
  sync_buffer_.emplace(reply.pos, std::move(reply.value));
  TryInstallSyncedLog();
}

void BlockplaneNode::TryInstallSyncedLog() {
  // Need a contiguous run from our applied high to the certified seq.
  for (uint64_t pos = applied_high_ + 1; pos <= sync_target_seq_; ++pos) {
    if (sync_buffer_.count(pos) == 0) return;
  }
  // Verify the digest chain against the certified checkpoint digest
  // before applying anything.
  crypto::Digest chain = chain_digest_;
  for (uint64_t pos = applied_high_ + 1; pos <= sync_target_seq_; ++pos) {
    crypto::Digest value_digest =
        pbft::ComputeDigest(sync_buffer_.at(pos), options_.hash_payloads);
    Encoder enc;
    enc.PutRaw(chain.data(), chain.size());
    enc.PutRaw(value_digest.data(), value_digest.size());
    chain = crypto::Sha256Digest(enc.buffer());
  }
  if (options_.sign_messages && chain != sync_target_digest_) {
    // A lying peer fed us garbage; drop it all and re-request.
    BP_LOG(kWarning) << self_.ToString()
                     << " log sync failed digest verification; retrying";
    sync_buffer_.clear();
    pbft::SnapshotMsg snapshot;
    snapshot.seq = sync_target_seq_;
    snapshot.state_digest = sync_target_digest_;
    sync_target_seq_ = 0;
    OnSnapshotCertificate(snapshot);
    return;
  }

  uint64_t target = sync_target_seq_;
  crypto::Digest target_digest = sync_target_digest_;
  sync_target_seq_ = 0;
  for (uint64_t pos = applied_high_ + 1; pos <= target; ++pos) {
    ApplyValue(pos, sync_buffer_.at(pos));
  }
  sync_buffer_.clear();
  replica_->InstallCheckpoint(target, target_digest);
  replica_->CatchUp();  // anything committed since the checkpoint
}

// --- transmissions ---------------------------------------------------------------

common::Runner::Prologue BlockplaneNode::PrologueTransmission(
    net::Message msg) {
  // The decode (the bulk of the per-record receive cost: payload bytes plus
  // the geo-proof vector) runs on a worker; everything that reads node
  // state waits for the ordered epilogue. is_mirror()/origin_site_ are
  // fixed at construction, so the early drops are pure.
  return [this, msg = std::move(msg)]() -> common::Runner::Epilogue {
    auto tr = std::make_shared<TransmissionRecord>();
    if (!TransmissionRecord::Decode(msg.body(), tr.get()).ok()) return nullptr;
    if (is_mirror() || tr->dest_site != origin_site_) return nullptr;
    // Capture-at-submit cert verification (DESIGN.md §12): when the record
    // carries a quorum cert, recompute its MACs here on the worker —
    // keys_/options_ are fixed at construction, so this stage stays pure —
    // and hand the verdict to the ordered epilogue, which seeds the cert
    // cache so admission-time VerifyCert calls hit instead of re-verifying.
    // A failed cert is NOT seeded: admission re-runs the full check and
    // rejects, exactly as the serial path would.
    std::shared_ptr<Bytes> cert_msg;
    crypto::QuorumCert cert_checked;
    if (options_.sign_messages && !tr->sig_certs.empty()) {
      Bytes canonical =
          AttestCanonical(AttestPurpose::kTransmission, tr->src_site,
                          tr->src_log_pos, tr->ContentDigest());
      for (const crypto::QuorumCert& cert : tr->sig_certs) {
        if (cert.site != tr->src_site) continue;
        if (keys_->VerifyCertDetached(canonical, cert, options_.fi + 1)) {
          cert_msg = std::make_shared<Bytes>(std::move(canonical));
          cert_checked = cert;
        }
        break;
      }
    }
    net::NodeId src = msg.src;
    return [this, src, tr, cert_msg, cert_checked] {
      if (cert_msg != nullptr) keys_->SeedCertCache(*cert_msg, cert_checked);
      OnTransmissionDecoded(src, std::move(*tr));
    };
  };
}

common::Runner::Prologue BlockplaneNode::PrologueAttestResponse(
    net::Message msg) {
  // Decode on a worker; the signer==src sanity check only needs the message
  // envelope. Flight lookup and signature verification stay with the
  // daemons (which submit their own verify prologues).
  return [this, msg = std::move(msg)]() -> common::Runner::Epilogue {
    auto response = std::make_shared<AttestResponseMsg>();
    if (!AttestResponseMsg::Decode(msg.body(), response.get()).ok()) {
      return nullptr;
    }
    if (response->purpose != AttestPurpose::kTransmission) return nullptr;
    if (response->sig.signer != msg.src) return nullptr;
    net::NodeId src = msg.src;
    return [this, src, response] {
      for (auto& daemon : daemons_) {
        daemon->OnAttestResponseDecoded(src, *response);
      }
    };
  };
}

void BlockplaneNode::OnTransmissionDecoded(net::NodeId src,
                                           TransmissionRecord tr) {
  if (tr.src_log_pos <= last_received_pos(tr.src_site)) {
    // Already in the Local Log (duplicate daemons or retransmission): the
    // receiving end verifies validity and duplicates are dropped (§IV-C),
    // but we still ack so the sender stops retrying.
    TransmissionAckMsg ack;
    ack.src_log_pos = tr.src_log_pos;
    SendTo(src, kTransmissionAck, ack.Encode());
    return;
  }
  pending_acks_[{tr.src_site, tr.src_log_pos}].insert(src);
  // Escalating re-submission (see RecvSubmit): leader-only at first; the
  // sender's retransmissions drive later attempts, and persistent failure
  // broadcasts to the unit so backup watchdogs can act.
  RecvSubmit& sub = recv_submits_[{tr.src_site, tr.src_log_pos}];
  if (sub.attempts == 0) sub.req_id = next_req_id_++;
  ++sub.attempts;
  SubmitRequest(tr.ToReceivedRecord(), sub.req_id,
                /*broadcast=*/sub.attempts >= 3);
}

// --- attestation service ----------------------------------------------------------

void BlockplaneNode::OnAttestRequest(const net::Message& msg) {
  if (refuse_attestations_) return;
  AttestRequestMsg request;
  if (!AttestRequestMsg::Decode(msg.body(), &request).ok()) return;

  AttestResponseMsg response;
  response.purpose = request.purpose;
  response.pos = request.pos;

  switch (request.purpose) {
    case AttestPurpose::kTransmission: {
      // Sign "communication record at pos is committed and its transmission
      // form (including the chain pointer) is accurate" — from OUR log.
      auto it = log_.find(request.pos);
      if (it == log_.end() ||
          it->second.type != RecordType::kCommunication ||
          it->second.dest_site != request.dest_site) {
        return;
      }
      LogRecord as_received = it->second;
      as_received.type = RecordType::kReceived;
      as_received.src_site = origin_site_;
      as_received.src_log_pos = request.pos;
      as_received.prev_src_log_pos = PrevCommPos(request.dest_site,
                                                 request.pos);
      response.sig = signer_->Sign(
          AttestCanonical(AttestPurpose::kTransmission, origin_site_,
                          request.pos, as_received.ContentDigest()));
      break;
    }
    case AttestPurpose::kGeoSource: {
      if (is_mirror()) {
        // Acting-site flow: attest an entry of our mirror log by its
        // geo position.
        auto it = mirror_digest_by_pos_.find(request.pos);
        if (it == mirror_digest_by_pos_.end()) return;
        response.sig = signer_->Sign(AttestCanonical(
            AttestPurpose::kGeoSource, self_.site, request.pos, it->second));
        break;
      }
      auto it = log_.find(request.pos);
      if (it == log_.end() || (it->second.type != RecordType::kLogCommit &&
                               it->second.type != RecordType::kCommunication)) {
        return;
      }
      auto api = api_pos_by_log_pos_.find(request.pos);
      if (api == api_pos_by_log_pos_.end()) return;
      response.sig = signer_->Sign(AttestCanonical(
          AttestPurpose::kGeoSource, origin_site_, api->second,
          crypto::Sha256Digest(it->second.Encode())));
      break;
    }
    case AttestPurpose::kGeoAck:
      return;  // geo-acks are pushed, never requested
  }
  SendTo(msg.src, kAttestResponse, response.Encode());
}

uint64_t BlockplaneNode::PrevCommPos(net::SiteId dest, uint64_t pos) const {
  auto it = comm_positions_.find(dest);
  if (it == comm_positions_.end()) return 0;
  uint64_t prev = 0;
  for (uint64_t p : it->second) {
    if (p >= pos) break;
    prev = p;
  }
  return prev;
}

// --- status queries ----------------------------------------------------------------

void BlockplaneNode::OnRecvStatusQuery(const net::Message& msg) {
  RecvStatusQueryMsg query;
  if (!RecvStatusQueryMsg::Decode(msg.body(), &query).ok()) return;
  RecvStatusReplyMsg reply;
  reply.src_site = query.src_site;
  if (is_mirror()) {
    if (query.src_site != origin_site_) return;
    reply.last_pos = mirror_high_pos_;
  } else {
    // "the returned log position is the one that was sent along with the
    // transmission record and not the one at the receiver's Local Log."
    reply.last_pos = last_received_pos(query.src_site);
  }
  if (lie_about_reception_) reply.last_pos += 1000000;
  SendTo(msg.src, kRecvStatusReply, reply.Encode());
}

// --- geo replication ----------------------------------------------------------------

void BlockplaneNode::OnGeoReplicate(const net::Message& msg) {
  if (!is_mirror()) return;
  GeoReplicateMsg replicate;
  if (!GeoReplicateMsg::Decode(msg.body(), &replicate).ok()) return;

  if (replicate.geo_pos <= mirror_high_pos_) {
    // Already mirrored: re-ack (the acting participant's first ack set may
    // have been lost, or a retry raced a slow quorum).
    auto it = mirror_digest_by_pos_.find(replicate.geo_pos);
    if (it == mirror_digest_by_pos_.end()) return;
    GeoAckMsg ack;
    ack.geo_pos = replicate.geo_pos;
    ack.sig = signer_->Sign(AttestCanonical(
        AttestPurpose::kGeoAck, self_.site, replicate.geo_pos, it->second));
    SendTo(ParticipantNodeId(replicate.acting_site), kGeoAck, ack.Encode());
    return;
  }

  LogRecord record;
  record.type = RecordType::kMirrored;
  record.payload = std::move(replicate.record);
  record.src_site = replicate.acting_site;
  record.geo_pos = replicate.geo_pos;
  record.proof = std::move(replicate.sigs);
  record.proof_certs = std::move(replicate.sig_certs);

  if (replicate.geo_pos > mirror_high_pos_ + 1) {
    // The geo stream moved past this mirror (e.g. the hosting site sat out
    // an outage while the other mirrors kept acking). Mirror logs commit
    // strictly in geo order, so this record cannot be admitted yet: buffer
    // it and backfill the hole from a peer mirror (§V, DESIGN.md §10).
    if (replicate.geo_pos <= mirror_high_pos_ + kMirrorBackfillCap &&
        (mirror_backfill_.size() < kMirrorBackfillCap ||
         mirror_backfill_.count(replicate.geo_pos) > 0) &&
        VerifyMirroredProof(record)) {
      mirror_backfill_[replicate.geo_pos] = std::move(record);
    }
    MaybeFetchMirrorGap(replicate.geo_pos);
    return;
  }
  SubmitLocalCommit(record);
}

void BlockplaneNode::OnMirrorEntry(const net::Message& msg) {
  if (!is_mirror()) return;
  MirrorEntryMsg entry;
  if (!MirrorEntryMsg::Decode(msg.body(), &entry).ok()) return;
  if (entry.origin_site != origin_site_) return;
  LogRecord record;
  if (!LogRecord::Decode(entry.record, &record).ok()) return;
  if (record.type != RecordType::kMirrored) return;
  if (record.geo_pos <= mirror_high_pos_) return;
  if (record.geo_pos > mirror_high_pos_ + kMirrorBackfillCap) return;
  if (mirror_backfill_.size() >= kMirrorBackfillCap &&
      mirror_backfill_.count(record.geo_pos) == 0) {
    return;
  }
  // Proof-check before buffering so a lying peer cannot crowd out real
  // entries; admission re-runs the full verification on submit.
  if (!VerifyMirroredProof(record)) return;
  mirror_backfill_[record.geo_pos] = std::move(record);
  DrainMirrorBackfill();
}

void BlockplaneNode::MaybeFetchMirrorGap(uint64_t target_geo_pos) {
  mirror_gap_target_ = std::max(mirror_gap_target_, target_geo_pos);
  if (mirror_peer_hosts_.empty()) return;
  // Single fetcher: the group's current leader. If the leader is down the
  // view change rotates it out and the next leader takes over.
  if (replica_->leader() != self_) return;
  sim::SimTime now = network_->simulator()->Now();
  constexpr sim::SimTime kMinFetchInterval = sim::Milliseconds(50);
  if (last_mirror_gap_fetch_ != 0 &&
      now - last_mirror_gap_fetch_ < kMinFetchInterval) {
    return;
  }
  last_mirror_gap_fetch_ = now;
  // Re-base the submission watermark on applied state: anything submitted
  // since the last fetch that has not applied was lost and goes again
  // (duplicate submissions are rejected by admission, harmlessly).
  mirror_backfill_submitted_ = mirror_high_pos_;
  MirrorFetchMsg fetch;
  fetch.origin_site = origin_site_;
  fetch.from_geo_pos = mirror_high_pos_;
  Bytes encoded = fetch.Encode();
  for (net::SiteId host : mirror_peer_hosts_) {
    for (int i = 0; i < options_.fi + 1; ++i) {
      SendTo(MirrorNodeId(host, origin_site_, i), kMirrorFetch,
             Bytes(encoded));
    }
  }
  robustness_stats().mirror_gap_fetches++;
  DrainMirrorBackfill();
}

void BlockplaneNode::DrainMirrorBackfill() {
  mirror_backfill_.erase(mirror_backfill_.begin(),
                         mirror_backfill_.upper_bound(mirror_high_pos_));
  if (replica_->leader() != self_) return;
  // Bound proposed-but-unapplied backfill so the rebased retry (one per
  // fetch) resubmits a bounded run, not the whole buffer.
  constexpr uint64_t kMaxInflight = 128;
  uint64_t next = std::max(mirror_high_pos_, mirror_backfill_submitted_) + 1;
  for (auto it = mirror_backfill_.find(next);
       it != mirror_backfill_.end() && next <= mirror_high_pos_ + kMaxInflight;
       it = mirror_backfill_.find(next)) {
    // The pipelined admission projection (DESIGN.md §9) accepts a
    // contiguous run back-to-back; each submission re-verifies the proof.
    SubmitLocalCommit(it->second);
    mirror_backfill_submitted_ = next;
    robustness_stats().mirror_gap_filled++;
    ++next;
  }
}

void BlockplaneNode::OnGeoProofBundle(const net::Message& msg) {
  GeoProofBundleMsg bundle;
  if (!GeoProofBundleMsg::Decode(msg.body(), &bundle).ok()) return;
  geo_proofs_[bundle.pos] = std::move(bundle.proof);
  geo_proof_certs_[bundle.pos] = std::move(bundle.proof_certs);
  for (auto& daemon : daemons_) daemon->NotifyLogAppend();
}

}  // namespace blockplane::core
