"""Optional libclang refinement layer for bplint.

When the clang python bindings (`pip install libclang` or the distro's
python3-clang) and a libclang shared library are available, this module
sharpens BP001's variable-type resolution: instead of trusting the
lexical declaration table (identifier -> "was declared somewhere with
an unordered_* type"), it parses each translation unit off the CMake
compile-commands database and keeps only variables whose canonical type
really is an unordered container.

Everything degrades gracefully: import failure, a missing libclang.so,
or a missing compile database all leave the lexical results untouched,
and for this codebase the two resolutions agree — the fixture self-test
and the repo gate run identically with or without libclang installed.
"""

from __future__ import annotations

import os
from typing import Optional, Set

try:
    from clang import cindex  # type: ignore[import-not-found]
except ImportError as exc:  # pragma: no cover - exercised without libclang
    raise ImportError("libclang python bindings unavailable") from exc


def _index() -> Optional["cindex.Index"]:
    try:
        return cindex.Index.create()
    except cindex.LibclangError:  # bindings present, shared library missing
        return None


def refine_project(project, root: str,
                   compile_commands_dir: Optional[str]) -> None:
    index = _index()
    if index is None or not compile_commands_dir:
        return
    db_path = os.path.join(compile_commands_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return
    try:
        db = cindex.CompilationDatabase.fromDirectory(compile_commands_dir)
    except cindex.CompilationDatabaseError:
        return

    semantically_unordered: Set[str] = set()
    seen_decls: Set[str] = set()
    for facts in project.files:
        full = os.path.join(root, facts.path)
        commands = db.getCompileCommands(full)
        if not commands:
            continue
        args = [a for a in list(commands[0].arguments)[1:]
                if a not in (full, "-c", "-o")][:64]
        try:
            tu = index.parse(full, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (cindex.CursorKind.VAR_DECL,
                                   cindex.CursorKind.FIELD_DECL):
                continue
            name = cursor.spelling
            if not name:
                continue
            seen_decls.add(name)
            canonical = cursor.type.get_canonical().spelling
            if "unordered_map" in canonical or "unordered_set" in canonical:
                semantically_unordered.add(name)

    # Only *narrow* the lexical set: a name the lexical pass classified
    # as unordered is kept only if no semantic declaration contradicts
    # it. Names libclang never saw (headers outside the TU set) stay.
    confirmed = set()
    for name in project.unordered_vars:
        if name in seen_decls and name not in semantically_unordered:
            continue  # lexical false positive: semantically ordered
        confirmed.add(name)
    project.unordered_vars = confirmed
