// Figure 8: reacting to failures with geo-correlated fault tolerance
// (f_i = 1, f_g = 1; primary participant in California).
//
//   (a) Backup failure: the closest backup (Oregon) is shut down at batch
//       45; commit latency rises from one C-O RTT (~20-40 ms) to one C-V
//       RTT (~60-80 ms).
//   (b) Primary failure: California fails after batch 70; Virginia takes
//       over as primary and commits batches 71-160, with transition spikes
//       around 250 ms and a steady state governed by Virginia's distance
//       to its remaining peers.
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

net::NetworkOptions BenchNet() {
  net::NetworkOptions options;
  options.intra_site_one_way = sim::Microseconds(100);
  options.per_message_cpu = sim::Microseconds(25);
  return options;
}

core::BlockplaneOptions GeoOptions() {
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = 1;
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 16;
  return options;
}

void RunBackupFailure() {
  std::printf("--- Fig 8(a): failure of the closest backup (Oregon) at "
              "batch 45 ---\n");
  std::printf("%8s %14s\n", "batch", "latency (ms)");
  sim::Simulator simulator(1);
  core::Deployment deployment(&simulator, net::Topology::Aws4(),
                              GeoOptions(), BenchNet());
  Bytes batch = bench::MakeBatch(1);
  for (int i = 1; i <= 100; ++i) {
    if (i == 46) deployment.network()->CrashSite(net::kOregon);
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(net::kCalifornia)
        ->LogCommit(Bytes(batch), 0, [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    double ms = sim::ToMillis(simulator.Now() - start);
    if (i % 5 == 0 || i == 46) std::printf("%8d %14.1f\n", i, ms);
  }
}

void RunPrimaryFailure() {
  std::printf("--- Fig 8(b): failure of the primary (California) at batch "
              "70; Virginia takes over ---\n");
  std::printf("%8s %14s %10s\n", "batch", "latency (ms)", "primary");
  sim::Simulator simulator(1);
  core::Deployment deployment(&simulator, net::Topology::Aws4(),
                              GeoOptions(), BenchNet());
  Bytes batch = bench::MakeBatch(1);

  // Batches 1-70 at the primary (California).
  for (int i = 1; i <= 70; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(net::kCalifornia)
        ->LogCommit(Bytes(batch), 0, [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    double ms = sim::ToMillis(simulator.Now() - start);
    if (i % 10 == 0) std::printf("%8d %14.1f %10s\n", i, ms, "C");
  }

  // The primary's datacenter fails.
  deployment.network()->CrashSite(net::kCalifornia);

  // Virginia (a mirror of California) suspects the failure after a
  // detection timeout, then takes over as the new primary (§V): commits go
  // to its local mirror of California's log and replicate to the other
  // mirror participants.
  const sim::SimTime kDetectionTimeout = sim::Milliseconds(200);
  core::Participant* secondary =
      deployment.participant(net::kVirginia);
  std::vector<net::SiteId> peers =
      deployment.mirror_sites_of(net::kCalifornia);
  peers.push_back(net::kCalifornia);
  secondary->SetMirrorPeers(net::kCalifornia, peers);

  bool detection_included = false;
  for (int i = 71; i <= 160; ++i) {
    sim::SimTime start = simulator.Now();
    if (!detection_included) {
      // The failed attempt at the dead primary runs into the timeout that
      // triggers the failover — the transition spike of Fig. 8(b).
      bool never = false;
      deployment.participant(net::kCalifornia)
          ->LogCommit(Bytes(batch), 0, [&](uint64_t) { never = true; });
      simulator.RunUntilCondition([&] { return never; },
                                  simulator.Now() + kDetectionTimeout);
      detection_included = true;
    }
    bool done = false;
    secondary->MirrorCommit(net::kCalifornia, Bytes(batch), 0,
                            [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    double ms = sim::ToMillis(simulator.Now() - start);
    if (i % 10 == 0 || i <= 72) std::printf("%8d %14.1f %10s\n", i, ms, "V");
  }
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader(
      "Figure 8: reacting to backup and primary datacenter failures "
      "(fi=1, fg=1)",
      "(a) 20-40ms -> 60-80ms after backup loss; (b) takeover spikes "
      "~250ms, then ~70-90ms at the new primary");
  RunBackupFailure();
  RunPrimaryFailure();
  return 0;
}
