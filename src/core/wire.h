// bplint:wire-coverage — every field below must appear in Encode,
// Decode, and (where a digest exists) the digest path (BP003).
// Small Blockplane-space control messages (attestations, acks, status
// queries, geo replication) and their encodings.
#ifndef BLOCKPLANE_CORE_WIRE_H_
#define BLOCKPLANE_CORE_WIRE_H_

#include <vector>

#include "core/record.h"

namespace blockplane::common {
class Runner;
}  // namespace blockplane::common

namespace blockplane::core {

struct TransmissionAckMsg {
  uint64_t src_log_pos = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, TransmissionAckMsg* out);
};

struct AttestRequestMsg {
  AttestPurpose purpose = AttestPurpose::kTransmission;
  uint64_t pos = 0;            // unit log position
  net::SiteId dest_site = -1;  // kTransmission: which daemon stream

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, AttestRequestMsg* out);
};

struct AttestResponseMsg {
  AttestPurpose purpose = AttestPurpose::kTransmission;
  uint64_t pos = 0;
  crypto::Signature sig;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, AttestResponseMsg* out);
};

struct DeliverNoticeMsg {
  net::SiteId src_site = -1;
  uint64_t src_log_pos = 0;
  uint64_t prev_src_log_pos = 0;  // lets the participant deliver in order
  Bytes payload;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, DeliverNoticeMsg* out);
};

struct RecvStatusQueryMsg {
  /// Which source participant's reception progress is being asked about;
  /// on a mirror node this is the mirrored origin and the reply reports the
  /// mirror-log high position.
  net::SiteId src_site = -1;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, RecvStatusQueryMsg* out);
};

struct RecvStatusReplyMsg {
  net::SiteId src_site = -1;
  uint64_t last_pos = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, RecvStatusReplyMsg* out);
};

struct GeoReplicateMsg {
  net::SiteId acting_site = -1;  // the (current) primary issuing the record
  uint64_t geo_pos = 0;
  Bytes record;  // encoded origin LogRecord
  /// f_i+1 attestations from the acting site (empty when the mirror group
  /// is hosted at the acting site itself).
  std::vector<crypto::Signature> sigs;
  /// Wire v2 (qc.enabled): certificates standing in for `sigs` — trailing
  /// optional section, absent when empty.
  std::vector<crypto::QuorumCert> sig_certs;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, GeoReplicateMsg* out);
};

struct GeoAckMsg {
  uint64_t geo_pos = 0;
  crypto::Signature sig;  // over AttestCanonical(kGeoAck, mirror_site, ...)

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, GeoAckMsg* out);
};

/// Unit node -> own participant: the contiguous geo stream is stuck waiting
/// for `missing_geo_pos` while a later position sits in quarantine
/// (DESIGN.md §10, quarantine-and-gap-fill).
struct GeoGapNoticeMsg {
  uint64_t missing_geo_pos = 0;
  /// Highest geo position currently quarantined at the sender (diagnostic).
  uint64_t quarantined_high = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, GeoGapNoticeMsg* out);
};

struct ReadRequestMsg {
  uint64_t read_id = 0;
  uint64_t pos = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, ReadRequestMsg* out);
};

struct ReadReplyMsg {
  uint64_t read_id = 0;
  uint64_t pos = 0;
  bool found = false;
  Bytes record;  // encoded LogRecord when found

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, ReadReplyMsg* out);
};

/// Mirror reconciliation (§V failover): a new acting primary fetches the
/// mirrored entries it is missing from an up-to-date peer mirror.
struct MirrorFetchMsg {
  net::SiteId origin_site = -1;
  uint64_t from_geo_pos = 0;  // exclusive

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, MirrorFetchMsg* out);
};

struct MirrorEntryMsg {
  net::SiteId origin_site = -1;
  Bytes record;  // encoded outer kMirrored LogRecord (with its proof)

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, MirrorEntryMsg* out);
};

/// Log synchronization past the checkpoint window (§VI-B): a recovering
/// node fetches committed values and verifies them against a certified
/// checkpoint digest chain.
struct LogSyncRequestMsg {
  uint64_t from_pos = 0;  // inclusive
  uint64_t to_pos = 0;    // inclusive

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, LogSyncRequestMsg* out);
};

struct LogSyncReplyMsg {
  uint64_t pos = 0;
  Bytes value;  // the committed PBFT value (encoded LogRecord)

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, LogSyncReplyMsg* out);
};

struct GeoProofBundleMsg {
  uint64_t pos = 0;  // unit log position of the communication record
  std::vector<crypto::Signature> proof;
  /// Wire v2 (qc.enabled): one certificate per mirror site standing in for
  /// `proof` — trailing optional section, absent when empty.
  std::vector<crypto::QuorumCert> proof_certs;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, GeoProofBundleMsg* out);
};

/// One element of a batched transmission decode: input buffer in, decoded
/// record + per-element status out. Elements are independent, so a
/// threaded Runner decodes them on workers; results land in the caller's
/// order regardless.
struct TransmissionDecodeJob {
  Bytes buf;
  TransmissionRecord record;
  bool ok = false;
};

/// Batched transmission codec (DESIGN.md §12). Encodes each record /
/// decodes each buffer through `runner`'s fork-join RunBatch (nullptr =
/// the process-wide default), so outputs are complete and in input order
/// on return; safe even inside an epilogue. Under a serial runner both
/// degrade to the plain per-element loop — bit-identical output.
std::vector<Bytes> EncodeTransmissionBatch(
    const std::vector<TransmissionRecord>& records, common::Runner* runner);
void DecodeTransmissionBatch(std::vector<TransmissionDecodeJob>* jobs,
                             common::Runner* runner);

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_WIRE_H_
