#include "paxos/message.h"

namespace blockplane::paxos {

Bytes PrepareMsg::Encode() const {
  Encoder enc;
  enc.PutU64(ballot);
  enc.PutU64(from_slot);
  return enc.Take();
}

Status PrepareMsg::Decode(const Bytes& buf, PrepareMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->ballot));
  return dec.GetU64(&out->from_slot);
}

Bytes PromiseMsg::Encode() const {
  Encoder enc;
  enc.PutU64(ballot);
  enc.PutU64(last_committed);
  enc.PutVarint(accepted.size());
  for (const AcceptedEntry& entry : accepted) {
    enc.PutU64(entry.slot);
    enc.PutU64(entry.ballot);
    enc.PutBytes(entry.value);
  }
  return enc.Take();
}

Status PromiseMsg::Decode(const Bytes& buf, PromiseMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->ballot));
  BP_RETURN_NOT_OK(dec.GetU64(&out->last_committed));
  uint64_t n = 0;
  BP_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n > 1000000) return Status::Corruption("oversized promise");
  out->accepted.clear();
  for (uint64_t i = 0; i < n; ++i) {
    AcceptedEntry entry;
    BP_RETURN_NOT_OK(dec.GetU64(&entry.slot));
    BP_RETURN_NOT_OK(dec.GetU64(&entry.ballot));
    BP_RETURN_NOT_OK(dec.GetBytes(&entry.value));
    out->accepted.push_back(std::move(entry));
  }
  return Status::OK();
}

Bytes AcceptMsg::Encode() const {
  Encoder enc;
  enc.PutU64(ballot);
  enc.PutU64(slot);
  enc.PutBytes(value);
  return enc.Take();
}

Status AcceptMsg::Decode(const Bytes& buf, AcceptMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->ballot));
  BP_RETURN_NOT_OK(dec.GetU64(&out->slot));
  return dec.GetBytes(&out->value);
}

Bytes AcceptedMsg::Encode() const {
  Encoder enc;
  enc.PutU64(ballot);
  enc.PutU64(slot);
  return enc.Take();
}

Status AcceptedMsg::Decode(const Bytes& buf, AcceptedMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->ballot));
  return dec.GetU64(&out->slot);
}

Bytes NackMsg::Encode() const {
  Encoder enc;
  enc.PutU64(promised);
  return enc.Take();
}

Status NackMsg::Decode(const Bytes& buf, NackMsg* out) {
  Decoder dec(buf);
  return dec.GetU64(&out->promised);
}

Bytes LearnMsg::Encode() const {
  Encoder enc;
  enc.PutU64(slot);
  enc.PutBytes(value);
  return enc.Take();
}

Status LearnMsg::Decode(const Bytes& buf, LearnMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->slot));
  return dec.GetBytes(&out->value);
}

Bytes HeartbeatMsg::Encode() const {
  Encoder enc;
  enc.PutU64(ballot);
  enc.PutU64(last_committed);
  return enc.Take();
}

Status HeartbeatMsg::Decode(const Bytes& buf, HeartbeatMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->ballot));
  return dec.GetU64(&out->last_committed);
}

Bytes ForwardMsg::Encode() const {
  Encoder enc;
  enc.PutBytes(value);
  return enc.Take();
}

Status ForwardMsg::Decode(const Bytes& buf, ForwardMsg* out) {
  Decoder dec(buf);
  return dec.GetBytes(&out->value);
}

}  // namespace blockplane::paxos
