// Batching and group commit (§VI-C): many small operations ride one Local
// Log record, trading a little latency for an order of magnitude in
// throughput — the effect behind Fig. 4's batch-size sweep.
//
//   $ ./batched_throughput
#include <cstdio>

#include "core/batcher.h"
#include "core/deployment.h"

using namespace blockplane;

namespace {

struct RunResult {
  double seconds;
  uint64_t batches;
};

RunResult Run(size_t max_ops_per_batch, int total_ops) {
  sim::Simulator simulator(5);
  core::Deployment deployment(&simulator, net::Topology::SingleSite(), {});
  core::Batcher::Options options;
  options.max_ops = max_ops_per_batch;
  options.max_delay = sim::Milliseconds(1);
  core::Batcher batcher(deployment.participant(0), &simulator, options);

  int completed = 0;
  for (int i = 0; i < total_ops; ++i) {
    batcher.Add(ToBytes("txn-" + std::to_string(i)),
                [&](uint64_t, uint32_t) { ++completed; });
  }
  simulator.RunUntilCondition([&] { return completed == total_ops; },
                              sim::Seconds(300));
  return {sim::ToSeconds(simulator.Now()), batcher.batches_committed()};
}

}  // namespace

int main() {
  std::printf("Group commit: 2000 small transactions through one "
              "Blockplane unit\n\n");
  std::printf("%16s %10s %14s %16s\n", "ops per batch", "batches",
              "sim time (s)", "ops/sec");
  for (size_t batch_size : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    RunResult result = Run(batch_size, 2000);
    std::printf("%16zu %10lu %14.2f %16.0f\n", batch_size,
                static_cast<unsigned long>(result.batches), result.seconds,
                2000.0 / result.seconds);
  }
  std::printf("\nOK\n");
  return 0;
}
