// bplint:wire-coverage — every field below must appear in Encode
// and Decode (BP003).
// Multi-decree Paxos wire messages.
//
// Ballots are (round, node-index) pairs packed into a uint64 so that ballots
// from different nodes never tie. Paxos here is the *benign* baseline of the
// paper's Fig. 7 (and the cross-site layer of hierarchical PBFT); messages
// are not signed — byzantine tolerance is exactly what Blockplane adds on
// top of protocols like this one.
#ifndef BLOCKPLANE_PAXOS_MESSAGE_H_
#define BLOCKPLANE_PAXOS_MESSAGE_H_

#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "net/message.h"

namespace blockplane::paxos {

enum PaxosMessageType : net::MessageType {
  kPrepare = 301,
  kPromise = 302,
  kAccept = 303,
  kAccepted = 304,
  kNack = 305,
  kLearn = 306,
  kHeartbeat = 307,
  kForward = 308,
};

/// Ballot number: (round << 16) | proposer_index; 0 = no ballot.
using Ballot = uint64_t;

inline Ballot MakeBallot(uint64_t round, int proposer_index) {
  return (round << 16) | static_cast<uint64_t>(proposer_index & 0xffff);
}
inline uint64_t BallotRound(Ballot b) { return b >> 16; }
inline int BallotProposer(Ballot b) { return static_cast<int>(b & 0xffff); }

struct PrepareMsg {
  Ballot ballot = 0;
  uint64_t from_slot = 1;  // promise should report accepted slots >= this

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, PrepareMsg* out);
};

/// One previously-accepted (slot, ballot, value) reported in a promise.
struct AcceptedEntry {
  uint64_t slot = 0;
  Ballot ballot = 0;
  Bytes value;
};

struct PromiseMsg {
  Ballot ballot = 0;
  uint64_t last_committed = 0;
  std::vector<AcceptedEntry> accepted;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, PromiseMsg* out);
};

struct AcceptMsg {
  Ballot ballot = 0;
  uint64_t slot = 0;
  Bytes value;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, AcceptMsg* out);
};

struct AcceptedMsg {
  Ballot ballot = 0;
  uint64_t slot = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, AcceptedMsg* out);
};

struct NackMsg {
  Ballot promised = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, NackMsg* out);
};

struct LearnMsg {
  uint64_t slot = 0;
  Bytes value;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, LearnMsg* out);
};

struct HeartbeatMsg {
  Ballot ballot = 0;
  uint64_t last_committed = 0;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, HeartbeatMsg* out);
};

struct ForwardMsg {
  Bytes value;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, ForwardMsg* out);
};

}  // namespace blockplane::paxos

#endif  // BLOCKPLANE_PAXOS_MESSAGE_H_
