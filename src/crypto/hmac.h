// HMAC-SHA256 (RFC 2104).
#ifndef BLOCKPLANE_CRYPTO_HMAC_H_
#define BLOCKPLANE_CRYPTO_HMAC_H_

#include "crypto/sha256.h"

namespace blockplane::crypto {

/// Computes HMAC-SHA256(key, message).
Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len);
inline Digest HmacSha256(const Bytes& key, const Bytes& data) {
  return HmacSha256(key, data.data(), data.size());
}
inline Digest HmacSha256(const Bytes& key, std::string_view s) {
  return HmacSha256(key, reinterpret_cast<const uint8_t*>(s.data()),
                    s.size());
}

}  // namespace blockplane::crypto

#endif  // BLOCKPLANE_CRYPTO_HMAC_H_
