#include "core/participant.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/congestion.h"

namespace blockplane::core {

namespace {

constexpr int32_t kClientIndexBase = 1001;
constexpr int32_t kMirrorClientIndexBase = 2000;

/// Starts a causal trace for one API operation: allocates the id (kNoTrace
/// when tracing is disabled — every downstream site then skips its work)
/// and records the "submit" milestone.
TraceId BeginOpTrace(sim::Simulator* sim) {
  Tracer& tr = tracer();
  if (!tr.enabled()) return kNoTrace;
  TraceId trace = tr.NewTrace();
  tr.Mark(trace, "submit", sim->Now());
  return trace;
}

}  // namespace

Participant::Participant(net::Network* network, crypto::KeyStore* keys,
                         BlockplaneOptions options,
                         pbft::PbftConfig unit_group, net::SiteId site,
                         std::vector<net::SiteId> mirror_sites)
    : network_(network),
      sim_(network->simulator()),
      keys_(keys),
      options_(options),
      unit_group_(unit_group),
      site_(site),
      self_(ParticipantNodeId(site)),
      mirror_sites_(std::move(mirror_sites)) {
  signer_ = keys_->RegisterNode(self_);
  unit_group_.hash_payloads = options_.hash_payloads;
  unit_group_.sign_messages = options_.sign_messages;
  unit_group_.view_timeout = options_.local_view_timeout;
  unit_group_.client_retry = options_.local_client_retry;
  client_ = std::make_unique<pbft::PbftClient>(
      network_, unit_group_, net::NodeId{site, kClientIndexBase});
  if (options_.congestion.adaptive && options_.fg > 0) {
    // One controller per mirror destination (DESIGN.md §13): the geo-ack
    // round trip toward each mirror feeds its RTT estimate; the effective
    // pipeline window is the minimum across them.
    const CongestionOptions& c = options_.congestion;
    uint64_t initial =
        c.initial_window != 0
            ? c.initial_window
            : std::max<uint64_t>(1, options_.participant_window);
    for (net::SiteId target : mirror_sites_) {
      sim::SimTime prior = network_->topology().Rtt(site_, target) +
                           4 * network_->options().intra_site_one_way;
      geo_ctl_[target] = std::make_unique<WindowController>(
          c, initial, prior,
          "geo_s" + std::to_string(site_) + "_to_s" +
              std::to_string(target));
    }
  }
  network_->Register(self_, this);
}

Participant::~Participant() {
  for (auto& [geo_pos, round] : geo_rounds_) sim_->Cancel(round->retry_timer);
  sim_->Cancel(mirror_op_timer_);
  for (auto& [read_id, pending] : reads_) sim_->Cancel(pending.retry_timer);
  network_->Unregister(self_);
}

void Participant::SendTo(net::NodeId dst, net::MessageType type,
                         Bytes payload) {
  net::Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.type = type;
  msg.set_body(std::move(payload));
  network_->Send(std::move(msg));
}

// --- API entry points -----------------------------------------------------------

void Participant::LogCommit(Bytes payload, uint64_t routine_id,
                            CommitCallback done) {
  ApiOp op;
  op.record.type = RecordType::kLogCommit;
  op.record.routine_id = routine_id;
  op.record.payload = std::move(payload);
  op.done = std::move(done);
  op.trace = BeginOpTrace(sim_);
  EnqueueOp(std::move(op));
}

void Participant::Send(net::SiteId dest, Bytes payload, uint64_t routine_id,
                       CommitCallback done) {
  BP_CHECK_MSG(dest != site_, "send to self");
  ApiOp op;
  op.record.type = RecordType::kCommunication;
  op.record.routine_id = routine_id;
  op.record.payload = std::move(payload);
  op.record.dest_site = dest;
  op.done = std::move(done);
  op.trace = BeginOpTrace(sim_);
  EnqueueOp(std::move(op));
}

void Participant::MirrorCommit(net::SiteId origin, Bytes payload,
                               uint64_t routine_id, CommitCallback done) {
  BP_CHECK_MSG(mirror_peers_.count(origin) > 0,
               "SetMirrorPeers(origin) required before MirrorCommit");
  ApiOp op;
  op.record.type = RecordType::kLogCommit;  // the inner record R
  op.record.routine_id = routine_id;
  op.record.payload = std::move(payload);
  op.done = std::move(done);
  op.mirror_origin = origin;
  op.trace = BeginOpTrace(sim_);
  EnqueueOp(std::move(op));
}

void Participant::SetMirrorPeers(net::SiteId origin,
                                 std::vector<net::SiteId> peers) {
  mirror_peers_[origin] = std::move(peers);
}

void Participant::EnqueueOp(ApiOp op) {
  if (options_.fg == 0 && op.mirror_origin < 0) {
    // Without geo rounds there is no cross-operation state: submit
    // immediately and let the unit's leader order concurrent requests.
    CommitCallback done = std::move(op.done);
    TraceId trace = op.trace;
    bool is_comm = op.record.type == RecordType::kCommunication;
    client_->Submit(
        op.record.Encode(),
        [this, done = std::move(done), trace, is_comm](uint64_t pos) {
          Tracer& tr = tracer();
          if (tr.enabled() && trace != kNoTrace) {
            sim::SimTime now = sim_->Now();
            tr.Mark(trace, "local_committed", now);
            tr.Mark(trace, "done", now);
            // A communication record's journey continues in the daemons;
            // bind (site, log pos) so they can tag later milestones.
            if (is_comm) tr.BindCommRecord(site_, pos, trace);
          }
          ++commits_completed_;
          if (done) done(pos);
        },
        trace);
    return;
  }
  op.enqueued = sim_->Now();
  ops_.push_back(std::move(op));
  PumpOps();
}

void Participant::PumpOps() {
  while (!ops_.empty()) {
    if (mirror_op_active_) return;  // mirror ops run exclusively
    if (ops_.front().mirror_origin >= 0) {
      // A MirrorCommit reconciles and extends *another* participant's
      // stream; interleaving it with own-stream rounds would entangle two
      // position spaces. Wait for the window to drain, then run it alone.
      if (!inflight_.empty()) return;
      mirror_op_active_ = true;
      InflightOp rec;
      rec.op = std::move(ops_.front());
      ops_.pop_front();
      inflight_.push_back(std::move(rec));
      StartMirrorOp();
      return;
    }
    uint64_t window = std::max<uint64_t>(1, options_.participant_window);
    for (const auto& [target, ctl] : geo_ctl_) {
      window = std::min(window, std::max<uint64_t>(1, ctl->window()));
    }
    if (inflight_.size() >= window) {
      // Stall *episode*: opened once while admission stays blocked by the
      // window, closed by any admission below (partial drains count).
      if (!geo_window_stalled_) {
        geo_window_stalled_ = true;
        ++pipeline_stats().participant_window_stalls;
      }
      return;
    }

    InflightOp rec;
    rec.op = std::move(ops_.front());
    ops_.pop_front();
    geo_window_stalled_ = false;
    if (options_.fg > 0) {
      // Own-stream geo position: assigned at submission so up to `window`
      // rounds can proceed concurrently, each keyed by its position.
      geo_assign_ = std::max(geo_assign_, geo_seq_);
      rec.op.record.geo_pos = ++geo_assign_;
    }
    uint64_t geo_pos = rec.op.record.geo_pos;
    TraceId trace = rec.op.trace;
    sim::SimTime enqueued = rec.op.enqueued;
    Bytes encoded = rec.op.record.Encode();
    inflight_.push_back(std::move(rec));
    PipelineStats& ps = pipeline_stats();
    ps.participant_inflight_peak =
        std::max(ps.participant_inflight_peak,
                 static_cast<int64_t>(inflight_.size()));
    Tracer& tr = tracer();
    if (tr.enabled() && trace != kNoTrace && enqueued != 0 &&
        sim_->Now() > enqueued) {
      // Queue-wait vs in-flight: how long the op sat behind a full window.
      tr.Span(trace, "queue_wait", "pipeline", enqueued, sim_->Now(), site_,
              self_.index, geo_pos);
    }
    client_->Submit(
        std::move(encoded),
        [this, geo_pos](uint64_t pos) { OnLocalCommitted(geo_pos, pos); },
        trace);
  }
}

void Participant::DrainFinished() {
  while (!inflight_.empty() && inflight_.front().finished) {
    InflightOp rec = std::move(inflight_.front());
    inflight_.pop_front();
    ++commits_completed_;
    Tracer& tr = tracer();
    if (tr.enabled() && rec.op.trace != kNoTrace) {
      tr.Mark(rec.op.trace, "done", sim_->Now());
    }
    if (rec.op.done) rec.op.done(rec.result_pos);
  }
}

void Participant::OnLocalCommitted(uint64_t geo_pos, uint64_t unit_pos) {
  for (InflightOp& rec : inflight_) {
    if (rec.op.mirror_origin >= 0 || rec.op.record.geo_pos != geo_pos ||
        rec.finished) {
      continue;
    }
    Tracer& tr = tracer();
    if (tr.enabled() && rec.op.trace != kNoTrace) {
      tr.Mark(rec.op.trace, "local_committed", sim_->Now());
      if (rec.op.record.type == RecordType::kCommunication) {
        tr.BindCommRecord(site_, unit_pos, rec.op.trace);
      }
    }
    StartGeoRound(rec.op, unit_pos);
    return;
  }
}

// --- geo-correlated commits (§V) ---------------------------------------------------

void Participant::StartGeoRound(const ApiOp& op, uint64_t unit_pos) {
  auto owned = std::make_unique<GeoRound>();
  GeoRound& round = *owned;
  round.unit_pos = unit_pos;
  round.geo_pos = op.record.geo_pos;
  round.origin = site_;
  round.record_encoded = op.record.Encode();
  round.digest = crypto::Sha256Digest(round.record_encoded);
  round.targets = mirror_sites_;
  round.is_communication = op.record.type == RecordType::kCommunication;
  round.trace = op.trace;
  round.ts_local = sim_->Now();
  uint64_t geo_pos = round.geo_pos;
  geo_rounds_[geo_pos] = std::move(owned);

  // Collect f_i+1 attestations from the unit, then replicate.
  AttestRequestMsg request;
  request.purpose = AttestPurpose::kGeoSource;
  request.pos = unit_pos;
  Bytes encoded = request.Encode();
  for (const net::NodeId& node : unit_group_.nodes) {
    SendTo(node, kAttestRequest, Bytes(encoded));
  }
  round.retry_timer = sim_->Schedule(
      options_.geo_retry, [this, geo_pos]() { ReplicateRound(geo_pos); });
}

void Participant::OnAttestResponse(const net::Message& msg) {
  if (geo_rounds_.empty()) return;
  AttestResponseMsg response;
  if (!AttestResponseMsg::Decode(msg.body(), &response).ok()) return;
  if (response.purpose != AttestPurpose::kGeoSource) return;
  if (response.sig.signer != msg.src) return;
  // Dispatch to the round this response answers: attest requests carry the
  // unit log position (own-stream rounds) or the geo position (mirror
  // rounds). A late response from a finished round matches nothing.
  GeoRound* found = nullptr;
  for (auto& [key, owned] : geo_rounds_) {
    uint64_t expected = owned->unit_pos != 0 ? owned->unit_pos
                                             : owned->geo_pos;
    if (expected == response.pos) {
      found = owned.get();
      break;
    }
  }
  if (found == nullptr) return;
  GeoRound& round = *found;
  if (static_cast<int>(round.source_sigs.size()) >= options_.fi + 1) return;
  if (options_.sign_messages) {
    Bytes canonical = AttestCanonical(AttestPurpose::kGeoSource, site_,
                                      round.geo_pos, round.digest);
    if (!keys_->Verify(canonical, response.sig)) return;
  }
  for (const crypto::Signature& sig : round.source_sigs) {
    if (sig.signer == response.sig.signer) return;
  }
  round.source_sigs.push_back(response.sig);
  if (static_cast<int>(round.source_sigs.size()) == options_.fi + 1) {
    if (options_.qc.enabled && options_.sign_messages) {
      // Compress the attestation vector once; every replicate fan-out
      // (including retries) ships this same certificate (DESIGN.md §14).
      round.source_certs = {
          crypto::BuildQuorumCert(site_, round.source_sigs)};
      qc_stats().certs_built++;
    }
    round.ts_attested = sim_->Now();
    Tracer& tr = tracer();
    if (tr.enabled() && round.trace != kNoTrace) {
      tr.Mark(round.trace, "attested", round.ts_attested);
    }
    ReplicateRound(round.geo_pos);
  }
}

void Participant::ReplicateRound(uint64_t geo_pos) {
  auto it = geo_rounds_.find(geo_pos);
  if (it == geo_rounds_.end()) return;
  GeoRound& round = *it->second;
  sim_->Cancel(round.retry_timer);
  sim::SimTime period = options_.geo_retry;
  if (!geo_ctl_.empty() &&
      static_cast<int>(round.source_sigs.size()) >= options_.fi + 1) {
    // Wire fan-out retries follow the slowest unproven mirror's measured
    // timeout (attestation collection is intra-site and keeps the static
    // knob). Capped at geo_retry: adaptive only ever retries sooner.
    sim::SimTime rto = 0;
    for (net::SiteId target : round.targets) {
      if (round.ack_sigs.count(target) > 0) continue;
      auto ctl = geo_ctl_.find(target);
      if (ctl == geo_ctl_.end()) continue;
      rto = std::max(rto,
                     ctl->second->RetryTimeout(options_.congestion.min_rto,
                                               options_.geo_retry));
    }
    if (rto > 0) period = rto;
  }
  // Progress-deferred retry (adaptive wire phase only): while geo acks
  // are flowing the mirrors are just working through their commit queues;
  // re-entering the send path would mark the round retried for nothing.
  if (!geo_ctl_.empty() && round.replicate_sent != 0 &&
      static_cast<int>(round.source_sigs.size()) >= options_.fi + 1) {
    sim::SimTime deadline =
        std::max(round.last_sent, last_geo_progress_) + period;
    if (sim_->Now() < deadline) {
      round.retry_timer =
          sim_->Schedule(deadline - sim_->Now(),
                         [this, geo_pos]() { ReplicateRound(geo_pos); });
      return;
    }
  }
  round.retry_timer = sim_->Schedule(
      period, [this, geo_pos]() { ReplicateRound(geo_pos); });

  if (static_cast<int>(round.source_sigs.size()) < options_.fi + 1) {
    // Still collecting attestations: re-ask (covers lost responses).
    AttestRequestMsg request;
    request.purpose = AttestPurpose::kGeoSource;
    request.pos = round.unit_pos != 0 ? round.unit_pos : round.geo_pos;
    Bytes encoded = request.Encode();
    if (round.unit_pos != 0) {
      for (const net::NodeId& node : unit_group_.nodes) {
        SendTo(node, kAttestRequest, Bytes(encoded));
      }
    } else {
      for (int i = 0; i < 3 * options_.fi + 1; ++i) {
        SendTo(MirrorNodeId(site_, round.origin, i), kAttestRequest,
               Bytes(encoded));
      }
    }
    return;
  }

  round.last_sent = sim_->Now();
  if (round.replicate_sent == 0) {
    round.replicate_sent = sim_->Now();
  } else {
    // Timer-driven re-send: Karn's rule excludes this round's RTT. Only
    // the oldest outstanding round reports loss — completion callbacks
    // drain in submission order, so a stuck head makes trailing rounds
    // linger even when their mirrors answered promptly.
    round.retried = true;
    if (geo_rounds_.begin()->first == geo_pos) {
      for (net::SiteId target : round.targets) {
        if (round.ack_sigs.count(target) > 0) continue;
        auto ctl = geo_ctl_.find(target);
        if (ctl != geo_ctl_.end()) ctl->second->OnLoss(sim_->Now());
      }
    }
  }

  GeoReplicateMsg replicate;
  replicate.acting_site = site_;
  replicate.geo_pos = round.geo_pos;
  replicate.record = round.record_encoded;
  replicate.sigs = round.source_sigs;
  if (!round.source_certs.empty()) {
    // Quorum-cert mode: ship the compact certificate in place of the
    // f_i+1 signature vector (wire v2 trailing section).
    replicate.sig_certs = round.source_certs;
    replicate.sigs.clear();
  }
  Bytes encoded = replicate.Encode();
  for (net::SiteId target : round.targets) {
    if (round.ack_sigs.count(target) > 0) continue;  // already proven
    for (int i = 0; i < options_.fi + 1; ++i) {
      SendTo(MirrorNodeId(target, round.origin, i), kGeoReplicate,
             Bytes(encoded));
    }
  }
}

void Participant::OnGeoAck(const net::Message& msg) {
  GeoAckMsg ack;
  if (!GeoAckMsg::Decode(msg.body(), &ack).ok()) return;
  auto it = geo_rounds_.find(ack.geo_pos);
  if (it == geo_rounds_.end()) return;
  GeoRound& round = *it->second;
  if (ack.sig.signer != msg.src) return;
  net::SiteId target = msg.src.site;
  if (std::find(round.targets.begin(), round.targets.end(), target) ==
      round.targets.end()) {
    return;
  }
  if (round.ack_sigs.count(target) > 0) return;  // site already proven
  last_geo_progress_ = sim_->Now();
  if (options_.sign_messages) {
    Bytes canonical = AttestCanonical(AttestPurpose::kGeoAck, target,
                                      round.geo_pos, round.digest);
    if (!keys_->Verify(canonical, ack.sig)) return;
  }
  auto& nodes = round.ack_nodes[target];
  if (!nodes.insert(msg.src).second) return;
  round.ack_sigs_partial[target].push_back(ack.sig);
  if (static_cast<int>(nodes.size()) < options_.fi + 1) return;

  // f_i+1 nodes of this mirror participant attested: the site holds it.
  round.ack_sigs[target] = round.ack_sigs_partial[target];
  auto ctl = geo_ctl_.find(target);
  if (ctl != geo_ctl_.end()) {
    if (round.replicate_sent != 0 && !round.retried) {
      ctl->second->OnAck(sim_->Now() - round.replicate_sent);
    } else {
      ctl->second->OnAckNoSample();
    }
  }
  int proven = static_cast<int>(round.ack_sigs.size());
  if (proven >= options_.fg) FinishGeoRound(round.geo_pos);
}

void Participant::FinishGeoRound(uint64_t geo_pos) {
  auto it = geo_rounds_.find(geo_pos);
  BP_CHECK(it != geo_rounds_.end());
  GeoRound round = std::move(*it->second);
  geo_rounds_.erase(it);
  sim_->Cancel(round.retry_timer);

  if (round.is_communication) {
    // Hand the mirror proofs to the unit so the communication daemons can
    // attach them to the transmission record (§V).
    GeoProofBundleMsg bundle;
    bundle.pos = round.unit_pos;
    for (auto& [site, sigs] : round.ack_sigs) {
      if (options_.qc.enabled && options_.sign_messages) {
        // One compact cert per mirror site in place of the flattened
        // signature vector (DESIGN.md §14).
        bundle.proof_certs.push_back(crypto::BuildQuorumCert(site, sigs));
        qc_stats().certs_built++;
      } else {
        bundle.proof.insert(bundle.proof.end(), sigs.begin(), sigs.end());
      }
    }
    Bytes encoded = bundle.Encode();
    for (const net::NodeId& node : unit_group_.nodes) {
      SendTo(node, kGeoProofBundle, Bytes(encoded));
    }
  }

  bool is_mirror_round = round.unit_pos == 0;
  if (is_mirror_round) {
    // A mirror-acting commit: remember the stream position so subsequent
    // commits skip the reconciliation round.
    acting_high_[round.origin] = round.geo_pos;
    mirror_op_active_ = false;
  } else {
    geo_seq_ = std::max(geo_seq_, round.geo_pos);
  }
  Tracer& tr = tracer();
  if (tr.enabled() && round.trace != kNoTrace) {
    sim::SimTime now = sim_->Now();
    tr.Mark(round.trace, "mirrored", now);
    // Phase spans on the participant's track: attestation gathering and
    // the WAN mirror round. Together with the PBFT "request" span they
    // decompose the end-to-end commit latency. (The "done" mark is added
    // when the op drains in submission order — same instant at window 1.)
    if (round.ts_attested >= round.ts_local && round.ts_attested > 0) {
      tr.Span(round.trace, "attest", "geo", round.ts_local,
              round.ts_attested, site_, self_.index, round.geo_pos);
      tr.Span(round.trace, "geo_mirror", "geo", round.ts_attested, now,
              site_, self_.index, round.geo_pos);
    }
  }
  // Mark the owning op finished; its callback fires only once every
  // earlier-submitted op finished too (in-order completion).
  for (size_t i = 0; i < inflight_.size(); ++i) {
    InflightOp& rec = inflight_[i];
    bool match = is_mirror_round
                     ? rec.op.mirror_origin >= 0
                     : (rec.op.mirror_origin < 0 &&
                        rec.op.record.geo_pos == round.geo_pos);
    if (!match || rec.finished) continue;
    rec.finished = true;
    rec.result_pos = round.unit_pos != 0 ? round.unit_pos : round.geo_pos;
    if (i > 0) pipeline_stats().participant_ooo_completions++;
    break;
  }
  DrainFinished();
  PumpOps();
}

// --- mirror-acting commits (failover) ------------------------------------------------

void Participant::StartMirrorOp() {
  BP_CHECK(mirror_op_active_ && !inflight_.empty());
  const ApiOp& op = inflight_.front().op;
  // Already acting for this origin: continue the stream directly.
  auto acting = acting_high_.find(op.mirror_origin);
  if (acting != acting_high_.end()) {
    CommitMirrorRecord(op.mirror_origin, acting->second + 1);
    return;
  }
  // Learn the mirror streams' high positions — locally and at every
  // reachable peer mirror — from byzantine quorums.
  mirror_status_.clear();
  mirror_status_origin_ = op.mirror_origin;
  mirror_op_proceeded_ = false;
  RecvStatusQueryMsg query;
  query.src_site = op.mirror_origin;
  Bytes encoded = query.Encode();
  for (int i = 0; i < 3 * options_.fi + 1; ++i) {
    SendTo(MirrorNodeId(site_, op.mirror_origin, i), kRecvStatusQuery,
           Bytes(encoded));
  }
  for (net::SiteId peer : mirror_peers_[op.mirror_origin]) {
    if (peer == site_ || peer == op.mirror_origin) continue;
    for (int i = 0; i < 2 * options_.fi + 1; ++i) {
      SendTo(MirrorNodeId(peer, op.mirror_origin, i), kRecvStatusQuery,
             Bytes(encoded));
    }
  }
  // Dead peers never answer; proceed with whoever responded.
  sim_->Cancel(mirror_op_timer_);
  mirror_op_timer_ =
      sim_->Schedule(options_.geo_retry, [this]() { ProceedMirrorOp(); });
}

namespace {

/// The (threshold)-th largest value of a reply set, i.e. the highest
/// position some group of `threshold` responders jointly attests.
uint64_t AttestedHigh(const std::map<net::NodeId, uint64_t>& replies,
                      int threshold) {
  std::vector<uint64_t> values;
  for (auto& [node, pos] : replies) values.push_back(pos);
  if (static_cast<int>(values.size()) < threshold) return 0;
  std::sort(values.begin(), values.end(), std::greater<>());
  return values[threshold - 1];
}

}  // namespace

void Participant::OnRecvStatusReply(const net::Message& msg) {
  if (mirror_status_origin_ < 0 || !mirror_op_active_) return;
  RecvStatusReplyMsg reply;
  if (!RecvStatusReplyMsg::Decode(msg.body(), &reply).ok()) return;
  if (reply.src_site != mirror_status_origin_) return;
  mirror_status_[msg.src.site][msg.src] = reply.last_pos;
  // Proceed as soon as the local quorum plus every peer quorum answered;
  // the timer covers crashed peers.
  if (static_cast<int>(mirror_status_[site_].size()) < 2 * options_.fi + 1) {
    return;
  }
  for (net::SiteId peer : mirror_peers_[mirror_status_origin_]) {
    if (peer == site_ || peer == mirror_status_origin_) continue;
    auto it = mirror_status_.find(peer);
    if (it == mirror_status_.end() ||
        static_cast<int>(it->second.size()) < 2 * options_.fi + 1) {
      return;
    }
  }
  ProceedMirrorOp();
}

void Participant::ProceedMirrorOp() {
  if (mirror_op_proceeded_ || mirror_status_origin_ < 0) return;
  auto local_it = mirror_status_.find(site_);
  if (local_it == mirror_status_.end() ||
      static_cast<int>(local_it->second.size()) < 2 * options_.fi + 1) {
    // Local replies are mandatory; re-poll shortly.
    sim_->Cancel(mirror_op_timer_);
    mirror_op_timer_ =
        sim_->Schedule(options_.geo_retry, [this]() { StartMirrorOp(); });
    return;
  }
  mirror_op_proceeded_ = true;
  sim_->Cancel(mirror_op_timer_);
  mirror_op_timer_ = sim::kInvalidEventId;

  uint64_t local_high = AttestedHigh(local_it->second, options_.fi + 1);
  uint64_t target_high = local_high;
  net::SiteId ahead_peer = -1;
  for (auto& [peer, replies] : mirror_status_) {
    if (peer == site_) continue;
    uint64_t attested = AttestedHigh(replies, options_.fi + 1);
    if (attested > target_high) {
      target_high = attested;
      ahead_peer = peer;
    }
  }

  if (target_high > local_high && ahead_peer >= 0) {
    // Our mirror is missing entries that committed globally: fetch them
    // from the most advanced peer, replay into the local mirror group,
    // then re-run the status round until caught up.
    BP_LOG(kInfo) << "participant " << site_ << " reconciling mirror of "
                  << mirror_status_origin_ << ": " << local_high << " -> "
                  << target_high;
    MirrorFetchMsg fetch;
    fetch.origin_site = mirror_status_origin_;
    fetch.from_geo_pos = local_high;
    Bytes encoded = fetch.Encode();
    for (int i = 0; i < options_.fi + 1; ++i) {
      SendTo(MirrorNodeId(ahead_peer, mirror_status_origin_, i),
             kMirrorFetch, Bytes(encoded));
    }
    sim_->Cancel(mirror_op_timer_);
    mirror_op_timer_ =
        sim_->Schedule(options_.geo_retry, [this]() { StartMirrorOp(); });
    return;
  }

  CommitMirrorRecord(mirror_status_origin_, target_high + 1);
}

void Participant::OnMirrorEntry(const net::Message& msg) {
  MirrorEntryMsg entry;
  if (!MirrorEntryMsg::Decode(msg.body(), &entry).ok()) return;
  LogRecord outer;
  if (!LogRecord::Decode(entry.record, &outer).ok()) return;
  if (outer.type != RecordType::kMirrored) return;
  // Replay into the local mirror group; verification re-checks the stored
  // proof and the chain position, so a lying peer achieves nothing.
  GeoReplicateMsg replicate;
  replicate.acting_site = outer.src_site;
  replicate.geo_pos = outer.geo_pos;
  replicate.record = std::move(outer.payload);
  replicate.sigs = std::move(outer.proof);
  Bytes encoded = replicate.Encode();
  for (int i = 0; i < options_.fi + 1; ++i) {
    SendTo(MirrorNodeId(site_, entry.origin_site, i), kGeoReplicate,
           Bytes(encoded));
  }
}

void Participant::CommitMirrorRecord(net::SiteId origin, uint64_t geo_pos) {
  mirror_status_.clear();
  mirror_status_origin_ = -1;

  BP_CHECK(mirror_op_active_ && !inflight_.empty());
  ApiOp& op = inflight_.front().op;
  op.record.geo_pos = geo_pos;
  Bytes inner = op.record.Encode();
  crypto::Digest digest = crypto::Sha256Digest(inner);

  LogRecord outer;
  outer.type = RecordType::kMirrored;
  outer.payload = inner;
  outer.src_site = site_;
  outer.geo_pos = geo_pos;
  outer.proof.push_back(signer_->Sign(
      AttestCanonical(AttestPurpose::kGeoSource, site_, geo_pos, digest)));

  // Commit into the local mirror group, then replicate to the other
  // mirror peers of the failed origin.
  TraceId trace = op.trace;
  MirrorClient(origin)->Submit(
      outer.Encode(),
      [this, origin, geo_pos, inner, digest, trace](uint64_t) {
        Tracer& tr = tracer();
        if (tr.enabled() && trace != kNoTrace) {
          tr.Mark(trace, "local_committed", sim_->Now());
        }
        auto owned = std::make_unique<GeoRound>();
        GeoRound& round = *owned;
        round.unit_pos = 0;
        round.geo_pos = geo_pos;
        round.origin = origin;
        round.record_encoded = inner;
        round.digest = digest;
        round.trace = trace;
        round.ts_local = sim_->Now();
        for (net::SiteId peer : mirror_peers_[origin]) {
          if (peer != site_ && peer != origin) round.targets.push_back(peer);
        }
        // Attestations come from the local mirror group this time.
        AttestRequestMsg request;
        request.purpose = AttestPurpose::kGeoSource;
        request.pos = geo_pos;
        Bytes encoded = request.Encode();
        for (int i = 0; i < 3 * options_.fi + 1; ++i) {
          SendTo(MirrorNodeId(site_, origin, i), kAttestRequest,
                 Bytes(encoded));
        }
        round.retry_timer = sim_->Schedule(
            options_.geo_retry, [this, geo_pos]() { ReplicateRound(geo_pos); });
        geo_rounds_[geo_pos] = std::move(owned);
      },
      trace);
}

pbft::PbftClient* Participant::MirrorClient(net::SiteId origin) {
  auto it = mirror_clients_.find(origin);
  if (it != mirror_clients_.end()) return it->second.get();
  pbft::PbftConfig group;
  group.f = options_.fi;
  for (int i = 0; i < 3 * options_.fi + 1; ++i) {
    group.nodes.push_back(MirrorNodeId(site_, origin, i));
  }
  group.hash_payloads = options_.hash_payloads;
  group.sign_messages = options_.sign_messages;
  group.view_timeout = options_.local_view_timeout;
  group.client_retry = options_.local_client_retry;
  auto client = std::make_unique<pbft::PbftClient>(
      network_, group,
      net::NodeId{site_, kMirrorClientIndexBase + origin});
  return mirror_clients_.emplace(origin, std::move(client))
      .first->second.get();
}

// --- receive ---------------------------------------------------------------------

void Participant::SetReceiveHandler(ReceiveHandler handler) {
  receive_handler_ = std::move(handler);
  // Drain anything already queued.
  for (auto& [src, queue] : receive_queues_) {
    while (!queue.empty() && receive_handler_) {
      Bytes payload = std::move(queue.front());
      queue.pop_front();
      receive_handler_(src, payload);
    }
  }
}

bool Participant::TryReceive(net::SiteId src, Bytes* payload) {
  auto it = receive_queues_.find(src);
  if (it == receive_queues_.end() || it->second.empty()) return false;
  *payload = std::move(it->second.front());
  it->second.pop_front();
  return true;
}

void Participant::OnDeliverNotice(const net::Message& msg) {
  // Only this site's own unit nodes may feed our reception buffers.
  if (msg.src.site != site_ || unit_group_.ReplicaIndex(msg.src) < 0) return;
  DeliverNoticeMsg notice;
  if (!DeliverNoticeMsg::Decode(msg.body(), &notice).ok()) return;
  if (notice.src_log_pos <= delivered_pos_[notice.src_site]) return;

  NoticeKey key{notice.src_site, notice.src_log_pos,
                crypto::Sha256Digest(notice.payload)};
  auto& votes = notice_votes_[key];
  votes.insert(msg.src);
  if (static_cast<int>(votes.size()) != options_.fi + 1) return;

  // f_i+1 nodes delivered identical content: believe it, in source order.
  ready_[notice.src_site][notice.src_log_pos] = {notice.prev_src_log_pos,
                                                 std::move(notice.payload)};
  auto& ready = ready_[notice.src_site];
  uint64_t& delivered = delivered_pos_[notice.src_site];
  while (!ready.empty()) {
    auto first = ready.begin();
    if (first->second.first != delivered) break;  // gap: wait for prev
    Bytes payload = std::move(first->second.second);
    delivered = first->first;
    ready.erase(first);
    Tracer& tr = tracer();
    if (tr.enabled()) {
      // End of a traced send: the source participant bound (site, pos)
      // when the communication record committed locally.
      TraceId t = tr.LookupCommRecord(notice.src_site, delivered);
      if (t != kNoTrace) {
        sim::SimTime now = sim_->Now();
        tr.Mark(t, "delivered", now);
        tr.Instant(t, "deliver", "geo", now, site_, self_.index, delivered);
      }
    }
    if (receive_handler_) {
      receive_handler_(notice.src_site, payload);
    } else {
      receive_queues_[notice.src_site].push_back(std::move(payload));
    }
  }
}

// --- read (§VI-A) -------------------------------------------------------------------

void Participant::Read(uint64_t pos, ReadStrategy strategy, ReadCallback done) {
  if (strategy == ReadStrategy::kLinearizable) {
    // Strongest strategy: order the read itself in the log, then serve it
    // with a quorum read at that point.
    LogCommit(ToBytes("linearizable-read-marker"), 0,
              [this, pos, done = std::move(done)](uint64_t) mutable {
                Read(pos, ReadStrategy::kReadQuorum, std::move(done));
              });
    return;
  }
  uint64_t read_id = next_read_id_++;
  PendingRead& pending = reads_[read_id];
  pending.pos = pos;
  pending.strategy = strategy;
  pending.done = std::move(done);

  ReadRequestMsg request;
  request.read_id = read_id;
  request.pos = pos;
  Bytes encoded = request.Encode();
  if (strategy == ReadStrategy::kReadOne) {
    // Served from the closest node; if it is down or slow, widen to the
    // whole unit after a grace period (the first response still wins).
    SendTo(unit_group_.nodes[0], kReadRequest, Bytes(encoded));
    pending.retry_timer = sim_->Schedule(
        2 * options_.local_client_retry,
        [this, read_id, encoded = std::move(encoded)]() {
          auto it = reads_.find(read_id);
          if (it == reads_.end()) return;
          it->second.retry_timer = sim::kInvalidEventId;
          for (const net::NodeId& node : unit_group_.nodes) {
            SendTo(node, kReadRequest, Bytes(encoded));
          }
        });
  } else {
    for (const net::NodeId& node : unit_group_.nodes) {
      SendTo(node, kReadRequest, Bytes(encoded));
    }
  }
}

void Participant::OnReadReply(const net::Message& msg) {
  ReadReplyMsg reply;
  if (!ReadReplyMsg::Decode(msg.body(), &reply).ok()) return;
  auto it = reads_.find(reply.read_id);
  if (it == reads_.end()) return;
  if (msg.src.site != site_ || unit_group_.ReplicaIndex(msg.src) < 0) return;
  PendingRead& pending = it->second;

  LogRecord record;
  crypto::Digest digest{};
  if (reply.found) {
    if (!LogRecord::Decode(reply.record, &record).ok()) return;
    digest = record.ContentDigest();
    pending.values[digest] = record;
  }
  auto& votes = pending.votes[digest];
  votes.insert(msg.src);

  int needed = pending.strategy == ReadStrategy::kReadOne
                   ? 1
                   : 2 * options_.fi + 1;
  if (static_cast<int>(votes.size()) < needed) return;

  ReadCallback done = std::move(pending.done);
  bool found = reply.found;
  LogRecord result = found ? pending.values[digest] : LogRecord{};
  sim_->Cancel(pending.retry_timer);
  reads_.erase(it);
  if (done) {
    if (found) {
      done(Status::OK(), std::move(result));
    } else {
      done(Status::NotFound("no committed entry at position"), LogRecord{});
    }
  }
}

void Participant::HandleMessage(const net::Message& msg) {
  switch (msg.type) {
    case kDeliverNotice:
      OnDeliverNotice(msg);
      break;
    case kAttestResponse:
      OnAttestResponse(msg);
      break;
    case kGeoAck:
      OnGeoAck(msg);
      break;
    case kRecvStatusReply:
      OnRecvStatusReply(msg);
      break;
    case kMirrorEntry:
      OnMirrorEntry(msg);
      break;
    case kReadReply:
      OnReadReply(msg);
      break;
    case kGeoGapNotice:
      OnGeoGapNotice(msg);
      break;
    default:
      break;
  }
}

void Participant::OnGeoGapNotice(const net::Message& msg) {
  // Only our own unit nodes may report a stuck geo stream.
  if (unit_group_.ReplicaIndex(msg.src) < 0) return;
  GeoGapNoticeMsg notice;
  if (!GeoGapNoticeMsg::Decode(msg.body(), &notice).ok()) return;
  // A byzantine unit leader committed a later geo position while censoring
  // `missing_geo_pos` (DESIGN.md §10). The missing record is one of OUR
  // submissions — its PBFT request is still pending at the client (its
  // reply requires f_i+1 matching states, which the quarantined nodes
  // cannot produce for a censored record). Re-broadcasting the pending
  // requests arms the backups' censored-request watchdogs and forces a
  // view change that evicts the reordering leader; the honest successor
  // proposes the gap and the quarantine drains.
  //
  // Rate-limited: every quarantined apply on every unit node sends a
  // notice, but one nudge per half retry period is plenty.
  sim::SimTime now = sim_->Now();
  if (last_gap_nudge_ != 0 &&
      now - last_gap_nudge_ < options_.local_client_retry / 2) {
    return;
  }
  last_gap_nudge_ = now;
  robustness_stats().geo_gap_nudges++;
  client_->NudgePending();
}

}  // namespace blockplane::core
