// SHA-256 (FIPS 180-4), implemented from scratch. Used for message digests
// in PBFT pre-prepares and as the MAC core for node signatures.
#ifndef BLOCKPLANE_CRYPTO_SHA256_H_
#define BLOCKPLANE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace blockplane::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<uint8_t, 32>;

/// A captured compression-function state after a whole number of 64-byte
/// blocks. Lets long-lived keys amortize their first block (HMAC ipad/opad)
/// across many MAC computations; see PrecomputedHmacKey in hmac.h.
struct Sha256Midstate {
  uint32_t state[8];
  /// Bytes already absorbed into `state` (always a multiple of 64).
  uint64_t processed_bytes;
};

/// Streaming SHA-256 context.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  /// Finalizes and returns the digest; the context must be Reset() before
  /// reuse.
  Digest Finish();

  /// Captures the current compression state. Only valid when the byte count
  /// so far is a multiple of the 64-byte block size (no buffered partial
  /// block); checked.
  Sha256Midstate CaptureMidstate() const;

  /// Resets the context to a previously captured midstate, as if the bytes
  /// it covers had just been absorbed.
  void RestoreMidstate(const Sha256Midstate& midstate);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// One-shot convenience.
Digest Sha256Digest(const uint8_t* data, size_t len);
inline Digest Sha256Digest(const Bytes& data) {
  return Sha256Digest(data.data(), data.size());
}
inline Digest Sha256Digest(std::string_view s) {
  return Sha256Digest(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::string DigestToHex(const Digest& d);
inline Bytes DigestToBytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

}  // namespace blockplane::crypto

#endif  // BLOCKPLANE_CRYPTO_SHA256_H_
