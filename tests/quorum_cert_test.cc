// Quorum-certificate tests (DESIGN.md §14): the compact-cert codec and
// builder, KeyStore::VerifyCert semantics and its two-generation cert
// cache, the hardened duplicate-signer proof rejection, and end-to-end
// deployments where retransmissions, go-back-N replays, and mirror gap
// backfill all hit the verify-once cert cache.
#include "crypto/quorum_cert.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/codec.h"
#include "common/metrics.h"
#include "core/deployment.h"
#include "crypto/signer.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::crypto {
namespace {

// --- Codec and builder ------------------------------------------------------

TEST(QuorumCertTest, CodecRoundTripsEveryField) {
  QuorumCert cert;
  cert.site = 2;
  cert.index_base = 201;  // a mirror group's dense range
  cert.signer_bits = 0b1011;
  for (size_t i = 0; i < cert.agg.size(); ++i) {
    cert.agg[i] = static_cast<uint8_t>(i * 7 + 1);
  }

  Encoder enc;
  cert.EncodeTo(&enc);
  // The whole certificate is 48 wire bytes: 4 (site) + 4 (base) + 8
  // (bitmap) + 32 (aggregate) — versus 40 bytes per individual signature.
  EXPECT_EQ(enc.buffer().size(), 48u);

  Decoder dec(enc.buffer());
  QuorumCert back;
  ASSERT_TRUE(back.DecodeFrom(&dec).ok());
  EXPECT_EQ(back, cert);
  EXPECT_EQ(back.signer_count(), 3);
}

TEST(QuorumCertTest, CertListRoundTripsAndRejectsOversizedCount) {
  QuorumCert a;
  a.site = 0;
  a.signer_bits = 0b11;
  QuorumCert b;
  b.site = 1;
  b.index_base = 101;
  b.signer_bits = 0b111;

  Encoder enc;
  EncodeCertList(&enc, {a, b});
  Decoder dec(enc.buffer());
  std::vector<QuorumCert> back;
  ASSERT_TRUE(DecodeCertList(&dec, &back).ok());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], a);
  EXPECT_EQ(back[1], b);

  // A length prefix past the cap is corruption, not an allocation request.
  Encoder evil;
  evil.PutVarint(1u << 20);
  Decoder evil_dec(evil.buffer());
  std::vector<QuorumCert> out;
  EXPECT_FALSE(DecodeCertList(&evil_dec, &out).ok());
}

TEST(QuorumCertTest, BuildDedupsAndIgnoresOtherSites) {
  KeyStore keys;
  auto s0 = keys.RegisterNode({0, 0});
  auto s2 = keys.RegisterNode({0, 2});
  auto other = keys.RegisterNode({1, 0});
  Bytes msg = ToBytes("attested bytes");

  Signature sig0 = s0->Sign(msg);
  Signature sig2 = s2->Sign(msg);
  Signature dup0 = sig0;
  dup0.mac[3] ^= 0xff;  // same signer, different MAC: first wins

  QuorumCert cert =
      BuildQuorumCert(0, {sig0, dup0, other->Sign(msg), sig2});
  EXPECT_EQ(cert.site, 0);
  EXPECT_EQ(cert.index_base, 0);
  EXPECT_EQ(cert.signer_bits, 0b101u);
  EXPECT_EQ(cert.signer_count(), 2);
  // First-wins dedup: the aggregate matches the clean two-signature build.
  EXPECT_EQ(cert, BuildQuorumCert(0, {sig0, sig2}));
}

TEST(QuorumCertTest, MirrorRangeSignersGetTheMinimumIndexBase) {
  // Mirror groups live at indices 100*(origin+1)+k — far beyond bit 63 of
  // a zero-based bitmap. The index_base re-anchors the bitmap at the
  // group's smallest member.
  KeyStore keys;
  auto m1 = keys.RegisterNode({2, 201});
  auto m2 = keys.RegisterNode({2, 202});
  Bytes msg = ToBytes("mirrored record proof");

  QuorumCert cert = BuildQuorumCert(2, {m2->Sign(msg), m1->Sign(msg)});
  EXPECT_EQ(cert.index_base, 201);
  EXPECT_EQ(cert.signer_bits, 0b11u);
  EXPECT_EQ(cert.signer_count(), 2);
  EXPECT_TRUE(keys.VerifyCert(msg, cert, 2));
}

// --- VerifyCert semantics ---------------------------------------------------

class CertVerifyTest : public ::testing::Test {
 protected:
  CertVerifyTest() {
    for (int i = 0; i < 3; ++i) {
      signers_.push_back(keys_.RegisterNode({0, i}));
    }
    msg_ = ToBytes("canonical transmission bytes");
    for (auto& s : signers_) sigs_.push_back(s->Sign(msg_));
    cert_ = BuildQuorumCert(0, sigs_);
    qc_stats().Reset();
  }
  ~CertVerifyTest() override { qc_stats().Reset(); }

  KeyStore keys_;
  std::vector<std::unique_ptr<Signer>> signers_;
  Bytes msg_;
  std::vector<Signature> sigs_;
  QuorumCert cert_;
};

TEST_F(CertVerifyTest, GenuineCertVerifiesAndThresholdBinds) {
  EXPECT_TRUE(keys_.VerifyCert(msg_, cert_, 2));
  EXPECT_TRUE(keys_.VerifyCert(msg_, cert_, 3));
  // More signers demanded than the bitmap lists: reject before any HMAC.
  EXPECT_FALSE(keys_.VerifyCert(msg_, cert_, 4));
}

TEST_F(CertVerifyTest, ForgeriesFailAndAreNeverCached) {
  QuorumCert tampered = cert_;
  tampered.agg[0] ^= 0x01;
  QuorumCert inflated = cert_;
  inflated.signer_bits |= 1u << 3;  // claims an unregistered fourth signer
  Bytes wrong_msg = msg_;
  wrong_msg.back() ^= 0x01;

  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(keys_.VerifyCert(msg_, tampered, 2));
    EXPECT_FALSE(keys_.VerifyCert(msg_, inflated, 2));
    EXPECT_FALSE(keys_.VerifyCert(wrong_msg, cert_, 2));
  }
  // Failures never seed the cache: every attempt above took the full
  // (failing) recomputation, and the genuine cert still verifies.
  EXPECT_EQ(qc_stats().cache_hits, 0);
  EXPECT_TRUE(keys_.VerifyCert(msg_, cert_, 2));
}

TEST_F(CertVerifyTest, RepeatVerifiesHitTheCacheAndElideMacChecks) {
  ASSERT_TRUE(keys_.VerifyCert(msg_, cert_, 2));  // cold: 3 MAC checks
  EXPECT_EQ(qc_stats().certs_verified, 1);
  EXPECT_EQ(qc_stats().proof_sig_verifies, 3);
  EXPECT_EQ(qc_stats().cache_hits, 0);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(keys_.VerifyCert(msg_, cert_, 2));
  EXPECT_EQ(qc_stats().cache_hits, 5);
  EXPECT_EQ(qc_stats().verifies_elided, 15);  // 5 hits x 3 signers
  EXPECT_EQ(qc_stats().proof_sig_verifies, 3);  // unchanged: no recompute
}

TEST_F(CertVerifyTest, DisabledCacheStillVerifiesCorrectly) {
  keys_.set_verify_cache_capacity(0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(keys_.VerifyCert(msg_, cert_, 2));
  EXPECT_EQ(qc_stats().cache_hits, 0);
  QuorumCert tampered = cert_;
  tampered.agg[5] ^= 0xff;
  EXPECT_FALSE(keys_.VerifyCert(msg_, tampered, 2));
}

TEST_F(CertVerifyTest, SeedCertCacheLandsTheDetachedVerdict) {
  // The Runner-prologue split: VerifyCertDetached on a worker thread is
  // counter- and cache-free; SeedCertCache at ordered retirement lands the
  // accounting, and every later serial verify is a hit.
  EXPECT_TRUE(keys_.VerifyCertDetached(msg_, cert_, 2));
  EXPECT_EQ(qc_stats().certs_verified, 0);

  keys_.SeedCertCache(msg_, cert_);
  EXPECT_EQ(qc_stats().certs_verified, 1);
  EXPECT_EQ(qc_stats().proof_sig_verifies, 3);

  EXPECT_TRUE(keys_.VerifyCert(msg_, cert_, 2));
  EXPECT_EQ(qc_stats().cache_hits, 1);
  EXPECT_EQ(qc_stats().verifies_elided, 3);
}

// --- Hardened VerifyProof (duplicate-signer rejection) ----------------------

TEST(ProofHardeningTest, ForgedDuplicatePoisonsAnOtherwiseValidProof) {
  // The forged-duplicate attack: pad a genuine f_i+1 proof with a second
  // entry claiming an already-present signer. Before hardening the invalid
  // duplicate was merely ignored; now any repeated index within the
  // verifying site rejects the whole proof — honest units never emit one.
  KeyStore keys;
  auto s0 = keys.RegisterNode({0, 0});
  auto s1 = keys.RegisterNode({0, 1});
  auto other = keys.RegisterNode({1, 0});
  Bytes msg = ToBytes("state change");
  Signature sig0 = s0->Sign(msg);
  Signature sig1 = s1->Sign(msg);
  Signature forged_dup = sig0;
  forged_dup.mac[0] ^= 0xff;

  ASSERT_TRUE(keys.VerifyProof(msg, {sig0, sig1}, 0, 2));
  // A forged duplicate of signer 0 — invalid MAC, repeated index.
  EXPECT_FALSE(keys.VerifyProof(msg, {sig0, forged_dup, sig1}, 0, 2));
  // A byte-identical duplicate is equally poisonous.
  EXPECT_FALSE(keys.VerifyProof(msg, {sig0, sig0, sig1}, 0, 2));
  // Other sites' entries are still ignored padding, not duplicates.
  EXPECT_TRUE(keys.VerifyProof(msg, {sig0, sig1, other->Sign(msg)}, 0, 2));
}

}  // namespace
}  // namespace blockplane::crypto

// --- End-to-end: certs on the wire, cache hits across the deployment --------

namespace blockplane::core {
namespace {

using net::kCalifornia;
using net::kOregon;
using net::kVirginia;
using net::Topology;
using sim::Seconds;

BlockplaneOptions QcOptions(int fg = 0) {
  BlockplaneOptions options;
  options.qc.enabled = true;
  options.fg = fg;
  return options;
}

TEST(QuorumCertEndToEndTest, SendsShipCertsAndEveryExtraHopHitsTheCache) {
  sim::Simulator simulator(11);
  Deployment deployment(&simulator, Topology::Aws4(), QcOptions());
  qc_stats().Reset();

  Participant* sender = deployment.participant(kCalifornia);
  for (int i = 0; i < 5; ++i) {
    sender->Send(kOregon, ToBytes("qc" + std::to_string(i)), 0, nullptr);
  }
  Participant* receiver = deployment.participant(kOregon);
  std::vector<std::string> got;
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] {
        Bytes payload;
        while (receiver->TryReceive(kCalifornia, &payload)) {
          got.push_back(ToString(payload));
        }
        return got.size() == 5;
      },
      Seconds(60)));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], "qc" + std::to_string(i));
  simulator.RunFor(Seconds(2));

  // One cert per decision, built once at the source...
  EXPECT_GT(qc_stats().certs_built, 0);
  // ...verified cold at the first hop, elided everywhere after: the
  // deployment shares one KeyStore, so the 2nd..4th destination nodes and
  // every replayed flight probe the cert cache instead of re-checking
  // f_i+1 MACs.
  EXPECT_GT(qc_stats().certs_verified, 0);
  EXPECT_GT(qc_stats().cache_hits, 0);
  EXPECT_GT(qc_stats().verifies_elided, 0);
  qc_stats().Reset();
}

TEST(QuorumCertEndToEndTest, QcOffBuildsNoCerts) {
  // The default configuration must not touch the qc pipeline at all —
  // the wire stays v1-byte-identical and the counters stay zero.
  sim::Simulator simulator(13);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  qc_stats().Reset();

  Participant* receiver = deployment.participant(kOregon);
  deployment.participant(kCalifornia)
      ->Send(kOregon, ToBytes("vanilla"), 0, nullptr);
  Bytes payload;
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &payload); },
      Seconds(60)));
  simulator.RunFor(Seconds(2));
  EXPECT_EQ(qc_stats().certs_built, 0);
  EXPECT_EQ(qc_stats().certs_verified, 0);
  EXPECT_EQ(qc_stats().cache_hits, 0);
}

TEST(QuorumCertEndToEndTest, RetransmissionsAfterAPartitionHitTheCache) {
  // A transmission stranded by a partition is retransmitted (widened to
  // 3f_i+1 receivers) once the link heals; the replayed flights carry the
  // same certificate, so every re-verify is a cache probe, not f_i+1 MACs.
  sim::Simulator simulator(17);
  Deployment deployment(&simulator, Topology::Aws4(), QcOptions());
  qc_stats().Reset();

  Participant* sender = deployment.participant(kCalifornia);
  Participant* receiver = deployment.participant(kVirginia);
  Bytes payload;

  sender->Send(kVirginia, ToBytes("first"), 0, nullptr);
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &payload); },
      Seconds(60)));

  deployment.network()->PartitionSites(kCalifornia, kVirginia);
  sender->Send(kVirginia, ToBytes("delayed"), 0, nullptr);
  simulator.RunFor(Seconds(5));  // retransmit timers fire into the void
  int64_t hits_before_heal = qc_stats().cache_hits;

  deployment.network()->HealPartition(kCalifornia, kVirginia);
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return receiver->TryReceive(kCalifornia, &payload); },
      Seconds(120)));
  EXPECT_EQ(ToString(payload), "delayed");
  simulator.RunFor(Seconds(3));

  // The healed flights re-verified the stranded certificate at the widened
  // receiver set: strictly more cache hits than before the heal.
  EXPECT_GT(qc_stats().cache_hits, hits_before_heal);
  EXPECT_GT(qc_stats().verifies_elided, 0);
  qc_stats().Reset();
}

TEST(QuorumCertEndToEndTest, MirrorGapBackfillHitsTheCache) {
  // A mirror site that slept through commits fetches the missed entries
  // from its peers on recovery. The backfilled records carry their quorum
  // certs, already verified deployment-wide during the original
  // replication — the gap fill must ride the cert cache.
  sim::Simulator simulator(19);
  Deployment deployment(&simulator, Topology::Aws4(), QcOptions(/*fg=*/1));
  robustness_stats().Reset();

  auto commit = [&](const std::string& payload) {
    bool done = false;
    deployment.participant(kCalifornia)
        ->LogCommit(ToBytes(payload), 0, [&](uint64_t) { done = true; });
    ASSERT_TRUE(
        simulator.RunUntilCondition([&] { return done; }, Seconds(60)));
  };

  commit("before outage");
  simulator.RunFor(Seconds(1));

  // One of California's two mirror hosts goes dark; fg=1 commits proceed
  // on the surviving mirror alone, so the sleeper accumulates a gap.
  net::SiteId sleeper = deployment.mirror_sites_of(kCalifornia)[0];
  deployment.network()->CrashSite(sleeper);
  commit("missed one");
  commit("missed two");
  deployment.network()->RecoverSite(sleeper);
  qc_stats().Reset();

  commit("after recovery");
  commit("after recovery two");
  RobustnessStats& rs = robustness_stats();
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return rs.mirror_gap_filled > 0; }, Seconds(60)))
      << "recovered mirror never backfilled its gap";
  simulator.RunFor(Seconds(2));

  EXPECT_GT(rs.mirror_gap_fetches, 0);
  // The backfilled proofs were verified through the cert path and the
  // cache elided the per-MAC work.
  EXPECT_GT(qc_stats().verifies_elided, 0);
  EXPECT_GT(qc_stats().cache_hits, 0);
  qc_stats().Reset();
  robustness_stats().Reset();
}

TEST(QuorumCertEndToEndTest, GeoCommitsCarryCertsInReplicationAndBundles) {
  // fg > 0 exercises both geo cert paths: replicate messages carry the
  // source unit's cert, and proof bundles carry one cert per acking site.
  sim::Simulator simulator(23);
  Deployment deployment(&simulator, Topology::Aws4(), QcOptions(/*fg=*/1));
  qc_stats().Reset();

  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    deployment.participant(kCalifornia)
        ->LogCommit(ToBytes("geo" + std::to_string(i)), 0,
                    [&](uint64_t) { ++completed; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return completed == 3; },
                                          Seconds(120)));
  simulator.RunFor(Seconds(2));

  EXPECT_GT(qc_stats().certs_built, 0);
  EXPECT_GT(qc_stats().certs_verified, 0);
  EXPECT_GT(qc_stats().verifies_elided, 0);
  // Mirror logs hold the records despite the vector-free wire.
  int holding = 0;
  for (net::SiteId host : deployment.mirror_sites_of(kCalifornia)) {
    if (deployment.mirror_node(host, kCalifornia, 0)->log_size() >= 3) {
      ++holding;
    }
  }
  EXPECT_GE(holding, 1);
  qc_stats().Reset();
}

}  // namespace
}  // namespace blockplane::core
