// Micro-benchmarks (google-benchmark) for the hot primitives under the
// paper's experiments: SHA-256/HMAC, signatures, the binary codec, record
// encoding, the simulator core, and an end-to-end local commit.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "core/deployment.h"
#include "net/transport.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace blockplane {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(state.range(0), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(100000);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x42);
  Bytes data(state.range(0), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256(key, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_HmacPrecomputed(benchmark::State& state) {
  // Same key/message shapes as BM_HmacSha256, through the midstate-cached
  // key: the per-call delta between the two is what PrecomputedHmacKey
  // saves (key schedule + 2 of the 4 compressions for short messages).
  Bytes key(32, 0x42);
  crypto::PrecomputedHmacKey fast(key);
  Bytes data(state.range(0), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast.Sign(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacPrecomputed)->Arg(64)->Arg(1024);

void BM_SignVerify(benchmark::State& state) {
  crypto::KeyStore keys;
  auto signer = keys.RegisterNode({0, 0});
  Bytes msg(256, 0x11);
  for (auto _ : state) {
    crypto::Signature sig = signer->Sign(msg);
    benchmark::DoNotOptimize(keys.Verify(msg, sig));
  }
}
BENCHMARK(BM_SignVerify);

void BM_Crc32(benchmark::State& state) {
  Bytes data(state.range(0), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1024)->Arg(100000);

void BM_CodecRoundTrip(benchmark::State& state) {
  Bytes payload(state.range(0), 0x3c);
  for (auto _ : state) {
    Encoder enc;
    enc.PutU64(42);
    enc.PutVarint(123456);
    enc.PutBytes(payload);
    Bytes wire = enc.Take();
    Decoder dec(wire);
    uint64_t fixed = 0;
    uint64_t varint = 0;
    Bytes out;
    benchmark::DoNotOptimize(dec.GetU64(&fixed));
    benchmark::DoNotOptimize(dec.GetVarint(&varint));
    benchmark::DoNotOptimize(dec.GetBytes(&out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CodecRoundTrip)->Arg(1024)->Arg(100000);

void BM_RecordEncodeDecode(benchmark::State& state) {
  core::LogRecord record;
  record.type = core::RecordType::kReceived;
  record.routine_id = 7;
  record.payload = Bytes(1024, 0x77);
  record.dest_site = 1;
  record.src_site = 0;
  record.src_log_pos = 42;
  record.prev_src_log_pos = 40;
  for (auto _ : state) {
    Bytes wire = record.Encode();
    core::LogRecord out;
    benchmark::DoNotOptimize(core::LogRecord::Decode(wire, &out));
  }
}
BENCHMARK(BM_RecordEncodeDecode);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator(1);
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.Schedule(i, [&fired]() { ++fired; });
    }
    simulator.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_TransportSend(benchmark::State& state) {
  // Cost of pushing one payload through ReliableTransport::Send. The
  // rvalue-payload signature plus the exact-size Reserve in the frame
  // encoder mean the bytes are copied exactly once (into the frame); the
  // "bytes_copied_saved" counter reports the copies the old by-value /
  // growing-encoder path would have made on top of that.
  const int64_t payload_size = state.range(0);
  sim::Simulator simulator(1);
  net::NetworkOptions net_options;
  net_options.per_message_cpu = 0;
  net::Network network(&simulator, net::Topology::SingleSite(), net_options);
  net::ReliableTransport sender(&network, net::NodeId{0, 0},
                                [](const net::Message&) {});
  net::ReliableTransport receiver(&network, net::NodeId{0, 1},
                                  [](const net::Message&) {});
  Bytes payload(payload_size, 0x5c);
  transport_stats().Reset();
  for (auto _ : state) {
    sender.Send(net::NodeId{0, 1}, 7, Bytes(payload));
    simulator.Run();  // deliver + ack so in-flight state stays bounded
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          payload_size);
  // One elided deep copy per Send: the accounting that pins the zero-copy
  // claim (asserted against iterations, not just reported).
  state.counters["bytes_copied_saved"] = static_cast<double>(
      transport_stats().bytes_copied_saved);
  if (transport_stats().bytes_copied_saved !=
      static_cast<int64_t>(state.iterations()) * payload_size) {
    state.SkipWithError("bytes_copied_saved accounting mismatch");
  }
}
BENCHMARK(BM_TransportSend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_LocalCommitEndToEnd(benchmark::State& state) {
  // Wall-clock cost of simulating one full PBFT local commit (the unit of
  // work behind Fig. 4): useful for spotting regressions in the hot path.
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.sign_messages = state.range(0) != 0;
  options.hash_payloads = state.range(0) != 0;
  options.checkpoint_interval = 8;
  options.prune_applied_log = 8;
  core::Deployment deployment(&simulator, net::Topology::SingleSite(),
                              options);
  Bytes batch(1000, 0x99);
  for (auto _ : state) {
    bool done = false;
    deployment.participant(0)->LogCommit(Bytes(batch), 0,
                                         [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(10));
  }
  state.SetLabel(state.range(0) ? "with-crypto" : "paper-mode");
}
BENCHMARK(BM_LocalCommitEndToEnd)->Arg(0)->Arg(1);

}  // namespace
}  // namespace blockplane

// Custom main instead of BENCHMARK_MAIN(): defaults --benchmark_out to
// BENCH_micro.json (google-benchmark's JSON schema) so CI and the plots
// under scripts/ can consume the numbers without scraping console output.
// An explicit --benchmark_out on the command line still wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
