// Status: the result of an operation that can fail without a payload.
//
// Follows the RocksDB/Arrow idiom: library functions return Status (or
// StatusOr<T>) instead of throwing exceptions. A default-constructed Status
// is OK and carries no allocation.
#ifndef BLOCKPLANE_COMMON_STATUS_H_
#define BLOCKPLANE_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace blockplane {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnavailable = 6,
  kTimedOut = 7,
  kCorruption = 8,
  kPermissionDenied = 9,
  kAborted = 10,
  kInternal = 11,
  kNotSupported = 12,
};

/// Returns a human-readable name for a StatusCode ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The error message; empty for OK statuses.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr means OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_STATUS_H_
