"""bplint - Blockplane's project-invariant static-analysis suite.

Usage:
  python3 scripts/bplint [paths...] [options]

  paths                 files or directories to analyze, relative to
                        --root (default: src bench)
  -p, --build DIR       CMake build directory; the compile-commands
                        database there widens the file set to every
                        translation unit the build knows about
  --root DIR            project root diagnostics are reported relative
                        to (default: the current directory)
  --disable RULES       comma-separated rule ids to disable
                        (e.g. --disable BP003,BP005)
  --list-rules          print the rule catalog and exit
  --no-clang            skip the optional libclang refinement backend

Exit status: 0 when no diagnostics, 1 otherwise, 2 on usage errors.
Diagnostics go to stdout as sorted `path:line: RULE: message` lines and
are byte-identical across runs; the summary goes to stderr.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from engine import run  # noqa: E402
from rules import ALL_RULES, RULE_DESCRIPTIONS  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bplint",
        description="Blockplane determinism / wire-coverage / entropy-"
                    "hygiene static analysis")
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("-p", "--build", dest="build", default=None)
    parser.add_argument("--root", default=".")
    parser.add_argument("--disable", default="")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--no-clang", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULE_DESCRIPTIONS:
            print(f"{rule}  {desc}")
        return 0

    disabled = {r.strip() for r in args.disable.split(",") if r.strip()}
    unknown = disabled - set(ALL_RULES)
    if unknown:
        print(f"bplint: unknown rule id(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths or ["src", "bench"]
    root = args.root
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if not os.path.exists(full):
            print(f"bplint: no such path: {p}", file=sys.stderr)
            return 2

    diags, nfiles = run(paths, root, compile_commands_dir=args.build,
                        disabled=disabled, use_clang=not args.no_clang)
    for d in diags:
        print(d.render())
    print(f"bplint: {nfiles} files analyzed, {len(diags)} diagnostic(s)",
          file=sys.stderr)
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
