#include "common/logging.h"

#include <cstdio>

namespace blockplane {

namespace {

LogLevel g_level = LogLevel::kWarning;
std::function<int64_t()>* g_time_source = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logger::level() { return g_level; }

void Logger::SetTimeSource(std::function<int64_t()> now_ns) {
  delete g_time_source;
  g_time_source =
      now_ns ? new std::function<int64_t()>(std::move(now_ns)) : nullptr;
}

void Logger::Write(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  if (g_time_source != nullptr) {
    int64_t ns = (*g_time_source)();
    std::fprintf(stderr, "[%s t=%.3fms] %s\n", LevelName(level),
                 static_cast<double>(ns) / 1e6, msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
  }
}

}  // namespace blockplane
