// Tests for batching & group commit (§VI-C) and node recovery (§VI-B).
#include "core/batcher.h"

#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/metrics.h"
#include "core/deployment.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::kCalifornia;
using net::Topology;
using sim::Milliseconds;
using sim::Seconds;

class BatcherTest : public ::testing::Test {
 protected:
  BatcherTest()
      : simulator_(19),
        deployment_(&simulator_, Topology::SingleSite(), {}) {}

  sim::Simulator simulator_;
  Deployment deployment_;
};

TEST_F(BatcherTest, EncodeDecodeRoundTrip) {
  std::vector<Bytes> ops = {ToBytes("a"), ToBytes("bb"), ToBytes(""),
                            ToBytes("cccc")};
  Bytes payload = Batcher::EncodeBatch(ops);
  std::vector<Bytes> decoded;
  ASSERT_TRUE(Batcher::DecodeBatch(payload, &decoded).ok());
  EXPECT_EQ(decoded, ops);
}

TEST_F(BatcherTest, DecodeRejectsTrailingBytes) {
  Bytes payload = Batcher::EncodeBatch({ToBytes("x")});
  payload.push_back(0x00);
  std::vector<Bytes> decoded;
  EXPECT_TRUE(Batcher::DecodeBatch(payload, &decoded).IsCorruption());
}

TEST_F(BatcherTest, DecodeRejectsTruncation) {
  Bytes payload = Batcher::EncodeBatch({ToBytes("hello")});
  payload.resize(payload.size() - 2);
  std::vector<Bytes> decoded;
  EXPECT_TRUE(Batcher::DecodeBatch(payload, &decoded).IsCorruption());
}

TEST_F(BatcherTest, GroupsSmallOpsIntoOneCommit) {
  Batcher batcher(deployment_.participant(0), &simulator_);
  std::vector<std::pair<uint64_t, uint32_t>> completions;
  for (int i = 0; i < 10; ++i) {
    batcher.Add(ToBytes("op" + std::to_string(i)),
                [&](uint64_t pos, uint32_t index) {
                  completions.push_back({pos, index});
                });
  }
  batcher.Flush();
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return completions.size() == 10; }, Seconds(10)));
  // All ten ops landed in one batch (one log record), indexed in order.
  EXPECT_EQ(batcher.batches_committed(), 1u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(completions[i].first, completions[0].first);
    EXPECT_EQ(completions[i].second, i);
  }
  // The committed record decodes back to the ops.
  const auto& log = deployment_.node(0, 0)->log();
  simulator_.RunFor(Seconds(1));
  ASSERT_EQ(log.size(), 1u);
  std::vector<Bytes> ops;
  ASSERT_TRUE(Batcher::DecodeBatch(log.at(1).payload, &ops).ok());
  ASSERT_EQ(ops.size(), 10u);
  EXPECT_EQ(ToString(ops[3]), "op3");
}

TEST_F(BatcherTest, MaxDelayFlushesAutomatically) {
  Batcher::Options options;
  options.max_delay = Milliseconds(5);
  Batcher batcher(deployment_.participant(0), &simulator_, options);
  bool done = false;
  batcher.Add(ToBytes("lonely op"), [&](uint64_t, uint32_t) { done = true; });
  // No Flush() call: the delay timer must do it.
  ASSERT_TRUE(
      simulator_.RunUntilCondition([&] { return done; }, Seconds(10)));
}

TEST_F(BatcherTest, SizeThresholdFlushesAutomatically) {
  Batcher::Options options;
  options.max_batch_bytes = 100;
  options.max_delay = 0;  // disable the timer: only size can trigger
  Batcher batcher(deployment_.participant(0), &simulator_, options);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    batcher.Add(Bytes(30, 0x42), [&](uint64_t, uint32_t) { ++completed; });
  }
  ASSERT_TRUE(
      simulator_.RunUntilCondition([&] { return completed == 4; },
                                   Seconds(10)));
}

TEST_F(BatcherTest, DecodeRejectsCountExceedingPayload) {
  // A malicious count varint must be rejected before it reaches
  // vector::reserve — every real op costs at least one payload byte.
  Encoder enc;
  enc.PutVarint(500'000);  // under the absolute cap, but payload is tiny
  enc.PutBytes(ToBytes("x"));
  std::vector<Bytes> decoded;
  EXPECT_TRUE(Batcher::DecodeBatch(enc.Take(), &decoded).IsCorruption());

  Encoder huge;
  huge.PutVarint(uint64_t{1} << 40);  // absurd count, empty payload
  EXPECT_TRUE(Batcher::DecodeBatch(huge.Take(), &decoded).IsCorruption());
}

TEST_F(BatcherTest, KInFlightPipelinesBatches) {
  // DESIGN.md §9: max_in_flight > 1 lifts the group-commit rule while the
  // participant keeps completions in submission order.
  pipeline_stats().Reset();
  Batcher::Options options;
  options.max_ops = 2;
  options.max_delay = Milliseconds(1);
  options.max_in_flight = 4;
  Batcher batcher(deployment_.participant(0), &simulator_, options);
  constexpr int kOps = 16;
  std::vector<int> order;
  for (int i = 0; i < kOps; ++i) {
    batcher.Add(ToBytes(std::to_string(i)),
                [&, i](uint64_t, uint32_t) { order.push_back(i); });
  }
  batcher.Flush();
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return order.size() == kOps; }, Seconds(10)));
  EXPECT_EQ(batcher.batches_committed(), 8u);  // 16 ops / 2 per batch
  EXPECT_GE(pipeline_stats().batcher_inflight_peak, 2u);
  // Completion callbacks still fire in submission order.
  for (int i = 0; i < kOps; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(BatcherTest, GroupCommitKeepsOneBatchInFlight) {
  Batcher::Options options;
  options.max_ops = 4;
  options.max_delay = Milliseconds(1);
  Batcher batcher(deployment_.participant(0), &simulator_, options);
  std::vector<uint64_t> batch_positions;
  constexpr int kOps = 20;
  int completed = 0;
  for (int i = 0; i < kOps; ++i) {
    batcher.Add(ToBytes(std::to_string(i)),
                [&](uint64_t pos, uint32_t) {
                  ++completed;
                  batch_positions.push_back(pos);
                });
  }
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return completed == kOps; }, Seconds(10)));
  EXPECT_EQ(batcher.batches_committed(), 5u);  // 20 ops / 4 per batch
  // Batches committed strictly one after another: positions ascend.
  for (size_t i = 1; i < batch_positions.size(); ++i) {
    EXPECT_LE(batch_positions[i - 1], batch_positions[i]);
  }
  // Submission order is preserved across batches.
  const auto& log = deployment_.node(0, 0)->log();
  simulator_.RunFor(Seconds(1));
  int expected = 0;
  for (const auto& [pos, record] : log) {
    std::vector<Bytes> ops;
    ASSERT_TRUE(Batcher::DecodeBatch(record.payload, &ops).ok());
    for (const Bytes& op : ops) {
      EXPECT_EQ(ToString(op), std::to_string(expected++));
    }
  }
  EXPECT_EQ(expected, kOps);
}

TEST_F(BatcherTest, VerificationRoutineSeesWholeBatch) {
  // §VI-C: "the leader and replicas perform the validation routines for
  // each transaction and vote positively only if all are validated".
  constexpr uint64_t kRoutine = 5;
  for (int i = 0; i < 4; ++i) {
    deployment_.node(0, i)->RegisterVerifier(
        kRoutine, [](const LogRecord& record) {
          std::vector<Bytes> ops;
          if (!Batcher::DecodeBatch(record.payload, &ops).ok()) return false;
          for (const Bytes& op : ops) {
            if (ToString(op).find("bad") != std::string::npos) return false;
          }
          return true;
        });
  }
  Batcher batcher(deployment_.participant(0), &simulator_, {}, kRoutine);
  int completed = 0;
  batcher.Add(ToBytes("good-1"), [&](uint64_t, uint32_t) { ++completed; });
  batcher.Add(ToBytes("bad-2"), [&](uint64_t, uint32_t) { ++completed; });
  batcher.Flush();
  // The whole batch is rejected (one bad transaction poisons it).
  EXPECT_FALSE(simulator_.RunUntilCondition([&] { return completed > 0; },
                                            Seconds(3)));
}

TEST(NodeRecoveryTest, RecoveredNodeCatchesUpFromPeers) {
  // §VI-B: "When the replica becomes non-faulty again, it reads the state
  // of the Local Log from other nodes to catch up with the current state."
  sim::Simulator simulator(23);
  Deployment deployment(&simulator, Topology::SingleSite(), {});
  net::NodeId down{0, 2};
  deployment.network()->Crash(down);

  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    deployment.participant(0)->LogCommit(ToBytes("c" + std::to_string(i)), 0,
                                         [&](uint64_t) { ++completed; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return completed == 6; },
                                          Seconds(30)));
  EXPECT_EQ(deployment.node(0, 2)->log_size(), 0u);

  deployment.network()->Recover(down);
  deployment.node(0, 2)->Recover();
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return deployment.node(0, 2)->log_size() == 6; }, Seconds(30)));
  // The recovered copy matches a healthy node's log.
  for (uint64_t pos = 1; pos <= 6; ++pos) {
    EXPECT_EQ(ToString(deployment.node(0, 2)->log().at(pos).payload),
              ToString(deployment.node(0, 0)->log().at(pos).payload));
  }
}

}  // namespace
}  // namespace blockplane::core
