// Unit tests for the discrete-event simulator.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"
#include "sim/sim_time.h"

namespace blockplane::sim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(Milliseconds(3), 3'000'000);
  EXPECT_EQ(Microseconds(5), 5'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_EQ(MillisecondsD(0.5), 500'000);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2)), 2.0);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(Milliseconds(30), [&] { order.push_back(3); });
  simulator.Schedule(Milliseconds(10), [&] { order.push_back(1); });
  simulator.Schedule(Milliseconds(20), [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), Milliseconds(30));
}

TEST(SimulatorTest, EqualTimestampsAreFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.Schedule(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Milliseconds(1), [&] {
    ++fired;
    simulator.Schedule(Milliseconds(1), [&] { ++fired; });
  });
  simulator.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.Now(), Milliseconds(2));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  EventId id = simulator.Schedule(Milliseconds(1), [&] { fired = true; });
  simulator.Cancel(id);
  simulator.Run();
  EXPECT_FALSE(fired);
  // Cancelling again (or a bogus id) is a no-op.
  simulator.Cancel(id);
  simulator.Cancel(kInvalidEventId);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Milliseconds(10), [&] { ++fired; });
  simulator.Schedule(Milliseconds(30), [&] { ++fired; });
  EXPECT_FALSE(simulator.RunUntil(Milliseconds(20)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.Now(), Milliseconds(20));
  EXPECT_TRUE(simulator.RunUntil(Milliseconds(100)));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator simulator;
  EXPECT_TRUE(simulator.RunUntil(Milliseconds(50)));
  EXPECT_EQ(simulator.Now(), Milliseconds(50));
}

TEST(SimulatorTest, RunUntilCondition) {
  Simulator simulator;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    simulator.Schedule(Milliseconds(i), [&] { ++count; });
  }
  EXPECT_TRUE(simulator.RunUntilCondition([&] { return count >= 4; },
                                          Seconds(1)));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(simulator.Now(), Milliseconds(4));
}

TEST(SimulatorTest, RunUntilConditionTimesOut) {
  Simulator simulator;
  bool never = false;
  simulator.Schedule(Seconds(10), [&] { never = true; });
  EXPECT_FALSE(
      simulator.RunUntilCondition([&] { return never; }, Seconds(1)));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator simulator;
  simulator.Schedule(Milliseconds(5), [&] {
    // Scheduling "in the past" runs immediately after the current event.
    simulator.Schedule(-Milliseconds(3), [] {});
  });
  simulator.Run();
  EXPECT_EQ(simulator.Now(), Milliseconds(5));
}

TEST(SimulatorTest, ProcessedEventCount) {
  Simulator simulator;
  for (int i = 0; i < 7; ++i) simulator.Schedule(i, [] {});
  simulator.Run();
  EXPECT_EQ(simulator.processed_events(), 7u);
}

TEST(SimulatorTest, PendingEventsTracksScheduleFireCancel) {
  Simulator simulator;
  EXPECT_EQ(simulator.pending_events(), 0u);
  EventId a = simulator.Schedule(Milliseconds(1), [] {});
  simulator.Schedule(Milliseconds(2), [] {});
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.Cancel(a);
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.Run();
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, CancelChurnDoesNotLeakOrSkewPendingCount) {
  // Regression: Cancel() used to insert ids into the tombstone set
  // unconditionally. Cancelling ids that had already fired left tombstones
  // that nothing would ever pop, growing memory without bound and making
  // pending_events() (then queue size minus tombstones) wildly wrong —
  // even underflowing below zero.
  Simulator simulator;
  std::vector<EventId> fired_ids;
  constexpr int kRounds = 1000;
  for (int i = 0; i < kRounds; ++i) {
    fired_ids.push_back(simulator.Schedule(Milliseconds(i + 1), [] {}));
  }
  simulator.Run();
  ASSERT_EQ(simulator.pending_events(), 0u);

  // Heavy churn: cancel every fired id (twice), plus ids never issued.
  for (EventId id : fired_ids) {
    simulator.Cancel(id);
    simulator.Cancel(id);
  }
  for (EventId id = 1'000'000; id < 1'001'000; ++id) simulator.Cancel(id);
  EXPECT_EQ(simulator.pending_events(), 0u);

  // New events still schedule, cancel, and fire with an exact count: no
  // stale tombstone swallows a live event or skews the arithmetic.
  int fired = 0;
  std::vector<EventId> keep, drop;
  for (int i = 0; i < 100; ++i) {
    keep.push_back(simulator.Schedule(Milliseconds(i + 1), [&] { ++fired; }));
    drop.push_back(simulator.Schedule(Milliseconds(i + 1), [&] { ++fired; }));
  }
  EXPECT_EQ(simulator.pending_events(), 200u);
  for (EventId id : drop) simulator.Cancel(id);
  EXPECT_EQ(simulator.pending_events(), 100u);
  simulator.Run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, CancelInsideCallbackOfSameTimestamp) {
  // An event may cancel a later event that shares its timestamp; the
  // cancelled event must not run and the pending count must stay exact.
  Simulator simulator;
  bool second_ran = false;
  EventId second = kInvalidEventId;
  simulator.Schedule(Milliseconds(1),
                     [&] { simulator.Cancel(second); });
  second = simulator.Schedule(Milliseconds(1), [&] { second_ran = true; });
  simulator.Run();
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace blockplane::sim
