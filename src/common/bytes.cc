#include "common/bytes.h"

namespace blockplane {

std::string HexEncode(const uint8_t* data, size_t len) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace blockplane
