// Geo-correlated fault tolerance (§V): surviving the loss of an entire
// datacenter.
//
// With f_g = 1 every participant mirrors its Local Log on its two closest
// peers and commits only after one of them proves it holds the record.
// When California's datacenter burns down, Virginia — one of its mirrors —
// takes over as primary and continues the log, exactly like primary-copy
// replication (Fig. 8b).
//
//   $ ./failover_demo
#include <cstdio>

#include "core/deployment.h"

using namespace blockplane;

int main() {
  sim::Simulator simulator(11);
  core::BlockplaneOptions options;
  options.fg = 1;  // tolerate one datacenter-scale outage
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options);

  std::printf("Geo-correlated failover demo (f_i = 1, f_g = 1)\n");
  std::printf("California's mirrors:");
  for (net::SiteId m : deployment.mirror_sites_of(net::kCalifornia)) {
    std::printf(" %s",
                deployment.network()->topology().site_name(m).c_str());
  }
  std::printf("\n\n");

  // The primary commits a few records; each waits for a mirror proof.
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(net::kCalifornia)
        ->LogCommit(ToBytes("order-" + std::to_string(i)), 0,
                    [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; }, sim::Seconds(60));
    std::printf("primary committed order-%d in %.1f ms\n", i,
                sim::ToMillis(simulator.Now() - start));
  }

  std::printf("\n*** California datacenter fails ***\n\n");
  deployment.network()->CrashSite(net::kCalifornia);

  // Virginia detects the outage and takes over as acting primary for
  // California's log, using the remaining mirror peers.
  core::Participant* secondary = deployment.participant(net::kVirginia);
  std::vector<net::SiteId> peers =
      deployment.mirror_sites_of(net::kCalifornia);
  peers.push_back(net::kCalifornia);
  secondary->SetMirrorPeers(net::kCalifornia, peers);

  for (int i = 3; i < 6; ++i) {
    bool done = false;
    uint64_t pos = 0;
    sim::SimTime start = simulator.Now();
    secondary->MirrorCommit(net::kCalifornia,
                            ToBytes("order-" + std::to_string(i)), 0,
                            [&](uint64_t p) {
                              pos = p;
                              done = true;
                            });
    simulator.RunUntilCondition([&] { return done; }, sim::Seconds(60));
    std::printf("secondary (Virginia) committed order-%d at stream pos %lu "
                "in %.1f ms\n",
                i, static_cast<unsigned long>(pos),
                sim::ToMillis(simulator.Now() - start));
  }

  // The mirrored stream at Virginia holds all six records, in order.
  core::BlockplaneNode* mirror =
      deployment.mirror_node(net::kVirginia, net::kCalifornia, 0);
  simulator.RunFor(sim::Seconds(2));
  std::printf("\nVirginia's mirror of California's log (%lu entries):\n",
              static_cast<unsigned long>(mirror->log_size()));
  for (const auto& [mirror_pos, record] : mirror->log()) {
    core::LogRecord inner;
    if (core::LogRecord::Decode(record.payload, &inner).ok()) {
      std::printf("  [%lu] %s (acting primary: %s)\n",
                  static_cast<unsigned long>(record.geo_pos),
                  ToString(inner.payload).c_str(),
                  deployment.network()
                      ->topology()
                      .site_name(record.src_site)
                      .c_str());
    }
  }
  bool ok = mirror->log_size() == 6;
  std::printf("\n%s\n", ok ? "OK: the log survived the datacenter outage"
                           : "UNEXPECTED mirror state");
  return ok ? 0 : 1;
}
