#include "core/record.h"

namespace blockplane::core {

namespace {

void PutSite(Encoder* enc, net::SiteId site) {
  enc->PutU32(static_cast<uint32_t>(site));
}

Status GetSite(Decoder* dec, net::SiteId* site) {
  uint32_t v = 0;
  BP_RETURN_NOT_OK(dec->GetU32(&v));
  *site = static_cast<net::SiteId>(v);
  return Status::OK();
}

/// Trailing optional cert section (wire v2, DESIGN.md §14): emitted only
/// when at least one list is non-empty, so qc-off encodings are
/// byte-identical to v1. Decoders detect presence via AtEnd().
void PutCertSection(Encoder* enc, const std::vector<crypto::QuorumCert>& a,
                    const std::vector<crypto::QuorumCert>& b) {
  if (a.empty() && b.empty()) return;
  crypto::EncodeCertList(enc, a);
  crypto::EncodeCertList(enc, b);
}

Status GetCertSection(Decoder* dec, std::vector<crypto::QuorumCert>* a,
                      std::vector<crypto::QuorumCert>* b) {
  a->clear();
  b->clear();
  if (dec->AtEnd()) return Status::OK();
  BP_RETURN_NOT_OK(crypto::DecodeCertList(dec, a));
  BP_RETURN_NOT_OK(crypto::DecodeCertList(dec, b));
  return Status::OK();
}

}  // namespace

Bytes LogRecord::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutVarint(routine_id);
  enc.PutBytes(payload);
  PutSite(&enc, dest_site);
  PutSite(&enc, src_site);
  enc.PutU64(src_log_pos);
  enc.PutU64(prev_src_log_pos);
  enc.PutU64(geo_pos);
  crypto::EncodeProof(&enc, proof);
  crypto::EncodeProof(&enc, geo_proof);
  PutCertSection(&enc, proof_certs, geo_certs);
  return enc.Take();
}

Status LogRecord::Decode(const Bytes& buf, LogRecord* out) {
  Decoder dec(buf);
  uint8_t type = 0;
  BP_RETURN_NOT_OK(dec.GetU8(&type));
  if (type < 1 || type > 4) return Status::Corruption("bad record type");
  out->type = static_cast<RecordType>(type);
  BP_RETURN_NOT_OK(dec.GetVarint(&out->routine_id));
  BP_RETURN_NOT_OK(dec.GetBytes(&out->payload));
  BP_RETURN_NOT_OK(GetSite(&dec, &out->dest_site));
  BP_RETURN_NOT_OK(GetSite(&dec, &out->src_site));
  BP_RETURN_NOT_OK(dec.GetU64(&out->src_log_pos));
  BP_RETURN_NOT_OK(dec.GetU64(&out->prev_src_log_pos));
  BP_RETURN_NOT_OK(dec.GetU64(&out->geo_pos));
  BP_RETURN_NOT_OK(crypto::DecodeProof(&dec, &out->proof));
  BP_RETURN_NOT_OK(crypto::DecodeProof(&dec, &out->geo_proof));
  BP_RETURN_NOT_OK(GetCertSection(&dec, &out->proof_certs, &out->geo_certs));
  return Status::OK();
}

crypto::Digest LogRecord::ContentDigest() const {
  // Digest over the identity-defining fields (not the proofs, which vary
  // by which f_i+1 nodes happened to sign).
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutVarint(routine_id);
  enc.PutBytes(payload);
  PutSite(&enc, dest_site);
  PutSite(&enc, src_site);
  enc.PutU64(src_log_pos);
  enc.PutU64(prev_src_log_pos);
  enc.PutU64(geo_pos);
  return crypto::Sha256Digest(enc.buffer());
}

Bytes AttestCanonical(AttestPurpose purpose, net::SiteId site, uint64_t pos,
                      const crypto::Digest& digest) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(purpose));
  PutSite(&enc, site);
  enc.PutU64(pos);
  enc.PutRaw(digest.data(), digest.size());
  return enc.Take();
}

crypto::Digest TransmissionRecord::ContentDigest() const {
  return ToReceivedRecord().ContentDigest();
}

Bytes TransmissionRecord::Encode() const {
  Encoder enc;
  PutSite(&enc, src_site);
  PutSite(&enc, dest_site);
  enc.PutU64(src_log_pos);
  enc.PutU64(prev_src_log_pos);
  enc.PutVarint(routine_id);
  enc.PutBytes(payload);
  enc.PutU64(geo_pos);
  crypto::EncodeProof(&enc, sigs);
  crypto::EncodeProof(&enc, geo_proof);
  PutCertSection(&enc, sig_certs, geo_certs);
  return enc.Take();
}

Status TransmissionRecord::Decode(const Bytes& buf, TransmissionRecord* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(GetSite(&dec, &out->src_site));
  BP_RETURN_NOT_OK(GetSite(&dec, &out->dest_site));
  BP_RETURN_NOT_OK(dec.GetU64(&out->src_log_pos));
  BP_RETURN_NOT_OK(dec.GetU64(&out->prev_src_log_pos));
  BP_RETURN_NOT_OK(dec.GetVarint(&out->routine_id));
  BP_RETURN_NOT_OK(dec.GetBytes(&out->payload));
  BP_RETURN_NOT_OK(dec.GetU64(&out->geo_pos));
  BP_RETURN_NOT_OK(crypto::DecodeProof(&dec, &out->sigs));
  BP_RETURN_NOT_OK(crypto::DecodeProof(&dec, &out->geo_proof));
  BP_RETURN_NOT_OK(GetCertSection(&dec, &out->sig_certs, &out->geo_certs));
  return Status::OK();
}

LogRecord TransmissionRecord::ToReceivedRecord() const {
  LogRecord record;
  record.type = RecordType::kReceived;
  record.routine_id = routine_id;
  record.payload = payload;
  record.dest_site = dest_site;
  record.src_site = src_site;
  record.src_log_pos = src_log_pos;
  record.prev_src_log_pos = prev_src_log_pos;
  record.geo_pos = geo_pos;
  record.proof = sigs;
  record.geo_proof = geo_proof;
  record.proof_certs = sig_certs;
  record.geo_certs = geo_certs;
  return record;
}

}  // namespace blockplane::core
