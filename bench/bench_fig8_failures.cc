// Figure 8: reacting to failures with geo-correlated fault tolerance
// (f_i = 1, f_g = 1; primary participant in California).
//
//   (a) Backup failure: the closest backup (Oregon) is shut down at batch
//       45; commit latency rises from one C-O RTT (~20-40 ms) to one C-V
//       RTT (~60-80 ms).
//   (b) Primary failure: California fails after batch 70; Virginia takes
//       over as primary and commits batches 71-160, with transition spikes
//       around 250 ms and a steady state governed by Virginia's distance
//       to its remaining peers.
//
// `--chaos [--out=FILE]` instead runs the chaos-driven variant: a
// campaign-scheduled outage of the closest backup site under a sustained
// pipelined commit stream, reporting the throughput dip and the recovery
// time after the heal, and emitting BENCH_chaos.json. The default
// invocation is untouched (byte-identical output).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>

#include "bench_util.h"
#include "chaos/campaign.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

net::NetworkOptions BenchNet() {
  net::NetworkOptions options;
  options.intra_site_one_way = sim::Microseconds(100);
  options.per_message_cpu = sim::Microseconds(25);
  return options;
}

core::BlockplaneOptions GeoOptions() {
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = 1;
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 16;
  return options;
}

void RunBackupFailure() {
  std::printf("--- Fig 8(a): failure of the closest backup (Oregon) at "
              "batch 45 ---\n");
  std::printf("%8s %14s\n", "batch", "latency (ms)");
  sim::Simulator simulator(1);
  core::Deployment deployment(&simulator, net::Topology::Aws4(),
                              GeoOptions(), BenchNet());
  Bytes batch = bench::MakeBatch(1);
  for (int i = 1; i <= 100; ++i) {
    if (i == 46) deployment.network()->CrashSite(net::kOregon);
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(net::kCalifornia)
        ->LogCommit(Bytes(batch), 0, [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    double ms = sim::ToMillis(simulator.Now() - start);
    if (i % 5 == 0 || i == 46) std::printf("%8d %14.1f\n", i, ms);
  }
}

void RunPrimaryFailure() {
  std::printf("--- Fig 8(b): failure of the primary (California) at batch "
              "70; Virginia takes over ---\n");
  std::printf("%8s %14s %10s\n", "batch", "latency (ms)", "primary");
  sim::Simulator simulator(1);
  core::Deployment deployment(&simulator, net::Topology::Aws4(),
                              GeoOptions(), BenchNet());
  Bytes batch = bench::MakeBatch(1);

  // Batches 1-70 at the primary (California).
  for (int i = 1; i <= 70; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(net::kCalifornia)
        ->LogCommit(Bytes(batch), 0, [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    double ms = sim::ToMillis(simulator.Now() - start);
    if (i % 10 == 0) std::printf("%8d %14.1f %10s\n", i, ms, "C");
  }

  // The primary's datacenter fails.
  deployment.network()->CrashSite(net::kCalifornia);

  // Virginia (a mirror of California) suspects the failure after a
  // detection timeout, then takes over as the new primary (§V): commits go
  // to its local mirror of California's log and replicate to the other
  // mirror participants.
  const sim::SimTime kDetectionTimeout = sim::Milliseconds(200);
  core::Participant* secondary =
      deployment.participant(net::kVirginia);
  std::vector<net::SiteId> peers =
      deployment.mirror_sites_of(net::kCalifornia);
  peers.push_back(net::kCalifornia);
  secondary->SetMirrorPeers(net::kCalifornia, peers);

  bool detection_included = false;
  for (int i = 71; i <= 160; ++i) {
    sim::SimTime start = simulator.Now();
    if (!detection_included) {
      // The failed attempt at the dead primary runs into the timeout that
      // triggers the failover — the transition spike of Fig. 8(b).
      bool never = false;
      deployment.participant(net::kCalifornia)
          ->LogCommit(Bytes(batch), 0, [&](uint64_t) { never = true; });
      simulator.RunUntilCondition([&] { return never; },
                                  simulator.Now() + kDetectionTimeout);
      detection_included = true;
    }
    bool done = false;
    secondary->MirrorCommit(net::kCalifornia, Bytes(batch), 0,
                            [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    double ms = sim::ToMillis(simulator.Now() - start);
    if (i % 10 == 0 || i <= 72) std::printf("%8d %14.1f %10s\n", i, ms, "V");
  }
}

// --- chaos-driven variant (--chaos) ------------------------------------------------
//
// A campaign-scheduled site outage (the chaos engine's kCrashSite /
// kRecoverSite actions) hits the primary's closest backup while a closed
// loop keeps 8 commits in flight at the primary. Reported: commit
// throughput per 250 ms bucket, the dip during the outage, and how long
// after the heal the throughput returns to >= 90% of the pre-fault mean.
int RunChaosVariant(const std::string& out_path) {
  constexpr sim::SimTime kBucket = sim::Milliseconds(250);
  constexpr sim::SimTime kFail = sim::Seconds(3);
  constexpr sim::SimTime kHeal = sim::Seconds(6);
  constexpr sim::SimTime kEnd = sim::Seconds(12);
  const net::SiteId backup = net::kOregon;

  bench::PrintHeader(
      "Fig 8 chaos variant: scheduled outage of the closest backup "
      "(Oregon) under sustained load",
      "throughput dips to the farther mirror's RTT during the outage and "
      "recovers after the heal");

  // The fault schedule, expressed as a (deterministic, replayable) chaos
  // campaign so the run is reproducible from its JSON.
  chaos::CampaignConfig config;
  config.seed = 1;
  config.num_sites = 4;  // Aws4
  config.fi = 1;
  config.fg = 1;
  config.pbft_window = 8;
  config.participant_window = 8;
  config.start = kFail;
  config.horizon = kHeal;
  config.deadline = kEnd;
  chaos::Campaign campaign;
  campaign.config = config;
  campaign.actions.push_back({kFail, chaos::FaultType::kCrashSite, backup});
  campaign.actions.push_back({kHeal, chaos::FaultType::kRecoverSite, backup});
  campaign.actions.push_back({kHeal, chaos::FaultType::kHealAll});

  sim::Simulator simulator(config.seed);
  core::BlockplaneOptions options = GeoOptions();
  options.pbft_window = config.pbft_window;
  options.participant_window = config.participant_window;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              BenchNet());

  // Apply the campaign actions.
  for (const chaos::FaultAction& action : campaign.actions) {
    simulator.ScheduleAt(action.at, [&deployment, action]() {
      switch (action.type) {
        case chaos::FaultType::kCrashSite:
          deployment.network()->CrashSite(action.site_a);
          break;
        case chaos::FaultType::kRecoverSite: {
          deployment.network()->RecoverSite(action.site_a);
          for (int i = 0; i < 4; ++i) {
            deployment.node(action.site_a, i)->Recover();
          }
          for (net::SiteId origin = 0; origin < 4; ++origin) {
            if (origin == action.site_a) continue;
            const auto& hosts = deployment.mirror_sites_of(origin);
            bool hosted = false;
            for (net::SiteId h : hosts) hosted = hosted || h == action.site_a;
            if (!hosted) continue;
            for (int i = 0; i < 4; ++i) {
              deployment.mirror_node(action.site_a, origin, i)->Recover();
            }
          }
          break;
        }
        case chaos::FaultType::kHealAll:
          deployment.network()->HealAll();
          break;
        case chaos::FaultType::kCrashNode:
        case chaos::FaultType::kRecoverNode:
        case chaos::FaultType::kPartition:
        case chaos::FaultType::kHeal:
        case chaos::FaultType::kPartitionOneWay:
        case chaos::FaultType::kHealOneWay:
        case chaos::FaultType::kDropBurst:
        case chaos::FaultType::kCorruptBurst:
        case chaos::FaultType::kDuplicateBurst:
        case chaos::FaultType::kByzEquivocate:
        case chaos::FaultType::kByzSilent:
        case chaos::FaultType::kByzBogusVotes:
        case chaos::FaultType::kByzWithholdAttest:
        case chaos::FaultType::kByzForgeReads:
        case chaos::FaultType::kByzReorderGeo:
          // This figure scripts whole-site outages only; the chaos soak
          // covers node- and link-level faults (tests/chaos_soak_test.cc).
          break;
      }
    });
  }

  // Closed-loop load: keep `participant_window` commits in flight.
  Bytes batch = bench::MakeBatch(1);
  std::map<int64_t, int64_t> buckets;  // bucket index -> completions
  int inflight = 0;
  int64_t completed = 0;
  std::function<void()> pump = [&]() {
    while (inflight < static_cast<int>(config.participant_window) &&
           simulator.Now() < kEnd) {
      ++inflight;
      deployment.participant(net::kCalifornia)
          ->LogCommit(Bytes(batch), 0, [&](uint64_t) {
            --inflight;
            ++completed;
            buckets[static_cast<int64_t>(simulator.Now() / kBucket)]++;
            pump();
          });
    }
  };
  pump();
  simulator.RunUntil(kEnd + sim::Seconds(2));

  // Throughput per phase (ignore the first second of warm-up).
  auto mean_rate = [&](sim::SimTime lo, sim::SimTime hi) {
    int64_t sum = 0;
    int64_t n = 0;
    for (int64_t b = lo / kBucket; b < hi / kBucket; ++b) {
      sum += buckets.count(b) ? buckets[b] : 0;
      ++n;
    }
    return n == 0 ? 0.0 : static_cast<double>(sum) / n /
                              sim::ToSeconds(kBucket);
  };
  double baseline = mean_rate(sim::Seconds(1), kFail);
  double outage = mean_rate(kFail, kHeal);
  double recovered_rate = mean_rate(kHeal + sim::Milliseconds(500), kEnd);

  // Recovery time: first post-heal bucket back at >= 90% of baseline.
  double recovery_ms = -1.0;
  for (int64_t b = kHeal / kBucket; b < kEnd / kBucket; ++b) {
    double rate =
        (buckets.count(b) ? buckets[b] : 0) / sim::ToSeconds(kBucket);
    if (rate >= 0.9 * baseline) {
      recovery_ms = sim::ToMillis((b + 1) * kBucket - kHeal);
      break;
    }
  }

  std::printf("%10s %16s\n", "phase", "commits/sec");
  std::printf("%10s %16.1f\n", "baseline", baseline);
  std::printf("%10s %16.1f\n", "outage", outage);
  std::printf("%10s %16.1f\n", "healed", recovered_rate);
  std::printf("recovery to 90%% of baseline: %.0f ms after the heal\n",
              recovery_ms);

  std::ofstream out(out_path);
  out << "{\n  \"scenario\": \"backup_site_outage\",\n";
  out << "  \"site\": " << backup << ",\n";
  out << "  \"fail_ms\": " << sim::ToMillis(kFail) << ",\n";
  out << "  \"heal_ms\": " << sim::ToMillis(kHeal) << ",\n";
  out << "  \"baseline_commits_per_sec\": " << baseline << ",\n";
  out << "  \"outage_commits_per_sec\": " << outage << ",\n";
  out << "  \"healed_commits_per_sec\": " << recovered_rate << ",\n";
  out << "  \"recovery_ms\": " << recovery_ms << ",\n";
  out << "  \"total_commits\": " << completed << ",\n";
  out << "  \"buckets\": [\n";
  int64_t last = kEnd / kBucket;
  for (int64_t b = 0; b < last; ++b) {
    out << "    {\"t_ms\": " << sim::ToMillis(b * kBucket)
        << ", \"commits_per_sec\": "
        << (buckets.count(b) ? buckets[b] : 0) / sim::ToSeconds(kBucket)
        << "}" << (b + 1 < last ? "," : "") << "\n";
  }
  out << "  ],\n  \"campaign\": " << campaign.ToJson() << "}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  // Regression gates: the outage must dent throughput (the fault was
  // real), and the heal must restore it.
  if (outage >= baseline) {
    std::printf("FAIL: no throughput dip during the outage\n");
    return 1;
  }
  if (recovery_ms < 0) {
    std::printf("FAIL: throughput never recovered after the heal\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace blockplane

int main(int argc, char** argv) {
  using namespace blockplane;
  bool chaos_mode = false;
  std::string out_path = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) chaos_mode = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  if (chaos_mode) return RunChaosVariant(out_path);
  bench::PrintHeader(
      "Figure 8: reacting to backup and primary datacenter failures "
      "(fi=1, fg=1)",
      "(a) 20-40ms -> 60-80ms after backup loss; (b) takeover spikes "
      "~250ms, then ~70-90ms at the new primary");
  RunBackupFailure();
  RunPrimaryFailure();
  return 0;
}
