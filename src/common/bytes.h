// Byte-buffer helpers shared across the library.
#ifndef BLOCKPLANE_COMMON_BYTES_H_
#define BLOCKPLANE_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace blockplane {

/// Owned byte string. Payloads, digests, and wire messages use this type.
using Bytes = std::vector<uint8_t>;

/// Builds a Bytes from a string literal / std::string contents.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a Bytes as text (useful for tests and examples).
inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Lowercase hex encoding.
std::string HexEncode(const uint8_t* data, size_t len);
inline std::string HexEncode(const Bytes& b) {
  return HexEncode(b.data(), b.size());
}

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_BYTES_H_
