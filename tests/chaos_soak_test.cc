// The chaos soak (DESIGN.md §10): many seeded campaigns across all four
// schedule templates, each run end-to-end through the chaos engine and
// checked against the four cross-site invariants (log agreement, completion
// order, mirror contiguity, liveness).
//
// A failing seed prints the full campaign JSON — which embeds the config —
// so the identical run can be recompiled and replayed:
//
//   CHAOS_SOAK_SEEDS=1 CHAOS_SOAK_BASE=<seed> ./chaos_soak_test
//
// CHAOS_SOAK_SEEDS overrides the per-template seed count (the --chaos-smoke
// pass of scripts/check.sh uses a small value to stay under a minute;
// ASan/UBSan CI runs one seed per template the same way).
#include <gtest/gtest.h>

#include <cstdlib>

#include "chaos/campaign.h"
#include "chaos/engine.h"

namespace blockplane::chaos {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

class ChaosSoakTest : public ::testing::TestWithParam<ScheduleTemplate> {};

TEST_P(ChaosSoakTest, SeededCampaignsHoldAllInvariants) {
  ScheduleTemplate schedule = GetParam();
  // 13 seeds x 4 templates = 52 distinct campaigns by default (the seed
  // ranges of the templates never overlap).
  int seeds = EnvInt("CHAOS_SOAK_SEEDS", 13);
  uint64_t base = static_cast<uint64_t>(
      EnvInt("CHAOS_SOAK_BASE",
             100 * (static_cast<int>(schedule) + 1)));
  int failures = 0;
  for (int i = 0; i < seeds; ++i) {
    CampaignConfig config;
    config.seed = base + static_cast<uint64_t>(i);
    config.schedule = schedule;
    Campaign campaign = CompileCampaign(config);
    ChaosReport report = RunCampaign(campaign);
    if (!report.ok) {
      ++failures;
      ADD_FAILURE() << ScheduleTemplateName(schedule) << " seed "
                    << config.seed << " failed:\n"
                    << report.ToString()
                    << "\nreproduce with this campaign:\n"
                    << campaign.ToJson();
    }
  }
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, ChaosSoakTest,
    ::testing::Values(ScheduleTemplate::kCrashHeavy,
                      ScheduleTemplate::kPartitionHeavy,
                      ScheduleTemplate::kByzantineHeavy,
                      ScheduleTemplate::kMixed),
    [](const ::testing::TestParamInfo<ScheduleTemplate>& pinfo) {
      return ScheduleTemplateName(pinfo.param);
    });

}  // namespace
}  // namespace blockplane::chaos
