// StatusOr<T>: either a value of T or a non-OK Status explaining why the
// value is absent. Mirrors arrow::Result / absl::StatusOr.
#ifndef BLOCKPLANE_COMMON_STATUS_OR_H_
#define BLOCKPLANE_COMMON_STATUS_OR_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace blockplane {

template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status; `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    BP_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  /// Constructs from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Aborts if !ok().
  const T& value() const& {
    BP_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    BP_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    BP_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Assigns the value of a StatusOr expression to `lhs`, or returns its error.
#define BP_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto BP_CONCAT_(_bp_sor_, __LINE__) = (expr);         \
  if (!BP_CONCAT_(_bp_sor_, __LINE__).ok())             \
    return BP_CONCAT_(_bp_sor_, __LINE__).status();     \
  lhs = std::move(BP_CONCAT_(_bp_sor_, __LINE__)).value()

#define BP_CONCAT_INNER_(a, b) a##b
#define BP_CONCAT_(a, b) BP_CONCAT_INNER_(a, b)

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_STATUS_OR_H_
