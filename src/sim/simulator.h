// The discrete-event simulation core.
//
// A Simulator owns a virtual clock and an event queue. Everything in a
// Blockplane deployment — replicas, clients, daemons, the network — runs as
// callbacks scheduled on one Simulator, which makes every experiment
// single-threaded and deterministic for a given seed.
#ifndef BLOCKPLANE_SIM_SIMULATOR_H_
#define BLOCKPLANE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "sim/random.h"
#include "sim/sim_time.h"

namespace blockplane::sim {

/// Handle for a scheduled event; used to cancel timers.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  BP_DISALLOW_COPY_AND_ASSIGN(Simulator);

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Delays clamp to >= 0.
  EventId Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute virtual time (>= Now()).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or invalid id is a
  /// no-op, which keeps timer bookkeeping simple for callers.
  void Cancel(EventId id);

  /// Runs until the event queue drains. Returns the final virtual time.
  SimTime Run();

  /// Runs events with time <= deadline. Returns true if the queue drained.
  bool RunUntil(SimTime deadline);

  /// Runs for `duration` of virtual time from now.
  bool RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  /// Runs until `pred()` is true, the queue drains, or `deadline` passes.
  /// Returns true iff the predicate became true.
  bool RunUntilCondition(const std::function<bool()>& pred, SimTime deadline);

  /// Root RNG; fork per-component streams from it for isolation.
  Rng& rng() { return rng_; }

  uint64_t processed_events() const { return processed_; }
  /// Events scheduled, not yet fired, and not cancelled. Exact: cancelled
  /// ids leave the pending set immediately, fired ids leave it as they pop.
  size_t pending_events() const { return pending_ids_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs one event. Returns false if the queue is empty.
  bool Step();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  /// Ids of live (scheduled, unfired, uncancelled) events. Guards Cancel():
  /// cancelling a fired/unknown id is a strict no-op, so `cancelled_` can
  /// never accumulate ids that will never be popped.
  std::unordered_set<EventId> pending_ids_;
  /// Ids cancelled while still queued; entries are erased when their queue
  /// slot pops, so this set is always a subset of the queue contents.
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
};

}  // namespace blockplane::sim

#endif  // BLOCKPLANE_SIM_SIMULATOR_H_
