// Builds and owns a complete Blockplane deployment: per-site units of
// 3f_i+1 nodes, participants, communication daemons + reserves, and (with
// fg > 0) the mirror groups on each participant's 2fg closest sites.
//
// This is the top-level entry point used by the examples and benches:
//
//   sim::Simulator simulator;
//   core::Deployment deployment(&simulator, net::Topology::Aws4(), options);
//   deployment.participant(net::kCalifornia)
//       ->LogCommit(ToBytes("state change"), 0, [](uint64_t pos) { ... });
//   simulator.Run();
#ifndef BLOCKPLANE_CORE_DEPLOYMENT_H_
#define BLOCKPLANE_CORE_DEPLOYMENT_H_

#include <map>
#include <memory>
#include <vector>

#include "core/comm_daemon.h"
#include "core/participant.h"

namespace blockplane::core {

class Deployment {
 public:
  Deployment(sim::Simulator* simulator, net::Topology topology,
             BlockplaneOptions options, net::NetworkOptions net_options = {});
  BP_DISALLOW_COPY_AND_ASSIGN(Deployment);

  Participant* participant(net::SiteId site) {
    return participants_.at(site).get();
  }
  BlockplaneNode* node(net::SiteId site, int index) {
    return units_.at(site).at(index).get();
  }
  /// Mirror-group node `index` replicating `origin`'s log at `host`.
  BlockplaneNode* mirror_node(net::SiteId host, net::SiteId origin,
                              int index) {
    return mirrors_.at({host, origin}).at(index).get();
  }
  /// The 2fg sites mirroring `site` (empty when fg == 0).
  const std::vector<net::SiteId>& mirror_sites_of(net::SiteId site) const {
    return mirror_sites_.at(site);
  }

  net::Network* network() { return &network_; }
  crypto::KeyStore* keys() { return &keys_; }
  const BlockplaneOptions& options() const { return options_; }
  int num_sites() const { return network_.topology().num_sites(); }

  /// Registers a verification routine on every node of a site's unit.
  /// `factory` is invoked once per node so each routine can capture
  /// node-local protocol state.
  void RegisterVerifier(net::SiteId site, uint64_t routine_id,
                        const std::function<VerifyRoutine(BlockplaneNode*)>&
                            factory);

 private:
  sim::Simulator* sim_;
  net::Network network_;
  crypto::KeyStore keys_;
  BlockplaneOptions options_;

  std::map<net::SiteId, std::vector<std::unique_ptr<BlockplaneNode>>> units_;
  std::map<std::pair<net::SiteId, net::SiteId>,
           std::vector<std::unique_ptr<BlockplaneNode>>>
      mirrors_;  // (host, origin) -> nodes
  std::map<net::SiteId, std::unique_ptr<Participant>> participants_;
  std::map<net::SiteId, std::vector<net::SiteId>> mirror_sites_;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_DEPLOYMENT_H_
