#include "net/network.h"

#include <algorithm>

#include "common/logging.h"

namespace blockplane::net {

Network::Network(sim::Simulator* simulator, Topology topology,
                 NetworkOptions options)
    : sim_(simulator),
      topology_(std::move(topology)),
      options_(options),
      rng_(simulator->rng().Fork()) {
  // Expose this network's counters in the unified registry: snapshot copies
  // the CounterSet; reset clears it. The handle is dropped in ~Network so a
  // registry dump never reads freed memory.
  metrics_handle_ = metrics_registry().Register(
      "network", [this]() { return counters_.all(); },
      [this]() { counters_.Clear(); });
}

Network::~Network() { metrics_registry().Unregister(metrics_handle_); }

void Network::Register(NodeId id, Host* host) {
  BP_CHECK(id.valid());
  BP_CHECK(id.site < topology_.num_sites());
  hosts_[id] = host;
}

void Network::Unregister(NodeId id) { hosts_.erase(id); }

void Network::Send(Message msg) {
  BP_CHECK(msg.src.valid() && msg.dst.valid());
  if (msg.wire_bytes == 0) {
    msg.wire_bytes = msg.body().size() + options_.header_bytes;
  }

  const bool local = msg.src.site == msg.dst.site;
  counters_.Increment(local ? "lan_messages" : "wan_messages");
  counters_.Increment(local ? "lan_bytes" : "wan_bytes",
                      static_cast<int64_t>(msg.wire_bytes));
  if (!local && options_.per_type_wan_counters) {
    // Bench-only breakdown: the network is protocol-agnostic, so the key
    // carries the numeric type tag; benches map tags back to names.
    counters_.Increment("wan_bytes.type_" + std::to_string(msg.type),
                        static_cast<int64_t>(msg.wire_bytes));
  }

  // A crashed sender emits nothing; a crashed destination hears nothing.
  if (IsCrashed(msg.src) || IsCrashed(msg.dst)) {
    counters_.Increment("dropped_messages");
    return;
  }
  // Partitioned directions drop everything (symmetric partitions insert
  // both directed edges; one-way partitions just one).
  if (partitions_.count({msg.src.site, msg.dst.site}) > 0) {
    counters_.Increment("dropped_messages");
    return;
  }
  if (options_.drop_prob > 0 && rng_.Bernoulli(options_.drop_prob)) {
    counters_.Increment("dropped_messages");
    return;
  }
  if (options_.corrupt_prob > 0 && !msg.body().empty() &&
      rng_.Bernoulli(options_.corrupt_prob)) {
    // Flip one random byte; the reliable transport's checksum catches this.
    // Payload buffers are shared (broadcast fan-out, retransmission
    // buffers), so corruption must copy-on-write: only THIS in-flight copy
    // gets the flipped byte, never the sender's buffer or sibling sends.
    auto corrupted = std::make_shared<Bytes>(msg.body());
    size_t pos = rng_.NextBelow(corrupted->size());
    (*corrupted)[pos] ^= 0xff;
    msg.payload = std::move(corrupted);
    counters_.Increment("corrupted_messages");
  }

  const double bandwidth =
      local ? options_.lan_bandwidth_bps : options_.wan_bandwidth_bps;
  const sim::SimTime serialize = static_cast<sim::SimTime>(
      static_cast<double>(msg.wire_bytes) / bandwidth * 1e9);

  sim::SimTime& nic_free = nic_free_at_[msg.src];
  sim::SimTime start = std::max(sim_->Now(), nic_free);
  nic_free = start + serialize;

  sim::SimTime propagate = local ? options_.intra_site_one_way
                                 : topology_.OneWay(msg.src.site, msg.dst.site);
  if (options_.jitter_frac > 0) {
    propagate += static_cast<sim::SimTime>(
        rng_.NextDouble() * options_.jitter_frac *
        static_cast<double>(propagate));
  }

  sim::SimTime arrive = start + serialize + propagate;

  // FIFO per (src, dst) pair: the paper's channels ride on TCP, so jitter
  // must not reorder two messages between the same endpoints.
  sim::SimTime& last_arrival = pair_last_arrival_[{msg.src, msg.dst}];
  if (arrive <= last_arrival) arrive = last_arrival + 1;
  last_arrival = arrive;

  Deliver(msg, arrive);
  if (options_.duplicate_prob > 0 && rng_.Bernoulli(options_.duplicate_prob)) {
    // The duplicate shares the original's payload allocation.
    hotpath_stats().bytes_copied_saved +=
        static_cast<int64_t>(msg.body().size());
    Deliver(msg, arrive + sim::Microseconds(10));
    counters_.Increment("duplicated_messages");
  }
}

void Network::Deliver(const Message& msg, sim::SimTime arrive) {
  // Two-stage delivery: the message first *arrives*, then queues on the
  // destination's CPU. Claiming CPU time at arrival (not at send) keeps a
  // long-flight wide-area message from reserving the receiver's CPU far in
  // the future ahead of local traffic that actually arrives earlier.
  //
  // Both stages capture the Message by value; with shared payloads each
  // capture is a refcount bump, where it used to deep-copy the bytes twice
  // per delivered message.
  hotpath_stats().bytes_copied_saved +=
      2 * static_cast<int64_t>(msg.body().size());
  sim_->ScheduleAt(arrive, [this, msg]() {
    sim::SimTime& cpu_free = cpu_free_at_[msg.dst];
    sim::SimTime handled_at =
        std::max(sim_->Now(), cpu_free) + options_.per_message_cpu;
    cpu_free = handled_at;
    HandleAt(msg, handled_at);
  });
}

void Network::HandleAt(const Message& msg, sim::SimTime handled_at) {
  sim_->ScheduleAt(handled_at, [this, msg]() {
    // Re-check crash state at delivery time: the destination may have
    // crashed while the message was in flight.
    if (IsCrashed(msg.dst)) {
      counters_.Increment("dropped_messages");
      return;
    }
    auto it = hosts_.find(msg.dst);
    if (it == hosts_.end()) {
      counters_.Increment("dropped_messages");
      return;
    }
    it->second->HandleMessage(msg);
  });
}

void Network::Crash(NodeId id) { crashed_.insert(id); }

void Network::Recover(NodeId id) { crashed_.erase(id); }

bool Network::IsCrashed(NodeId id) const {
  return crashed_.count(id) > 0 || crashed_sites_.count(id.site) > 0;
}

void Network::CrashSite(SiteId site) {
  BP_LOG(kInfo) << "site " << topology_.site_name(site) << " crashed";
  crashed_sites_.insert(site);
}

void Network::RecoverSite(SiteId site) { crashed_sites_.erase(site); }

bool Network::IsSiteCrashed(SiteId site) const {
  return crashed_sites_.count(site) > 0;
}

void Network::PartitionSites(SiteId a, SiteId b) {
  partitions_.insert({a, b});
  partitions_.insert({b, a});
}

void Network::HealPartition(SiteId a, SiteId b) {
  partitions_.erase({a, b});
  partitions_.erase({b, a});
}

void Network::PartitionOneWay(SiteId from, SiteId to) {
  partitions_.insert({from, to});
}

void Network::HealOneWay(SiteId from, SiteId to) {
  partitions_.erase({from, to});
}

bool Network::IsPartitioned(SiteId from, SiteId to) const {
  return partitions_.count({from, to}) > 0;
}

void Network::HealAll() { partitions_.clear(); }

}  // namespace blockplane::net
