// Fixture: BP003 clean — every field appears in Encode, Decode, and
// the canonical/digest path; authentication material (Signature and
// QuorumCert fields) is digest-exempt (an attestation cannot cover
// itself), and a payload whose integrity rides on an embedded digest
// documents that with a suppression.
// bplint:wire-coverage
struct Encoder {
  void PutU64(unsigned long long v);
  void PutBytes(int b);
};
struct Decoder {
  bool GetU64(unsigned long long* v);
  bool GetBytes(int* b);
};
using Bytes = int;
struct Signature {
  int bytes = 0;
};
struct QuorumCert {
  int bits = 0;
};

struct SampleMsg {
  unsigned long long view = 0;
  unsigned long long seq = 0;
  Bytes digest = 0;
  Bytes value = 0;  // bplint:allow(BP003) integrity bound via digest field
  Signature sig;    // signatures never cover themselves
  QuorumCert cert;  // aggregated attestation: equally digest-exempt

  Bytes Encode() const;
  static bool Decode(const Bytes& buf, SampleMsg* out);
  Bytes CanonicalBody() const;
};

Bytes SampleMsg::Encode() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutBytes(digest);
  enc.PutBytes(value);
  enc.PutU64(static_cast<unsigned long long>(sig.bytes));
  enc.PutU64(static_cast<unsigned long long>(cert.bits));
  return 0;
}

bool SampleMsg::Decode(const Bytes& buf, SampleMsg* out) {
  Decoder dec;
  if (!dec.GetU64(&out->view)) return false;
  if (!dec.GetU64(&out->seq)) return false;
  if (!dec.GetBytes(&out->digest)) return false;
  if (!dec.GetBytes(&out->value)) return false;
  if (!dec.GetBytes(&out->sig.bytes)) return false;
  return dec.GetBytes(&out->cert.bits);
}

Bytes SampleMsg::CanonicalBody() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutBytes(digest);
  return 0;
}
