// Figure 6: latency of communication between participants — a message
// through the send interface, received at the destination, with the
// receipt acknowledged back at the source — for every datacenter pair.
//
// Paper reference: C-O 23.4 ms; {C-V, O-V, V-I} 64-80 ms; {C-I, O-I}
// >135 ms. Overhead vs the raw RTT is 1-7% (23% for the close C-O pair).
//
// `--qc` switches to the quorum-certificate ablation (DESIGN.md §14): the
// same send workload with real crypto, QC-off vs QC-on, reporting WAN
// bytes per commit (broken down by message type), proof bytes on the
// wire, and MAC verifications. Writes BENCH_qc.json and exits non-zero
// unless QC-on performs at most half the MAC verifies and ships fewer
// proof bytes (the scripts/check.sh QC gate).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

double RunOne(net::SiteId src, net::SiteId dest) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.sign_messages = false;
  options.hash_payloads = false;
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              net_options);

  Bytes batch = bench::MakeBatch(1);
  Histogram latency_ms;
  core::BlockplaneNode* daemon_host = deployment.node(src, 0);
  constexpr int kWarmup = 3;
  constexpr int kMessages = 30;
  for (int i = 0; i < kWarmup + kMessages; ++i) {
    sim::SimTime start = simulator.Now();
    deployment.participant(src)->Send(dest, Bytes(batch), 0, nullptr);
    uint64_t target = static_cast<uint64_t>(i) + 1;
    // "Acknowledging the receipt of the message back at the source": the
    // daemon's ack watermark reaches this message once f_i+1 destination
    // nodes confirmed the committed reception.
    // Sends are the only records in this workload, so the i-th message is
    // the communication record at Local Log position i+1.
    simulator.RunUntilCondition(
        [&] { return daemon_host->daemon_acked(dest) >= target; },
        simulator.Now() + sim::Seconds(30));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  return latency_ms.Mean();
}

// --- quorum-certificate ablation (DESIGN.md §14) ---------------------------

/// Maps the core-layer message-type tags back to names for the per-type
/// WAN byte breakdown (the network layer is protocol-agnostic and counts
/// under the numeric tag).
std::string CoreTypeName(uint32_t type) {
  switch (type) {
    case core::kTransmission: return "transmission";
    case core::kTransmissionAck: return "transmission_ack";
    case core::kAttestRequest: return "attest_request";
    case core::kAttestResponse: return "attest_response";
    case core::kDeliverNotice: return "deliver_notice";
    case core::kRecvStatusQuery: return "recv_status_query";
    case core::kRecvStatusReply: return "recv_status_reply";
    case core::kGeoReplicate: return "geo_replicate";
    case core::kGeoAck: return "geo_ack";
    case core::kGeoProofBundle: return "geo_proof_bundle";
    case core::kReadRequest: return "read_request";
    case core::kReadReply: return "read_reply";
    case core::kMirrorFetch: return "mirror_fetch";
    case core::kMirrorEntry: return "mirror_entry";
    case core::kLogSyncRequest: return "log_sync_request";
    case core::kLogSyncReply: return "log_sync_reply";
    case core::kGeoGapNotice: return "geo_gap_notice";
    default: return "type_" + std::to_string(type);
  }
}

struct QcRun {
  std::string scenario;  // "communication" (fg=0) or "geo" (fg=1)
  bool qc = false;
  uint64_t commits = 0;
  uint64_t wan_bytes = 0;
  double wan_bytes_per_commit = 0;
  uint64_t wan_proof_bytes = 0;   // proof material shipped by comm daemons
  uint64_t proof_sig_verifies = 0;  // individual MAC checks performed
  uint64_t certs_built = 0;
  uint64_t certs_verified = 0;
  uint64_t cache_hits = 0;
  uint64_t verifies_elided = 0;
  std::map<std::string, int64_t> wan_bytes_by_type;
};

QcRun RunQcScenario(bool qc_on, int fg, int messages) {
  qc_stats().Reset();
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = 1;
  options.fg = fg;
  options.sign_messages = true;
  options.hash_payloads = true;
  options.qc.enabled = qc_on;
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  net_options.per_type_wan_counters = true;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options,
                              net_options);

  const net::SiteId src = net::kCalifornia;
  const net::SiteId dest = net::kVirginia;
  core::BlockplaneNode* daemon_host = deployment.node(src, 0);
  Bytes batch = bench::MakeBatch(1);
  for (int i = 0; i < messages; ++i) {
    deployment.participant(src)->Send(dest, Bytes(batch), 0, nullptr);
  }
  uint64_t target = static_cast<uint64_t>(messages);
  simulator.RunUntilCondition(
      [&] { return daemon_host->daemon_acked(dest) >= target; },
      simulator.Now() + sim::Seconds(120));
  BP_CHECK_MSG(daemon_host->daemon_acked(dest) >= target,
               "qc ablation workload stalled");
  // Let trailing acks / reserve polls / retransmissions settle so both
  // modes account the same quiesced deployment.
  simulator.RunFor(sim::Seconds(2));

  QcRun r;
  r.scenario = fg > 0 ? "geo" : "communication";
  r.qc = qc_on;
  r.commits = target;
  const CounterSet& counters = deployment.network()->counters();
  r.wan_bytes = static_cast<uint64_t>(counters.Get("wan_bytes"));
  r.wan_bytes_per_commit =
      static_cast<double>(r.wan_bytes) / static_cast<double>(r.commits);
  const QcStats& qc = qc_stats();
  r.wan_proof_bytes = static_cast<uint64_t>(qc.wan_proof_bytes);
  r.proof_sig_verifies = static_cast<uint64_t>(qc.proof_sig_verifies);
  r.certs_built = static_cast<uint64_t>(qc.certs_built);
  r.certs_verified = static_cast<uint64_t>(qc.certs_verified);
  r.cache_hits = static_cast<uint64_t>(qc.cache_hits);
  r.verifies_elided = static_cast<uint64_t>(qc.verifies_elided);
  constexpr char kPrefix[] = "wan_bytes.type_";
  for (const auto& [name, value] : counters.all()) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    uint32_t type = static_cast<uint32_t>(
        std::stoul(name.substr(sizeof(kPrefix) - 1)));
    r.wan_bytes_by_type[CoreTypeName(type)] += value;
  }
  return r;
}

void PutQcRun(std::ofstream& out, const QcRun& r, bool last) {
  out << "    {\"scenario\": \"" << r.scenario << "\", \"qc\": "
      << (r.qc ? "true" : "false") << ", \"commits\": " << r.commits
      << ", \"wan_bytes\": " << r.wan_bytes
      << ", \"wan_bytes_per_commit\": " << r.wan_bytes_per_commit
      << ", \"wan_proof_bytes\": " << r.wan_proof_bytes
      << ", \"proof_sig_verifies\": " << r.proof_sig_verifies
      << ", \"certs_built\": " << r.certs_built
      << ", \"certs_verified\": " << r.certs_verified
      << ", \"cache_hits\": " << r.cache_hits
      << ", \"verifies_elided\": " << r.verifies_elided
      << ", \"wan_bytes_by_type\": {";
  bool first = true;
  for (const auto& [name, bytes] : r.wan_bytes_by_type) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << name << "\": " << bytes;
  }
  out << "}}" << (last ? "" : ",") << "\n";
}

int RunQcAblation(const std::string& out_path) {
  bench::PrintHeader(
      "Quorum-certificate ablation: WAN proof bytes + MAC verifies per "
      "commit (California -> Virginia, real crypto)",
      "one compact cert per decision, verify-once at every hop; "
      "DESIGN.md S14");

  std::vector<QcRun> runs;
  for (int fg : {0, 1}) {
    const int messages = fg > 0 ? 20 : 30;
    for (bool qc_on : {false, true}) {
      runs.push_back(RunQcScenario(qc_on, fg, messages));
    }
  }

  std::printf("%14s %4s %8s %14s %12s %13s %9s %11s\n", "scenario", "qc",
              "commits", "WAN B/commit", "proof B", "MAC verifies",
              "cache hit", "elided");
  for (const QcRun& r : runs) {
    std::printf("%14s %4s %8llu %14.1f %12llu %13llu %9llu %11llu\n",
                r.scenario.c_str(), r.qc ? "on" : "off",
                static_cast<unsigned long long>(r.commits),
                r.wan_bytes_per_commit,
                static_cast<unsigned long long>(r.wan_proof_bytes),
                static_cast<unsigned long long>(r.proof_sig_verifies),
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.verifies_elided));
  }

  std::ofstream out(out_path);
  out << "{\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    PutQcRun(out, runs[i], i + 1 == runs.size());
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  // The ablation gates (scripts/check.sh): per scenario, QC-on must run at
  // most half the individual MAC verifications and ship strictly fewer
  // proof bytes (one 48-byte cert vs f_i+1 40-byte signatures, times
  // every retransmission and widened fan-out).
  bool ok = true;
  for (size_t i = 0; i + 1 < runs.size(); i += 2) {
    const QcRun& off = runs[i];
    const QcRun& on = runs[i + 1];
    double ratio = on.proof_sig_verifies > 0
                       ? static_cast<double>(off.proof_sig_verifies) /
                             static_cast<double>(on.proof_sig_verifies)
                       : 0.0;
    if (on.proof_sig_verifies * 2 > off.proof_sig_verifies) {
      std::fprintf(stderr,
                   "FAIL[%s]: QC-on MAC verifies (%llu) not <= half of "
                   "QC-off (%llu)\n",
                   off.scenario.c_str(),
                   static_cast<unsigned long long>(on.proof_sig_verifies),
                   static_cast<unsigned long long>(off.proof_sig_verifies));
      ok = false;
    }
    if (on.wan_proof_bytes >= off.wan_proof_bytes) {
      std::fprintf(stderr,
                   "FAIL[%s]: QC-on proof bytes (%llu) not below QC-off "
                   "(%llu)\n",
                   off.scenario.c_str(),
                   static_cast<unsigned long long>(on.wan_proof_bytes),
                   static_cast<unsigned long long>(off.wan_proof_bytes));
      ok = false;
    }
    if (ok) {
      std::printf("QC gate [%s]: %.2fx fewer MAC verifies, proof bytes "
                  "%llu -> %llu\n",
                  off.scenario.c_str(), ratio,
                  static_cast<unsigned long long>(off.wan_proof_bytes),
                  static_cast<unsigned long long>(on.wan_proof_bytes));
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace blockplane

int main(int argc, char** argv) {
  using namespace blockplane;
  bool qc = false;
  std::string out_path = "BENCH_qc.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--qc") == 0) qc = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  if (qc) return RunQcAblation(out_path);

  bench::PrintHeader(
      "Figure 6: communication latency between participants (send -> "
      "receive -> ack)",
      "CO 23.4ms; CV/OV/VI 64-80ms; CI/OI >135ms; overhead vs RTT 1-7% "
      "(23% for CO)");
  net::Topology topo = net::Topology::Aws4();
  std::printf("%10s %14s %12s %14s\n", "pair", "latency (ms)", "RTT (ms)",
              "overhead");
  const std::pair<int, int> pairs[] = {
      {net::kCalifornia, net::kOregon},  {net::kCalifornia, net::kVirginia},
      {net::kCalifornia, net::kIreland}, {net::kOregon, net::kVirginia},
      {net::kOregon, net::kIreland},     {net::kVirginia, net::kIreland}};
  for (auto [a, b] : pairs) {
    double ms = RunOne(a, b);
    double rtt = sim::ToMillis(topo.Rtt(a, b));
    std::printf("%9.1s%1.1s %14.1f %12.1f %13.1f%%\n",
                topo.site_name(a).c_str(), topo.site_name(b).c_str(), ms,
                rtt, (ms - rtt) / rtt * 100.0);
  }
  return 0;
}
