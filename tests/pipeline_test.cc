// Tests for the sliding-window pipelining of DESIGN.md §9: PBFT proposal
// windows (out-of-order certificate collection, strict in-order
// execution), view changes with multiple proposals in flight, byzantine
// leaders inside the window, and the Participant's windowed geo-commit
// path (completion callbacks in submission order, contiguous mirror
// streams).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/deployment.h"
#include "pbft/client.h"
#include "pbft/replica.h"
#include "sim/simulator.h"

namespace blockplane {
namespace {

using net::kCalifornia;
using net::NodeId;
using net::Topology;
using sim::Milliseconds;
using sim::Seconds;

/// A single-site PBFT group with a configurable proposal window.
class WindowedPbftHarness {
 public:
  WindowedPbftHarness(int f, uint64_t window, uint64_t seed = 7,
                      net::NetworkOptions net_options = {})
      : simulator_(seed),
        network_(&simulator_, Topology::SingleSite(), net_options) {
    config_ = pbft::UnitConfig(/*site=*/0, f);
    config_.window = window;
    config_.checkpoint_interval = 8;  // exercise watermark advancement
    executed_.resize(config_.nodes.size());
    for (size_t i = 0; i < config_.nodes.size(); ++i) {
      auto replica = std::make_unique<pbft::PbftReplica>(
          &network_, &keys_, config_, config_.nodes[i],
          [this, i](uint64_t, const Bytes& value) {
            if (!value.empty()) executed_[i].push_back(ToString(value));
          });
      replica->RegisterWithNetwork();
      replicas_.push_back(std::move(replica));
    }
    client_ = std::make_unique<pbft::PbftClient>(&network_, config_,
                                                 NodeId{0, 1000});
  }

  /// Submits `count` values concurrently and waits for all completions.
  bool SubmitBurst(int count, sim::SimTime deadline = Seconds(60)) {
    for (int i = 0; i < count; ++i) {
      client_->Submit(ToBytes("v" + std::to_string(i)), nullptr);
    }
    return simulator_.RunUntilCondition(
        [&] { return client_->completed() >= static_cast<uint64_t>(count); },
        simulator_.Now() + deadline);
  }

  /// Everything replica `index` executed, in execution order (survives
  /// checkpoint garbage collection of executed_log(); drops no-op gap
  /// fillers).
  const std::vector<std::string>& LogOf(int index) const {
    return executed_[index];
  }

  sim::Simulator simulator_;
  net::Network network_;
  crypto::KeyStore keys_;
  pbft::PbftConfig config_;
  std::vector<std::unique_ptr<pbft::PbftReplica>> replicas_;
  std::unique_ptr<pbft::PbftClient> client_;
  std::vector<std::vector<std::string>> executed_;
};

std::vector<std::string> ExpectedValues(int count) {
  std::vector<std::string> expected;
  for (int i = 0; i < count; ++i) expected.push_back("v" + std::to_string(i));
  return expected;
}

TEST(PipelineTest, WindowedLeaderKeepsMultipleProposalsInFlight) {
  pipeline_stats().Reset();
  WindowedPbftHarness harness(/*f=*/1, /*window=*/4);
  ASSERT_TRUE(harness.SubmitBurst(12));
  harness.simulator_.RunFor(Seconds(1));
  // The pipeline actually overlapped instances...
  EXPECT_GE(pipeline_stats().pbft_inflight_peak, 2u);
  // ...while every replica executed the values in submission order.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(harness.LogOf(r), ExpectedValues(12)) << "replica " << r;
  }
}

TEST(PipelineTest, WindowOneReproducesStopAndWait) {
  pipeline_stats().Reset();
  WindowedPbftHarness harness(/*f=*/1, /*window=*/1);
  ASSERT_TRUE(harness.SubmitBurst(6));
  harness.simulator_.RunFor(Seconds(1));
  // The paper's group-commit rule: never more than one instance in flight.
  EXPECT_EQ(pipeline_stats().pbft_inflight_peak, 1u);
  EXPECT_EQ(pipeline_stats().pbft_ooo_commits, 0u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(harness.LogOf(r), ExpectedValues(6)) << "replica " << r;
  }
}

TEST(PipelineTest, OutOfOrderCommitCertificatesDeliverInOrder) {
  // Heavy jitter scrambles vote arrival, so commit certificates for later
  // sequence numbers can complete before earlier ones; execution must
  // still be strictly in sequence order on every replica.
  net::NetworkOptions net_options;
  net_options.jitter_frac = 0.9;
  pipeline_stats().Reset();
  WindowedPbftHarness harness(/*f=*/1, /*window=*/8, /*seed=*/23,
                              net_options);
  ASSERT_TRUE(harness.SubmitBurst(24));
  harness.simulator_.RunFor(Seconds(1));
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(harness.LogOf(r), ExpectedValues(24)) << "replica " << r;
  }
}

TEST(PipelineTest, ViewChangeWithWindowInFlight) {
  // Crash the leader with >= 3 proposals in flight: the new view must
  // carry over every prepared instance, commit each client value exactly
  // once, and leave no gaps.
  WindowedPbftHarness harness(/*f=*/1, /*window=*/4);
  constexpr int kCount = 6;
  for (int i = 0; i < kCount; ++i) {
    harness.client_->Submit(ToBytes("v" + std::to_string(i)), nullptr);
  }
  // Let the leader issue the first window of pre-prepares, then kill it
  // mid-flight (before the certificates can complete).
  harness.simulator_.RunFor(Milliseconds(1));
  harness.network_.Crash(NodeId{0, 0});
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.client_->completed() >= kCount; }, Seconds(60)));
  harness.simulator_.RunFor(Seconds(1));

  // Every live replica agrees and holds each value exactly once (the
  // new-view may legitimately insert no-op gap fillers; LogOf drops them).
  std::vector<std::string> reference = harness.LogOf(1);
  std::vector<std::string> sorted = reference;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> expected_sorted = ExpectedValues(kCount);
  std::sort(expected_sorted.begin(), expected_sorted.end());
  EXPECT_EQ(sorted, expected_sorted);  // no duplicates, no losses
  for (int r = 2; r < 4; ++r) {
    EXPECT_EQ(harness.LogOf(r), reference) << "replica " << r;
  }
}

TEST(PipelineTest, EquivocatingLeaderInsideWindowIsMasked) {
  // A leader that equivocates on multiple sequence numbers inside the
  // window is voted out; the values still commit exactly once.
  WindowedPbftHarness harness(/*f=*/1, /*window=*/4);
  harness.replicas_[0]->SetByzantineMode(pbft::ByzantineMode::kEquivocate);
  constexpr int kCount = 5;
  for (int i = 0; i < kCount; ++i) {
    harness.client_->Submit(ToBytes("v" + std::to_string(i)), nullptr);
  }
  ASSERT_TRUE(harness.simulator_.RunUntilCondition(
      [&] { return harness.client_->completed() >= kCount; }, Seconds(60)));
  harness.simulator_.RunFor(Seconds(1));
  std::vector<std::string> reference = harness.LogOf(1);
  std::vector<std::string> sorted = reference;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> expected_sorted = ExpectedValues(kCount);
  std::sort(expected_sorted.begin(), expected_sorted.end());
  EXPECT_EQ(sorted, expected_sorted);
  for (int r = 2; r < 4; ++r) {
    EXPECT_EQ(harness.LogOf(r), reference) << "replica " << r;
  }
}

// --- participant-level windowing -------------------------------------------

TEST(PipelineTest, ParticipantWindowPipelinesGeoCommits) {
  pipeline_stats().Reset();
  sim::Simulator simulator(11);
  core::BlockplaneOptions options;
  options.fg = 1;
  options.pbft_window = 4;
  options.participant_window = 4;
  core::Deployment deployment(&simulator, Topology::Aws4(), options);

  core::Participant* participant = deployment.participant(kCalifornia);
  constexpr int kCount = 10;
  std::vector<int> completion_order;
  for (int i = 0; i < kCount; ++i) {
    participant->LogCommit(ToBytes("geo" + std::to_string(i)), 0,
                           [&, i](uint64_t) { completion_order.push_back(i); });
  }
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return completion_order.size() >= kCount; }, Seconds(600)));

  // Callbacks fired strictly in submission order despite 4 concurrent
  // geo rounds.
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(completion_order[i], i);
  EXPECT_GE(pipeline_stats().participant_inflight_peak, 2u);
}

TEST(PipelineTest, MirrorStreamStaysContiguousUnderWindow) {
  sim::Simulator simulator(13);
  core::BlockplaneOptions options;
  options.fg = 1;
  options.pbft_window = 8;
  options.participant_window = 8;
  core::Deployment deployment(&simulator, Topology::Aws4(), options);

  core::Participant* participant = deployment.participant(kCalifornia);
  constexpr int kCount = 12;
  int done = 0;
  for (int i = 0; i < kCount; ++i) {
    participant->LogCommit(ToBytes("m" + std::to_string(i)), 0,
                           [&](uint64_t) { ++done; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return done >= kCount; },
                                          Seconds(600)));
  simulator.RunFor(Seconds(1));

  // Every mirror node of every mirror site replicated the full stream with
  // contiguous geo positions 1..kCount.
  for (net::SiteId host : deployment.mirror_sites_of(kCalifornia)) {
    core::BlockplaneNode* mirror =
        deployment.mirror_node(host, kCalifornia, 0);
    std::vector<uint64_t> geo_positions;
    for (const auto& [pos, record] : mirror->log()) {
      if (record.type == core::RecordType::kMirrored) {
        geo_positions.push_back(record.geo_pos);
      }
    }
    ASSERT_EQ(geo_positions.size(), static_cast<size_t>(kCount))
        << "mirror at site " << host;
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(geo_positions[i], static_cast<uint64_t>(i + 1));
    }
  }
}

// --- stall-episode accounting ---------------------------------------------
//
// pipeline.*_window_stalls counts distinct back-pressure *episodes*: the
// counter ticks when admission transitions from flowing to blocked-by-the-
// window and the episode closes on any admission (partial drains count).
// The old per-invocation counting ticked on every poll/pump re-entry while
// one stall persisted, which made the metric scale with event traffic
// instead of back pressure.

TEST(PipelineTest, PbftStallCounterCountsEpisodesNotPumpInvocations) {
  pipeline_stats().Reset();
  WindowedPbftHarness harness(/*f=*/1, /*window=*/1);
  constexpr int kCount = 12;
  ASSERT_TRUE(harness.SubmitBurst(kCount));
  harness.simulator_.RunFor(Seconds(1));
  // Window 1, burst of 12: one episode opens when request 2 queues behind
  // the full window, and each execution admits exactly one request
  // (closing the episode) before the still-backlogged queue reopens it —
  // kCount - 1 episodes total. Per-invocation counting also ticked for
  // every queued arrival and every commit-message pump while the same
  // stall persisted, far exceeding the burst size.
  EXPECT_EQ(pipeline_stats().pbft_window_stalls,
            static_cast<int64_t>(kCount - 1));
}

TEST(PipelineTest, WideWindowNeverStalls) {
  pipeline_stats().Reset();
  WindowedPbftHarness harness(/*f=*/1, /*window=*/16);
  ASSERT_TRUE(harness.SubmitBurst(12));
  harness.simulator_.RunFor(Seconds(1));
  // The whole burst fits in the window: no admission was ever blocked, so
  // no episode may be counted no matter how often the pump re-entered.
  EXPECT_EQ(pipeline_stats().pbft_window_stalls, 0);
}

TEST(PipelineTest, ParticipantStallEpisodesCloseOnPartialDrain) {
  pipeline_stats().Reset();
  sim::Simulator simulator(17);
  core::BlockplaneOptions options;
  options.fg = 1;
  options.pbft_window = 8;
  options.participant_window = 2;
  core::Deployment deployment(&simulator, Topology::Aws4(), options);

  core::Participant* participant = deployment.participant(kCalifornia);
  constexpr int kCount = 10;
  int done = 0;
  for (int i = 0; i < kCount; ++i) {
    participant->LogCommit(ToBytes("s" + std::to_string(i)), 0,
                           [&](uint64_t) { ++done; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return done >= kCount; },
                                          Seconds(600)));
  simulator.RunFor(Seconds(1));
  // Window 2: the episode opened when op 3 queued closes as soon as one
  // geo round completes and frees a slot (a partial drain — the queue is
  // still deep), then reopens while backlog remains: kCount - window
  // episodes, not one tick per pump.
  EXPECT_EQ(pipeline_stats().participant_window_stalls,
            static_cast<int64_t>(kCount - 2));
}

}  // namespace
}  // namespace blockplane
