// Adaptive per-destination window controller (DESIGN.md §13).
//
// One WindowController instance sizes one pipeline window for one
// destination: a comm daemon's flight window toward a remote site, a
// participant's geo-round window toward a mirror site, or a unit leader's
// PBFT proposal window. The controller is classic AIMD over a smoothed
// per-destination RTT (common/rtt_estimator.h), with two deliberate
// departures from textbook TCP tuned to this system:
//
//   * Growth uses slow start below ssthresh (+1 per clean ack) and
//     congestion avoidance above it (+1 per window of acks), clamped to
//     [min_window, max_window].
//   * Decrease is driven by *spikes*, not single losses. The simulated WAN
//     (and a real one under BFT traffic) drops messages at random even
//     when nothing is congested; halving on every isolated timeout would
//     starve long-RTT destinations for no benefit. Callers additionally
//     gate OnLoss on the head-of-line item: receivers commit in order, so
//     one dropped head makes every trailing flight's timer fire even
//     though those records arrived — only the oldest outstanding item's
//     timeout is evidence of loss. A multiplicative decrease fires when
//     spike_threshold() head timeouts land inside a spike_threshold()*RTO
//     bucket — sustained bursts, partitions — or unconditionally on
//     view-change churn, and is rate-limited to one decrease per RTO so a
//     burst of correlated signals counts once.
//
// Every controller registers a "congestion.<label>" gauge group with the
// process MetricsRegistry for the lifetime of the controller, and feeds
// the aggregate CongestionStats block. Integer arithmetic throughout
// (bplint BP005): controllers run on consensus-adjacent paths.
#ifndef BLOCKPLANE_CORE_CONGESTION_H_
#define BLOCKPLANE_CORE_CONGESTION_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/rtt_estimator.h"
#include "core/options.h"
#include "sim/sim_time.h"

namespace blockplane::core {

/// Catalog of per-controller gauge keys (bplint BP006: every
/// CongestionGauge emission must use a key listed here, and every listed
/// key must be emitted somewhere).
inline constexpr const char* kCongestionGaugeKeys[] = {
    "window",           // current window (flights / geo rounds / proposals)
    "min_window_seen",  // low-water mark over the controller's lifetime
    "srtt_us",          // smoothed per-destination RTT, microseconds
    "rttvar_us",        // RTT variance estimate, microseconds
    "rtt_samples",      // clean (Karn-filtered) samples accepted
    "increases",        // additive increases applied
    "decreases",        // multiplicative decreases applied
    "loss_events",      // raw loss signals (retransmission timeouts)
};

/// Records one gauge value into a controller's snapshot map. Funneling
/// every emission through this helper is what lets bplint check the keys
/// against the catalog above.
void CongestionGauge(std::map<std::string, int64_t>* out, const char* key,
                     int64_t value);

class WindowController {
 public:
  /// `initial_window` is the resolved starting window (callers apply the
  /// CongestionOptions::initial_window == 0 "inherit the static knob"
  /// rule); `rtt_prior` seeds the estimator, typically the topology RTT
  /// plus a commit allowance; `label` names the registry gauge group
  /// ("congestion.<label>").
  WindowController(const CongestionOptions& opts, uint64_t initial_window,
                   sim::SimTime rtt_prior, std::string label);
  ~WindowController();

  WindowController(const WindowController&) = delete;
  WindowController& operator=(const WindowController&) = delete;

  /// A clean (Karn-filtered) round trip completed: feed the estimator and
  /// grow the window.
  void OnAck(sim::SimTime rtt);
  /// A round trip completed but involved a retransmission: grow the
  /// window (delivery progressed) without polluting the RTT estimate.
  void OnAckNoSample();
  /// A loss signal — a retransmission timeout of the *head-of-line* item
  /// (callers must not report trailing timeouts; see file comment).
  /// Decreases the window only when signals spike; see file comment.
  void OnLoss(sim::SimTime now);
  /// View-change churn observed: unconditional multiplicative decrease
  /// (still rate-limited to one per RTO).
  void OnViewChange(sim::SimTime now);

  uint64_t window() const { return window_; }
  uint64_t ssthresh() const { return ssthresh_; }
  /// Head-of-line loss signals within a spike_threshold()*RTO bucket
  /// required to trigger a decrease. An isolated random drop recovers on
  /// the first retransmit and never reaches it; a partition or sustained
  /// burst stalls the head once per RTO and crosses it within ~3 RTOs.
  uint64_t spike_threshold() const;
  sim::SimTime srtt() const { return rtt_.srtt(); }
  /// Retransmission timeout derived from the smoothed estimate, clamped
  /// to [floor, cap]. `cap` is the static retry knob the adaptive timer
  /// replaces, so adaptive mode never retries *later* than static mode.
  sim::SimTime RetryTimeout(sim::SimTime floor, sim::SimTime cap) const;

  uint64_t min_window_seen() const { return min_window_seen_; }
  int64_t decreases() const { return decreases_; }
  int64_t loss_events() const { return loss_events_; }
  const std::string& label() const { return label_; }

  /// Gauge snapshot, as registered with the MetricsRegistry.
  std::map<std::string, int64_t> SnapshotGauges() const;

 private:
  void Grow();
  /// Applies one multiplicative decrease if the per-RTO rate limit allows.
  void Decrease(sim::SimTime now, bool from_viewchange);
  uint64_t Clamp(uint64_t window) const;

  CongestionOptions opts_;
  common::RttEstimator rtt_;
  std::string label_;

  uint64_t window_;
  uint64_t ssthresh_;
  /// Acks accumulated toward the next +1 in congestion avoidance.
  uint64_t ack_credit_ = 0;

  /// Spike detection: loss signals observed in the window starting at
  /// spike_started_.
  sim::SimTime spike_started_ = 0;
  uint64_t spike_count_ = 0;
  /// Rate limit: virtual time of the last applied decrease (< 0 = never).
  sim::SimTime last_decrease_ = -1;

  uint64_t min_window_seen_;
  int64_t rtt_samples_ = 0;
  int64_t increases_ = 0;
  int64_t decreases_ = 0;
  int64_t loss_events_ = 0;

  int64_t registry_handle_ = 0;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_CONGESTION_H_
