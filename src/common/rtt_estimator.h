// Smoothed round-trip-time estimation shared by the reliable transport and
// the adaptive congestion controllers (DESIGN.md §13).
//
// This is the RFC 6298 estimator in pure integer arithmetic: srtt and
// rttvar use the standard 1/8 and 1/4 gains, computed with int64 division
// on nanosecond SimTime values. Consensus-adjacent code must stay
// float-free (bplint BP005), and integer math keeps the estimator
// bit-for-bit deterministic across hosts.
#ifndef BLOCKPLANE_COMMON_RTT_ESTIMATOR_H_
#define BLOCKPLANE_COMMON_RTT_ESTIMATOR_H_

#include <cstdint>

#include "sim/sim_time.h"

namespace blockplane::common {

class RttEstimator {
 public:
  RttEstimator() = default;
  /// Seeds srtt/rttvar with a prior (typically the topology RTT plus a
  /// commit-latency allowance) so timeouts are sane before the first
  /// measured sample. The first real sample replaces the prior outright.
  explicit RttEstimator(sim::SimTime prior) {
    if (prior > 0) {
      srtt_ = prior;
      rttvar_ = prior / 2;
    }
  }

  /// Feeds one measured round trip. Callers are responsible for Karn's
  /// rule: never sample a round trip that involved a retransmission,
  /// because the ack cannot be matched to a specific attempt.
  void AddSample(sim::SimTime rtt) {
    if (rtt < 0) return;
    ++samples_;
    if (samples_ == 1) {
      // First measurement wins over any construction-time prior.
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      return;
    }
    sim::SimTime err = rtt - srtt_;
    sim::SimTime abs_err = err < 0 ? -err : err;
    rttvar_ += (abs_err - rttvar_) / 4;
    srtt_ += err / 8;
  }

  bool has_sample() const { return samples_ > 0; }
  int64_t samples() const { return samples_; }
  sim::SimTime srtt() const { return srtt_; }
  sim::SimTime rttvar() const { return rttvar_; }

  /// Retransmission timeout: srtt + max(4*rttvar, srtt, granularity).
  /// The srtt term keeps the timeout at >= 2x the smoothed RTT even once
  /// rttvar has decayed on a quiet link — in this system the ack path
  /// includes a consensus commit at the peer, whose queueing delay can
  /// exceed what a shrunken variance term would cover.
  sim::SimTime Rto(sim::SimTime granularity) const {
    sim::SimTime var = 4 * rttvar_;
    if (var < srtt_) var = srtt_;
    if (var < granularity) var = granularity;
    return srtt_ + var;
  }

 private:
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  int64_t samples_ = 0;
};

}  // namespace blockplane::common

#endif  // BLOCKPLANE_COMMON_RTT_ESTIMATOR_H_
